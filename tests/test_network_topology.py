"""Tests for the fabric structure: crossbars, CU switches, uplink wiring."""

import pytest

from repro.network.crossbar import CROSSBAR_PORTS, XbarId
from repro.network.cu_switch import (
    COMPUTE_NODES_PER_CU,
    lower_xbar_of_local_node,
)
from repro.network.intercu import uplink_target
from repro.network.topology import RoadrunnerTopology


@pytest.fixture(scope="module")
def full_topo():
    return RoadrunnerTopology(cu_count=17)


@pytest.fixture(scope="module")
def small_topo():
    """Two CUs keeps graph assertions fast."""
    return RoadrunnerTopology(cu_count=2)


# --- node placement ------------------------------------------------------------

def test_first_176_nodes_fill_crossbars_0_to_21():
    assert lower_xbar_of_local_node(0) == 0
    assert lower_xbar_of_local_node(7) == 0
    assert lower_xbar_of_local_node(8) == 1
    assert lower_xbar_of_local_node(175) == 21


def test_last_4_compute_nodes_on_mixed_crossbar():
    for local in (176, 177, 178, 179):
        assert lower_xbar_of_local_node(local) == 22


def test_local_node_range_checked():
    with pytest.raises(ValueError):
        lower_xbar_of_local_node(180)
    with pytest.raises(ValueError):
        lower_xbar_of_local_node(-1)


def test_node_count_is_3060(full_topo):
    assert full_topo.node_count == 3060


def test_split_join_roundtrip(full_topo):
    for node in (0, 179, 180, 1500, 3059):
        cu, local = full_topo.split(node)
        assert full_topo.join(cu, local) == node
    with pytest.raises(ValueError):
        full_topo.split(3060)
    with pytest.raises(ValueError):
        full_topo.join(17, 0)
    with pytest.raises(ValueError):
        full_topo.join(0, 180)


def test_cu_count_bounds():
    with pytest.raises(ValueError):
        RoadrunnerTopology(cu_count=0)
    with pytest.raises(ValueError):
        RoadrunnerTopology(cu_count=25)
    RoadrunnerTopology(cu_count=24)  # design limit is fine


# --- crossbar identifiers --------------------------------------------------------

def test_xbarid_validation():
    XbarId("L", 0, 23).validate(17, 8)
    XbarId("U", 16, 11).validate(17, 8)
    XbarId("F", 7, 11).validate(17, 8)
    with pytest.raises(ValueError):
        XbarId("Z", 0, 0).validate(17, 8)
    with pytest.raises(ValueError):
        XbarId("L", 17, 0).validate(17, 8)
    with pytest.raises(ValueError):
        XbarId("L", 0, 24).validate(17, 8)
    with pytest.raises(ValueError):
        XbarId("U", 0, 12).validate(17, 8)
    with pytest.raises(ValueError):
        XbarId("M", 8, 0).validate(17, 8)


# --- uplink wiring ----------------------------------------------------------------

def test_uplink_targets_cover_all_8_switches_per_crossbar_pair():
    """Even crossbars reach switches 0-3, odd crossbars 4-7."""
    for i in range(24):
        switches = {uplink_target(0, i, k).owner for k in range(4)}
        expected = {0, 1, 2, 3} if i % 2 == 0 else {4, 5, 6, 7}
        assert switches == expected


def test_each_switch_gets_12_uplinks_per_cu():
    per_switch = {s: 0 for s in range(8)}
    for i in range(24):
        for k in range(4):
            per_switch[uplink_target(0, i, k).owner] += 1
    assert all(count == 12 for count in per_switch.values())


def test_uplink_level_depends_on_cu_side():
    assert uplink_target(0, 0, 0).level == "F"
    assert uplink_target(11, 0, 0).level == "F"
    assert uplink_target(12, 0, 0).level == "T"
    assert uplink_target(16, 0, 0).level == "T"


def test_uplink_port_is_crossbar_index_halved():
    assert uplink_target(0, 6, 0).index == 3
    assert uplink_target(0, 7, 0).index == 3
    assert uplink_target(0, 23, 3).index == 11


def test_uplink_bad_arguments():
    with pytest.raises(ValueError):
        uplink_target(0, 0, 4)
    with pytest.raises(ValueError):
        uplink_target(0, 24, 0)


def test_switch_port_is_unique_per_cu():
    """F(s, j) receives exactly one link from each of the first 12 CUs."""
    seen = {}
    for i in range(24):
        for k in range(4):
            target = uplink_target(3, i, k)
            key = (target.owner, target.index)
            assert key not in seen, f"two uplinks from CU 3 hit {target}"
            seen[key] = (i, k)
    assert len(seen) == 96


# --- graph structure ----------------------------------------------------------------

def test_graph_no_crossbar_exceeds_24_ports(full_topo):
    full_topo.validate_ports()


def test_lower_crossbar_port_budget(small_topo):
    """A fully populated lower crossbar uses exactly 24 ports:
    8 nodes + 12 upper links + 4 uplinks."""
    g = small_topo.graph
    assert g.degree(XbarId("L", 0, 0)) == CROSSBAR_PORTS


def test_upper_crossbars_use_all_24_ports_on_lowers(small_topo):
    g = small_topo.graph
    for j in range(12):
        assert g.degree(XbarId("U", 0, j)) == 24


def test_io_nodes_attached(small_topo):
    g = small_topo.graph
    io_nodes = [v for v in g if v[0] == "io"]
    assert len(io_nodes) == 2 * 12
    # 4 I/O on the mixed crossbar, 8 on the I/O-only crossbar.
    mixed = XbarId("L", 0, 22)
    io_only = XbarId("L", 0, 23)
    assert sum(1 for v in g.neighbors(mixed) if v[0] == "io") == 4
    assert sum(1 for v in g.neighbors(io_only) if v[0] == "io") == 8


def test_io_nodes_can_be_excluded():
    topo = RoadrunnerTopology(cu_count=1, include_io=False)
    assert not [v for v in topo.graph if v[0] == "io"]


def test_graph_is_connected(small_topo):
    import networkx as nx

    assert nx.is_connected(small_topo.graph)


def test_compute_node_count_in_graph(small_topo):
    computes = [v for v in small_topo.graph if v[0] == "node"]
    assert len(computes) == 2 * COMPUTE_NODES_PER_CU


def test_single_cu_topology_has_no_intercu_switches():
    topo = RoadrunnerTopology(cu_count=1)
    levels = {v.level for v in topo.graph if isinstance(v, XbarId)}
    assert levels == {"L", "U"}
