"""Tests for the link-load / oversubscription analysis."""

import pytest

from repro.network.loadmap import (
    bisection_summary,
    cross_side_links,
    cu_oversubscription,
    link_loads,
    max_link_load,
)
from repro.network.topology import RoadrunnerTopology


@pytest.fixture(scope="module")
def topo():
    return RoadrunnerTopology(cu_count=17)


def test_single_flow_loads_every_link_once(topo):
    loads = link_loads(topo, [(0, 100)])
    # 3-hop route: node-xbar, xbar-upper, upper-xbar, xbar-node = 4 links.
    assert sum(loads.values()) == 4
    assert all(v == 1 for v in loads.values())


def test_self_flow_loads_nothing(topo):
    assert link_loads(topo, [(5, 5)]) == {}
    assert max_link_load(topo, [(5, 5)]) == 0


def test_incast_concentrates_on_access_link(topo):
    """Many flows to one node all share its access link."""
    pairs = [(src, 0) for src in range(1, 9)]
    assert max_link_load(topo, pairs) == 8


def test_disjoint_flows_do_not_share_links(topo):
    pairs = [(0, 1), (8, 9), (16, 17)]  # distinct crossbars
    loads = link_loads(topo, pairs)
    assert max(loads.values()) == 1


def test_same_crossbar_flows_use_two_links(topo):
    loads = link_loads(topo, [(0, 1)])
    assert sum(loads.values()) == 2


def test_intercu_flow_traverses_uplink(topo):
    loads = link_loads(topo, [(0, 180)])
    # node0 -> L -> F -> L -> node180 (same-index crossbar): 4 links.
    assert sum(loads.values()) == 4
    assert any("'F'" in a or "'F'" in b for a, b in loads)


def test_cross_side_flow_traverses_fmt_chain(topo):
    loads = link_loads(topo, [(0, 12 * 180)])
    names = [a + b for a, b in loads]
    assert any("'M'" in n for n in names)
    assert any("'T'" in n for n in names)


def test_cu_oversubscription_is_about_2_to_1():
    """The paper's '2:1 reduced fat tree': 180 nodes share 96 uplinks."""
    ratio = cu_oversubscription()
    assert ratio == pytest.approx(180 / 96)
    assert 1.5 < ratio <= 2.0


def test_cross_side_links_count():
    assert cross_side_links() == 96


def test_bisection_summary_values():
    s = bisection_summary()
    assert s["cu_uplink_capacity"] == pytest.approx(96 * 2e9)
    assert s["cu_node_capacity"] == pytest.approx(180 * 2e9)
    assert s["cross_side_capacity"] == pytest.approx(96 * 2e9)
    assert s["far_side_nodes"] == 900
    # Each far-side node's share of the waist: ~0.21 GB/s.
    assert s["far_side_per_node_share"] == pytest.approx(96 * 2e9 / 900)


def test_bisection_summary_validates_bandwidth():
    with pytest.raises(ValueError):
        bisection_summary(link_bandwidth=0.0)


def test_spread_routing_keeps_path_lengths(topo):
    from repro.network.routing import hop_count, route

    for a, b in [(0, 50), (0, 250), (0, 2300), (700, 2500)]:
        assert len(route(topo, a, b, spread=True)) == hop_count(topo, a, b)


def test_spread_routes_are_wired(topo):
    g = topo.graph
    for a, b in [(0, 50), (0, 1000), (0, 2300), (500, 2900)]:
        from repro.network.routing import route

        path = [topo.graph_node(a), *route(topo, a, b, spread=True),
                topo.graph_node(b)]
        for u, v in zip(path, path[1:]):
            assert g.has_edge(u, v)


def test_spread_routing_balances_uplinks(topo):
    """The all-out-of-CU pattern that loaded one uplink 8x under
    default routing spreads to at most 2x with destination hashing."""
    pairs = [(n, 180 + n) for n in range(180)]
    assert max_link_load(topo, pairs) == 8
    assert max_link_load(topo, pairs, spread=True) <= 3
