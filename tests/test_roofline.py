"""Tests for the roofline analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.roofline import ROOFLINES, Roofline, sweep3d_operating_point


def test_attainable_clamps_at_peak():
    roof = Roofline("t", peak_flops=1e10, bandwidth=1e9)
    assert roof.attainable(100.0) == 1e10
    assert roof.attainable(1.0) == 1e9
    assert roof.attainable(0.0) == 0.0


def test_ridge_point_and_bound():
    roof = Roofline("t", peak_flops=1e10, bandwidth=1e9)
    assert roof.ridge_point == pytest.approx(10.0)
    assert roof.bound(5.0) == "memory"
    assert roof.bound(10.0) == "compute"


def test_validation():
    with pytest.raises(ValueError):
        Roofline("bad", peak_flops=0.0, bandwidth=1e9)
    with pytest.raises(ValueError):
        Roofline("t", peak_flops=1e9, bandwidth=1e9).attainable(-1.0)


def test_spe_local_store_roofline():
    roof = ROOFLINES["SPE vs local store"]
    assert roof.peak_flops == pytest.approx(12.8e9)
    assert roof.bandwidth == pytest.approx(51.2e9)
    assert roof.ridge_point == pytest.approx(0.25)


def test_spe_main_memory_roofline_is_an_eighth_share():
    roof = ROOFLINES["SPE vs main memory"]
    assert roof.bandwidth == pytest.approx(25.6e9 / 8)
    # Reaching peak through main memory needs 4 flops/byte.
    assert roof.ridge_point == pytest.approx(4.0)


def test_ppe_roofline_reflects_its_measured_bandwidth():
    roof = ROOFLINES["PPE vs main memory"]
    assert roof.bandwidth == pytest.approx(0.89e9, rel=1e-6)


def test_sweep3d_point_is_memory_bound_on_local_store():
    point = sweep3d_operating_point()
    roof = ROOFLINES["SPE vs local store"]
    assert roof.bound(point["intensity_flops_per_byte"]) == "memory"
    # Achieved rate sits below the roofline's attainable rate...
    assert point["achieved_flops"] <= point["attainable_flops"] * 1.05
    # ...and within a small factor of it: two independent derivations
    # of the same bottleneck (pipeline schedule vs roofline).
    assert point["achieved_flops"] > 0.5 * point["attainable_flops"]
    # The paper's 'low single-core efficiency': < 15% of SPE peak.
    assert point["fraction_of_peak"] < 0.15


@settings(max_examples=50, deadline=None)
@given(intensity=st.floats(min_value=0.0, max_value=1000.0))
def test_attainable_monotone_in_intensity(intensity):
    for roof in ROOFLINES.values():
        assert roof.attainable(intensity) <= roof.attainable(intensity + 0.5)
