"""Tests for the Figs 13-14 weak-scaling study."""

import pytest

from repro.sweep3d.input import SweepInput
from repro.sweep3d.scaling import (
    OPTERON_RANKS_PER_NODE,
    SPE_RANKS_PER_NODE,
    ScalingStudy,
)
from repro.validation import paper_data
from repro.validation.compare import monotonic

COUNTS = list(paper_data.SCALING_NODE_COUNTS)


@pytest.fixture(scope="module")
def study():
    return ScalingStudy()


@pytest.fixture(scope="module")
def series(study):
    return study.fig13_series(COUNTS)


@pytest.fixture(scope="module")
def improvements(study):
    return study.fig14_improvements(COUNTS)


def test_rank_counts(study):
    p = study.point(4, "cell_measured")
    assert p.ranks == 4 * SPE_RANKS_PER_NODE
    p = study.point(4, "opteron")
    assert p.ranks == 4 * OPTERON_RANKS_PER_NODE


def test_full_system_uses_all_97920_spes(study):
    p = study.point(3060, "cell_measured")
    assert p.ranks == paper_data.TOTAL_SPES


def test_unknown_config_rejected(study):
    with pytest.raises(ValueError):
        study.point(4, "gpu")
    with pytest.raises(ValueError):
        study.point(0, "opteron")


def test_fig13_all_series_rise_with_node_count(series):
    """Weak scaling: iteration time grows with node count (pipeline
    fill and slower links), for every configuration."""
    for config, points in series.items():
        times = [p.iteration_time for p in points]
        assert monotonic(times, increasing=True), config


def test_fig13_cell_always_beats_opteron(series):
    """Fig 13: 'the measured times on the PowerXCell 8i processors are
    substantially lower than that on the Opterons' — at every scale."""
    for i in range(len(COUNTS)):
        assert (
            series["cell_measured"][i].iteration_time
            < series["opteron"][i].iteration_time
        )


def test_fig13_best_beats_measured(series):
    """Fig 13: the modeled best-achievable curve lies below measured."""
    for i in range(len(COUNTS)):
        assert (
            series["cell_best"][i].iteration_time
            <= series["cell_measured"][i].iteration_time
        )


def test_fig13_measured_close_to_best_at_small_scale(series):
    """§VI-A: 'the performance of the current implementation is close
    to the best achievable at small scale, and could be improved by
    almost a factor of two at large scale.'"""
    small_gap = (
        series["cell_measured"][0].iteration_time
        / series["cell_best"][0].iteration_time
    )
    large_gap = (
        series["cell_measured"][-1].iteration_time
        / series["cell_best"][-1].iteration_time
    )
    assert small_gap < 2.0
    assert 1.5 < large_gap < 2.2
    assert large_gap > small_gap


def test_fig13_opteron_endpoint_near_paper_range(series):
    """The Opteron-only curve tops out in Fig 13's 0.6-0.8 s band."""
    assert 0.5 < series["opteron"][-1].iteration_time < 0.8


def test_fig14_measured_improvement_decreases_with_scale(improvements):
    """Downward trend with scale; small non-monotonic wiggles come from
    the decomposition's aspect-ratio jitter across node counts (the
    paper's curves wiggle the same way)."""
    vals = improvements["measured"]
    assert vals[-1] < 0.5 * vals[0]
    assert all(b <= a * 1.05 for a, b in zip(vals, vals[1:]))


def test_fig14_measured_improvement_about_2x_at_full_scale(improvements):
    """Fig 14 / §VII: 'currently almost a factor of two higher
    performance is achieved when using the accelerators.'"""
    assert improvements["measured"][-1] == pytest.approx(
        paper_data.FIG14_MEASURED_IMPROVEMENT_LARGE, rel=0.2
    )


def test_fig14_best_improvement_3_to_5x_at_full_scale(improvements):
    """Fig 14: 'may be as high as 4x at large-scale if the peak PCIe
    performance were to be realized.'"""
    assert 2.8 < improvements["best"][-1] < 5.0


def test_small_scale_best_advantage_near_10x(improvements):
    """§VII: 'For small scale jobs the expected performance advantage
    is 10x' — the model lands in the 6-11x band."""
    assert 6.0 < improvements["best"][0] < 11.0


def test_best_always_at_least_measured(improvements):
    for m, b in zip(improvements["measured"], improvements["best"]):
        assert b >= m


def test_fill_dominates_at_full_scale(study):
    """At 3,060 nodes the 97,920-rank pipeline is much deeper than the
    per-octant work, so fill dominates the iteration — the mechanism
    behind the shrinking accelerator advantage."""
    model = study.model_for(3060, "cell_measured")
    assert model.fill_steps > 5 * model.work_steps


def test_opteron_input_covers_same_global_problem(study):
    """4 Opteron ranks must carry the cells of 32 SPE ranks per node."""
    cell_cells = study._cell_input().cells * SPE_RANKS_PER_NODE
    opteron_cells = study._opteron_input().cells * OPTERON_RANKS_PER_NODE
    assert cell_cells == opteron_cells


def test_custom_input_supported():
    custom = ScalingStudy(SweepInput(it=4, jt=4, kt=100, mk=10, mmi=6))
    p = custom.point(2, "cell_measured")
    assert p.iteration_time > 0


def test_2d_decomposition_beats_1d_at_scale():
    """Why Sweep3D decomposes in 2-D (paper §V-A): a 1-D process array
    has pipeline depth P-1 vs ~2*sqrt(P) for the square array, so its
    fill swamps the iteration at scale."""
    from repro.sweep3d.decomposition import Decomposition2D
    from repro.sweep3d.perfmodel import SweepMachineParams, WavefrontModel
    from repro.comm.ib import IB_DEFAULT
    from repro.sweep3d.input import SweepInput

    inp = SweepInput.paper_scaling()
    params = SweepMachineParams("test", grind_time=32e-9, comm=IB_DEFAULT)
    ranks = 1024
    square = WavefrontModel(inp, Decomposition2D.near_square(ranks), params)
    linear = WavefrontModel(inp, Decomposition2D(ranks, 1), params)
    assert square.iteration_time() < 0.25 * linear.iteration_time()
    assert square.parallel_efficiency() > 2 * linear.parallel_efficiency()


def test_elongation_monotonically_hurts():
    from repro.sweep3d.decomposition import Decomposition2D
    from repro.sweep3d.perfmodel import SweepMachineParams, WavefrontModel
    from repro.comm.ib import IB_DEFAULT
    from repro.sweep3d.input import SweepInput

    inp = SweepInput.paper_scaling()
    params = SweepMachineParams("test", grind_time=32e-9, comm=IB_DEFAULT)
    times = [
        WavefrontModel(inp, Decomposition2D(pi, 1024 // pi), params).iteration_time()
        for pi in (32, 64, 128, 256, 1024)
    ]
    assert times == sorted(times)
