"""Unit tests for Resource, Store, and BandwidthLink."""

import pytest

from repro.sim import BandwidthLink, Resource, SimulationError, Simulator, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    log = []

    def user(sim, name, hold):
        req = res.request()
        yield req
        log.append(("acq", name, sim.now))
        yield sim.timeout(hold)
        res.release(req)
        log.append(("rel", name, sim.now))

    sim.process(user(sim, "a", 2.0))
    sim.process(user(sim, "b", 2.0))
    sim.process(user(sim, "c", 1.0))
    sim.run()
    acquires = [(n, t) for op, n, t in log if op == "acq"]
    # a and b acquire immediately; c waits until one releases at t=2.
    assert acquires == [("a", 0.0), ("b", 0.0), ("c", 2.0)]


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, name):
        req = res.request()
        yield req
        order.append(name)
        yield sim.timeout(1.0)
        res.release(req)

    for name in "abcd":
        sim.process(user(sim, name))
    sim.run()
    assert order == list("abcd")


def test_resource_release_without_hold_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    bogus = sim.event()
    with pytest.raises(SimulationError):
        res.release(bogus)


def test_resource_counts():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    res.request()
    res.request()
    assert res.count == 1
    assert res.queue_length == 2
    res.release(r1)
    assert res.count == 1
    assert res.queue_length == 1


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim):
        item = yield store.get()
        got.append(item)

    store.put("x")
    sim.process(getter(sim))
    sim.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim):
        item = yield store.get()
        got.append((sim.now, item))

    def putter(sim):
        yield sim.timeout(5.0)
        store.put("late")

    sim.process(getter(sim))
    sim.process(putter(sim))
    sim.run()
    assert got == [(5.0, "late")]


def test_store_fifo_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim, name):
        item = yield store.get()
        got.append((name, item))

    sim.process(getter(sim, "g1"))
    sim.process(getter(sim, "g2"))

    def putter(sim):
        yield sim.timeout(1.0)
        store.put("first")
        store.put("second")

    sim.process(putter(sim))
    sim.run()
    assert got == [("g1", "first"), ("g2", "second")]


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2


# ---------------------------------------------------------------------------
# BandwidthLink
# ---------------------------------------------------------------------------

def test_single_transfer_time():
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=100.0)  # 100 B/s
    done = link.transfer(250.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(2.5)


def test_zero_byte_transfer_completes_immediately():
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=100.0)
    done = link.transfer(0.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(0.0)


def test_two_equal_transfers_share_bandwidth():
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=100.0)
    d1 = link.transfer(100.0)
    d2 = link.transfer(100.0)
    sim.run(until=d1)
    t1 = sim.now
    sim.run(until=d2)
    t2 = sim.now
    # Each gets 50 B/s -> both finish at t=2 (vs 1s alone).
    assert t1 == pytest.approx(2.0)
    assert t2 == pytest.approx(2.0)


def test_staggered_transfers_processor_sharing():
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=100.0)
    times = {}

    def starter(sim):
        d1 = link.transfer(100.0)  # starts t=0
        yield sim.timeout(0.5)
        d2 = link.transfer(100.0)  # starts t=0.5
        v1 = yield d1
        times["d1"] = v1
        v2 = yield d2
        times["d2"] = v2

    sim.process(starter(sim))
    sim.run()
    # d1: 50 B alone in [0,0.5], then 50 B at the shared 50 B/s -> done 1.5
    assert times["d1"] == pytest.approx(1.5)
    # d2: 50 B shared in [0.5,1.5], then 50 B alone at 100 B/s -> done 2.0
    assert times["d2"] == pytest.approx(2.0)


def test_bandwidth_conserved_across_many_transfers():
    """Total completion time of N simultaneous equal transfers equals
    the serial time (work conservation of processor sharing)."""
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=10.0)
    events = [link.transfer(10.0) for _ in range(5)]
    for evt in events:
        sim.run(until=evt)
    assert sim.now == pytest.approx(5.0)
    assert link.bytes_transferred == pytest.approx(50.0)


def test_negative_transfer_rejected():
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=10.0)
    with pytest.raises(ValueError):
        link.transfer(-1.0)


def test_invalid_bandwidth_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        BandwidthLink(sim, bandwidth=0.0)


def test_active_transfer_count_tracks_membership():
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=100.0)
    assert link.active_transfers == 0
    d1 = link.transfer(100.0)
    assert link.active_transfers == 1
    link.transfer(200.0)
    assert link.active_transfers == 2
    sim.run(until=d1)
    assert link.active_transfers == 1
    sim.run()
    assert link.active_transfers == 0


def test_bandwidth_link_no_livelock_on_tiny_residuals():
    """Regression: repeated rate changes leave floating-point residuals
    too small to advance the clock; the link must complete them rather
    than spin forever."""
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=25.6e9)
    sizes = [13_107_200.0 / 3, 13_107_200.0 / 7, 13_107_200.0 / 11]
    events = []

    def churn(sim):
        for size in sizes * 5:
            events.append(link.transfer(size))
            yield sim.timeout(size / 60e9)  # membership churn mid-flight

    sim.process(churn(sim))
    sim.run()
    assert all(e.processed for e in events)
    assert link.bytes_transferred == pytest.approx(sum(sizes) * 5, rel=1e-6)


def test_cancel_waiting_request_prevents_slot_leak():
    """An interrupted waiter cancels its request; the slot is never
    orphaned (regression for the leak Resource.cancel exists to fix)."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert res.queue_length == 1
    res.cancel(r2)
    assert res.queue_length == 0
    res.release(r1)
    assert res.count == 0


def test_cancel_granted_request_releases():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    res.cancel(r1)  # already granted -> behaves like release
    assert res.count == 1  # r2 was promoted
    res.cancel(r2)
    assert res.count == 0


def test_cancel_unknown_request_ignored():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.cancel(sim.event())  # no-op
