"""Property-based tests for the DES kernel and doctest execution."""

import doctest

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, AnyOf, BandwidthLink, Simulator


# --- BandwidthLink work conservation ------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(
        st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=8
    ),
    offsets=st.lists(
        st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=8
    ),
)
def test_bandwidth_link_conserves_work(sizes, offsets):
    """Regardless of arrival pattern, total completion time of all
    transfers is at least total_bytes / bandwidth after the last
    arrival, and every byte is eventually delivered."""
    n = min(len(sizes), len(offsets))
    sizes, offsets = sizes[:n], offsets[:n]
    bw = 1000.0
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=bw)
    events = []

    def starter(sim):
        t = 0.0
        for size, gap in sorted(zip(sizes, offsets), key=lambda p: p[1]):
            target = gap
            if target > t:
                yield sim.timeout(target - t)
                t = target
            events.append(link.transfer(size))

    sim.process(starter(sim))
    sim.run()
    assert link.bytes_transferred == pytest.approx(sum(sizes), rel=1e-9)
    last_arrival = max(offsets)
    # Work conservation: the link cannot finish faster than serial rate.
    assert sim.now >= sum(sizes) / bw - 1e-9
    # Nor slower than serial service starting at the last arrival.
    assert sim.now <= last_arrival + sum(sizes) / bw + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=10),
    size=st.floats(min_value=10.0, max_value=1000.0),
)
def test_simultaneous_equal_transfers_finish_together(n, size):
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=100.0)
    events = [link.transfer(size) for _ in range(n)]
    for evt in events:
        sim.run(until=evt)
    assert sim.now == pytest.approx(n * size / 100.0)


# --- condition events -----------------------------------------------------------------

def test_allof_fails_when_member_fails():
    sim = Simulator()
    good = sim.timeout(1.0)
    bad = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield AllOf(sim, [good, bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim))
    bad.fail(RuntimeError("member failed"))
    sim.run()
    assert caught == ["member failed"]


def test_anyof_failure_propagates():
    sim = Simulator()
    slow = sim.timeout(10.0)
    bad = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield AnyOf(sim, [slow, bad])
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim))
    bad.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_condition_rejects_foreign_events():
    sim_a, sim_b = Simulator(), Simulator()
    with pytest.raises(Exception):
        AllOf(sim_a, [sim_a.timeout(1.0), sim_b.timeout(1.0)])


def test_allof_with_already_processed_events():
    sim = Simulator()
    t1 = sim.timeout(1.0, value="a")
    sim.run()  # t1 already processed
    done = []

    def waiter(sim):
        t2 = sim.timeout(1.0, value="b")
        results = yield AllOf(sim, [t1, t2])
        done.append(sorted(results.values()))

    sim.process(waiter(sim))
    sim.run()
    assert done == [["a", "b"]]


# --- doctests ------------------------------------------------------------------------

@pytest.mark.parametrize(
    "module_name",
    ["repro.sim.engine", "repro.core.machine"],
)
def test_module_doctests(module_name):
    import importlib

    module = importlib.import_module(module_name)
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module_name} has no doctests"
    assert result.failed == 0
