"""Unit + property tests for the SPE pipeline model (source of Figs 4-5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.spe_pipeline import (
    CELL_BE_TABLE,
    GROUP_FLOPS,
    INSTRUCTION_GROUPS,
    POWERXCELL_8I_TABLE,
    GroupTiming,
    Instruction,
    InstructionGroup,
    PipelineTable,
    SPEPipeline,
    pipeline_table_for,
)
from repro.validation import paper_data

G = InstructionGroup


# --- table sanity -----------------------------------------------------------

def test_tables_cover_all_nine_groups():
    assert set(CELL_BE_TABLE.timings) == set(INSTRUCTION_GROUPS)
    assert set(POWERXCELL_8I_TABLE.timings) == set(INSTRUCTION_GROUPS)
    assert len(INSTRUCTION_GROUPS) == 9


def test_only_fpd_differs_between_variants():
    """Paper: 'The only difference in performance between the Cell BE and
    the PowerXCell 8i is observed on the FPD instruction group.'"""
    for group in INSTRUCTION_GROUPS:
        cbe = CELL_BE_TABLE.timings[group]
        pxc = POWERXCELL_8I_TABLE.timings[group]
        if group is G.FPD:
            assert cbe != pxc
        else:
            assert cbe == pxc


def test_fpd_latency_13_to_9():
    assert CELL_BE_TABLE.latency(G.FPD) == paper_data.FPD_LATENCY_CELLBE
    assert POWERXCELL_8I_TABLE.latency(G.FPD) == paper_data.FPD_LATENCY_PXC8I


def test_fpd_fully_pipelined_only_on_pxc8i():
    assert CELL_BE_TABLE.repetition(G.FPD) > 1
    assert POWERXCELL_8I_TABLE.repetition(G.FPD) == paper_data.FPD_REPETITION_PXC8I


def test_all_non_fpd_units_fully_pipelined():
    """Paper: 'The only execution unit not fully pipelined in the Cell BE
    was the FPD unit.'"""
    for table in (CELL_BE_TABLE, POWERXCELL_8I_TABLE):
        for group in INSTRUCTION_GROUPS:
            if group is G.FPD and table is CELL_BE_TABLE:
                continue
            assert table.repetition(group) == 1, (table.name, group)


def test_group_timing_validation():
    with pytest.raises(ValueError):
        GroupTiming(latency=0, local_stall=1, global_stall=0)
    with pytest.raises(ValueError):
        GroupTiming(latency=1, local_stall=0, global_stall=0)
    with pytest.raises(ValueError):
        GroupTiming(latency=1, local_stall=1, global_stall=-1)


def test_incomplete_table_rejected():
    with pytest.raises(ValueError):
        PipelineTable("partial", {G.FPD: GroupTiming(9, 1, 0)})


def test_pipeline_table_lookup():
    assert pipeline_table_for("Cell BE") is CELL_BE_TABLE
    assert pipeline_table_for("PowerXCell 8i") is POWERXCELL_8I_TABLE
    with pytest.raises(KeyError):
        pipeline_table_for("Cell eDP")


# --- derived peak rates (the 7x DP claim emerges from the tables) -----------

def test_pxc8i_spe_dp_is_4_flops_per_cycle():
    assert POWERXCELL_8I_TABLE.dp_flops_per_cycle == pytest.approx(4.0)


def test_cellbe_spe_dp_is_4_sevenths_flops_per_cycle():
    assert CELL_BE_TABLE.dp_flops_per_cycle == pytest.approx(4.0 / 7.0)


def test_dp_improvement_factor_is_7x():
    factor = POWERXCELL_8I_TABLE.dp_flops_per_cycle / CELL_BE_TABLE.dp_flops_per_cycle
    assert factor == pytest.approx(paper_data.DP_IMPROVEMENT_FACTOR)


def test_sp_rate_unchanged_between_variants():
    assert CELL_BE_TABLE.sp_flops_per_cycle == POWERXCELL_8I_TABLE.sp_flops_per_cycle == 8.0


# --- microbenchmarks reproduce the tables (Figs 4-5 methodology) ------------

@pytest.mark.parametrize("table", [CELL_BE_TABLE, POWERXCELL_8I_TABLE],
                         ids=lambda t: t.name)
@pytest.mark.parametrize("group", INSTRUCTION_GROUPS, ids=lambda g: g.value)
def test_measured_latency_equals_table(table, group):
    pipe = SPEPipeline(table)
    assert pipe.measure_latency(group) == pytest.approx(table.latency(group))


@pytest.mark.parametrize("table", [CELL_BE_TABLE, POWERXCELL_8I_TABLE],
                         ids=lambda t: t.name)
@pytest.mark.parametrize("group", INSTRUCTION_GROUPS, ids=lambda g: g.value)
def test_measured_repetition_equals_table(table, group):
    pipe = SPEPipeline(table)
    assert pipe.measure_repetition(group) == pytest.approx(table.repetition(group))


# --- scheduler behaviour ------------------------------------------------------

def test_empty_stream_takes_zero_cycles():
    assert SPEPipeline(POWERXCELL_8I_TABLE).run_cycles([]) == 0


def test_dual_issue_pairs_even_and_odd():
    """An even-pipe and an odd-pipe instruction can issue the same cycle."""
    pipe = SPEPipeline(POWERXCELL_8I_TABLE)
    issue = pipe.schedule([Instruction(G.FX2), Instruction(G.LS)])
    assert issue == [0, 0]


def test_same_pipe_instructions_cannot_dual_issue():
    pipe = SPEPipeline(POWERXCELL_8I_TABLE)
    issue = pipe.schedule([Instruction(G.FX2), Instruction(G.FX3)])
    assert issue == [0, 1]


def test_dependency_waits_for_producer_latency():
    pipe = SPEPipeline(POWERXCELL_8I_TABLE)
    issue = pipe.schedule([Instruction(G.FPD), Instruction(G.FPD, depends_on=0)])
    assert issue == [0, 9]


def test_global_stall_blocks_other_pipes():
    """On the Cell BE an FPD issue stalls the whole processor 6 cycles:
    even an odd-pipe load cannot issue until cycle 7."""
    pipe = SPEPipeline(CELL_BE_TABLE)
    issue = pipe.schedule([Instruction(G.FPD), Instruction(G.LS)])
    assert issue == [0, 7]


def test_no_global_stall_on_pxc8i():
    pipe = SPEPipeline(POWERXCELL_8I_TABLE)
    issue = pipe.schedule([Instruction(G.FPD), Instruction(G.LS)])
    assert issue == [0, 0]


def test_invalid_dependency_index_rejected():
    pipe = SPEPipeline(POWERXCELL_8I_TABLE)
    with pytest.raises(ValueError):
        pipe.schedule([Instruction(G.FPD, depends_on=5)])


def test_sustained_dp_flops_back_to_back():
    """Back-to-back FPD streams achieve the table's flops/cycle."""
    for table in (CELL_BE_TABLE, POWERXCELL_8I_TABLE):
        pipe = SPEPipeline(table)
        achieved = pipe.sustained_flops_per_cycle([(G.FPD, 1.0)], cycles_hint=2048)
        assert achieved == pytest.approx(table.dp_flops_per_cycle, rel=0.02)


def test_mixed_stream_flops_between_bounds():
    """A 50/50 FPD/LS mix achieves at most the pure-FPD rate."""
    pipe = SPEPipeline(POWERXCELL_8I_TABLE)
    mixed = pipe.sustained_flops_per_cycle([(G.FPD, 0.5), (G.LS, 0.5)], cycles_hint=2048)
    pure = pipe.sustained_flops_per_cycle([(G.FPD, 1.0)], cycles_hint=2048)
    assert 0 < mixed <= pure * 1.001
    # With perfect dual-issue the mix loses nothing: LS rides the odd pipe
    # while FPD issues on the even pipe every cycle.
    assert mixed == pytest.approx(pure, rel=0.05)
    # An all-even mix (FPD + FX2) does halve the FPD issue rate.
    contended = pipe.sustained_flops_per_cycle(
        [(G.FPD, 0.5), (G.FX2, 0.5)], cycles_hint=2048
    )
    assert contended == pytest.approx(pure * 0.5, rel=0.05)


def test_empty_mix_rejected():
    pipe = SPEPipeline(POWERXCELL_8I_TABLE)
    with pytest.raises(ValueError):
        pipe.sustained_flops_per_cycle([(G.FPD, 0.0)])


# --- property-based invariants ------------------------------------------------

group_strategy = st.sampled_from(list(INSTRUCTION_GROUPS))


@st.composite
def instruction_streams(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    stream = []
    for i in range(n):
        group = draw(group_strategy)
        dep = None
        if i > 0 and draw(st.booleans()):
            dep = draw(st.integers(min_value=0, max_value=i - 1))
        stream.append(Instruction(group, depends_on=dep))
    return stream


@settings(max_examples=100, deadline=None)
@given(stream=instruction_streams(),
       table=st.sampled_from([CELL_BE_TABLE, POWERXCELL_8I_TABLE]))
def test_issue_cycles_are_in_order_and_nonnegative(stream, table):
    issue = SPEPipeline(table).schedule(stream)
    assert all(c >= 0 for c in issue)
    assert all(b >= a for a, b in zip(issue, issue[1:]))


@settings(max_examples=100, deadline=None)
@given(stream=instruction_streams())
def test_pxc8i_never_slower_than_cellbe(stream):
    """Removing the FPD stall can only help: PXC8i cycle counts are a
    lower bound on Cell BE cycle counts for any stream."""
    cbe = SPEPipeline(CELL_BE_TABLE).run_cycles(stream)
    pxc = SPEPipeline(POWERXCELL_8I_TABLE).run_cycles(stream)
    assert pxc <= cbe


@settings(max_examples=100, deadline=None)
@given(stream=instruction_streams())
def test_dependencies_respected(stream):
    for table in (CELL_BE_TABLE, POWERXCELL_8I_TABLE):
        issue = SPEPipeline(table).schedule(stream)
        for i, instr in enumerate(stream):
            if instr.depends_on is not None:
                producer = stream[instr.depends_on]
                ready = issue[instr.depends_on] + table.latency(producer.group)
                assert issue[i] >= ready


@settings(max_examples=50, deadline=None)
@given(stream=instruction_streams())
def test_streams_without_flops_report_zero(stream):
    no_flop_stream = [
        Instruction(i.group, i.depends_on)
        for i in stream
        if i.group not in GROUP_FLOPS
    ]
    # Re-index dependencies conservatively: drop them.
    no_flop_stream = [Instruction(i.group) for i in no_flop_stream]
    if not no_flop_stream:
        return
    pipe = SPEPipeline(POWERXCELL_8I_TABLE)
    cycles = pipe.run_cycles(no_flop_stream)
    flops = sum(GROUP_FLOPS.get(i.group, 0) for i in no_flop_stream)
    assert flops == 0 and cycles > 0
