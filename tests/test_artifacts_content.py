"""Content assertions for every CLI artifact: each must carry the key
published numbers it exists to reproduce."""

import pytest

from repro.core.artifacts import ARTIFACTS, produce

#: artifact -> substrings that must appear in its rendering
CONTENT = {
    "fig1": ["HT2100-0", "ib-hca", "core1->cell1", "6.4 GB/s"],
    "fig2": ["408", "1.875", "96 F-M links", "24 ports"],
    "table1": ["5.38", "860", "1932", "260"],
    "table2": ["1.38", "2.91", "80.9", "435.2", "14.4", "3060"],
    "table3": ["5.41", "0.89", "29.28", "30.5", "23.4", "9.4"],
    "table4": ["1.26", "0.37", "0.19", "N/A"],
    "fig3": ["409.6", "25.6", "14.4", "10.25", "8.50"],
    "fig4": ["FPD", "13", "9", "SHUF"],
    "fig6": ["3.19", "2.16", "0.12", "8.78"],
    "fig7": ["intranode", "internode", "bidir"],
    "fig8": ["1479", "1086", "cores 1<->3"],
    "fig9": ["DaCS", "InfiniBand", "IB/DaCS"],
    "fig10": ["2.50", "2.94", "3.38", "3.82"],
    "fig11": ["step 1", "*...", "###*"],
    "fig12": ["PowerXCell 8i", "Tigerton", "single socket"],
    "fig13": ["Opteron only", "Cell measured", "Cell best", "3060"],
    "fig14": ["measured", "best", "3060"],
    "linpack": ["1.026", "437", "position"],
    "apps": ["1.00x", "1.50x", "1.95x"],
    "energy": ["energy adv."],
    "section4": ["8.78 us", "29.28", "FPD"],
    "resilience": ["3,060", "Daly", "1.124x", "Panasas", "model extension"],
    "resilience-correlated": ["pair tau", "1.008x", "sqrt(burst)", "180 nodes"],
}


def test_content_table_covers_every_artifact():
    assert set(CONTENT) == set(ARTIFACTS) - {"fig5"}  # fig5 shares fig4


@pytest.mark.parametrize("name", sorted(CONTENT))
def test_artifact_contains_its_numbers(name):
    text = produce(name)
    for marker in CONTENT[name]:
        assert marker in text, (name, marker)


def test_fig11_frames_partition():
    """Every frame's processed+front+untouched cells cover the grid."""
    text = produce("fig11")
    for frame in text.split("step ")[1:5]:
        grid = "".join(
            line for line in frame.splitlines()[1:5]
        )
        assert len(grid) == 16
        assert set(grid) <= {"#", "*", "."}
        assert grid.count("*") >= 1
