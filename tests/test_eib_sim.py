"""Tests for the DES Element Interconnect Bus model."""

import pytest

from repro.comm.eib import EIBRing
from repro.comm.eib_sim import EIBSim
from repro.sim import Simulator
from repro.units import KIB


def test_ring_capacity_matches_published_figures():
    sim = Simulator()
    eib = EIBSim(sim)
    # 4 rings x 25.6 GB/s = 102.4 GB/s raw; the paper's 96 B/cycle
    # aggregate (307.2 GB/s at 3.2 GHz) counts all concurrent slot
    # occupancy, raw per-ring rate here is the data-path figure.
    assert eib.aggregate_bandwidth == pytest.approx(4 * 25.6e9)


def test_single_transfer_time():
    sim = Simulator()
    eib = EIBSim(sim)
    size = 128 * KIB
    done = eib.transfer(size)
    sim.run(until=done)
    assert sim.now == pytest.approx(
        EIBSim.ARBITRATION_LATENCY + size / 25.6e9
    )
    assert eib.transfers_completed == 1


def test_zero_byte_transfer_free():
    sim = Simulator()
    eib = EIBSim(sim)
    done = eib.transfer(0)
    sim.run(until=done)
    assert sim.now == 0.0


def test_negative_size_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        EIBSim(sim).transfer(-1)


def test_four_transfers_ride_distinct_rings():
    """Round-robin assignment: four concurrent transfers each get a
    full ring and finish together."""
    sim = Simulator()
    eib = EIBSim(sim)
    size = 64 * KIB
    events = [eib.transfer(size) for _ in range(4)]
    for evt in events:
        sim.run(until=evt)
    assert sim.now == pytest.approx(
        EIBSim.ARBITRATION_LATENCY + size / 25.6e9
    )


def test_eight_transfers_halve_per_pair_rate():
    """Two transfers per ring share its 25.6 GB/s."""
    sim = Simulator()
    eib = EIBSim(sim)
    size = 64 * KIB
    events = [eib.transfer(size) for _ in range(8)]
    for evt in events:
        sim.run(until=evt)
    assert sim.now == pytest.approx(
        EIBSim.ARBITRATION_LATENCY + 2 * size / 25.6e9, rel=1e-6
    )


def test_slot_limit_serializes_excess_transfers():
    """A ring carries at most three concurrent transfers; the fourth
    on the same ring waits for a slot."""
    sim = Simulator()
    eib = EIBSim(sim)
    size = 64 * KIB
    # 13 transfers: ring 0 gets 4 (slots: 3 + 1 queued).
    events = [eib.transfer(size) for _ in range(13)]
    for evt in events:
        sim.run(until=evt)
    # Ring 0's queued transfer runs after a slot frees: later than the
    # pure fair-share time of 3 concurrent transfers.
    fair_share_3 = EIBSim.ARBITRATION_LATENCY + 3 * size / 25.6e9
    assert sim.now > fair_share_3
    assert eib.transfers_completed == 13


def test_des_consistent_with_analytic_fair_share():
    """Under symmetric 8-flow load the DES per-flow rate matches the
    analytic EIBRing fair-share model within the slot/arbitration
    overheads."""
    sim = Simulator()
    eib = EIBSim(sim)
    size = 256 * KIB
    events = [eib.transfer(size) for _ in range(8)]
    for evt in events:
        sim.run(until=evt)
    per_flow_rate = size / (sim.now - EIBSim.ARBITRATION_LATENCY)
    analytic = EIBRing().fair_share(8)
    # 8 flows over 4 rings: 12.8 GB/s each; analytic model (307.2/8 =
    # 38.4 capped at 23.5) differs in accounting — both sit within the
    # same order and the DES respects its own capacity exactly.
    assert per_flow_rate == pytest.approx(25.6e9 / 2, rel=1e-6)
    assert per_flow_rate < analytic * 2
