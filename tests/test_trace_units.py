"""Tests for the tracer, unit helpers, and parallel-efficiency stats."""

import pytest

from repro.sim.trace import NULL_TRACER, Tracer
from repro.units import (
    GB_S,
    GFLOPS,
    GHZ,
    GIB,
    MB_S,
    MS,
    NS,
    PFLOPS,
    TFLOPS,
    US,
    to_gb_s,
    to_gflops,
    to_mb_s,
    to_ms,
    to_pflops,
    to_tflops,
    to_us,
)


# --- units ------------------------------------------------------------------

def test_time_conversions():
    assert to_us(1.5 * US) == pytest.approx(1.5)
    assert to_ms(2 * MS) == pytest.approx(2.0)
    assert 1000 * NS == pytest.approx(1 * US)


def test_rate_conversions():
    assert to_mb_s(5 * MB_S) == pytest.approx(5.0)
    assert to_gb_s(2.5 * GB_S) == pytest.approx(2.5)
    assert to_gflops(3 * GFLOPS) == pytest.approx(3.0)
    assert to_tflops(1.5 * TFLOPS) == pytest.approx(1.5)
    assert to_pflops(1.38 * PFLOPS) == pytest.approx(1.38)


def test_binary_vs_decimal_sizes():
    assert GIB == 2**30
    assert 1 * GHZ == 1e9


# --- tracer -------------------------------------------------------------------

def test_tracer_records_and_counts():
    tracer = Tracer()
    tracer.record(1.0, "mpi.send", 0, {"dest": 1})
    tracer.record(2.0, "mpi.recv", 1)
    tracer.record(3.0, "mpi.send", 0)
    assert len(tracer) == 3
    assert tracer.count("mpi.send") == 2
    assert tracer.count("mpi.recv") == 1


def test_tracer_category_filtering():
    tracer = Tracer(categories=frozenset({"dma"}))
    assert tracer.enabled_for("dma")
    assert not tracer.enabled_for("mpi.send")
    tracer.record(0.0, "mpi.send", 0)
    tracer.record(0.0, "dma", 0)
    assert len(tracer) == 1


def test_tracer_filter_by_predicate():
    tracer = Tracer()
    for t in range(5):
        tracer.record(float(t), "tick", source=t % 2)
    evens = list(tracer.filter(predicate=lambda r: r.source == 0))
    assert len(evens) == 3


def test_tracer_span_and_clear():
    tracer = Tracer()
    assert tracer.span() == 0.0
    tracer.record(1.0, "a", 0)
    tracer.record(4.5, "b", 0)
    assert tracer.span() == pytest.approx(3.5)
    tracer.clear()
    assert len(tracer) == 0


def test_null_tracer_keeps_nothing():
    NULL_TRACER.record(0.0, "anything", 0)
    assert len(NULL_TRACER) == 0


def test_mpi_tracer_integration():
    from repro.comm.mpi import Location, SimMPI, UniformFabric
    from repro.comm.transport import Transport
    from repro.sim import Simulator

    sim = Simulator()
    tracer = Tracer()
    comm = SimMPI(
        sim,
        UniformFabric(Transport("t", latency=1e-6, bandwidth=1e9)),
        [Location(node=i) for i in range(2)],
        tracer=tracer,
    )

    def body(rank):
        if rank.index == 0:
            yield from rank.send(1, size=100)
        else:
            yield from rank.recv()

    for r in range(2):
        sim.process(body(comm.rank(r)))
    sim.run()
    assert tracer.count("mpi.send") == 1
    assert tracer.count("mpi.recv") == 1


# --- parallel efficiency statistics -----------------------------------------------

def test_parallel_efficiency_single_rank_is_one():
    from repro.comm.mpi import UniformFabric
    from repro.comm.transport import Transport
    from repro.sweep3d.decomposition import Decomposition2D
    from repro.sweep3d.input import SweepInput
    from repro.sweep3d.parallel import ParallelSweep

    inp = SweepInput(it=2, jt=2, kt=4, mk=2, mmi=2)
    fabric = UniformFabric(Transport("free", 1e-12, 1e18))
    result = ParallelSweep(inp, Decomposition2D(1, 1), 1e-6, fabric).run()
    assert result.parallel_efficiency == pytest.approx(1.0, rel=1e-6)


def test_parallel_efficiency_matches_model_square_array():
    from repro.comm.mpi import UniformFabric
    from repro.comm.transport import Transport
    from repro.sweep3d.decomposition import Decomposition2D
    from repro.sweep3d.input import SweepInput
    from repro.sweep3d.parallel import ParallelSweep
    from repro.sweep3d.perfmodel import SweepMachineParams, WavefrontModel

    inp = SweepInput(it=2, jt=2, kt=8, mk=2, mmi=1)
    dec = Decomposition2D(4, 4)
    grind = 1e-6
    transport = Transport("free", 1e-12, 1e18)
    des = ParallelSweep(inp, dec, grind, UniformFabric(transport)).run()
    model = WavefrontModel(inp, dec, SweepMachineParams("m", grind, transport))
    assert des.parallel_efficiency == pytest.approx(
        model.parallel_efficiency(), rel=1e-6
    )
    assert des.parallel_efficiency < 1.0
