"""Tests for the CLI and the artifact registry."""

import pytest

from repro.cli import main
from repro.core.artifacts import ARTIFACTS, available, produce


def test_every_artifact_produces_text():
    for name in ARTIFACTS:
        text = produce(name)
        assert isinstance(text, str) and len(text) > 40, name


def test_produce_unknown_raises():
    with pytest.raises(KeyError):
        produce("fig99")


def test_available_lists_all():
    names = [n for n, _ in available()]
    assert names == list(ARTIFACTS)
    assert "table1" in names and "fig14" in names


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "fig13" in out


def test_cli_single_artifact(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "1.38" in out


def test_cli_multiple_artifacts(capsys):
    assert main(["fig6", "apps"]) == 0
    out = capsys.readouterr().out
    assert "8.78" in out
    assert "Sweep3D" in out


def test_cli_all(capsys):
    assert main(["all"]) == 0
    out = capsys.readouterr().out
    for marker in ("Table I", "Table IV", "Fig 10", "weak scaling", "Green500"):
        assert marker in out, marker


def test_cli_unknown_artifact(capsys):
    assert main(["nonsense"]) == 2
    err = capsys.readouterr().err
    assert "unknown artifact" in err


def test_artifact_contents_spotchecks():
    assert "5.38" in produce("table1")
    assert "29.28" in produce("table3")
    assert "0.19" in produce("table4")
    assert "409.6" in produce("fig3")
    assert "1479" in produce("fig8")  # cores 1<->3 at 10 MB
    assert "1.026" in produce("linpack")
    assert "1.95x" in produce("apps")
