"""Docs-freshness checks: the documentation must track the code."""

import pathlib

REPO = pathlib.Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (REPO / name).read_text()


def test_design_lists_every_source_module():
    design = _read("DESIGN.md")
    missing = []
    for path in (REPO / "src" / "repro").rglob("*.py"):
        if path.name.startswith("__"):
            continue
        if path.name not in design:
            missing.append(str(path.relative_to(REPO)))
    assert not missing, f"DESIGN.md inventory is stale: {missing}"


def test_design_index_names_real_bench_files():
    design = _read("DESIGN.md")
    bench_names = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
    import re

    referenced = set(re.findall(r"bench_[a-z0-9_]+\.py", design))
    ghosts = {
        name for name in referenced
        if name not in bench_names and "*" not in name
    }
    assert not ghosts, f"DESIGN.md references missing benches: {ghosts}"


def test_experiments_covers_every_table_and_figure():
    experiments = _read("EXPERIMENTS.md")
    for marker in (
        "Table I ", "Table II ", "Table III ", "Table IV ",
        "Fig 3", "Figs 4-5", "Fig 6", "Fig 7", "Fig 8", "Fig 9",
        "Fig 10", "Fig 11", "Fig 12", "Fig 13", "Fig 14",
    ):
        assert marker in experiments, marker


def test_readme_lists_every_example():
    readme = _read("README.md")
    for path in (REPO / "examples").glob("*.py"):
        assert path.name in readme, f"README missing example {path.name}"


def test_readme_mentions_every_package():
    readme = _read("README.md")
    for pkg in ("repro.sim", "repro.hardware", "repro.network", "repro.comm",
                "repro.microbench", "repro.io", "repro.resilience",
                "repro.sweep3d",
                "repro.linpack", "repro.apps", "repro.core",
                "repro.validation"):
        assert pkg in readme, pkg


def test_api_doc_imports_are_valid():
    """Every `from repro...` line in docs/API.md resolves."""
    import re

    api = _read("docs/API.md")
    for line in re.findall(r"^from repro[\w.]* import .+$", api, re.MULTILINE):
        exec(line, {})  # raises on a stale import
