"""Tests for the observability subsystem (repro.obs).

Covers the recorder primitives, the disabled-path bit-identity
contract, span-stream determinism, the acceptance criteria (16-rank
attribution closure within 1e-9; Chrome trace schema), and the
``python -m repro profile`` command.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.comm.mpi import Location, SimMPI, UniformFabric
from repro.comm.transport import Transport
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    NULL_RECORDER,
    ObsRecorder,
    SpanRecord,
    active,
    link_occupancy,
    phase_fractions,
    profile,
    run_scenario,
    self_times,
    span_stream,
    to_chrome_trace,
    to_summary,
)
from repro.sim.engine import Simulator
from repro.sweep3d.decomposition import Decomposition2D
from repro.sweep3d.input import SweepInput
from repro.sweep3d.parallel import ParallelSweep


def _sweep(npe_i=2, npe_j=2, obs=None, **kw):
    inp = SweepInput(it=2, jt=2, kt=8, mk=2, mmi=2)
    fabric = UniformFabric(Transport("ib", latency=2e-6, bandwidth=2e9))
    return ParallelSweep(
        inp, Decomposition2D(npe_i, npe_j), 1e-6, fabric, obs=obs, **kw
    )


# -- recorder primitives -----------------------------------------------------

def test_span_record_rejects_negative_duration():
    with pytest.raises(ValueError, match="ends before it starts"):
        SpanRecord("x", 0, 2.0, 1.0)


def test_recorder_counters_and_gauges():
    rec = ObsRecorder()
    rec.count("msgs", track=0)
    rec.count("msgs", track=0)
    rec.count("msgs", track=1)
    rec.count("global")
    rec.gauge("depth", 3.0, track=0)
    rec.gauge("depth", 5.0, track=0)  # last write wins
    assert rec.counter_total("msgs") == 3.0
    assert rec.counter_by_track("msgs") == {0: 2.0, 1: 1.0}
    assert rec.counter_total("global") == 1.0
    assert rec.gauges[("depth", 0)] == 5.0


def test_recorder_category_filter():
    rec = ObsRecorder(categories=frozenset({"keep"}))
    rec.span("keep", 0, 0.0, 1.0)
    rec.span("drop", 0, 0.0, 1.0)
    assert [s.category for s in rec.spans] == ["keep"]
    rec.count("always", track=0)  # counters ignore the filter
    assert rec.counter_total("always") == 1.0


def test_empty_categories_skips_span_retention_entirely():
    """``categories=()`` is the counter-only mode: no span is ever
    retained (flat memory), while counters and gauges still record."""
    rec = ObsRecorder(categories=frozenset())
    rec.span("any", 0, 0.0, 1.0)
    scope = rec.measure(None, "any", 0)  # never touches the sim clock
    with scope:
        pass
    assert rec.spans == []
    assert rec.span_count == 0
    rec.count("msgs", track=0)
    rec.gauge("depth", 2.0, track=0)
    assert rec.counter_total("msgs") == 1.0
    assert rec.gauges[("depth", 0)] == 2.0


# -- streaming sinks ---------------------------------------------------------


def test_sink_flushes_past_threshold_and_keeps_the_census():
    from repro.obs import AggregatingSink

    rec = ObsRecorder(sink=AggregatingSink(), flush_threshold=4)
    for i in range(10):
        rec.span("phase", 0, float(i), float(i) + 0.5)
    assert len(rec.spans) < 10  # buffer was handed to the sink
    assert rec.span_count == 10
    rec.flush()
    assert rec.spans == []
    assert rec.span_count == 10


def test_sink_profile_matches_unbounded_recorder():
    """The aggregated profile equals the unbounded recorder's on a real
    scenario, and clear() resets the sink with the recorder."""
    from repro.obs import AggregatingSink

    rec_full, sim_time = run_scenario("sweep4")
    sink = AggregatingSink()
    rec_sink, sim_time_s = run_scenario(
        "sweep4", ObsRecorder(sink=sink, flush_threshold=50)
    )
    assert sim_time == sim_time_s
    ref = profile(rec_full, sim_time)
    agg = profile(rec_sink, sim_time)
    assert set(agg.ranks) == set(ref.ranks)
    for track, rp in ref.ranks.items():
        got = agg.ranks[track]
        for phase, value in rp.phases.items():
            assert got.phases[phase] == pytest.approx(value, rel=1e-9, abs=1e-15)
        assert got.other == pytest.approx(rp.other, rel=1e-9, abs=1e-15)
        assert got.idle == pytest.approx(rp.idle, rel=1e-9, abs=1e-15)
    assert set(agg.links) == set(ref.links)
    for name, lp in ref.links.items():
        assert agg.links[name].transfers == lp.transfers
        assert agg.links[name].busy_time == pytest.approx(
            lp.busy_time, rel=1e-9, abs=1e-15
        )
    rec_sink.clear()
    assert rec_sink.span_count == 0
    assert sink.flushed_spans == 0


def test_rotating_file_sink_streams_spans_to_disk(tmp_path):
    from repro.obs import RotatingFileSink

    with RotatingFileSink(tmp_path / "spans", max_spans_per_file=3) as sink:
        rec = ObsRecorder(sink=sink, flush_threshold=2)
        for i in range(8):
            rec.span("phase", 0, float(i), float(i) + 0.5, step=i)
        rec.flush()
    assert len(sink.paths) == 3  # 3 + 3 + 2 spans
    rows = [
        json.loads(line) for path in sink.paths for line in open(path)
    ]
    assert len(rows) == 8
    assert rows[0] == {
        "category": "phase", "track": 0, "t0": 0.0, "t1": 0.5,
        "attrs": {"step": 0},
    }
    # and it aggregates like its parent class
    assert profile(rec, 8.0).ranks[0].other == pytest.approx(4.0)


def test_measure_context_manager_reads_the_sim_clock():
    sim = Simulator()
    rec = ObsRecorder()

    def body(sim):
        with rec.measure(sim, "work", 0, step=1):
            yield sim.timeout(2.5)

    sim.process(body(sim))
    sim.run()
    (span,) = rec.spans
    assert (span.category, span.t0, span.t1) == ("work", 0.0, 2.5)
    assert dict(span.attrs) == {"step": 1}


def test_measure_records_even_when_the_block_raises():
    sim = Simulator()
    rec = ObsRecorder()

    class Boom(Exception):
        pass

    def body(sim):
        with rec.measure(sim, "work", 0):
            yield sim.timeout(1.0)
            raise Boom()

    proc = sim.process(body(sim))
    proc.defused = True
    sim.run()
    (span,) = rec.spans
    assert span.t1 == 1.0


def test_clear_and_len():
    rec = ObsRecorder()
    rec.span("x", 0, 0.0, 1.0)
    rec.count("c")
    rec.host_run_time = 1.0
    assert len(rec) == 1
    rec.clear()
    assert len(rec) == 0
    assert rec.counters == {} and rec.host_run_time == 0.0


def test_active_normalization():
    rec = ObsRecorder()
    assert active(None) is None
    assert active(NULL_RECORDER) is None
    assert active(rec) is rec
    rec.enabled = False
    assert active(rec) is None


def test_null_recorder_is_inert():
    NULL_RECORDER.span("x", 0, 0.0, 1.0)
    NULL_RECORDER.count("c")
    NULL_RECORDER.gauge("g", 1.0)
    NULL_RECORDER._note_event("Timeout", None, 0.0)
    with NULL_RECORDER.measure(None, "x", 0):
        pass


# -- profiler ----------------------------------------------------------------

def test_self_times_innermost_wins():
    outer = SpanRecord("outer", 0, 0.0, 10.0)
    inner = SpanRecord("inner", 0, 2.0, 5.0)
    leaf = SpanRecord("leaf", 0, 3.0, 4.0)
    attributed = dict(
        (s.category, t) for s, t in self_times([outer, inner, leaf])
    )
    assert attributed == {"leaf": 1.0, "inner": 2.0, "outer": 7.0}


def test_self_times_rejects_partial_overlap():
    a = SpanRecord("a", 0, 0.0, 2.0)
    b = SpanRecord("b", 0, 1.0, 3.0)
    with pytest.raises(ValueError, match="overlap without nesting"):
        self_times([a, b])


def test_profile_of_empty_recorder():
    prof = profile(ObsRecorder(), 1.0)
    assert prof.ranks == {} and prof.links == {}
    with pytest.raises(ValueError):
        profile(ObsRecorder(), -1.0)


# -- the disabled path is the seed path --------------------------------------

def test_disabled_recording_is_bit_identical():
    r_plain = _sweep().run(iterations=2)
    r_null = _sweep(obs=NULL_RECORDER).run(iterations=2)
    assert r_null.iteration_time == r_plain.iteration_time
    assert r_null.messages == r_plain.messages
    assert np.array_equal(r_null.phi, r_plain.phi)


def test_enabled_recording_does_not_perturb():
    r_plain = _sweep().run(iterations=2)
    rec = ObsRecorder()
    r_obs = _sweep(obs=rec).run(iterations=2)
    assert r_obs.iteration_time == r_plain.iteration_time
    assert r_obs.messages == r_plain.messages
    assert np.array_equal(r_obs.phi, r_plain.phi)
    assert rec.counter_total("mpi.messages") == r_plain.messages
    assert rec.counter_total("mpi.bytes") == r_plain.bytes_sent


def test_span_stream_is_deterministic():
    rec1, rec2 = ObsRecorder(), ObsRecorder()
    _sweep(obs=rec1).run(iterations=2)
    _sweep(obs=rec2).run(iterations=2)
    assert span_stream(rec1) == span_stream(rec2)


# -- acceptance criteria -----------------------------------------------------

def test_16_rank_attribution_sums_to_total_sim_time():
    """Per-rank phases + other + idle == total simulated time, within
    1e-9 relative, for a 16-rank sweep."""
    rec, sim_time = run_scenario("sweep16")
    prof = profile(rec, sim_time)
    assert len(prof.ranks) == 16
    for rank_profile in prof.ranks.values():
        assert rank_profile.attribution_sum() == pytest.approx(
            sim_time, rel=1e-9, abs=1e-12
        )
        assert rank_profile.phases["compute"] > 0
        assert rank_profile.idle >= 0


def test_chrome_trace_schema(tmp_path):
    rec, _sim_time = run_scenario("sweep4")
    trace = to_chrome_trace(rec)
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    events = trace["traceEvents"]
    phases = {e["ph"] for e in events}
    assert phases == {"X", "M"}
    for e in events:
        assert {"ph", "pid", "tid", "name", "args"} <= set(e)
        if e["ph"] == "X":
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert e["pid"] in (1, 2)
    # Metadata names every process and thread exactly once.
    meta = [e for e in events if e["ph"] == "M"]
    assert sum(e["name"] == "process_name" for e in meta) == 2
    tids = {(e["pid"], e["tid"]) for e in meta if e["name"] == "thread_name"}
    assert {(e["pid"], e["tid"]) for e in events if e["ph"] == "X"} <= tids
    # And it round-trips through JSON.
    path = tmp_path / "trace.json"
    from repro.obs import write_chrome_trace

    write_chrome_trace(rec, path)
    assert json.loads(path.read_text())["traceEvents"]


def test_link_occupancy_from_contended_scenario():
    rec, sim_time = run_scenario("ring8")
    links = link_occupancy(rec, sim_time)
    assert len(links) == 16  # 8 tx + 8 rx HCA ports
    for lp in links.values():
        assert 0 < lp.busy_time <= sim_time
        assert 0 < lp.utilization <= 1
        assert lp.bytes == 1_000_000.0


def test_transport_cache_counters_from_analytic_scenario():
    """The analytic-fabric scenarios evaluate Transport cost curves, so
    the module observer sees misses (first evaluation per size) and then
    hits (the memoized curve)."""
    rec, _sim_time = run_scenario("sweep4")
    assert rec.counter_total("transport.cache_miss") > 0
    assert rec.counter_total("transport.cache_hit") > 0
    # The observer is uninstalled after the run.
    from repro.comm import transport as transport_mod

    assert transport_mod._OBSERVER is None


def test_engine_observer_counts_events():
    rec, _sim_time = run_scenario("sweep4")
    assert rec.events_by_class.get("Timeout", 0) > 0
    assert rec.events_by_class.get("Bootstrap", 0) == 4
    assert set(rec.resumes_by_process) >= {f"sweep-rank{r}" for r in range(4)}
    assert rec.host_run_time > 0


def test_collective_spans_from_solve():
    rec, _sim_time = run_scenario("solve4")
    coll = [s for s in rec.spans if s.category == "mpi.collective"]
    assert coll
    assert {dict(s.attrs)["op"] for s in coll} == {"allreduce"}


def test_summary_is_json_serializable():
    rec, sim_time = run_scenario("sweep4")
    summary = json.loads(json.dumps(to_summary(rec, sim_time)))
    assert summary["span_count"] == len(rec.spans)
    assert set(summary["ranks"]) == {"0", "1", "2", "3"}
    assert summary["counters"]["mpi.messages"]["total"] > 0


def _summary_for(npe_i, npe_j, mk, blocks, iterations, latency_ns):
    """One observed sweep run -> its ``deterministic_summary`` dict
    (``to_summary`` minus host wall-clock, the one nondeterministic
    field)."""
    from repro.obs.export import deterministic_summary

    rec = ObsRecorder()
    inp = SweepInput(it=2, jt=2, kt=mk * blocks, mk=mk, mmi=2)
    fabric = UniformFabric(
        Transport("ib", latency=latency_ns * 1e-9, bandwidth=2e9)
    )
    sweep = ParallelSweep(
        inp, Decomposition2D(npe_i, npe_j), 1e-6, fabric, obs=rec
    )
    result = sweep.run(iterations=iterations)
    return deterministic_summary(
        rec, result.iteration_time * result.iterations
    )


@settings(max_examples=15, deadline=None)
@given(
    npe_i=st.integers(1, 3),
    npe_j=st.integers(1, 3),
    mk=st.sampled_from([1, 2]),
    blocks=st.integers(1, 4),
    iterations=st.integers(1, 3),
    latency_ns=st.integers(100, 5000),
)
def test_summary_phase_fractions_sum_to_one_and_are_stable(
    npe_i, npe_j, mk, blocks, iterations, latency_ns
):
    """Property: for any sweep configuration, every rank's phase
    fractions partition its wall time (sum to 1 within 1e-9), and the
    whole summary is bitwise-stable across repeated runs of the same
    configuration (the determinism contract ``phase_fractions`` and the
    profile-shape perf gates rely on)."""
    summary = _summary_for(npe_i, npe_j, mk, blocks, iterations, latency_ns)
    fractions = phase_fractions(summary)
    assert set(fractions) == set(summary["ranks"])
    for track, fracs in fractions.items():
        total = sum(fracs.values())
        assert abs(total - 1.0) <= 1e-9, (track, total)
        # idle is total-minus-accounted, so it may carry a -epsilon
        assert all(f >= -1e-12 for f in fracs.values()), (track, fracs)

    rerun = _summary_for(npe_i, npe_j, mk, blocks, iterations, latency_ns)
    assert json.dumps(rerun, sort_keys=True) == json.dumps(
        summary, sort_keys=True
    )
    # bitwise, not approximately: the fractions are floats derived from
    # identical span streams, so they must compare equal exactly
    assert phase_fractions(rerun) == fractions


def test_simulator_attach_detach_observer():
    sim = Simulator()
    rec = ObsRecorder()
    sim.attach_observer(rec)
    assert sim.observer is rec
    sim.attach_observer(NULL_RECORDER)  # disabled recorder detaches
    assert sim.observer is None
    sim.attach_observer(rec)
    sim.detach_observer()
    assert sim.observer is None


def test_observed_engine_matches_fast_loop_timeline():
    """The observed loop and the fast loop produce the same clock."""

    def body(sim, log):
        for _ in range(5):
            yield sim.timeout(1.5)
            log.append(sim.now)

    plain_log: list = []
    sim = Simulator()
    sim.process(body(sim, plain_log))
    sim.run()
    t_plain = sim.now

    obs_log: list = []
    sim2 = Simulator()
    sim2.attach_observer(ObsRecorder())
    sim2.process(body(sim2, obs_log))
    sim2.run()
    assert obs_log == plain_log
    assert sim2.now == t_plain


def test_observed_bounded_run_consumes_identical_seq():
    """run(until=t) consumes one seq for its sentinel on both loops, so
    a mixed observed/fast schedule stays aligned."""
    for attach in (False, True):
        sim = Simulator()
        if attach:
            sim.attach_observer(ObsRecorder())
        sim.timeout(1.0)
        sim.run(until=5.0)
        assert sim.now == 5.0
        sim.timeout(2.0)
        sim.run()
        assert sim.now == 7.0


def test_recv_timeout_counted():
    from repro.comm.mpi import DeliveryError

    sim = Simulator()
    rec = ObsRecorder()
    fabric = UniformFabric(Transport("ib", latency=2e-6, bandwidth=2e9))
    comm = SimMPI(sim, fabric, [Location(node=0), Location(node=1)], obs=rec)

    def waiter(rank):
        with pytest.raises(DeliveryError):
            yield from rank.recv(source=1, timeout=1e-3)

    sim.process(waiter(comm.rank(0)))
    sim.run()
    assert rec.counter_total("mpi.recv_timeouts") == 1.0


# -- the profile CLI ---------------------------------------------------------

def test_profile_cli_text(capsys, tmp_path):
    from repro.cli import main

    trace_path = tmp_path / "t.json"
    assert main(["profile", "sweep4", "--trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "per-rank sim-time attribution" in out
    assert "compute" in out and "recv-wait" in out
    assert json.loads(trace_path.read_text())["traceEvents"]


def test_profile_cli_json(capsys):
    from repro.cli import main

    assert main(["profile", "ring8", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["links"]
    assert payload["engine"]["events_by_class"]


def test_profile_cli_rejects_unknown_scenario(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["profile", "nope"])


def test_scenario_registry_rejects_unknown():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_scenario("nope")
