"""Tests for the HT2100 bridge wiring of the triblade."""

import pytest

from repro.hardware.chipset import HT2100, build_triblade_fabric
from repro.units import GB_S


def test_bridge_port_budgets():
    bridge = HT2100(name="b")
    bridge.attach_ht("cpu")
    with pytest.raises(ValueError):
        bridge.attach_ht("another-cpu")
    for i in range(3):
        bridge.attach_pcie(f"dev{i}")
    with pytest.raises(ValueError):
        bridge.attach_pcie("dev3")


def test_bridge_capacities():
    bridge = HT2100(name="b")
    bridge.attach_pcie("a")
    bridge.attach_pcie("b")
    assert bridge.downstream_capacity == pytest.approx(4.0 * GB_S)
    assert not bridge.oversubscribed
    bridge.attach_pcie("c")
    assert bridge.downstream_capacity == pytest.approx(6.0 * GB_S)
    assert not bridge.oversubscribed  # 6.0 < 6.4 HT


def test_production_fabric_wiring():
    fabric = build_triblade_fabric()
    b0, b1 = fabric.bridges
    assert b0.ht_port == "opteron-socket0"
    assert b1.ht_port == "opteron-socket1"
    assert b0.pcie_ports == ["cell0", "cell1"]
    assert b1.pcie_ports == ["cell2", "cell3", "ib-hca"]


def test_every_cell_reaches_a_bridge():
    fabric = build_triblade_fabric()
    for cell in range(4):
        assert fabric.bridge_of_cell(cell) in fabric.bridges
    with pytest.raises(ValueError):
        fabric.bridge_of_cell(4)


def test_hca_bridge_carries_socket1():
    """The mechanism behind Fig 8: the HCA hangs off the bridge that
    uplinks to socket 1, so its cores (1 and 3) avoid the extra
    HyperTransport crossing."""
    fabric = build_triblade_fabric()
    assert fabric.hca_bridge.ht_port == "opteron-socket1"
    assert fabric.hca_shares_bridge_with_cells() == [2, 3]


def test_neither_bridge_oversubscribed():
    """Fig 1's design point: 3 x 2 GB/s PCIe under a 6.4 GB/s HT port."""
    fabric = build_triblade_fabric()
    for bridge in fabric.bridges:
        assert not bridge.oversubscribed
