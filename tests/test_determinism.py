"""The determinism contract, end to end.

The kernel promises (see the contract in :mod:`repro.sim.engine`) that
two runs of the same model visit identical events at identical times.
These tests exercise the promise through the layers above the kernel:
a seeded random all-to-all over SimMPI and the full distributed sweep,
each run twice and compared record-for-record via the MPI trace.
"""

import random

import numpy as np

from repro.comm.mpi import Location, SimMPI, UniformFabric
from repro.comm.transport import Transport
from repro.hardware.cell import POWERXCELL_8I
from repro.sim import Simulator, Tracer
from repro.sweep3d.cellport import grind_time
from repro.sweep3d.decomposition import Decomposition2D
from repro.sweep3d.input import SweepInput
from repro.sweep3d.parallel import ParallelSweep
from repro.sweep3d.placement import cell_fabric, spe_locations
from repro.units import US

N_RANKS = 8
SEED = 0x5EED


def _traffic_plan(seed):
    """Per-rank (dest, size, delay) message plans drawn from a seeded
    RNG, plus how many messages each rank will be sent."""
    plans = []
    incoming = [0] * N_RANKS
    for src in range(N_RANKS):
        rng = random.Random(seed + src)
        plan = []
        for _ in range(20):
            dest = rng.randrange(N_RANKS - 1)
            if dest >= src:
                dest += 1
            plan.append((dest, rng.randrange(1, 100_000), rng.random() * 10 * US))
            incoming[dest] += 1
        plans.append(plan)
    return plans, incoming


def _random_traffic_run(seed, pool_size=None):
    """A seeded random message storm over SimMPI, returning the traced
    timeline.  Every rank replays its plan — jittered sends to random
    peers — then drains exactly the messages addressed to it."""
    plans, incoming = _traffic_plan(seed)
    sim = Simulator() if pool_size is None else Simulator(pool_size=pool_size)
    fabric = UniformFabric(Transport("test", latency=2 * US, bandwidth=1e9))
    tracer = Tracer()
    comm = SimMPI(
        sim, fabric, [Location(node=i) for i in range(N_RANKS)], tracer=tracer
    )

    def body(rank):
        for i, (dest, size, delay) in enumerate(plans[rank.index]):
            yield rank.sim.timeout(delay)
            yield from rank.send(dest, size=size, tag=i % 4, payload=(rank.index, i))
        for _ in range(incoming[rank.index]):
            yield from rank.recv()

    for r in range(comm.size):
        sim.process(body(comm.rank(r)), name=f"rank{r}")
    sim.run()
    return tracer.records, sim.now


def _sweep_run():
    inp = SweepInput(it=3, jt=3, kt=16, mk=4, mmi=2)
    decomp = Decomposition2D(4, 2)
    tracer = Tracer()
    result = ParallelSweep(
        inp,
        decomp,
        grind_time=grind_time(POWERXCELL_8I),
        fabric=cell_fabric(),
        locations=spe_locations(decomp),
        tracer=tracer,
    ).run()
    return result, tracer.records


def test_seeded_simmpi_traffic_is_bit_identical():
    records_a, now_a = _random_traffic_run(SEED)
    records_b, now_b = _random_traffic_run(SEED)
    assert now_a == now_b
    assert len(records_a) > 0
    assert records_a == records_b  # TraceRecord is a frozen dataclass


def test_different_seed_changes_the_timeline():
    """Sanity check on the oracle itself: the comparison is strong
    enough to notice a different schedule."""
    records_a, _ = _random_traffic_run(SEED)
    records_b, _ = _random_traffic_run(SEED + 1)
    assert records_a != records_b


def test_parallel_sweep_twice_is_bit_identical():
    result_a, records_a = _sweep_run()
    result_b, records_b = _sweep_run()
    assert result_a.iteration_time == result_b.iteration_time
    assert result_a.messages == result_b.messages
    assert np.array_equal(result_a.phi, result_b.phi)
    assert len(records_a) > 0
    assert records_a == records_b


# -- the event/timeout free-list pool --------------------------------------


def test_event_pool_warm_vs_cold_bitwise():
    """The engine's timeout/bootstrap free lists are timeline-invisible:
    a pooled run (objects recycled once the pool is warm) and a
    ``pool_size=0`` run (every event freshly allocated) produce the
    identical traced timeline, message for message."""
    records_pooled, now_pooled = _random_traffic_run(SEED)
    records_plain, now_plain = _random_traffic_run(SEED, pool_size=0)
    assert now_pooled == now_plain
    assert len(records_pooled) > 0
    assert records_pooled == records_plain


def test_event_pool_recycles_within_one_run():
    """The pool actually engages on this workload (the bitwise test
    above would pass vacuously if recycling never happened)."""
    sim = Simulator()

    def ticker():
        for _ in range(50):
            yield sim.timeout(1.0)

    sim.process(ticker())
    sim.run()
    assert sim._free_timeout is not None or sim._free_timeouts


def test_event_pool_no_cross_run_leakage():
    """Interleaving simulations (each with its own Simulator and
    therefore its own pools) leaves every traced timeline equal to its
    isolated-run value — recycled event objects carry no state between
    models, mirroring the sweep-plan cache leakage test."""
    isolated_a = _random_traffic_run(SEED)
    isolated_sweep = _sweep_run()
    mixed_a = _random_traffic_run(SEED)
    mixed_sweep = _sweep_run()
    mixed_b = _random_traffic_run(SEED + 1)
    mixed_a2 = _random_traffic_run(SEED)
    assert mixed_a == isolated_a
    assert mixed_a2 == isolated_a
    assert mixed_b != isolated_a
    assert mixed_sweep[0].iteration_time == isolated_sweep[0].iteration_time
    assert np.array_equal(mixed_sweep[0].phi, isolated_sweep[0].phi)
    assert mixed_sweep[1] == isolated_sweep[1]


# -- the sweep-plan cache --------------------------------------------------


def test_sweep_plan_reused_across_solvers_and_distinct_per_geometry():
    """`solve` and `solve_multigroup` on one geometry share one cached
    plan object; a different geometry gets a different plan."""
    from repro.sweep3d import (
        MultigroupInput, get_plan, make_angle_set, solve, solve_multigroup,
    )

    inp = SweepInput(it=4, jt=3, kt=4, mk=2, mmi=2)
    M = make_angle_set(inp.mmi).n_angles
    plan = get_plan(inp.it, inp.jt, inp.kt, M)
    solve(inp, max_iterations=3)
    assert get_plan(inp.it, inp.jt, inp.kt, M) is plan
    mg = MultigroupInput(
        base=inp,
        sigma_t=(1.0, 1.2),
        sigma_s=((0.3, 0.0), (0.2, 0.4)),
        q=(1.0, 0.0),
    )
    solve_multigroup(mg, max_iterations=3)
    assert get_plan(inp.it, inp.jt, inp.kt, M) is plan
    other = get_plan(inp.it + 1, inp.jt, inp.kt, M)
    assert other is not plan
    assert other.shape == (inp.it + 1, inp.jt, inp.kt)


def test_sweep_plan_warm_vs_cold_bitwise():
    """A plan-cold solve (fresh cache) and a plan-warm solve (reusing
    cached index vectors, angle constants and scratch workspaces) are
    bit-identical — the cache carries no numeric state between runs."""
    from repro.sweep3d import clear_plans, solve

    inp = SweepInput(it=5, jt=4, kt=6, mk=2, mmi=6, sigma_t=2.0, sigma_s=0.9)
    clear_plans()
    cold = solve(inp, max_iterations=15)
    warm = solve(inp, max_iterations=15)
    assert np.array_equal(cold.phi, warm.phi)
    assert cold.leakage == warm.leakage
    assert cold.balance_residual == warm.balance_residual


def test_sweep_plan_no_cross_run_leakage():
    """Interleaving solves on different geometries (and the distributed
    sweep, which shares block-shaped plans) leaves every result equal to
    its isolated-run value."""
    from repro.sweep3d import clear_plans, solve

    inp_a = SweepInput(it=4, jt=4, kt=4, mk=2, mmi=2)
    inp_b = SweepInput(it=3, jt=5, kt=6, mk=3, mmi=6, sigma_t=3.0)
    clear_plans()
    isolated_a = solve(inp_a, max_iterations=10).phi
    clear_plans()
    isolated_b = solve(inp_b, max_iterations=10).phi
    clear_plans()
    isolated_sweep, _ = _sweep_run()
    clear_plans()
    mixed_a = solve(inp_a, max_iterations=10).phi
    mixed_sweep, _ = _sweep_run()
    mixed_b = solve(inp_b, max_iterations=10).phi
    mixed_a2 = solve(inp_a, max_iterations=10).phi
    assert np.array_equal(mixed_a, isolated_a)
    assert np.array_equal(mixed_a2, isolated_a)
    assert np.array_equal(mixed_b, isolated_b)
    assert np.array_equal(mixed_sweep.phi, isolated_sweep.phi)
    assert mixed_sweep.iteration_time == isolated_sweep.iteration_time


# -- the campaign service ---------------------------------------------------


def test_campaign_worker_count_invariance(tmp_path):
    """A 16-job campaign run with 1 worker and with 4 workers produces
    identical reports and identical artifact hashes — results are a
    function of the specs, never of scheduling.  The seed matters
    (lossy delivery draws from a per-seed RNG), so the artifacts also
    demonstrably differ *across* seeds."""
    from repro.campaign import ArtifactStore, CampaignService, grid

    specs = grid(
        "sweep", 16, {"drop_probability": 0.05}, code_version="det-test"
    )
    reports = {}
    for workers in (1, 4):
        store = ArtifactStore(tmp_path / f"cache-{workers}")
        service = CampaignService(store, workers=workers)
        reports[workers] = service.run(specs)
    serial, pooled = reports[1], reports[4]
    assert serial.executed == pooled.executed == 16
    assert [o.artifact_sha256 for o in serial.outcomes] == [
        o.artifact_sha256 for o in pooled.outcomes
    ]
    assert serial.to_dict() == pooled.to_dict()
    # the cached envelopes are byte-identical files too
    for spec in specs:
        a = (tmp_path / "cache-1" / spec.digest[:2] / f"{spec.digest}.json")
        b = (tmp_path / "cache-4" / spec.digest[:2] / f"{spec.digest}.json")
        assert a.read_bytes() == b.read_bytes()
    # seeds genuinely vary the timeline (retry counts differ somewhere)
    retries = {o.artifact["retries"] for o in serial.outcomes}
    assert len(retries) > 1
