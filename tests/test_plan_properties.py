"""Property-based tests for the sweep-plan geometry.

The :class:`~repro.sweep3d.plan.SweepPlan` wavefront schedule and
octant flip maps are pure index arithmetic, so they are checked here
against their *definitions* — a naive triple-loop enumeration of the
3-D anti-diagonals, and ``numpy.flip`` — over randomized geometries.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sweep3d.plan import SweepPlan
from repro.sweep3d.quadrature import OCTANTS
from repro.sweep3d.solver import _flip

#: randomized geometries: small enough to enumerate naively, large
#: enough to hit every branch (singleton dims, singleton steps, ...)
dims = st.integers(min_value=1, max_value=6)
angle_counts = st.integers(min_value=1, max_value=4)


def naive_wavefront(I: int, J: int, K: int) -> list[list[tuple[int, int, int]]]:
    """The definition: cells grouped by anti-diagonal ``d = i + j + k``,
    in lexicographic (i, j, k) order within each group."""
    steps = [[] for _ in range(I + J + K - 2)]
    for i in range(I):
        for j in range(J):
            for k in range(K):
                steps[i + j + k].append((i, j, k))
    return steps


@settings(deadline=None, max_examples=60)
@given(I=dims, J=dims, K=dims, M=angle_counts)
def test_steps_match_naive_triple_loop(I, J, K, M):
    plan = SweepPlan(I, J, K, M)
    naive = naive_wavefront(I, J, K)
    assert len(plan.steps) == len(naive) == I + J + K - 2
    for step, cells in zip(plan.steps, naive):
        cell_idx, xf, yf, zf = step[0], step[1], step[2], step[3]
        expect_cell = [(i * J + j) * K + k for i, j, k in cells]
        assert cell_idx.tolist() == expect_cell
        assert xf.tolist() == [j * K + k for i, j, k in cells]
        assert yf.tolist() == [i * K + k for i, j, k in cells]
        assert zf.tolist() == [i * J + j for i, j, k in cells]


@settings(deadline=None, max_examples=60)
@given(I=dims, J=dims, K=dims, M=angle_counts)
def test_offsets_partition_all_cells(I, J, K, M):
    plan = SweepPlan(I, J, K, M)
    sizes = np.diff(plan.offsets)
    assert plan.offsets[0] == 0
    assert plan.offsets[-1] == plan.n_cells == I * J * K
    assert (sizes >= 1).all()  # every 3-D anti-diagonal is non-empty
    # The concatenated schedule visits each cell exactly once.
    assert sorted(plan.cell_idx.tolist()) == list(range(I * J * K))


@settings(deadline=None, max_examples=60)
@given(I=dims, J=dims, K=dims, M=angle_counts)
def test_fixup_rows_are_the_2d_singletons(I, J, K, M):
    """``fix_single`` marks exactly the rows whose (i, j) anti-diagonal
    had length 1 in the seed kernel's per-K-plane grouping."""
    plan = SweepPlan(I, J, K, M)
    naive = naive_wavefront(I, J, K)
    for step, cells in zip(plan.steps, naive):
        fix_single, fix_batched = step[4], step[5]
        if len(cells) == 1:
            # Singleton 3-D steps go through the one-row path whole.
            assert fix_single == ()
            assert fix_batched == tuple(range(len(OCTANTS)))
            continue
        expect = tuple(
            r
            for r, (i, j, _k) in enumerate(cells)
            if min(i + j, I - 1, J - 1, (I - 1) + (J - 1) - (i + j)) + 1 == 1
        )
        assert fix_single == expect
        assert fix_batched == tuple(
            r * len(OCTANTS) + o for r in expect for o in range(len(OCTANTS))
        )


@settings(deadline=None, max_examples=60)
@given(I=dims, J=dims, K=dims, M=angle_counts)
def test_octant_maps_are_involutions(I, J, K, M):
    plan = SweepPlan(I, J, K, M)
    maps = plan.octant_maps
    assert maps.shape == (plan.n_cells, len(OCTANTS))
    identity = np.arange(plan.n_cells)
    for octant in OCTANTS:
        col = maps[:, octant.id]
        # A flip map is a permutation and its own inverse.
        assert np.array_equal(np.sort(col), identity)
        assert np.array_equal(col[col], identity)


@settings(deadline=None, max_examples=40)
@given(I=dims, J=dims, K=dims, data=st.data())
def test_octant_maps_realize_flip(I, J, K, data):
    """Gathering through an octant's map equals ``_flip`` of the array
    (the solver's axis-flip), for a random field and octant."""
    plan = SweepPlan(I, J, K, 1)
    octant = data.draw(st.sampled_from(OCTANTS))
    rng = np.random.default_rng(
        data.draw(st.integers(min_value=0, max_value=2**32 - 1))
    )
    arr = rng.standard_normal((I, J, K))
    via_map = arr.reshape(-1)[plan.octant_maps[:, octant.id]].reshape(I, J, K)
    assert np.array_equal(via_map, _flip(arr, octant.signs))
