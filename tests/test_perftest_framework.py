"""Unit and regression tests for the declarative perf framework.

Covers the reference primitives (floors/ceilings/bands), parameter-
space expansion, registry validation, the runner's policy pipeline
(skip -> xfail -> body -> references), the ``BENCH_perf.json`` format-2
migration, and — the satellite regression — that framework-emitted
sections round-trip through the *old* readers
(``benchmarks.perf.harness.enforce_speedup_floors``) unchanged.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.framework import (
    Band,
    Case,
    Ceiling,
    Floor,
    PerfTest,
    SkipCase,
    check_references,
    perftest,
)
from benchmarks.framework.core import REGISTRY, expand
from benchmarks.framework.report import (
    BENCH_FORMAT,
    load_bench,
    migrate_bench,
    update_bench_section,
)
from benchmarks.framework.runner import run_case, run_measured_test


# -- references ---------------------------------------------------------------


def test_floor_ceiling_band_violations():
    assert Floor(2.5).violation(2.5) is None
    assert Floor(2.5).violation(3.0) is None
    assert "< floor 2.5" in Floor(2.5).violation(2.49)
    assert Ceiling(60.0).violation(60.0) is None
    assert "> ceiling 60" in Ceiling(60.0).violation(60.1)
    band = Band(0.18, 0.28)
    assert band.violation(0.2) is None
    assert "< floor" in band.violation(0.1)
    assert "> ceiling" in band.violation(0.3)
    assert band.describe() == "within [0.18, 0.28]"


def test_band_rejects_inverted_bounds():
    with pytest.raises(ValueError, match="hi .* < lo"):
        Band(1.0, 0.5)


def test_reference_to_dict_round_trips_bounds():
    assert Floor(3.0).to_dict() == {"lo": 3.0}
    assert Ceiling(2.0).to_dict() == {"hi": 2.0}
    assert Band(0.1, 0.9).to_dict() == {"lo": 0.1, "hi": 0.9}
    assert Floor(3.0, required=False).to_dict() == {
        "lo": 3.0, "required": False
    }


def test_check_references_reports_all_violations_sorted():
    metrics = {"a": 1.0, "b": 5.0, "c": 0.5}
    refs = {"c": Floor(1.0), "a": Floor(2.0), "b": Ceiling(4.0)}
    violations = check_references(metrics, refs)
    assert len(violations) == 3
    assert [v.split(":")[0] for v in violations] == ["a", "b", "c"]


def test_check_references_missing_metric_policy():
    # required (default): missing metric is a violation
    assert check_references({}, {"speedup": Floor(2.0)}) == [
        "speedup: metric missing (reference >= 2)"
    ]
    # conditional: enforced only when the metric was produced — the
    # git-seed speedups (no history -> no metric) use this
    assert check_references({}, {"speedup": Floor(2.0, required=False)}) == []
    assert check_references(
        {"speedup": 1.0}, {"speedup": Floor(2.0, required=False)}
    ) != []


# -- parameter-space expansion ------------------------------------------------


def test_expand_cartesian_product_and_ids():
    cases = expand({"workload": ["chain", "pingpong"], "oracle": ["t", "s"]})
    assert [c.id for c in cases] == [
        "chain-t", "chain-s", "pingpong-t", "pingpong-s"
    ]
    assert cases[0].workload == "chain" and cases[0]["oracle"] == "t"
    with pytest.raises(AttributeError):
        cases[0].missing


def test_expand_empty_space_is_one_default_case():
    cases = expand({})
    assert len(cases) == 1
    assert cases[0].id == "default"
    assert dict(cases[0]) == {}


# -- registry validation ------------------------------------------------------


def test_perftest_decorator_validates_declarations():
    with pytest.raises(ValueError, match="declares no name"):
        @perftest
        class Nameless(PerfTest):
            pass

    with pytest.raises(ValueError, match="unknown tier"):
        @perftest
        class BadTier(PerfTest):
            name = "bad-tier-unit-test"
            tiers = ("smoke", "nightly")

    @perftest
    class First(PerfTest):
        name = "dupe-unit-test"
    try:
        with pytest.raises(ValueError, match="duplicate perf test name"):
            @perftest
            class Second(PerfTest):
                name = "dupe-unit-test"
    finally:
        REGISTRY.pop("dupe-unit-test", None)
    REGISTRY.pop("bad-tier-unit-test", None)


# -- the runner's policy pipeline --------------------------------------------


class _Synthetic(PerfTest):
    """A scriptable test: behavior injected per instance."""

    name = "synthetic"
    params = {"mode": ["only"]}

    def __init__(self, *, sanity=None, measure=None, skip=None, xfail=None,
                 references=None):
        self._sanity = sanity
        self._measure = measure
        self._skip = skip
        self._xfail = xfail
        self.references = references or {}

    def skip(self, case):
        return self._skip

    def xfail(self, case):
        return self._xfail

    def sanity(self, case):
        return self._sanity() if self._sanity else None

    def measure(self, case):
        return self._measure() if self._measure else {}


def _one_case(test, tier="smoke"):
    return run_case(test, test.cases()[0], tier)


def test_run_case_skip_beats_body():
    ran = []
    out = _one_case(_Synthetic(sanity=lambda: ran.append(1), skip="later"))
    assert out.status == "skipped" and out.detail == "later"
    assert not ran


def test_run_case_skipcase_from_body():
    def body():
        raise SkipCase("no git history")
    out = _one_case(_Synthetic(sanity=body))
    assert out.status == "skipped" and out.detail == "no git history"


def test_run_case_xfail_and_unexpected_pass():
    def bad():
        raise AssertionError("known divergence")
    out = _one_case(_Synthetic(sanity=bad, xfail="tracked upstream"))
    assert out.status == "xfailed" and out.ok

    out = _one_case(_Synthetic(sanity=lambda: None, xfail="tracked upstream"))
    assert out.status == "xpassed" and not out.ok
    assert "remove the stale xfail" in out.detail


def test_run_case_tier_participation():
    test = _Synthetic(measure=lambda: {"v": 1.0})
    test.tiers = ("measured",)
    out = _one_case(test, "smoke")
    assert out.status == "skipped"
    assert "does not participate" in out.detail


def test_run_case_smoke_references_bind_when_metrics_returned():
    # a sanity body returning metrics gets its references enforced in
    # the smoke tier — this is how profile-shape gates run in tier-1
    out = _one_case(_Synthetic(sanity=lambda: {"frac": 0.9},
                               references={"frac": Ceiling(0.5)}))
    assert out.status == "failed"
    assert "> ceiling 0.5" in out.detail

    out = _one_case(_Synthetic(sanity=lambda: {"frac": 0.4},
                               references={"frac": Ceiling(0.5)}))
    assert out.status == "passed" and out.metrics == {"frac": 0.4}


def test_run_case_measured_references_enforced():
    out = _one_case(_Synthetic(measure=lambda: {"speedup": 1.2},
                               references={"speedup": Floor(2.0)}),
                    "measured")
    assert out.status == "failed" and "speedup" in out.detail


# -- BENCH_perf.json format 2 -------------------------------------------------


def test_migrate_bench_format_1_and_unknown_future():
    doc = {"des_engine": {"workloads": {}}, "_meta": {"format": 1}}
    migrated = migrate_bench(doc)
    assert migrated["_meta"]["format"] == BENCH_FORMAT
    assert migrated["_meta"]["migrated_from"] == 1
    assert migrated["des_engine"] == {"workloads": {}}  # sections untouched

    # a pre-_meta document is adopted without a migration marker
    assert migrate_bench({})["_meta"] == {"format": BENCH_FORMAT}

    with pytest.raises(ValueError, match="format 3"):
        migrate_bench({"_meta": {"format": BENCH_FORMAT + 1}})


def test_update_bench_section_preserves_others_and_stamps_meta(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({
        "network": {"latency_map": {"speedup": 12.0}},
        "_meta": {"format": 1},
    }))
    update_bench_section("des_engine", {"workloads": {}}, path=path)
    data = json.loads(path.read_text())
    assert data["network"] == {"latency_map": {"speedup": 12.0}}
    assert data["des_engine"] == {"workloads": {}}
    meta = data["_meta"]
    assert meta["format"] == BENCH_FORMAT
    assert meta["migrated_from"] == 1
    assert meta["framework"] == "benchmarks.framework"
    assert {"python", "machine", "processor", "cpu_count"} <= set(meta)
    # idempotent: a second load keeps the document stable
    assert load_bench(path)["_meta"]["format"] == BENCH_FORMAT


# -- satellite: framework sections round-trip through the old readers --------


def _synthetic_des_metrics(speedups):
    return {
        name: {
            "baseline_events_per_s": 450_000,
            "current_events_per_s": round(450_000 * s),
            "speedup": s,
        }
        for name, s in speedups.items()
    }


def test_framework_section_feeds_enforce_speedup_floors():
    """The regression pin: ``DesEngineThroughput.publish`` emits the
    historical section shape, and the *old* reader consumes it with no
    adaptation — byte-compatible keys, same floor semantics."""
    from benchmarks.perf.harness import enforce_speedup_floors
    from benchmarks.perf.perf_des_engine import (
        MIN_SPEEDUPS,
        DesEngineThroughput,
    )

    metrics = _synthetic_des_metrics(
        {name: floor + 0.5 for name, floor in MIN_SPEEDUPS.items()}
    )
    section = DesEngineThroughput().publish(metrics)
    # the historical shape, key for key
    assert set(section) == {
        "baseline_source", "events_per_workload", "workloads",
        "headline", "min_speedups",
    }
    assert section["headline"] == "chain"
    assert set(section["workloads"]) == set(MIN_SPEEDUPS)
    # the old reader enforces straight off the published section
    enforce_speedup_floors(section["workloads"], MIN_SPEEDUPS)

    regressed = _synthetic_des_metrics(
        {name: floor - 0.1 for name, floor in MIN_SPEEDUPS.items()}
    )
    bad = DesEngineThroughput().publish(regressed)
    with pytest.raises(AssertionError) as err:
        enforce_speedup_floors(bad["workloads"], MIN_SPEEDUPS)
    # all violations reported together, the old reader's contract
    assert all(name in str(err.value) for name in MIN_SPEEDUPS)


def test_run_measured_test_publishes_section_to_bench(tmp_path):
    """End-to-end baseline capture: a measured run with refresh writes
    the section into a format-2 BENCH document the old readers (and
    ``load_bench``) still consume."""
    from benchmarks.perf.harness import enforce_speedup_floors

    class _Measured(_Synthetic):
        name = "synthetic_measured"
        section = "synthetic_section"
        tiers = ("measured",)

        def publish(self, metrics):
            return {"workloads": {cid: dict(m) for cid, m in metrics.items()}}

    test = _Measured(measure=lambda: {"speedup": 3.0},
                     references={"speedup": Floor(2.0)})
    path = tmp_path / "BENCH_perf.json"
    outcomes = run_measured_test(test, refresh=True, bench_path=path)
    assert [o.status for o in outcomes] == ["passed"]

    data = load_bench(path)
    assert data["_meta"]["format"] == BENCH_FORMAT
    section = data["synthetic_section"]
    enforce_speedup_floors(section["workloads"], {"only": 2.0})
    with pytest.raises(AssertionError):
        enforce_speedup_floors(section["workloads"], {"only": 3.5})
