"""Edge-case tests for the DES kernel beyond the basic suite."""

import pytest

from repro.sim import (
    AnyOf,
    Event,
    Interrupt,
    Resource,
    SimulationError,
    Simulator,
)


def test_run_until_already_processed_event_returns_immediately():
    sim = Simulator()
    evt = sim.timeout(1.0, value="x")
    sim.run()
    assert evt.processed
    assert sim.run(until=evt) == "x"


def test_run_until_failed_event_reraises():
    sim = Simulator()
    evt = sim.event()
    evt.fail(ValueError("nope"))
    with pytest.raises(ValueError, match="nope"):
        sim.run(until=evt)


def test_run_until_event_that_never_fires_raises():
    sim = Simulator()
    orphan = sim.event()
    sim.timeout(1.0)
    with pytest.raises(SimulationError, match="ran out of events"):
        sim.run(until=orphan)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(SimulationError):
        _ = evt.value
    with pytest.raises(SimulationError):
        _ = evt.ok


def test_fail_requires_exception_instance():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(TypeError):
        evt.fail("not an exception")  # type: ignore[arg-type]


def test_interrupt_during_resource_wait_releases_cleanly():
    """A process interrupted while queued for a resource must not end
    up holding it."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    got = []

    def holder(sim):
        req = res.request()
        yield req
        yield sim.timeout(10.0)
        res.release(req)

    def victim(sim):
        req = res.request()
        try:
            yield req
            got.append("acquired")
            res.release(req)
        except Interrupt:
            res.cancel(req)
            got.append("interrupted")

    def interrupter(sim, proc):
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.process(holder(sim))
    v = sim.process(victim(sim))
    sim.process(interrupter(sim, v))
    sim.run()
    assert got == ["interrupted"]
    # The holder still releases at t=10; nothing is wedged.
    assert res.count == 0


def test_anyof_with_prefailed_event():
    sim = Simulator()
    bad = sim.event()
    bad.fail(RuntimeError("early"))
    bad.defused = True
    sim.run()
    caught = []

    def waiter(sim):
        try:
            yield AnyOf(sim, [bad, sim.timeout(1.0)])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim))
    sim.run()
    assert caught == ["early"]


def test_process_can_spawn_processes():
    sim = Simulator()
    order = []

    def child(sim, name, delay):
        yield sim.timeout(delay)
        order.append(name)

    def parent(sim):
        kids = [sim.process(child(sim, f"c{i}", i + 1.0)) for i in range(3)]
        for kid in kids:
            yield kid
        order.append("parent")

    sim.process(parent(sim))
    sim.run()
    assert order == ["c0", "c1", "c2", "parent"]


def test_event_succeed_with_delay():
    sim = Simulator()
    evt = sim.event()
    evt.succeed("later", delay=5.0)
    out = []

    def waiter(sim):
        value = yield evt
        out.append((sim.now, value))

    sim.process(waiter(sim))
    sim.run()
    assert out == [(5.0, "later")]


def test_active_process_visible_during_resume():
    sim = Simulator()
    seen = []

    def proc(sim):
        seen.append(sim.active_process)
        yield sim.timeout(1.0)

    p = sim.process(proc(sim))
    sim.run()
    assert seen == [p]
    assert sim.active_process is None


def test_interrupt_with_no_cause():
    sim = Simulator()
    causes = []

    def sleeper(sim):
        try:
            yield sim.timeout(5.0)
        except Interrupt as intr:
            causes.append(intr.cause)

    def interrupter(sim, victim):
        yield sim.timeout(1.0)
        victim.interrupt()

    v = sim.process(sleeper(sim))
    sim.process(interrupter(sim, v))
    sim.run()
    assert causes == [None]
