"""Tests for the core facade: config, modes, machine, report."""

import pytest

from repro.core.config import FULL_SYSTEM, SINGLE_CU, SystemConfig
from repro.core.machine import RoadrunnerMachine
from repro.core.modes import MODES, UsageMode
from repro.core.report import format_series, format_table
from repro.validation import paper_data


# --- config ------------------------------------------------------------------

def test_full_system_counts():
    assert FULL_SYSTEM.cu_count == paper_data.CU_COUNT
    assert FULL_SYSTEM.node_count == paper_data.NODE_COUNT
    assert FULL_SYSTEM.spe_count == paper_data.TOTAL_SPES
    assert FULL_SYSTEM.opteron_core_count == 12240
    assert FULL_SYSTEM.cell_count == 12240
    assert FULL_SYSTEM.io_node_count == 17 * paper_data.IO_NODES_PER_CU


def test_single_cu_counts():
    assert SINGLE_CU.node_count == paper_data.NODES_PER_CU


def test_config_validation():
    with pytest.raises(ValueError):
        SystemConfig("bad", cu_count=0)
    with pytest.raises(ValueError):
        SystemConfig("bad", cu_count=25)


# --- modes ---------------------------------------------------------------------

def test_three_usage_modes():
    assert set(MODES) == {
        UsageMode.CLUSTER,
        UsageMode.ACCELERATOR,
        UsageMode.SPE_CENTRIC,
    }


def test_cluster_mode_taps_tiny_fraction_of_peak():
    cluster = MODES[UsageMode.CLUSTER]
    assert cluster.peak_fraction == pytest.approx(14.4 / 449.6, rel=1e-3)


def test_mode_example_applications_match_paper():
    assert "SPaSM" in MODES[UsageMode.ACCELERATOR].example_applications
    assert "VPIC" in MODES[UsageMode.SPE_CENTRIC].example_applications
    assert "Sweep3D" in MODES[UsageMode.SPE_CENTRIC].example_applications


def test_spe_centric_layers_include_full_hierarchy():
    layers = MODES[UsageMode.SPE_CENTRIC].layers
    for layer in ("EIB", "DaCS/PCIe", "MPI", "InfiniBand"):
        assert layer in layers


# --- machine -----------------------------------------------------------------------

@pytest.fixture(scope="module")
def machine():
    return RoadrunnerMachine()


def test_peak_dp_is_1_38_pflops(machine):
    assert machine.peak_dp_pflops == pytest.approx(
        paper_data.PEAK_DP_PFLOPS, rel=0.005
    )


def test_peak_sp_is_2_91_pflops(machine):
    assert machine.peak_sp_pflops == pytest.approx(
        paper_data.PEAK_SP_PFLOPS, rel=0.005
    )


def test_cu_peak_is_80_9_tflops(machine):
    assert machine.cu_peak_dp_tflops == pytest.approx(
        paper_data.CU_PEAK_DP_TFLOPS, rel=0.002
    )


def test_cell_fraction_of_peak_about_95_percent(machine):
    assert 0.90 <= machine.cell_fraction_of_peak() <= 0.97


def test_characteristics_table(machine):
    chars = machine.characteristics()
    assert chars["node_count"] == 3060
    assert chars["spes"] == 97920
    assert chars["node_cell_peak_dp_gflops"] == pytest.approx(435.2)
    assert chars["node_opteron_peak_dp_gflops"] == pytest.approx(14.4)


def test_machine_hop_census_is_table1(machine):
    census = machine.hop_census()
    assert census == {0: 1, 1: 7, 3: 260, 5: 1932, 7: 860}
    assert machine.average_hop_count() == pytest.approx(
        paper_data.HOP_AVERAGE, abs=0.005
    )


def test_machine_latency_map_length(machine):
    series = machine.latency_map()
    assert len(series) == 3060


def test_machine_linpack_headlines(machine):
    assert machine.linpack().rmax_flops / 1e15 == pytest.approx(1.026, rel=0.01)
    assert machine.green500_mflops_per_watt() == pytest.approx(437, rel=0.01)
    assert 35 <= machine.opteron_only_top500_position() <= 60


def test_small_machine_scales_down():
    small = RoadrunnerMachine(SINGLE_CU)
    assert small.node_count == 180
    assert small.peak_dp_pflops == pytest.approx(80.9e-3, rel=0.002)
    census = small.hop_census()
    assert set(census) == {0, 1, 3}


def test_cell_variants_exposed(machine):
    assert machine.cell.name == "PowerXCell 8i"
    assert machine.previous_cell.name == "Cell BE"


def test_sweep3d_study_accessible(machine):
    study = machine.sweep3d_study()
    point = study.point(1, "cell_measured")
    assert point.iteration_time > 0


# --- report helpers ---------------------------------------------------------------------

def test_format_table_aligns_and_titles():
    text = format_table(
        ["name", "value"], [["alpha", 1.0], ["b", 123456.0]], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[2] and "value" in lines[2]
    assert any("alpha" in ln for ln in lines)


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_format_series_rejects_length_mismatch():
    with pytest.raises(ValueError):
        format_series("x", [1, 2], {"y": [1.0]})


def test_format_series_renders_all_series():
    text = format_series("n", [1, 2], {"y1": [0.5, 1.5], "y2": [2.0, 4.0]})
    assert "y1" in text and "y2" in text and "1.5" in text


def test_sparkline_profiles_series():
    from repro.core.report import sparkline

    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4
    assert line[0] == "▁" and line[-1] == "█"
    assert sparkline([]) == ""
    assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"


def test_sparkline_of_fig10_staircase():
    from repro.core.report import sparkline
    from repro.core.machine import RoadrunnerMachine

    series = RoadrunnerMachine().latency_map()[1:200]
    line = sparkline(series)
    # The first 7 (same-crossbar) destinations sit at the lowest level.
    assert set(line[:7]) == {"▁"}
    assert len(set(line)) > 1
