"""Integration: the distributed sweep across multiple simulated nodes
with realistic SPE placement and the location-aware fabric."""

import numpy as np
import pytest

from repro.sweep3d.cellport import grind_time
from repro.hardware.cell import POWERXCELL_8I
from repro.sweep3d.decomposition import Decomposition2D
from repro.sweep3d.input import SweepInput
from repro.sweep3d.parallel import ParallelSweep
from repro.sweep3d.placement import boundary_classes, cell_fabric, spe_locations
from repro.sweep3d.quadrature import make_angle_set
from repro.sweep3d.solver import sweep_all_octants


@pytest.fixture(scope="module")
def two_node_run():
    inp = SweepInput(it=2, jt=2, kt=4, mk=2, mmi=2)
    dec = Decomposition2D(16, 4)  # two nodes stacked in i
    sweep = ParallelSweep(
        inp,
        dec,
        grind_time=grind_time(POWERXCELL_8I),
        fabric=cell_fabric(),
        locations=spe_locations(dec),
    )
    return inp, dec, sweep.run()


def test_two_node_flux_matches_sequential(two_node_run):
    inp, dec, result = two_node_run
    global_inp = inp.with_subgrid(inp.it * dec.npe_i, inp.jt * dec.npe_j, inp.kt)
    src = np.full((global_inp.it, global_inp.jt, global_inp.kt), inp.q)
    expected, _, _ = sweep_all_octants(global_inp, src, make_angle_set(inp.mmi))
    np.testing.assert_allclose(result.phi, expected, rtol=1e-12, atol=1e-13)


def test_two_node_decomposition_crosses_the_network(two_node_run):
    inp, dec, _result = two_node_run
    census = boundary_classes(dec)
    assert census["internode"] == 4  # the tile seam: one j-row of 4 links
    assert census["intra-socket"] > census["internode"]


def test_internode_boundaries_slow_the_sweep(two_node_run):
    """The same logical sweep placed on one node runs faster than the
    two-node placement — the network seam costs real simulated time."""
    inp, dec, result = two_node_run
    one_node = Decomposition2D(8, 4)
    small = ParallelSweep(
        inp,
        one_node,
        grind_time=grind_time(POWERXCELL_8I),
        fabric=cell_fabric(),
        locations=spe_locations(one_node),
    ).run()
    # Two-node run has twice the pipeline depth in i plus IB seams.
    assert result.iteration_time > small.iteration_time


def test_efficiency_below_one_with_real_links(two_node_run):
    _inp, _dec, result = two_node_run
    assert 0.0 < result.parallel_efficiency < 0.6
