"""Tests for the Sweep3D numerics: quadrature, kernels, solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sweep3d.input import SweepInput
from repro.sweep3d.kernel import sweep_octant
from repro.sweep3d.quadrature import OCTANTS, Octant, make_angle_set
from repro.sweep3d.reference import reference_sweep_octant
from repro.sweep3d.solver import solve, sweep_all_octants


# --- quadrature ------------------------------------------------------------------

def test_eight_octants_cover_all_sign_combinations():
    signs = {o.signs for o in OCTANTS}
    assert len(signs) == 8


def test_octants_ordered_in_same_corner_pairs():
    """Sweep3D's octant order changes (sx, sy) corner only every other
    octant, so z-paired octants pipeline without a refill."""
    corners = [(o.sx, o.sy) for o in OCTANTS]
    for a in range(0, 8, 2):
        assert corners[a] == corners[a + 1]
    assert len(set(corners)) == 4


def test_octant_sign_validation():
    with pytest.raises(ValueError):
        Octant(0, 2, 1, 1)


def test_s6_ordinates_on_unit_sphere():
    ang = make_angle_set(6)
    norms = ang.mu**2 + ang.eta**2 + ang.xi**2
    assert np.allclose(norms, 1.0, atol=1e-6)


def test_angle_weights_normalized_over_8_octants():
    for mmi in (1, 3, 6, 12):
        ang = make_angle_set(mmi)
        assert 8 * ang.weight_sum == pytest.approx(1.0)


def test_angle_set_validation():
    ang = make_angle_set(6)
    with pytest.raises(ValueError):
        make_angle_set(0)
    from repro.sweep3d.quadrature import AngleSet

    with pytest.raises(ValueError):
        AngleSet(mu=ang.mu[:3], eta=ang.eta, xi=ang.xi, weights=ang.weights)
    with pytest.raises(ValueError):
        AngleSet(
            mu=np.array([1.5]), eta=np.array([0.5]),
            xi=np.array([0.5]), weights=np.array([0.125]),
        )


# --- kernel vs reference oracle ------------------------------------------------------

@pytest.mark.parametrize("shape", [(1, 1, 1), (3, 1, 2), (4, 5, 3), (2, 7, 4)])
@pytest.mark.parametrize("mmi", [1, 6])
def test_vectorized_kernel_matches_reference(shape, mmi):
    rng = np.random.default_rng(42)
    I, J, K = shape
    ang = make_angle_set(mmi)
    src = rng.random(shape)
    sig = 0.5 + rng.random(shape)
    in_x = rng.random((J, K, mmi))
    in_y = rng.random((I, K, mmi))
    in_z = rng.random((I, J, mmi))
    ref = reference_sweep_octant(sig, src, 1.0, 0.8, 1.2, ang, in_x, in_y, in_z)
    vec = sweep_octant(sig, src, 1.0, 0.8, 1.2, ang, in_x, in_y, in_z)
    for r, v in zip(ref, vec):
        np.testing.assert_allclose(v, r, rtol=1e-13, atol=1e-13)


def test_kernel_validates_inflow_shapes():
    ang = make_angle_set(2)
    src = np.ones((2, 3, 4))
    good = dict(
        inflow_x=np.zeros((3, 4, 2)),
        inflow_y=np.zeros((2, 4, 2)),
        inflow_z=np.zeros((2, 3, 2)),
    )
    sweep_octant(1.0, src, 1, 1, 1, ang, **good)
    for key, shape in [
        ("inflow_x", (4, 3, 2)), ("inflow_y", (4, 2, 2)), ("inflow_z", (3, 2, 2))
    ]:
        bad = dict(good)
        bad[key] = np.zeros(shape)
        with pytest.raises(ValueError):
            sweep_octant(1.0, src, 1, 1, 1, ang, **bad)


def test_kernel_positive_inputs_give_positive_flux():
    """Diamond difference without fixup can go negative in general, but
    for a flat source in a modest-aspect cell it stays positive."""
    ang = make_angle_set(6)
    src = np.ones((4, 4, 4))
    phi, *_ = sweep_octant(
        1.0, src, 1, 1, 1, ang,
        np.zeros((4, 4, 6)), np.zeros((4, 4, 6)), np.zeros((4, 4, 6)),
    )
    assert np.all(phi > 0)


def test_kernel_linearity_in_source():
    """The sweep is linear: doubling source and inflows doubles outputs."""
    rng = np.random.default_rng(7)
    ang = make_angle_set(3)
    src = rng.random((3, 4, 2))
    args = (1.0, 1.0, 1.0, ang)
    ins = [rng.random((4, 2, 3)), rng.random((3, 2, 3)), rng.random((3, 4, 3))]
    out1 = sweep_octant(2.0, src, *args, *ins)
    out2 = sweep_octant(2.0, 2 * src, *args, *[2 * a for a in ins])
    for a, b in zip(out1, out2):
        np.testing.assert_allclose(b, 2 * a, rtol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    i=st.integers(1, 4), j=st.integers(1, 4), k=st.integers(1, 4),
    mmi=st.integers(1, 6), seed=st.integers(0, 2**31),
)
def test_kernel_matches_reference_property(i, j, k, mmi, seed):
    rng = np.random.default_rng(seed)
    ang = make_angle_set(mmi)
    src = rng.random((i, j, k))
    in_x = rng.random((j, k, mmi))
    in_y = rng.random((i, k, mmi))
    in_z = rng.random((i, j, mmi))
    ref = reference_sweep_octant(1.0, src, 1, 1, 1, ang, in_x, in_y, in_z)
    vec = sweep_octant(1.0, src, 1, 1, 1, ang, in_x, in_y, in_z)
    for r, v in zip(ref, vec):
        np.testing.assert_allclose(v, r, rtol=1e-12, atol=1e-12)


# --- solver ---------------------------------------------------------------------------

def small_input(**kw):
    defaults = dict(it=6, jt=5, kt=4, mk=2, mmi=6, sigma_t=1.0, sigma_s=0.5, q=1.0)
    defaults.update(kw)
    return SweepInput(**defaults)


def test_solver_converges():
    res = solve(small_input(), max_iterations=100)
    assert res.converged
    assert res.rel_change < 1e-6


def test_particle_balance_closes_to_roundoff():
    """leakage + sigma_t * sum(phi) V = swept source V — exact for
    diamond differencing, every iteration."""
    res = solve(small_input(), max_iterations=5)
    assert res.balance_residual < 1e-12


def test_flux_positive_and_peaked_in_center():
    res = solve(small_input(it=7, jt=7, kt=7, mk=1), max_iterations=100)
    phi = res.phi
    assert np.all(phi > 0)
    # Vacuum boundaries: the center outshines every face cell.
    center = phi[3, 3, 3]
    assert center > phi[0, 3, 3]
    assert center > phi[3, 0, 3]
    assert center > phi[3, 3, 0]


def test_flux_symmetry():
    """A symmetric problem yields a flux symmetric under axis flips."""
    res = solve(small_input(it=6, jt=6, kt=6, mk=2), max_iterations=100)
    phi = res.phi
    np.testing.assert_allclose(phi, np.flip(phi, axis=0), rtol=1e-10)
    np.testing.assert_allclose(phi, np.flip(phi, axis=1), rtol=1e-10)
    np.testing.assert_allclose(phi, np.flip(phi, axis=2), rtol=1e-10)


def test_optically_thick_interior_approaches_infinite_medium():
    """Deep inside an optically thick domain the flux approaches the
    infinite-medium value q / (sigma_t - sigma_s).  Cell thickness is
    kept near sigma_t*dx ~ 2*mu so the diamond-difference boundary
    layer damps quickly ((s*d - 2mu)/(s*d + 2mu) per cell)."""
    inp = small_input(
        it=13, jt=13, kt=13, mk=1, sigma_t=2.0, sigma_s=1.0, q=4.0
    )
    res = solve(inp, max_iterations=300)
    expected = inp.q / (inp.sigma_t - inp.sigma_s)
    assert res.phi[6, 6, 6] == pytest.approx(expected, rel=0.01)


def test_no_scattering_converges_in_one_sweep():
    inp = small_input(sigma_s=0.0)
    res = solve(inp, max_iterations=10)
    assert res.converged
    assert res.iterations <= 2


def test_leakage_positive_with_vacuum_boundaries():
    res = solve(small_input(), max_iterations=20)
    assert res.leakage > 0


def test_solver_rejects_bad_max_iterations():
    with pytest.raises(ValueError):
        solve(small_input(), max_iterations=0)


def test_sweep_all_octants_shape_and_additivity():
    inp = small_input()
    ang = make_angle_set(inp.mmi)
    src = np.ones((inp.it, inp.jt, inp.kt))
    phi, leak, _ = sweep_all_octants(inp, src, ang)
    assert phi.shape == (inp.it, inp.jt, inp.kt)
    phi2, leak2, _ = sweep_all_octants(inp, 2 * src, ang)
    np.testing.assert_allclose(phi2, 2 * phi, rtol=1e-12)
    assert leak2 == pytest.approx(2 * leak)


# --- input deck ------------------------------------------------------------------------

def test_input_validation():
    with pytest.raises(ValueError):
        SweepInput(it=0)
    with pytest.raises(ValueError):
        SweepInput(kt=10, mk=3)  # not divisible
    with pytest.raises(ValueError):
        SweepInput(mk=0)
    with pytest.raises(ValueError):
        SweepInput(sigma_s=1.0, sigma_t=1.0)  # needs sigma_s < sigma_t
    with pytest.raises(ValueError):
        SweepInput(q=-1.0)
    with pytest.raises(ValueError):
        SweepInput(mmi=0)
    with pytest.raises(ValueError):
        SweepInput(dx=0.0)


def test_paper_configurations():
    scaling = SweepInput.paper_scaling()
    assert (scaling.it, scaling.jt, scaling.kt) == (5, 5, 400)
    assert scaling.mk == 20 and scaling.mmi == 6
    assert scaling.k_blocks == 20
    table4 = SweepInput.paper_table4()
    assert (table4.it, table4.jt, table4.kt) == (50, 50, 50)
    assert table4.mk == 10
    assert table4.angle_work == 50 * 50 * 50 * 6 * 8


def test_derived_quantities():
    inp = SweepInput(it=4, jt=5, kt=12, mk=3, mmi=2)
    assert inp.cells == 240
    assert inp.k_blocks == 4
    assert inp.cells_per_block == 60
    assert inp.block_angle_work() == 120
    assert inp.angle_work == 240 * 2 * 8


def test_with_subgrid_keeps_or_fixes_mk():
    inp = SweepInput(it=5, jt=5, kt=400, mk=20)
    bigger = inp.with_subgrid(10, 20, 400)
    assert bigger.mk == 20
    odd = inp.with_subgrid(5, 5, 7)  # 7 not divisible by 20 -> mk = kt
    assert odd.mk == 7
