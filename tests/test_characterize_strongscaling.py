"""Tests for the characterization campaign and strong scaling."""

import doctest

import pytest

from repro.comm.cml import INTERNODE_CELL_PATH
from repro.comm.ib import IB_DEFAULT
from repro.microbench.characterize import characterize, render_characterization
from repro.sweep3d.perfmodel import SweepMachineParams
from repro.sweep3d.strongscaling import (
    StrongScalingPoint,
    strong_scaling_series,
    sweet_spot,
)

PARAMS = SweepMachineParams("test", grind_time=32e-9, comm=IB_DEFAULT)


# --- characterization -------------------------------------------------------------

@pytest.fixture(scope="module")
def report():
    return characterize(include_latency_map=True)


def test_characterization_covers_all_sections(report):
    assert set(report) == {"pipelines", "memory", "communication", "latency_map_us"}


def test_characterization_memory_matches_table3(report):
    assert report["memory"]["Opteron"]["triad_gb_s"] == pytest.approx(5.41)
    assert report["memory"]["PowerXCell 8i (SPE)"]["triad_gb_s"] == pytest.approx(29.28)


def test_characterization_comm_matches_fig6(report):
    comm = report["communication"]
    assert comm["DaCS/PCIe (measured)"]["latency_us"] == pytest.approx(3.19)
    assert comm["Cell-to-Cell internode"]["latency_us"] == pytest.approx(8.78, abs=0.01)
    assert comm["Cell-to-Cell internode"]["bandwidth_1mb_mb_s"] == pytest.approx(
        268, rel=0.03
    )


def test_characterization_pipelines(report):
    assert report["pipelines"]["Cell BE"]["FPD"]["repetition"] == 7
    assert report["pipelines"]["PowerXCell 8i"]["FPD"]["repetition"] == 1


def test_characterization_latency_map(report):
    lm = report["latency_map_us"]
    assert lm["1"] == pytest.approx(2.5, rel=0.02)
    assert lm["180"] < lm["200"]  # the same-crossbar dip into CU 2


def test_render_characterization(report):
    text = render_characterization(report)
    assert "Communication hierarchy" in text
    assert "8.78" in text
    assert "FPD" in text


def test_characterize_doctest():
    import repro.microbench.characterize as mod

    result = doctest.testmod(mod)
    assert result.attempted > 0 and result.failed == 0


# --- strong scaling ------------------------------------------------------------------

def test_strong_scaling_series_shapes():
    points = strong_scaling_series((64, 64, 128), [1, 4, 16, 64], PARAMS)
    assert [p.ranks for p in points] == [1, 4, 16, 64]
    assert points[0].efficiency == pytest.approx(1.0)
    assert points[0].subgrid == (64, 64, 128)
    assert points[2].subgrid == (16, 16, 128)


def test_strong_scaling_efficiency_decays():
    points = strong_scaling_series((64, 64, 128), [1, 4, 16, 64, 256], PARAMS)
    effs = [p.efficiency for p in points]
    assert all(b < a for a, b in zip(effs, effs[1:]))


def test_strong_scaling_speedup_grows_then_saturates():
    slow_comm = SweepMachineParams(
        "slow", grind_time=32e-9, comm=INTERNODE_CELL_PATH,
        per_message_overhead=INTERNODE_CELL_PATH.zero_byte_latency,
    )
    points = strong_scaling_series(
        (128, 128, 128), [1, 16, 256, 4096, 16384], slow_comm
    )
    speedups = [p.speedup for p in points]
    assert speedups[1] > speedups[0]
    # Far past the sweet spot the extra ranks stop paying.
    assert speedups[-1] < 2 * speedups[-2]
    spot = sweet_spot(points)
    assert spot.iteration_time == min(p.iteration_time for p in points)


def test_strong_scaling_validation():
    with pytest.raises(ValueError):
        strong_scaling_series((0, 4, 4), [1], PARAMS)
    with pytest.raises(ValueError):
        strong_scaling_series((64, 64, 64), [0], PARAMS)
    with pytest.raises(ValueError):
        sweet_spot([])


def test_strong_scaling_untileable_rejected():
    with pytest.raises(ValueError):
        strong_scaling_series((9, 9, 9), [4], PARAMS)  # 2x2 vs 9x9
