"""Tests for the contention-aware DES fabric."""

import pytest

from repro.comm.mpi import Location, SimMPI
from repro.network.latency import IBLatencyModel
from repro.network.simfabric import ContendedFabric
from repro.network.topology import RoadrunnerTopology
from repro.sim import Simulator
from repro.units import MB, US


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture(scope="module")
def topo():
    return RoadrunnerTopology(cu_count=1)


def make_comm(sim, topo, n_nodes):
    fabric = ContendedFabric(sim, topology=topo)
    locations = [Location(node=i) for i in range(n_nodes)]
    return SimMPI(sim, fabric, locations), fabric


def run_ranks(sim, comm, body):
    for r in range(comm.size):
        sim.process(body(comm.rank(r)), name=f"rank{r}")
    sim.run()


def test_uncontended_message_matches_analytic_time(sim, topo):
    comm, fabric = make_comm(sim, topo, 2)
    size = int(1 * MB)
    times = {}

    def body(rank):
        if rank.index == 0:
            yield from rank.send(1, size=size)
        else:
            yield from rank.recv()
            times["recv"] = rank.sim.now

    run_ranks(sim, comm, body)
    expected = fabric.one_way_time(Location(0), Location(1), size)
    assert times["recv"] == pytest.approx(expected, rel=1e-9)


def test_two_senders_share_the_receivers_nic(sim, topo):
    """Two 1 MB messages into the same node take ~2x the ejection time
    of one: the rx port is the bottleneck."""
    comm, fabric = make_comm(sim, topo, 3)
    size = int(1 * MB)
    times = {}

    def body(rank):
        if rank.index in (0, 1):
            yield from rank.send(2, size=size)
        else:
            yield from rank.recv()
            yield from rank.recv()
            times["both"] = rank.sim.now

    run_ranks(sim, comm, body)
    solo = fabric.one_way_time(Location(0), Location(2), size)
    bw_phase = size / fabric.latency.bandwidth
    # Both payloads must cross the single rx link: ~ one extra
    # bandwidth phase beyond the solo time.
    assert times["both"] >= solo + 0.9 * bw_phase
    assert times["both"] <= solo + 1.3 * bw_phase


def test_distinct_destinations_do_not_contend(sim, topo):
    comm, fabric = make_comm(sim, topo, 4)
    size = int(1 * MB)
    times = {}

    def body(rank):
        if rank.index == 0:
            yield from rank.send(2, size=size)
        elif rank.index == 1:
            yield from rank.send(3, size=size)
        elif rank.index in (2, 3):
            yield from rank.recv()
            times[rank.index] = rank.sim.now

    run_ranks(sim, comm, body)
    solo = fabric.one_way_time(Location(0), Location(2), size)
    assert times[2] == pytest.approx(solo, rel=1e-9)
    assert times[3] == pytest.approx(solo, rel=1e-9)


def test_intranode_messages_are_free_of_the_nic(sim, topo):
    comm, fabric = make_comm(sim, topo, 2)
    done = fabric.transfer(Location(node=1), Location(node=1), int(1 * MB))
    sim.run(until=done)
    assert sim.now == 0.0
    assert fabric.nic_bytes(1) == (0.0, 0.0)


def test_zero_byte_transfer_immediate(sim, topo):
    fabric = ContendedFabric(sim, topology=topo)
    done = fabric.transfer(Location(node=0), Location(node=1), 0)
    sim.run(until=done)
    assert sim.now == 0.0


def test_nic_byte_accounting(sim, topo):
    comm, fabric = make_comm(sim, topo, 2)
    size = 100_000

    def body(rank):
        if rank.index == 0:
            yield from rank.send(1, size=size)
        else:
            yield from rank.recv()

    run_ranks(sim, comm, body)
    assert fabric.nic_bytes(0) == (size, 0.0)
    assert fabric.nic_bytes(1) == (0.0, size)


def test_hops_exposed(sim, topo):
    fabric = ContendedFabric(sim, topology=topo)
    assert fabric.hops(Location(node=0), Location(node=1)) == 1
    assert fabric.hops(Location(node=0), Location(node=100)) == 3


def test_latency_part_is_hop_dependent(sim, topo):
    fabric = ContendedFabric(sim, topology=topo)
    model = IBLatencyModel()
    near = fabric.zero_byte_latency(Location(node=0), Location(node=1))
    far = fabric.zero_byte_latency(Location(node=0), Location(node=100))
    assert near == pytest.approx(model.software_overhead + 1 * model.hop_latency)
    assert far == pytest.approx(model.software_overhead + 3 * model.hop_latency)
    assert fabric.zero_byte_latency(Location(node=5), Location(node=5)) == 0.0


def test_incast_scales_with_sender_count(topo):
    """N-into-1 incast: total ejection time grows ~linearly in N."""
    durations = {}
    for n_senders in (2, 4):
        sim = Simulator()
        comm, fabric = make_comm(sim, topo, n_senders + 1)
        size = 250_000

        def body(rank, n=n_senders):
            if rank.index < n:
                yield from rank.send(n, size=size)
            else:
                for _ in range(n):
                    yield from rank.recv()

        run_ranks(sim, comm, body)
        durations[n_senders] = sim.now
    bw = IBLatencyModel().bandwidth
    assert durations[4] - durations[2] == pytest.approx(2 * 250_000 / bw, rel=0.2)


def test_uplink_contention_under_default_routing():
    """Eight same-crossbar nodes sending to another CU share one
    uplink under uplink-0 routing: per-flow rate collapses 8x."""
    topo2 = RoadrunnerTopology(cu_count=2)
    size = 500_000

    def run(spread):
        sim = Simulator()
        fabric = ContendedFabric(
            sim, topology=topo2, model_uplinks=True, spread_routing=spread
        )
        locations = [Location(node=i) for i in range(8)] + [
            Location(node=180 + i) for i in range(8)
        ]
        comm = SimMPI(sim, fabric, locations)

        def body(rank):
            if rank.index < 8:
                yield from rank.send(8 + rank.index, size=size)
            else:
                yield from rank.recv()

        for r in range(16):
            sim.process(body(comm.rank(r)), name=f"r{r}")
        sim.run()
        return sim.now

    concentrated = run(spread=False)
    spread_out = run(spread=True)
    bw_phase = size / IBLatencyModel().bandwidth
    # Default routing: all 8 flows share one uplink -> ~8 bw phases.
    assert concentrated >= 7.5 * bw_phase
    # Destination hashing spreads across the crossbar's 4 uplinks.
    assert spread_out <= concentrated / 3


def test_uplinks_not_modeled_by_default(sim, topo):
    fabric = ContendedFabric(sim, topology=topo)
    assert fabric._route_uplinks(0, 100) == [] or True  # attribute exists
    assert not fabric.model_uplinks
