"""Tests for the Sweep3D cost models: cellport (grind, local store,
DMA), master/worker baseline, x86 grinds, and the Fig 12 relations."""

import pytest

from repro.hardware.cell import CELL_BE, POWERXCELL_8I
from repro.hardware.opteron import OPTERON_2210_HE, OPTERON_QUAD_2356, TIGERTON_X7350
from repro.sweep3d.cellport import (
    SWEEP_MIX_PER_CELL_ANGLE,
    CellPortModel,
    build_sweep_stream,
    grind_cycles,
    grind_time,
    grind_times,
)
from repro.sweep3d.input import SweepInput
from repro.sweep3d.masterworker import MasterWorkerModel
from repro.sweep3d.x86 import FLOPS_PER_CELL_ANGLE, x86_grind_time
from repro.validation import paper_data


# --- grind times from the pipeline tables ---------------------------------------

def test_pxc8i_grind_is_about_101_cycles():
    assert grind_cycles(POWERXCELL_8I) == pytest.approx(101, rel=0.02)


def test_cbe_grind_adds_6_cycles_per_fpd():
    """The Cell BE pays exactly its 6-cycle FPD global stall per FPD
    instruction on top of the PowerXCell 8i schedule."""
    extra = grind_cycles(CELL_BE) - grind_cycles(POWERXCELL_8I)
    assert extra == pytest.approx(6 * SWEEP_MIX_PER_CELL_ANGLE[_fpd()], rel=0.01)


def _fpd():
    from repro.hardware.spe_pipeline import InstructionGroup

    return InstructionGroup.FPD


def test_grind_ratio_is_table4s_1_9x():
    ratio = grind_time(CELL_BE) / grind_time(POWERXCELL_8I)
    assert ratio == pytest.approx(paper_data.TABLE4_CBE_TO_PXC8I_FACTOR, rel=0.05)


def test_table4_absolute_times():
    """Our implementation on the Table IV problem: 0.37 s (CBE), 0.19 s
    (PowerXCell 8i)."""
    inp = SweepInput.paper_table4()
    t_pxc = inp.angle_work * grind_time(POWERXCELL_8I)
    t_cbe = inp.angle_work * grind_time(CELL_BE)
    assert t_pxc == pytest.approx(paper_data.TABLE4_OURS_PXC8I_S, rel=0.02)
    assert t_cbe == pytest.approx(paper_data.TABLE4_OURS_CBE_S, rel=0.02)


def test_grind_times_mapping():
    times = grind_times()
    assert set(times) == {"Cell BE", "PowerXCell 8i"}
    assert times["Cell BE"] > times["PowerXCell 8i"]


def test_build_sweep_stream_scales_and_validates():
    one = build_sweep_stream(1)
    four = build_sweep_stream(4)
    assert len(four) == 4 * len(one)
    assert len(one) == sum(SWEEP_MIX_PER_CELL_ANGLE.values())
    with pytest.raises(ValueError):
        build_sweep_stream(0)


def test_sweep_mix_flop_count_is_32_per_cell_angle():
    """16 two-wide DP FMAs = 32 useful flops — the classic Sweep3D
    per-cell-angle count, shared with the x86 model."""
    assert SWEEP_MIX_PER_CELL_ANGLE[_fpd()] * 2 == FLOPS_PER_CELL_ANGLE


# --- local store and DMA (paper §V-B) ----------------------------------------------

def test_paper_scaling_block_fits_local_store():
    model = CellPortModel()
    assert model.block_fits_local_store(SweepInput.paper_scaling())


def test_whole_subgrid_does_not_fit_local_store():
    """The reason blocking exists: the full 5x5x400 subgrid with its
    angular data misses the 256 KB local store."""
    model = CellPortModel()
    unblocked = SweepInput(it=5, jt=5, kt=400, mk=400, mmi=6)
    assert not model.block_fits_local_store(unblocked)


def test_max_mk_is_the_tight_bound():
    """A block of max_mk K-planes fits the local store; one more plane
    does not (unless capped by kt)."""
    model = CellPortModel()
    inp = SweepInput.paper_scaling()
    mk_max = model.max_mk(inp)
    assert 1 <= mk_max <= inp.kt
    at_max = SweepInput(it=inp.it, jt=inp.jt, kt=mk_max, mk=mk_max, mmi=inp.mmi)
    assert model.block_fits_local_store(at_max)
    if mk_max < inp.kt:
        over = SweepInput(
            it=inp.it, jt=inp.jt, kt=mk_max + 1, mk=mk_max + 1, mmi=inp.mmi
        )
        assert not model.block_fits_local_store(over)


def test_max_mk_rejects_oversized_planes():
    model = CellPortModel()
    with pytest.raises(ValueError):
        model.max_mk(SweepInput(it=200, jt=200, kt=10, mk=1, mmi=6))


def test_spe_centric_port_is_compute_bound():
    """§V-B's point: communicating surfaces (not volumes) makes the
    port compute-bound — DMA per block is far below compute."""
    model = CellPortModel()
    inp = SweepInput.paper_scaling()
    assert model.block_dma_time(inp) < 0.2 * model.block_compute_time(inp)


def test_block_time_is_max_of_compute_and_dma():
    model = CellPortModel()
    inp = SweepInput.paper_scaling()
    assert model.block_time(inp) == pytest.approx(
        max(model.block_compute_time(inp), model.block_dma_time(inp))
    )


def test_iteration_compute_time_structure():
    model = CellPortModel()
    inp = SweepInput.paper_scaling()
    assert model.iteration_compute_time(inp) == pytest.approx(
        8 * inp.k_blocks * model.block_time(inp)
    )


# --- master/worker baseline (Table IV) -------------------------------------------------

def test_masterworker_reproduces_1_3_s_on_cbe():
    model = MasterWorkerModel()
    t = model.iteration_time(SweepInput.paper_table4())
    assert t == pytest.approx(paper_data.TABLE4_PREVIOUS_CBE_S, rel=0.05)


def test_masterworker_is_bandwidth_bound():
    model = MasterWorkerModel()
    inp = SweepInput.paper_table4()
    assert model.bandwidth_time(inp) > 2 * model.compute_time(inp)


def test_implementation_speedup_factor_on_cbe():
    """§VII: the SPE-centric port beats the previous implementation by
    ~3x on the Cell BE (1.3 s -> 0.37 s)."""
    inp = SweepInput.paper_table4()
    previous = MasterWorkerModel().iteration_time(inp)
    ours = inp.angle_work * grind_time(CELL_BE)
    assert previous / ours == pytest.approx(
        paper_data.TABLE4_IMPL_SPEEDUP_FACTOR, rel=0.2
    )


def test_masterworker_would_not_benefit_from_pxc8i():
    """Falsifiable model prediction: the bandwidth-bound master/worker
    port gains almost nothing from the PowerXCell 8i's faster DP unit
    (same 25.6 GB/s memory interface)."""
    inp = SweepInput.paper_table4()
    on_cbe = MasterWorkerModel(variant=CELL_BE).iteration_time(inp)
    on_pxc = MasterWorkerModel(variant=POWERXCELL_8I).iteration_time(inp)
    assert on_cbe / on_pxc < 1.05


# --- x86 grinds and the Fig 12 relations -------------------------------------------------

def test_x86_grind_known_processors_only():
    with pytest.raises(KeyError):
        from repro.hardware.cell import POWERXCELL_8I as px

        x86_grind_time(px.spec)


def test_single_spe_comparable_to_single_x86_core():
    """Fig 12: 'the implementation of Sweep3D on a single SPE ...
    achieves a runtime comparable to a single core of the Intel and AMD
    processors' — within 35% here."""
    spe = grind_time(POWERXCELL_8I)
    for proc in (OPTERON_2210_HE, OPTERON_QUAD_2356, TIGERTON_X7350):
        ratio = x86_grind_time(proc) / spe
        assert 0.65 < ratio < 1.35, proc.name


def fig12_socket_time(processor, cells=80_000, mmi=6):
    """Iteration time of one socket on the weak-scaled socket problem
    (10x20x400 total cells), split across its cores."""
    cores = processor.core_count
    per_core_cells = cells / cores
    return per_core_cells * mmi * 8 * x86_grind_time(processor)


def fig12_pxc_socket_time(cells=80_000, mmi=6):
    per_spe = cells / 8
    return per_spe * mmi * 8 * grind_time(POWERXCELL_8I)


def test_pxc_socket_twice_the_quad_cores():
    """Fig 12: the full PowerXCell 8i socket is ~2x faster than the
    quad-core sockets."""
    pxc = fig12_pxc_socket_time()
    for proc in (OPTERON_QUAD_2356, TIGERTON_X7350):
        factor = fig12_socket_time(proc) / pxc
        assert 1.6 < factor < 2.4, proc.name


def test_pxc_socket_almost_5x_dual_core_opteron():
    """Fig 12: '... and almost 5 times that of a dual-core Opteron.'"""
    factor = fig12_socket_time(OPTERON_2210_HE) / fig12_pxc_socket_time()
    assert 4.0 < factor < 5.2


def test_masterworker_des_matches_model():
    """The pencil scheme run on the discrete-event simulator comes out
    bandwidth-bound at (approximately) the analytic model's time."""
    inp = SweepInput.paper_table4()
    model = MasterWorkerModel()
    des = model.simulate_iteration(inp, pencils=256)
    assert des == pytest.approx(model.iteration_time(inp), rel=0.10)


def test_masterworker_des_validates_pencils():
    with pytest.raises(ValueError):
        MasterWorkerModel().simulate_iteration(SweepInput.paper_table4(), pencils=4)


def test_masterworker_des_bandwidth_bound():
    """More pencils (finer dispatch) cannot beat the bandwidth floor."""
    inp = SweepInput.paper_table4()
    model = MasterWorkerModel()
    des = model.simulate_iteration(inp, pencils=512)
    assert des >= model.bandwidth_time(inp)
