"""Tests for routing: Table I's hop census, path validity, BFS oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.crossbar import XbarId
from repro.network.latency import IBLatencyModel
from repro.network.routing import (
    average_hops,
    bfs_hop_count,
    hop_census,
    hop_count,
    hop_vector,
    route,
)
from repro.network.topology import RoadrunnerTopology
from repro.units import US
from repro.validation import paper_data


@pytest.fixture(scope="module")
def topo():
    return RoadrunnerTopology(cu_count=17)


# --- Table I, row by row (from node 0 in CU 1) ---------------------------------

def test_self_distance_zero(topo):
    assert hop_count(topo, 0, 0) == 0


def test_same_crossbar_seven_neighbours_at_1_hop(topo):
    at_one = [d for d in range(topo.node_count) if hop_count(topo, 0, d) == 1]
    assert len(at_one) == 7
    assert at_one == list(range(1, 8))


def test_census_matches_table1(topo):
    census = hop_census(topo, src=0)
    expected_counts = {0: 1, 1: 7, 3: 172 + 88, 5: 1892 + 40, 7: 860}
    assert dict(census) == expected_counts


def test_census_splits_by_cu_group(topo):
    """Disaggregate the 3-hop and 5-hop rows exactly as Table I does."""
    same_cu_3 = in_2_12_same = in_2_12_diff = in_13_17_same = in_13_17_diff = 0
    for dst in range(topo.node_count):
        h = hop_count(topo, 0, dst)
        cu, _ = topo.split(dst)
        if cu == 0:
            if h == 3:
                same_cu_3 += 1
        elif cu < 12:
            if h == 3:
                in_2_12_same += 1
            elif h == 5:
                in_2_12_diff += 1
        else:
            if h == 5:
                in_13_17_same += 1
            elif h == 7:
                in_13_17_diff += 1
    table = paper_data.HOP_CENSUS
    assert same_cu_3 == table["same CU"][0]
    assert in_2_12_same == table["CUs 2-12 same crossbar"][0]
    assert in_2_12_diff == table["CUs 2-12 different crossbar"][0]
    assert in_13_17_same == table["CUs 13-17 same crossbar"][0]
    assert in_13_17_diff == table["CUs 13-17 different crossbar"][0]


def test_average_hops_is_5_38(topo):
    assert average_hops(topo, src=0) == pytest.approx(paper_data.HOP_AVERAGE, abs=0.005)


def test_hop_count_symmetry(topo):
    pairs = [(0, 100), (5, 2000), (179, 181), (1000, 2900), (2200, 2300)]
    for a, b in pairs:
        assert hop_count(topo, a, b) == hop_count(topo, b, a)


# --- explicit routes -------------------------------------------------------------

def test_route_same_node_empty(topo):
    assert route(topo, 42, 42) == []


def test_route_same_crossbar_single_hop(topo):
    path = route(topo, 0, 5)
    assert path == [XbarId("L", 0, 0)]


def test_route_lengths_match_hop_count(topo):
    pairs = [(0, 3), (0, 50), (0, 180), (0, 250), (0, 2160), (0, 3059), (500, 2500)]
    for a, b in pairs:
        assert len(route(topo, a, b)) == hop_count(topo, a, b)


def test_route_edges_exist_in_graph(topo):
    """Every consecutive crossbar pair on a route is a wired link."""
    g = topo.graph
    for a, b in [(0, 3), (0, 50), (0, 1000), (0, 2200), (700, 2500), (2300, 100)]:
        path = route(topo, a, b)
        full = [topo.graph_node(a), *path, topo.graph_node(b)]
        for u, v in zip(full, full[1:]):
            assert g.has_edge(u, v), f"{u} -- {v} missing on route {a}->{b}"


# --- BFS oracle (the closed form equals shortest paths over the graph) -----------

@settings(max_examples=40, deadline=None)
@given(src=st.integers(min_value=0, max_value=3059),
       dst=st.integers(min_value=0, max_value=3059))
def test_closed_form_matches_bfs(src, dst):
    topo = _topo_cached()
    assert hop_count(topo, src, dst) == bfs_hop_count(topo, src, dst)


_TOPO_CACHE = None


def _topo_cached():
    global _TOPO_CACHE
    if _TOPO_CACHE is None:
        _TOPO_CACHE = RoadrunnerTopology(cu_count=17)
    return _TOPO_CACHE


# --- smaller systems --------------------------------------------------------------

def test_single_cu_hops_capped_at_3():
    topo = RoadrunnerTopology(cu_count=1)
    census = hop_census(topo, src=0)
    assert set(census) == {0, 1, 3}


def test_two_cu_census():
    topo = RoadrunnerTopology(cu_count=2)
    census = hop_census(topo, src=0)
    # 8 same-index nodes in CU 2 at 3 hops, rest of CU 2 at 5.
    assert census[3] == 172 + 8
    assert census[5] == 172


# --- Fig 10 latency staircase -------------------------------------------------------

def test_fig10_latency_levels(topo):
    model = IBLatencyModel()
    lat = model.zero_byte_latency
    assert lat(topo, 0, 1) / US == pytest.approx(paper_data.MPI_MIN_LATENCY_US, rel=0.02)
    assert lat(topo, 0, 100) / US == pytest.approx(paper_data.MPI_SAME_CU_LATENCY_US, rel=0.03)
    assert lat(topo, 0, 250) / US == pytest.approx(paper_data.MPI_5HOP_LATENCY_US, rel=0.04)
    # far side, different crossbar: "just under 4 us"
    far = lat(topo, 0, 2200) / US
    assert 3.7 <= far < 4.0


def test_fig10_map_is_monotone_staircase(topo):
    model = IBLatencyModel()
    series = model.latency_map(topo, src=0)
    assert len(series) == 3060
    assert series[0] == 0.0
    # Plateaus: within-crossbar < within-CU < near-side < far-side.
    assert max(series[1:8]) < min(series[8:180])
    assert max(series[8:180]) < min(s for s in series[180:2160] if s > model.software_overhead + 3.1e-7 * 3)


def test_fig10_periodic_dips_to_3_hops(topo):
    """The 'unique wiring' dips: the first 8 nodes of each near-side CU
    are 3 hops from node 0 instead of 5."""
    model = IBLatencyModel()
    series = model.latency_map(topo, src=0)
    for cu in range(1, 12):
        base = cu * 180
        dip = series[base]
        plateau = series[base + 20]
        assert dip < plateau


def test_message_latency_adds_bandwidth_term(topo):
    model = IBLatencyModel()
    zero = model.zero_byte_latency(topo, 0, 100)
    one_mb = model.message_latency(topo, 0, 100, 1_000_000)
    assert one_mb == pytest.approx(zero + 1_000_000 / model.bandwidth)
    with pytest.raises(ValueError):
        model.message_latency(topo, 0, 100, -1)


def test_pinned_buffers_reach_1_6_gb_s(topo):
    model = IBLatencyModel(bandwidth=paper_data.IB_1MB_PINNED_MB_S * 1e6)
    t = model.message_latency(topo, 0, 100, 1_000_000)
    achieved = 1_000_000 / t
    # Effective rate sits just under the 1.6 GB/s pinned-buffer peak.
    assert 1.5e9 < achieved < 1.6e9


@settings(max_examples=25, deadline=None)
@given(src=st.integers(min_value=0, max_value=3059))
def test_census_shape_invariant_across_sources(src):
    """The hop census depends only on (a) how many compute nodes share
    the source's crossbar and (b) which fat-tree side its CU is on."""
    topo = _topo_cached()
    census = hop_census(topo, src=src)
    cu, local = topo.split(src)
    crossbar_peers = 8 if local < 176 else 4  # nodes 176-179: mixed xbar
    same_side_cus = (12 if cu < 12 else 5) - 1
    cross_side_cus = 17 - 1 - same_side_cus
    assert census[0] == 1
    assert census[1] == crossbar_peers - 1
    assert census[3] == (180 - crossbar_peers) + same_side_cus * crossbar_peers
    assert census[5] == (
        same_side_cus * (180 - crossbar_peers) + cross_side_cus * crossbar_peers
    )
    assert census[7] == cross_side_cus * (180 - crossbar_peers)
    assert sum(census.values()) == 3060


# --- vectorized hop table (the cached fast path) -------------------------------

def test_hop_vector_matches_scalar_hop_count(topo):
    """The cached per-source hop table must agree element-for-element
    with the scalar closed form for arbitrary sources."""
    for src in (0, 179, 180, 1536, 3059):
        hops = hop_vector(topo, src)
        assert len(hops) == topo.node_count
        assert hops[src] == 0
        for dst in range(0, topo.node_count, 97):
            assert hops[dst] == hop_count(topo, src, dst)


def test_census_totals_equal_machine_size(topo):
    """Every source's census must account for exactly the 3,060 compute
    nodes of the full machine — the cached table drops or double-counts
    nothing."""
    for src in (0, 7, 176, 179, 1529, 3059):
        census = hop_census(topo, src=src)
        assert sum(census.values()) == 3060
        assert census[0] == 1  # the source itself, at distance zero


def test_hop_vector_rejects_out_of_range_source(topo):
    with pytest.raises(ValueError):
        hop_vector(topo, -1)
    with pytest.raises(ValueError):
        hop_vector(topo, topo.node_count)
