"""Tests for the timeline/Gantt utility and its sweep integration."""

import pytest

from repro.comm.mpi import UniformFabric
from repro.comm.transport import Transport
from repro.sim.timeline import Interval, Timeline
from repro.sweep3d.decomposition import Decomposition2D
from repro.sweep3d.input import SweepInput
from repro.sweep3d.parallel import ParallelSweep


def test_interval_validation():
    with pytest.raises(ValueError):
        Interval("a", 2.0, 1.0)
    assert Interval("a", 1.0, 3.0).duration == pytest.approx(2.0)


def test_timeline_busy_time_and_utilization():
    tl = Timeline()
    tl.record("a", 0.0, 1.0)
    tl.record("a", 2.0, 3.0)
    tl.record("b", 0.0, 4.0)
    assert tl.busy_time("a") == pytest.approx(2.0)
    assert tl.span == (0.0, 4.0)
    assert tl.utilization("a") == pytest.approx(0.5)
    assert tl.utilization("b") == pytest.approx(1.0)


def test_timeline_actor_order():
    tl = Timeline()
    tl.record("z", 0, 1)
    tl.record("a", 1, 2)
    tl.record("z", 2, 3)
    assert tl.actors() == ["z", "a"]


def test_render_gantt_shape():
    tl = Timeline()
    tl.record("r0", 0.0, 0.5)
    tl.record("r1", 0.5, 1.0)
    text = tl.render(width=10)
    lines = text.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("r0 |")
    # r0 busy in the first half, idle in the second.
    row0 = lines[0].split("|")[1]
    assert row0[:5] == "#####"
    assert row0[5:] == "....."


def test_render_empty_and_validation():
    assert Timeline().render() == "(empty timeline)"
    tl = Timeline()
    tl.record("a", 0, 1)
    with pytest.raises(ValueError):
        tl.render(width=0)


def test_sweep_timeline_integration():
    inp = SweepInput(it=2, jt=2, kt=4, mk=2, mmi=1)
    dec = Decomposition2D(2, 2)
    tl = Timeline()
    fabric = UniformFabric(Transport("free", 1e-12, 1e18))
    result = ParallelSweep(inp, dec, 1e-6, fabric, timeline=tl).run()
    # One interval per (rank, octant, block): 4 ranks x 8 x 2.
    assert len(tl.intervals) == 4 * 8 * 2
    assert set(tl.actors()) == {f"rank{r}" for r in range(4)}
    # Busy time per rank equals the DES's own accounting.
    assert tl.busy_time("rank0") == pytest.approx(result.compute_time_per_rank)
    # The corner ranks fill/drain: utilization below 1.
    assert 0 < tl.utilization("rank0") < 1
    text = tl.render(width=40)
    assert "rank3" in text
