"""Tests for the distributed KBA sweep: numerics match the sequential
solver; simulated timing matches the analytic wavefront model."""

import numpy as np
import pytest

from repro.comm.mpi import Location, UniformFabric
from repro.comm.transport import Transport
from repro.sweep3d.decomposition import Decomposition2D
from repro.sweep3d.input import SweepInput
from repro.sweep3d.parallel import ParallelSweep
from repro.sweep3d.perfmodel import SweepMachineParams, WavefrontModel
from repro.sweep3d.quadrature import make_angle_set
from repro.sweep3d.solver import sweep_all_octants
from repro.units import US

FREE_FABRIC = UniformFabric(Transport("free", latency=1e-12, bandwidth=1e18))


def sequential_global(inp, decomp):
    """The sequential sweep of the assembled global problem."""
    global_inp = inp.with_subgrid(
        inp.it * decomp.npe_i, inp.jt * decomp.npe_j, inp.kt
    )
    ang = make_angle_set(inp.mmi)
    src = np.full((global_inp.it, global_inp.jt, global_inp.kt), inp.q)
    phi, _, _ = sweep_all_octants(global_inp, src, ang)
    return phi


# --- decomposition -----------------------------------------------------------------

def test_decomposition_coords_roundtrip():
    dec = Decomposition2D(4, 3)
    for rank in range(dec.size):
        pi, pj = dec.coords(rank)
        assert dec.rank_of(pi, pj) == rank
    with pytest.raises(ValueError):
        dec.coords(12)
    with pytest.raises(ValueError):
        dec.rank_of(4, 0)


def test_decomposition_neighbours():
    dec = Decomposition2D(3, 3)
    center = dec.rank_of(1, 1)
    assert dec.upstream_i(center, +1) == dec.rank_of(0, 1)
    assert dec.downstream_i(center, +1) == dec.rank_of(2, 1)
    assert dec.upstream_i(center, -1) == dec.rank_of(2, 1)
    assert dec.upstream_j(center, +1) == dec.rank_of(1, 0)
    corner = dec.rank_of(0, 0)
    assert dec.upstream_i(corner, +1) is None
    assert dec.upstream_j(corner, +1) is None
    assert dec.downstream_i(dec.rank_of(2, 0), +1) is None


def test_near_square_factorization():
    assert Decomposition2D.near_square(32) == Decomposition2D(8, 4)
    assert Decomposition2D.near_square(36) == Decomposition2D(6, 6)
    assert Decomposition2D.near_square(7) == Decomposition2D(7, 1)
    assert Decomposition2D.near_square(1) == Decomposition2D(1, 1)
    with pytest.raises(ValueError):
        Decomposition2D.near_square(0)


def test_pipeline_depth():
    assert Decomposition2D(8, 4).pipeline_depth == 10
    assert Decomposition2D(1, 1).pipeline_depth == 0


# --- numerics: distributed == sequential ------------------------------------------------

@pytest.mark.parametrize("npe", [(1, 1), (2, 1), (1, 2), (2, 2), (3, 2), (2, 4)])
def test_parallel_flux_matches_sequential(npe):
    inp = SweepInput(it=3, jt=4, kt=6, mk=2, mmi=3)
    dec = Decomposition2D(*npe)
    sweep = ParallelSweep(inp, dec, grind_time=1e-9, fabric=FREE_FABRIC)
    result = sweep.run()
    expected = sequential_global(inp, dec)
    np.testing.assert_allclose(result.phi, expected, rtol=1e-12, atol=1e-13)


def test_parallel_flux_independent_of_transport_speed():
    """Changing link speeds must change time, never physics."""
    inp = SweepInput(it=2, jt=2, kt=4, mk=2, mmi=2)
    dec = Decomposition2D(2, 2)
    slow = UniformFabric(Transport("slow", latency=1e-3, bandwidth=1e6))
    phi_fast = ParallelSweep(inp, dec, 1e-9, FREE_FABRIC).run().phi
    slow_result = ParallelSweep(inp, dec, 1e-9, slow).run()
    np.testing.assert_array_equal(phi_fast, slow_result.phi)


def test_parallel_multiple_iterations_amortize_fill():
    """Per-iteration time with more iterations is at most the single-
    iteration time (the drain of one iteration overlaps the next fill)
    and at least the pure work time."""
    inp = SweepInput(it=2, jt=2, kt=4, mk=2, mmi=2)
    dec = Decomposition2D(2, 2)
    grind = 1e-6
    sweep = ParallelSweep(inp, dec, grind_time=grind, fabric=FREE_FABRIC)
    one = sweep.run(iterations=1)
    three = sweep.run(iterations=3)
    work_only = 8 * inp.k_blocks * inp.block_angle_work() * grind
    assert three.iterations == 3
    assert work_only <= three.iteration_time <= one.iteration_time * (1 + 1e-9)


def test_parallel_message_statistics():
    inp = SweepInput(it=2, jt=2, kt=4, mk=2, mmi=2)
    dec = Decomposition2D(2, 2)
    result = ParallelSweep(inp, dec, 1e-9, FREE_FABRIC).run()
    # Each octant: 2 k-blocks; boundary links: 2 i-links + 2 j-links,
    # each carrying one message per block per octant.
    expected_msgs = 8 * 2 * (2 + 2)
    assert result.messages == expected_msgs
    surface_bytes = 2 * 2 * 2 * 8  # jt*mk*M*8 == it*mk*M*8 here
    assert result.bytes_sent == expected_msgs * surface_bytes


def test_parallel_validates_arguments():
    inp = SweepInput(it=2, jt=2, kt=4, mk=2, mmi=2)
    dec = Decomposition2D(2, 2)
    with pytest.raises(ValueError):
        ParallelSweep(inp, dec, grind_time=0.0, fabric=FREE_FABRIC)
    with pytest.raises(ValueError):
        ParallelSweep(inp, dec, 1e-9, FREE_FABRIC, locations=[Location(0)])
    sweep = ParallelSweep(inp, dec, 1e-9, FREE_FABRIC)
    with pytest.raises(ValueError):
        sweep.run(iterations=0)
    with pytest.raises(ValueError):
        sweep.run(source=np.ones((1, 1, 1)))


def test_parallel_custom_source():
    inp = SweepInput(it=2, jt=2, kt=2, mk=1, mmi=2)
    dec = Decomposition2D(1, 1)
    src = np.arange(8, dtype=float).reshape(2, 2, 2)
    result = ParallelSweep(inp, dec, 1e-9, FREE_FABRIC).run(source=src)
    ang = make_angle_set(2)
    expected, _, _ = sweep_all_octants(inp, src, ang)
    np.testing.assert_allclose(result.phi, expected, rtol=1e-13)


# --- timing: DES vs analytic model --------------------------------------------------------

def test_single_rank_time_is_pure_compute():
    inp = SweepInput(it=2, jt=2, kt=8, mk=2, mmi=2)
    dec = Decomposition2D(1, 1)
    grind = 1e-6
    result = ParallelSweep(inp, dec, grind, FREE_FABRIC).run()
    expected = 8 * inp.k_blocks * inp.block_angle_work() * grind
    assert result.iteration_time == pytest.approx(expected, rel=1e-9)


@pytest.mark.parametrize("npe", [(2, 2), (4, 4), (6, 6)])
def test_des_matches_wavefront_model_square_arrays(npe):
    """The analytic model's fills=2.5 is exact for square arrays with
    negligible communication."""
    inp = SweepInput(it=2, jt=2, kt=10, mk=2, mmi=1)
    dec = Decomposition2D(*npe)
    grind = 1.0 / inp.block_angle_work()  # block time = 1 s
    des = ParallelSweep(inp, dec, grind, FREE_FABRIC).run().iteration_time
    params = SweepMachineParams("test", grind, Transport("free", 1e-12, 1e18))
    model = WavefrontModel(inp, dec, params).iteration_time()
    assert des == pytest.approx(model, rel=1e-6)


def test_des_vs_model_with_real_communication():
    """With a latency/bandwidth transport the two-term model (work pays
    serialization, fill pays full latency) tracks the DES closely."""
    inp = SweepInput(it=3, jt=3, kt=8, mk=2, mmi=2)
    dec = Decomposition2D(4, 4)
    grind = 50e-9
    transport = Transport("ib-ish", latency=2.16 * US, bandwidth=1e9)
    des = ParallelSweep(inp, dec, grind, UniformFabric(transport)).run().iteration_time
    model = WavefrontModel(
        inp, dec, SweepMachineParams("test", grind, transport)
    ).iteration_time()
    assert des == pytest.approx(model, rel=0.02)


def test_des_vs_model_latency_dominated():
    """Fill-dominated regime: pipeline deeper than per-octant work."""
    inp = SweepInput(it=2, jt=2, kt=4, mk=2, mmi=1)
    dec = Decomposition2D(8, 8)
    grind = 100e-9
    transport = Transport("lat", latency=5 * US, bandwidth=1e9)
    des = ParallelSweep(inp, dec, grind, UniformFabric(transport)).run().iteration_time
    model = WavefrontModel(
        inp, dec, SweepMachineParams("test", grind, transport)
    ).iteration_time()
    assert des == pytest.approx(model, rel=0.10)


def test_model_elongated_arrays_underestimates_slightly():
    """For elongated arrays the DES sits at or above the fills=2.5
    model, by less than 15%."""
    inp = SweepInput(it=2, jt=2, kt=10, mk=2, mmi=1)
    for npe in [(8, 1), (16, 2)]:
        dec = Decomposition2D(*npe)
        grind = 1.0 / inp.block_angle_work()
        des = ParallelSweep(inp, dec, grind, FREE_FABRIC).run().iteration_time
        params = SweepMachineParams("test", grind, Transport("free", 1e-12, 1e18))
        model = WavefrontModel(inp, dec, params).iteration_time()
        assert model <= des * (1 + 1e-9)
        assert des <= model * 1.15


# --- distributed source iteration ------------------------------------------------

def test_solve_distributed_matches_sequential_solver():
    """The full distributed source iteration converges to the same flux
    as the sequential solver — scattering update, convergence test and
    all."""
    from repro.sweep3d.solver import solve
    import dataclasses

    inp = SweepInput(it=3, jt=3, kt=4, mk=2, mmi=3, sigma_t=1.0, sigma_s=0.5)
    dec = Decomposition2D(2, 2)
    sweep = ParallelSweep(inp, dec, grind_time=1e-9, fabric=FREE_FABRIC)
    result, info = sweep.solve_distributed(max_iterations=100)
    assert info["converged"]

    global_inp = dataclasses.replace(
        inp, it=inp.it * 2, jt=inp.jt * 2
    )
    sequential = solve(global_inp, max_iterations=100)
    assert info["iterations"] == sequential.iterations
    np.testing.assert_allclose(result.phi, sequential.phi, rtol=1e-11, atol=1e-12)


def test_solve_distributed_reports_nonconvergence():
    inp = SweepInput(it=2, jt=2, kt=2, mk=1, mmi=2, sigma_t=1.0, sigma_s=0.9)
    dec = Decomposition2D(2, 1)
    sweep = ParallelSweep(inp, dec, grind_time=1e-9, fabric=FREE_FABRIC)
    _result, info = sweep.solve_distributed(max_iterations=2)
    assert not info["converged"]
    assert info["iterations"] == 2


def test_solve_distributed_validation():
    inp = SweepInput(it=2, jt=2, kt=2, mk=1, mmi=2)
    sweep = ParallelSweep(inp, Decomposition2D(1, 1), 1e-9, FREE_FABRIC)
    with pytest.raises(ValueError):
        sweep.solve_distributed(max_iterations=0)
