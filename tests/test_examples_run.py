"""Smoke tests: every example script runs cleanly and prints its
load-bearing numbers.  Kept out of the default fast path for the heavy
ones via coarse grouping; the whole module still finishes in well under
a minute."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: script -> substrings its output must contain
EXPECTATIONS = {
    "quickstart.py": ["1.38 Pflop/s", "1.026", "437", "5.38"],
    "sweep3d_transport.py": ["particle balance residual", "max |parallel - serial|"],
    "communication_hierarchy.py": ["8.78 us", "1087", "EIB"],
    "hybrid_modes.py": ["spe-centric", "1.9", "256 KiB"],
    "petaflop_projection.py": ["Cell (best)", "improvement"],
    "three_applications.py": ["two-stream", "1.00x", "1.95x"],
    "contention_study.py": ["incast", "Amdahl"],
    "verification_study.py": ["order of accuracy", "rank0"],
    "machine_characterization.py": ["Communication hierarchy", "29.28"],
    "failure_study.py": ["identical traces: True", "3060", "Daly"],
}


def test_every_example_has_expectations():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(EXPECTATIONS)


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for marker in EXPECTATIONS[script]:
        assert marker in proc.stdout, (script, marker)
