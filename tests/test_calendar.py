"""The calendar-queue scheduler backend (see ``repro.sim.calendar``).

Three layers of evidence that the calendar backend is order-identical
to the heap it replaces:

* a hypothesis property test driving randomized schedule / cancel /
  reschedule / pop sequences through :class:`CalendarQueue` and a
  ``heapq`` reference model side by side, asserting bit-identical
  ``(time, priority, seq)`` pop order;
* engine-level runs of the same workload under
  ``Simulator(scheduler="calendar")`` and ``scheduler="heap"``,
  asserting identical event timelines;
* the ``sweep16`` scenario (16-rank KBA sweep with the recorder
  attached) exported under both backends, asserting identical span
  streams — the full instrumented pipeline, not just the queue.
"""

from __future__ import annotations

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import run_scenario, span_stream
from repro.sim import calendar as calendar_mod
from repro.sim.calendar import SCHEDULERS, CalendarQueue, _default_scheduler
from repro.sim.engine import Simulator


# -- reference model --------------------------------------------------------


class _HeapReference:
    """The seed's future-event set: one heap of (time, priority, seq)
    with the same lazy cancellation the CalendarQueue offers."""

    def __init__(self):
        self._heap: list[tuple[float, int, int]] = []
        self._cancelled: set[int] = set()
        self._pending: set[int] = set()

    def __len__(self):
        return len(self._pending)

    def push(self, time, priority, seq):
        heapq.heappush(self._heap, (time, priority, seq))
        self._pending.add(seq)

    def cancel(self, seq):
        if seq not in self._pending:
            return False
        self._pending.remove(seq)
        self._cancelled.add(seq)
        return True

    def pop(self):
        while self._heap:
            time, priority, seq = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.remove(seq)
                continue
            self._pending.remove(seq)
            return time, priority, seq
        raise IndexError("empty")


#: times drawn from a small pool so instants collide (the clustered
#: schedule the calendar is built for), mixed with a few odd floats
_TIMES = st.sampled_from([0.0, 0.5, 1.0, 1.0 + 2**-40, 2.0, 3.25, 7.0])
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _TIMES, st.integers(0, 2)),
        st.tuples(st.just("cancel"), st.integers(0, 10**6)),
        st.tuples(st.just("resched"), st.integers(0, 10**6), _TIMES,
                  st.integers(0, 2)),
        st.tuples(st.just("pop")),
    ),
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_property_pop_order_matches_heap_reference(ops):
    """Randomized schedule/cancel/reschedule/pop sequences: the
    CalendarQueue pops in the heap's exact (time, priority, seq)
    order, with cancellations honored lazily."""
    cq = CalendarQueue()
    ref = _HeapReference()
    seq = 0
    live: list[int] = []  # seqs pushed and possibly still pending
    for op in ops:
        if op[0] == "push":
            _, time, priority = op
            cq.push(time, priority, seq)
            ref.push(time, priority, seq)
            live.append(seq)
            seq += 1
        elif op[0] == "cancel":
            if not live:
                continue
            victim = live[op[1] % len(live)]
            assert cq.cancel(victim) == ref.cancel(victim)
        elif op[0] == "resched":
            _, pick, time, priority = op
            if not live:
                continue
            victim = live[pick % len(live)]
            if cq.cancel(victim):
                assert ref.cancel(victim)
                cq.push(time, priority, seq)
                ref.push(time, priority, seq)
                live.append(seq)
                seq += 1
        else:  # pop
            assert len(cq) == len(ref)
            if len(ref) == 0:
                with pytest.raises(IndexError):
                    cq.pop()
                continue
            expect = ref.pop()
            t, lane, s, item = cq.pop()
            assert (t, lane, s) == expect
            assert item is None
        peek = cq.peek()
        assert (peek is not None) == (len(cq) > 0)
    # Drain both to the end: full order equality.
    while len(ref):
        expect = ref.pop()
        t, lane, s, _item = cq.pop()
        assert (t, lane, s) == expect
    assert len(cq) == 0
    assert cq.peek() is None


def test_queue_edge_cases():
    cq = CalendarQueue()
    cq.push(1.0, 1, 7, item="x")
    with pytest.raises(ValueError):
        cq.push(2.0, 1, 7)  # duplicate seq
    assert cq.cancel(99) is False
    assert cq.peek() == (1.0, 1, 7)
    assert cq.pop() == (1.0, 1, 7, "x")
    with pytest.raises(IndexError):
        cq.pop()


# -- backend selection ------------------------------------------------------


def test_scheduler_validation():
    with pytest.raises(ValueError):
        Simulator(scheduler="fifo")
    for name in SCHEDULERS:
        assert Simulator(scheduler=name).scheduler == name


def test_repro_sched_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCHED", "heap")
    assert _default_scheduler() == "heap"
    monkeypatch.setenv("REPRO_SCHED", "bogus")
    with pytest.raises(ValueError):
        _default_scheduler()
    monkeypatch.delenv("REPRO_SCHED")
    assert _default_scheduler() == "calendar"


def test_default_scheduler_monkeypatch(monkeypatch):
    monkeypatch.setattr(calendar_mod, "DEFAULT_SCHEDULER", "heap")
    assert Simulator().scheduler == "heap"
    monkeypatch.setattr(calendar_mod, "DEFAULT_SCHEDULER", "calendar")
    assert Simulator().scheduler == "calendar"


# -- engine timelines -------------------------------------------------------


def _timeline(scheduler: str) -> list[tuple]:
    """A mixed workload's resume timeline under one backend: staggered
    timeout chains (clustered instants), event signalling, and
    spawn/join — every scheduling site the engine inlines."""
    sim = Simulator(scheduler=scheduler)
    record: list[tuple] = []

    def chain(sim, tag, delay, n):
        for _ in range(n):
            yield sim.timeout(delay)
            record.append(("t", tag, sim.now))

    def child(sim, tag):
        yield sim.timeout(0.5)
        record.append(("c", tag, sim.now))
        return tag

    def parent(sim, n):
        for i in range(n):
            got = yield sim.process(child(sim, i))
            record.append(("j", got, sim.now))

    for i in range(8):
        sim.process(chain(sim, i, 1.0 + 0.25 * (i % 3), 40))
    sim.process(parent(sim, 25))
    sim.run()
    return record


def test_engine_backends_identical_timeline():
    assert _timeline("calendar") == _timeline("heap")


def test_sweep16_span_stream_identical_across_backends(monkeypatch):
    """The full instrumented 16-rank sweep exports an identical span
    stream under both scheduler backends."""
    streams = {}
    for backend in SCHEDULERS:
        monkeypatch.setattr(calendar_mod, "DEFAULT_SCHEDULER", backend)
        rec, sim_time = run_scenario("sweep16")
        streams[backend] = (sim_time, span_stream(rec))
    assert streams["calendar"] == streams["heap"]
    sim_time, stream = streams["calendar"]
    assert sim_time > 0
    assert len(stream) > 0
