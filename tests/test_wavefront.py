"""Tests for the Fig 11 wavefront sets — including the check that they
match the discrete-event sweep's actual execution order."""

import pytest

from repro.comm.mpi import UniformFabric
from repro.comm.transport import Transport
from repro.sim.timeline import Timeline
from repro.sweep3d.decomposition import Decomposition2D
from repro.sweep3d.input import SweepInput
from repro.sweep3d.parallel import ParallelSweep
from repro.sweep3d.wavefront import (
    processed_cells,
    render_2d,
    total_steps,
    wavefront_cells,
)


def test_total_steps_by_dimension():
    """Fig 11's three rows: 1-D, 2-D, 3-D propagation."""
    assert total_steps((4,)) == 4
    assert total_steps((4, 4)) == 7
    assert total_steps((4, 4, 4)) == 10


def test_wavefront_is_the_antidiagonal():
    assert wavefront_cells((4, 4), 1) == {(0, 0)}
    assert wavefront_cells((4, 4), 2) == {(0, 1), (1, 0)}
    assert wavefront_cells((4, 4), 3) == {(0, 2), (1, 1), (2, 0)}


def test_wavefronts_partition_the_grid():
    shape = (3, 4, 2)
    seen = set()
    for step in range(1, total_steps(shape) + 1):
        front = wavefront_cells(shape, step)
        assert front, step
        assert not (front & seen)
        seen |= front
    assert len(seen) == 3 * 4 * 2


def test_processed_grows_monotonically():
    shape = (4, 4)
    for step in range(1, total_steps(shape) + 1):
        assert processed_cells(shape, step) < processed_cells(shape, step + 1)


def test_dependencies_always_satisfied():
    """Every wavefront cell's upstream neighbours were processed on an
    earlier step — the defining property of the sweep."""
    shape = (3, 3, 3)
    for step in range(1, total_steps(shape) + 1):
        done = processed_cells(shape, step)
        for cell in wavefront_cells(shape, step):
            for axis in range(3):
                if cell[axis] > 0:
                    upstream = tuple(
                        c - (1 if a == axis else 0) for a, c in enumerate(cell)
                    )
                    assert upstream in done


def test_step_range_validation():
    with pytest.raises(ValueError):
        wavefront_cells((4, 4), 0)
    with pytest.raises(ValueError):
        wavefront_cells((4, 4), 8)
    with pytest.raises(ValueError):
        total_steps(())
    with pytest.raises(ValueError):
        render_2d((2, 2, 2), 1)  # type: ignore[arg-type]


def test_render_2d_frames():
    frame = render_2d((3, 3), 2)
    assert frame.splitlines() == ["#*.", "*..", "..."]
    last = render_2d((3, 3), total_steps((3, 3)))
    assert last.splitlines()[-1][-1] == "*"


def test_des_sweep_executes_in_wavefront_order():
    """The DES's first-octant block start times follow the Fig 11
    diagonals: rank (pi, pj) starts at step pi + pj + 1."""
    inp = SweepInput(it=2, jt=2, kt=2, mk=2, mmi=1)  # one block per octant
    dec = Decomposition2D(4, 4)
    tl = Timeline()
    grind = 1e-6
    block = inp.block_angle_work() * grind
    fabric = UniformFabric(Transport("free", 1e-12, 1e18))
    ParallelSweep(inp, dec, grind, fabric, timeline=tl).run()
    # First octant = label "oct0b0": start time / block = diagonal index.
    starts = {}
    for iv in tl.intervals:
        if iv.label == "oct0b0":
            rank = int(iv.actor.replace("rank", ""))
            starts[rank] = iv.start
    for rank, start in starts.items():
        pi, pj = dec.coords(rank)
        step = round(start / block)
        assert step == pi + pj, (rank, start)
        assert (pi, pj) in wavefront_cells((4, 4), step + 1)
