"""Tests for survivable collectives: bounded receives, the abort
contract (a dead partner raises ``DeliveryError`` within an explicit
DES-time bound instead of parking forever), and the shrink-and-continue
protocol over live membership."""

import pytest

from repro.comm.membership import Membership
from repro.comm.mpi import DeliveryError, Location, SimMPI, UniformFabric
from repro.comm.transport import Transport
from repro.resilience import FabricHealth, FaultInjector
from repro.sim import Simulator, Tracer
from repro.units import US

LATENCY = 1 * US
TIMEOUT = 100 * US


def make_comm(n_ranks, health=None):
    sim = Simulator()
    fabric = UniformFabric(Transport("test", latency=LATENCY, bandwidth=1e9))
    comm = SimMPI(
        sim, fabric, [Location(node=i) for i in range(n_ranks)],
        tracer=Tracer(categories=frozenset()),
    )
    if health is not None:
        comm.attach_health(health)
    return sim, comm


def collect(sim, comm, body, ranks):
    """Run ``body(rank)`` on each listed rank; returns ``{rank: (value,
    time)}`` for completions and ``{rank: (error, time)}`` for raises."""
    done, failed = {}, {}

    def wrap(r):
        rank = comm.rank(r)
        try:
            value = yield from body(rank)
        except DeliveryError as err:
            failed[r] = (err, sim.now)
            return
        done[r] = (value, sim.now)

    for r in ranks:
        sim.process(wrap(r), name=f"rank{r}")
    sim.run()
    return done, failed


# -- bounded receives --------------------------------------------------------

def test_recv_timeout_must_be_positive():
    sim, comm = make_comm(2)

    def body(rank):
        yield from rank.recv(source=1, timeout=0.0)

    proc = sim.process(body(comm.rank(0)))
    with pytest.raises(ValueError):
        sim.run()
    assert not proc.is_alive


def test_recv_timeout_unchanged_timeline_when_message_wins():
    """A timeout that never fires must not perturb delivery times."""
    times = {}
    for use_timeout in (False, True):
        sim, comm = make_comm(2)

        def sender(rank):
            yield from rank.send(1, size=256)

        def receiver(rank):
            kwargs = {"timeout": TIMEOUT} if use_timeout else {}
            yield from rank.recv(source=0, **kwargs)
            times[use_timeout] = sim.now

        sim.process(sender(comm.rank(0)))
        sim.process(receiver(comm.rank(1)))
        sim.run()
    assert times[False] == times[True]


def test_dead_partner_recv_raises_at_exact_deadline():
    sim, comm = make_comm(2)

    def body(rank):
        yield from rank.recv(source=1, timeout=TIMEOUT)

    done, failed = collect(sim, comm, body, ranks=[0])
    assert not done and 0 in failed
    _err, t = failed[0]
    assert t == pytest.approx(TIMEOUT)


# -- abort contract: collectives over a dead rank ---------------------------

def test_dead_rank_barrier_raises_within_two_timeouts():
    """Rank 3 never participates: every survivor must abort within an
    explicit DES-time bound (one armed timeout per parked receive, so
    at most two timeout periods end-to-end) instead of hanging."""
    sim, comm = make_comm(4)

    def body(rank):
        yield from rank.barrier(timeout=TIMEOUT)

    done, failed = collect(sim, comm, body, ranks=[0, 1, 2])
    assert not done
    assert set(failed) == {0, 1, 2}
    for _r, (_err, t) in failed.items():
        assert TIMEOUT <= t <= 2 * TIMEOUT


def test_dead_rank_allreduce_raises_within_two_timeouts():
    sim, comm = make_comm(8)

    def body(rank):
        return (yield from rank.allreduce(1, op=lambda a, b: a + b,
                                          timeout=TIMEOUT))

    done, failed = collect(sim, comm, body, ranks=range(7))
    assert not done
    assert set(failed) == set(range(7))
    for _r, (_err, t) in failed.items():
        assert TIMEOUT <= t <= 2 * TIMEOUT


def test_collectives_without_timeout_unchanged():
    """The historical no-timeout path still completes normally."""
    sim, comm = make_comm(4)

    def body(rank):
        yield from rank.barrier()
        return (yield from rank.allreduce(rank.index, op=max))

    done, failed = collect(sim, comm, body, ranks=range(4))
    assert not failed
    assert all(v == 3 for v, _t in done.values())


# -- shrink-and-continue ----------------------------------------------------

def test_shrink_needs_membership_and_timeout():
    sim, comm = make_comm(2)

    def no_timeout(rank):
        yield from rank.barrier(shrink=True)

    sim.process(no_timeout(comm.rank(0)))
    with pytest.raises(ValueError):
        sim.run()

    sim2, comm2 = make_comm(2)  # no attach_health

    def no_membership(rank):
        yield from rank.barrier(timeout=TIMEOUT, shrink=True)

    sim2.process(no_membership(comm2.rank(0)))
    with pytest.raises(ValueError):
        sim2.run()


def test_shrink_allreduce_over_survivors_only():
    """Rank 2's node is dead before the collective: the other three
    reduce each other's contributions and all agree."""
    health = FabricHealth()
    health.fail_node(2)
    sim, comm = make_comm(4, health=health)

    def body(rank):
        return (yield from rank.allreduce(
            rank.index + 1, op=lambda a, b: a + b,
            timeout=TIMEOUT, shrink=True,
        ))

    done, failed = collect(sim, comm, body, ranks=[0, 1, 3])
    assert not failed
    values = {v for v, _t in done.values()}
    assert values == {1 + 2 + 4}
    assert comm.membership.live_ranks() == (0, 1, 3)
    # termination bound: snapshot is already survivor-only, no retry
    assert all(t <= 2 * TIMEOUT for _v, t in done.values())


def test_shrink_excluded_rank_raises():
    health = FabricHealth()
    health.fail_node(1)
    sim, comm = make_comm(2, health=health)

    def body(rank):
        yield from rank.barrier(timeout=TIMEOUT, shrink=True)

    done, failed = collect(sim, comm, body, ranks=[1])
    assert not done and 1 in failed


def test_shrink_mid_collective_death_converges_and_is_deterministic():
    """Kill a rank *during* the collective: every survivor must return
    the same value within a bounded number of timeout periods, and the
    whole schedule must replay bit-identically."""

    def run_once():
        health = FabricHealth()
        sim, comm = make_comm(8, health=health)
        injector = FaultInjector(sim, health=health)

        def body(rank):
            return (yield from rank.allreduce(
                rank.index + 1, op=lambda a, b: a + b,
                timeout=TIMEOUT, shrink=True,
            ))

        done, failed = {}, {}

        def wrap(r):
            rank = comm.rank(r)
            try:
                value = yield from body(rank)
            except DeliveryError as err:
                failed[r] = (str(err), sim.now)
                return
            done[r] = (value, sim.now)

        for r in range(8):
            proc = sim.process(wrap(r), name=f"rank{r}")
            injector.watch(r, proc)
        injector.fail_node_at(1.5 * US, 1)
        sim.run()
        return done, failed, sim.now

    done, failed, end = run_once()
    assert 1 not in done and 1 not in failed  # the victim just dies
    assert set(done) == {0, 2, 3, 4, 5, 6, 7} and not failed
    values = {v for v, _t in done.values()}
    assert len(values) == 1  # single consistent commit
    total = sum(range(1, 9))
    assert values <= {total, total - 2}  # with or without the victim
    assert all(t <= 3 * TIMEOUT for _v, t in done.values())
    assert run_once() == (done, failed, end)  # exact replay


def test_shrink_bcast_delivers_or_fails_consistently():
    # live root, one dead middle rank: value reaches every survivor
    health = FabricHealth()
    health.fail_node(2)
    sim, comm = make_comm(4, health=health)

    def body(rank):
        return (yield from rank.bcast(
            "payload" if rank.index == 0 else None, root=0,
            timeout=TIMEOUT, shrink=True,
        ))

    done, failed = collect(sim, comm, body, ranks=[0, 1, 3])
    assert not failed
    assert {v for v, _t in done.values()} == {"payload"}

    # dead root: every survivor raises (consistently, not a hang)
    health2 = FabricHealth()
    health2.fail_node(0)
    sim2, comm2 = make_comm(4, health=health2)

    def body2(rank):
        return (yield from rank.bcast(
            "payload" if rank.index == 0 else None, root=0,
            timeout=TIMEOUT, shrink=True,
        ))

    done2, failed2 = collect(sim2, comm2, body2, ranks=[1, 2, 3])
    assert not done2 and set(failed2) == {1, 2, 3}


def test_shrink_reduce_lands_at_surviving_root():
    health = FabricHealth()
    health.fail_node(0)  # the requested root is dead
    sim, comm = make_comm(4, health=health)

    def body(rank):
        return (yield from rank.reduce(
            rank.index, op=lambda a, b: a + b, root=0,
            timeout=TIMEOUT, shrink=True,
        ))

    done, failed = collect(sim, comm, body, ranks=[1, 2, 3])
    assert not failed
    # result lands at the committing group's lowest rank (1)
    assert done[1][0] == 1 + 2 + 3
    assert done[2][0] is None and done[3][0] is None


def test_membership_view_tracks_ledger():
    health = FabricHealth()
    member = Membership([Location(node=i) for i in range(4)], health)
    assert member.live_ranks() == (0, 1, 2, 3)
    health.fail_node(2)
    assert member.live_ranks() == (0, 1, 3)
    assert not member.is_live(2) and member.is_live(0)
    health.repair_node(2)
    assert member.live_ranks() == (0, 1, 2, 3)
