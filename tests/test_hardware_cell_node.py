"""Tests for Cell variants, blades, and the triblade node (Table II, Fig 3)."""

import pytest

from repro.hardware.blade import LS21_BLADE, QS21_BLADE, QS22_BLADE, Blade
from repro.hardware.cell import CELL_BE, POWERXCELL_8I
from repro.hardware.node import TRIBLADE
from repro.hardware.opteron import OPTERON_2210_HE
from repro.units import GB_S, GFLOPS, GIB, MIB, to_gflops
from repro.validation import paper_data


# --- Cell variants -----------------------------------------------------------

def test_pxc8i_chip_peak_dp_is_108_8():
    assert to_gflops(POWERXCELL_8I.spec.peak_dp_flops) == pytest.approx(
        paper_data.PXC8I_PEAK_DP_GFLOPS
    )


def test_pxc8i_spe_peak_dp_is_102_4():
    assert to_gflops(POWERXCELL_8I.spe_peak_dp_flops) == pytest.approx(
        paper_data.PXC8I_SPE_PEAK_DP_GFLOPS
    )


def test_pxc8i_spe_peak_sp_is_204_8():
    assert to_gflops(POWERXCELL_8I.spe_peak_sp_flops) == pytest.approx(
        paper_data.PXC8I_SPE_PEAK_SP_GFLOPS
    )


def test_cellbe_chip_peak_sp_is_217_6():
    assert to_gflops(CELL_BE.spec.peak_sp_flops) == pytest.approx(
        paper_data.CELLBE_PEAK_SP_GFLOPS
    )


def test_cellbe_chip_peak_dp_is_21():
    assert to_gflops(CELL_BE.spec.peak_dp_flops) == pytest.approx(
        paper_data.CELLBE_PEAK_DP_GFLOPS, rel=0.01
    )


def test_cellbe_spe_dp_is_14_6():
    assert to_gflops(CELL_BE.spe_peak_dp_flops) == pytest.approx(
        paper_data.CELLBE_SPE_PEAK_DP_GFLOPS, rel=0.01
    )


def test_dp_improvement_is_7x():
    """§VII: 'a significant performance improvement ... by a factor of 7x
    on double-precision floating point operations.'"""
    ratio = POWERXCELL_8I.spe_peak_dp_flops / CELL_BE.spe_peak_dp_flops
    assert ratio == pytest.approx(paper_data.DP_IMPROVEMENT_FACTOR)


def test_ppe_peak_dp_is_6_4():
    ppe, count = POWERXCELL_8I.spec.cores_named("PPE (PowerXCell 8i)")
    assert count == 1
    assert to_gflops(ppe.peak_dp_flops) == pytest.approx(paper_data.PPE_PEAK_DP_GFLOPS)


def test_memory_kind_and_capacity_limits():
    assert CELL_BE.memory_kind == "Rambus XDR"
    assert CELL_BE.max_blade_memory_bytes == paper_data.CELLBE_MAX_BLADE_MEMORY_GB * GIB
    assert POWERXCELL_8I.memory_kind == "DDR2-800"
    assert (
        POWERXCELL_8I.max_blade_memory_bytes
        == paper_data.PXC8I_MAX_BLADE_MEMORY_GB * GIB
    )


def test_both_variants_have_25_6_gb_s_memory():
    assert CELL_BE.memory_bandwidth == pytest.approx(25.6 * GB_S)
    assert POWERXCELL_8I.memory_bandwidth == pytest.approx(25.6 * GB_S)


def test_eib_bandwidth_96_bytes_per_cycle():
    assert POWERXCELL_8I.eib_bandwidth == pytest.approx(
        paper_data.EIB_BYTES_PER_CYCLE * 3.2e9
    )


def test_local_store_is_256_kb():
    spe, count = POWERXCELL_8I.spec.cores_named("SPE (PowerXCell 8i)")
    assert count == 8
    assert spe.caches[0].capacity_bytes == paper_data.SPE_LOCAL_STORE_KB * 1024


# --- blades ------------------------------------------------------------------

def test_ls21_peak_dp_is_14_4_gflops():
    assert to_gflops(LS21_BLADE.peak_dp_flops) == pytest.approx(
        paper_data.NODE_OPTERON_PEAK_DP_GFLOPS
    )


def test_ls21_peak_sp_is_28_8_gflops():
    assert to_gflops(LS21_BLADE.peak_sp_flops) == pytest.approx(
        paper_data.NODE_OPTERON_PEAK_SP_GFLOPS
    )


def test_qs22_carries_two_pxc8i():
    assert QS22_BLADE.socket_count == 2
    assert QS22_BLADE.processor is POWERXCELL_8I.spec


def test_qs21_carries_cell_be():
    assert QS21_BLADE.processor is CELL_BE.spec


def test_blade_socket_count_validation():
    with pytest.raises(ValueError):
        Blade("bad", OPTERON_2210_HE, socket_count=0)


# --- the triblade (Table II node column, Fig 3) --------------------------------

def test_triblade_counts():
    assert TRIBLADE.opteron_core_count == 4
    assert TRIBLADE.cell_count == 4
    assert TRIBLADE.ppe_count == 4
    assert TRIBLADE.spe_count == 32


def test_triblade_cell_peak_dp_435_2():
    assert to_gflops(TRIBLADE.cell_peak_dp_flops) == pytest.approx(
        paper_data.NODE_CELL_PEAK_DP_GFLOPS
    )


def test_triblade_cell_peak_sp_921_6():
    sp = sum(b.peak_sp_flops for b in TRIBLADE.cell_blades)
    assert to_gflops(sp) == pytest.approx(paper_data.NODE_CELL_PEAK_SP_GFLOPS)


def test_triblade_total_memory_32_gib():
    assert TRIBLADE.memory_bytes == 32 * GIB


def test_fig3a_flop_breakdown():
    bd = TRIBLADE.flop_breakdown_dp()
    assert to_gflops(bd["SPEs"]) == pytest.approx(paper_data.NODE_SPE_DP_GFLOPS)
    assert to_gflops(bd["PPEs"]) == pytest.approx(paper_data.NODE_PPE_DP_GFLOPS)
    assert to_gflops(bd["Opterons"]) == pytest.approx(
        paper_data.NODE_OPTERON_PEAK_DP_GFLOPS
    )


def test_fig3b_memory_breakdown():
    bd = TRIBLADE.memory_breakdown()
    assert bd["Cell off-chip"] == pytest.approx(paper_data.NODE_CELL_OFFCHIP_GB * GIB)
    assert bd["Opteron off-chip"] == pytest.approx(
        paper_data.NODE_OPTERON_OFFCHIP_GB * GIB
    )
    # 4 x (8 x 256 KB LS + 64 KB L1 + 512 KB L2) = 10.25 MiB
    assert bd["Cell on-chip"] / MIB == pytest.approx(paper_data.NODE_CELL_ONCHIP_MB)
    # 4 x 128 KB L1 + 4 x 2 MB L2 = 8.5 MiB
    assert bd["Opteron on-chip"] / MIB == pytest.approx(paper_data.NODE_OPTERON_ONCHIP_MB)


def test_opteron_cell_pairing_is_identity():
    for core in range(4):
        assert TRIBLADE.paired_cell(core) == core
    with pytest.raises(IndexError):
        TRIBLADE.paired_cell(4)


def test_hca_proximity_cores_1_and_3():
    """Fig 8: cores 1 and 3 (and their memory) are closer to the HCA."""
    assert TRIBLADE.hca_near(1) and TRIBLADE.hca_near(3)
    assert not TRIBLADE.hca_near(0) and not TRIBLADE.hca_near(2)
    with pytest.raises(IndexError):
        TRIBLADE.hca_near(-1)


def test_pcie_links_are_2_gb_s_per_direction():
    for i in range(4):
        assert TRIBLADE.link(f"pcie-cell{i}").bandwidth_per_direction == pytest.approx(
            2.0 * GB_S
        )
    with pytest.raises(KeyError):
        TRIBLADE.link("nonexistent")


def test_ib_hca_link_2_gb_s():
    assert TRIBLADE.link("ib-hca").bandwidth_per_direction == pytest.approx(2.0 * GB_S)
