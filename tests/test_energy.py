"""Tests for the Sweep3D energy-to-solution study."""

import pytest

from repro.core.energy import EnergyStudy


@pytest.fixture(scope="module")
def study():
    return EnergyStudy()


def test_opteron_only_node_draws_less_power(study):
    full = study.node_power("cell_measured")
    reduced = study.node_power("opteron")
    assert reduced < full
    # But idle Cells still burn most of their draw.
    assert reduced > 0.6 * full


def test_energy_point_composition(study):
    point = study.point(16, "cell_measured")
    assert point.energy_joules == pytest.approx(
        point.power_watts * point.iteration_time
    )
    assert point.nodes == 16


def test_accelerated_mode_wins_on_energy(study):
    adv = study.energy_advantage(64)
    assert adv["energy_measured"] > 1.0
    assert adv["energy_best"] > adv["energy_measured"]


def test_energy_advantage_below_time_advantage(study):
    """The accelerated run draws more power (Cells active), so its
    energy win is smaller than its time win — but still a win because
    idle Cells dissipate most of their draw anyway."""
    adv = study.energy_advantage(64)
    assert adv["energy_measured"] < adv["time_measured"]
    assert adv["energy_measured"] > 0.6 * adv["time_measured"]


def test_full_power_gating_would_equalize():
    """With perfectly gated idle Cells (hypothetical), the Opteron-only
    run draws far less and the energy advantage shrinks further."""
    gated = EnergyStudy(idle_cell_fraction=0.0)
    ungated = EnergyStudy(idle_cell_fraction=1.0)
    assert (
        gated.energy_advantage(16)["energy_measured"]
        < ungated.energy_advantage(16)["energy_measured"]
    )


def test_idle_fraction_validation():
    with pytest.raises(ValueError):
        EnergyStudy(idle_cell_fraction=1.5)
