"""Property-based tests on the transport/path algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.transport import PipelinePath, Transport

transports = st.builds(
    Transport,
    name=st.just("t"),
    latency=st.floats(min_value=0.0, max_value=1e-4),
    bandwidth=st.floats(min_value=1e6, max_value=1e11),
    eager_threshold=st.integers(min_value=0, max_value=65536),
    eager_bandwidth=st.one_of(
        st.none(), st.floats(min_value=1e5, max_value=1e10)
    ),
    rendezvous_latency=st.floats(min_value=0.0, max_value=1e-4),
)

sizes = st.integers(min_value=0, max_value=10_000_000)


@settings(max_examples=80, deadline=None)
@given(t=transports, size=sizes)
def test_one_way_time_at_least_latency(t, size):
    assert t.one_way_time(size) >= t.latency - 1e-18


@settings(max_examples=80, deadline=None)
@given(t=transports, size=sizes)
def test_one_way_time_monotone(t, size):
    assert t.one_way_time(size) <= t.one_way_time(size + 1) + 1e-18


@settings(max_examples=80, deadline=None)
@given(t=transports, size=sizes)
def test_serialization_nonnegative(t, size):
    assert t.serialization_time(size) >= -1e-18


@settings(max_examples=60, deadline=None)
@given(
    t1=transports, t2=transports, size=sizes,
    copy_bw=st.floats(min_value=1e6, max_value=1e11),
)
def test_path_time_at_least_slowest_leg(t1, t2, size, copy_bw):
    path = PipelinePath("p", legs=(t1, t2), relay_copy_bandwidth=copy_bw)
    total = path.one_way_time(size)
    assert total >= t1.one_way_time(size) - 1e-18
    assert total >= t2.one_way_time(size) - 1e-18
    assert path.zero_byte_latency == pytest.approx(t1.latency + t2.latency)


@settings(max_examples=60, deadline=None)
@given(t=transports, size=st.integers(min_value=1, max_value=10_000_000))
def test_single_leg_path_equals_transport(t, size):
    path = PipelinePath("p", legs=(t,))
    assert path.one_way_time(size) == pytest.approx(t.one_way_time(size))
    assert path.effective_bandwidth(size) == pytest.approx(
        t.effective_bandwidth(size)
    )


@settings(max_examples=60, deadline=None)
@given(t=transports, size=st.integers(min_value=1, max_value=10_000_000))
def test_bidirectional_never_exceeds_double_unidirectional(t, size):
    assert (
        t.bidirectional_sum_bandwidth(size)
        <= 2 * t.effective_bandwidth(size) + 1e-9
    )


@settings(max_examples=60, deadline=None)
@given(t=transports, size=sizes, extra=st.integers(min_value=1, max_value=4))
def test_adding_legs_never_speeds_a_path_up(t, size, extra):
    short = PipelinePath("s", legs=(t,))
    long = PipelinePath("l", legs=tuple([t] * (1 + extra)))
    assert long.one_way_time(size) >= short.one_way_time(size) - 1e-18
