"""The campaign service: job model, artifact store, worker pool, CLI.

The load-bearing contracts, in test order:

* **Content addressing** — the spec digest is a pure function of the
  spec's *values* (dict insertion order is invisible), and every field
  (scenario, config, seed, code_version) perturbs it.
* **The store** — a cache hit returns the bitwise-identical artifact;
  a ``code_version`` change misses; corrupt/truncated/tampered entries
  are detected, reported as misses, and healed by recomputation.
* **The service** — a warm-cache rerun of an identical campaign
  performs *zero* simulations (every job streams ``cached-hit``).
* **The pool** — crashes retry (bounded), deterministic job
  exceptions fail fast, timeouts don't wedge the campaign.
* **The CLI** — ``python -m repro --help`` lists the subcommand table;
  the ``campaign`` subcommand runs end to end and streams JSON-lines.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignService,
    JobSpec,
    Journal,
    canonical_json,
    content_digest,
    grid,
    read_journal,
    run_specs,
)
from repro.campaign.jobs import DONE, FAILED
from repro.campaign.scenarios import job_config, run_job

REPO = Path(__file__).resolve().parents[1]

#: the fast sweep tenant: ~10 ms per job, seed-sensitive via drops
TINY = {"drop_probability": 0.05}


def _spec(seed=0, config=TINY, **kwargs):
    return JobSpec(
        "sweep", job_config("sweep", config), seed,
        kwargs.pop("code_version", "test-v1"),
    )


def _selftest_spec(seed, **config):
    return JobSpec(
        "_selftest", job_config("_selftest", config), seed, "test-v1"
    )


# -- content addressing ------------------------------------------------------


def test_digest_stable_across_dict_ordering():
    a = JobSpec("sweep", {"kt": 4, "it": 2, "grind": 1e-6}, 3, "v1")
    b = JobSpec("sweep", {"grind": 1e-6, "it": 2, "kt": 4}, 3, "v1")
    assert a == b
    assert a.digest == b.digest
    # nested dicts canonicalize recursively too
    x = JobSpec("sweep", {"outer": {"b": 2, "a": 1}}, 0, "v1")
    y = JobSpec("sweep", {"outer": {"a": 1, "b": 2}}, 0, "v1")
    assert x.digest == y.digest


def test_digest_sensitive_to_every_field():
    base = _spec()
    assert _spec(seed=1).digest != base.digest
    assert _spec(config={"drop_probability": 0.06}).digest != base.digest
    assert _spec(code_version="test-v2").digest != base.digest
    other = JobSpec("sweep3060", base.config, base.seed, base.code_version)
    assert other.digest != base.digest


def test_spec_roundtrips_through_wire_format():
    spec = _spec(seed=9)
    again = JobSpec.from_dict(json.loads(canonical_json(spec.to_dict())))
    assert again == spec
    assert again.digest == spec.digest


def test_spec_rejects_non_json_config_and_nan():
    with pytest.raises(TypeError):
        JobSpec("sweep", {"bad": object()}, 0, "v1")
    with pytest.raises(ValueError):
        JobSpec("sweep", {"bad": float("nan")}, 0, "v1")


def test_job_config_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown config key"):
        job_config("sweep", {"drop_probablity": 0.05})  # the typo guard
    with pytest.raises(ValueError, match="unknown scenario"):
        job_config("no-such-scenario")


# -- the artifact store ------------------------------------------------------


def test_store_hit_is_bitwise_identical(tmp_path):
    store = ArtifactStore(tmp_path)
    spec = _spec()
    artifact = run_job(spec)
    store.put(spec, artifact)
    cached = store.get(spec)
    assert cached == artifact
    assert canonical_json(cached) == canonical_json(artifact)
    assert store.hits == 1 and store.corrupt == 0
    assert len(store) == 1


def test_store_misses_on_code_version_change(tmp_path):
    store = ArtifactStore(tmp_path)
    spec = _spec()
    store.put(spec, run_job(spec))
    assert store.get(_spec(code_version="test-v2")) is None
    assert store.misses == 1


@pytest.mark.parametrize("damage", ["truncate", "garbage", "tamper"])
def test_store_detects_corruption_and_service_heals_it(tmp_path, damage):
    store = ArtifactStore(tmp_path)
    spec = _spec()
    artifact = run_job(spec)
    path = store.put(spec, artifact)
    if damage == "truncate":
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
    elif damage == "garbage":
        path.write_text("not json at all {{{")
    else:  # tamper: flip a payload value, leave the recorded sha stale
        data = json.loads(path.read_text())
        data["artifact"]["messages"] += 1
        path.write_text(json.dumps(data))
    assert store.get(spec) is None
    assert store.corrupt == 1
    # the service recomputes and atomically rewrites the entry
    report = CampaignService(store).run([spec])
    assert report.executed == 1 and report.cached_hits == 0
    assert store.get(spec) == artifact


# -- the service -------------------------------------------------------------


def test_warm_cache_rerun_performs_zero_simulations(tmp_path):
    specs = grid("sweep", 4, TINY, code_version="test-v1")
    service = CampaignService(tmp_path / "cache")
    events = []
    first = service.run(specs, progress=lambda e: events.append(e))
    assert first.executed == 4 and first.cached_hits == 0
    events.clear()
    second = service.run(specs, progress=lambda e: events.append(e))
    # the acceptance criterion: every job a cached-hit, nothing started
    assert second.cached_hits == 4 and second.executed == 0
    assert all(o.cached for o in second.outcomes)
    assert {e.event for e in events} == {"queued", "cached-hit"}
    assert second.artifacts() == first.artifacts()
    assert [o.artifact_sha256 for o in second.outcomes] == [
        o.artifact_sha256 for o in first.outcomes
    ]


def test_progress_stream_order_and_counters(tmp_path):
    specs = grid("sweep", 2, TINY, code_version="test-v1")
    service = CampaignService(tmp_path / "cache")
    service.run([specs[0]])  # warm exactly one job
    events = []
    service.run(specs, progress=lambda e: events.append(e))
    kinds = [(e.event, e.index) for e in events]
    assert kinds == [
        ("queued", 0), ("cached-hit", 0),
        ("queued", 1), ("started", 1), ("finished", 1),
    ]
    last = events[-1]
    assert last.counters["campaign.executed"] == 1.0
    assert last.counters["campaign.cached_hit"] == 1.0
    # events serialize to JSON-lines
    for e in events:
        line = json.dumps(e.to_dict(), sort_keys=True)
        assert json.loads(line)["job"] == e.digest[:12]


def test_service_without_store_executes_everything():
    specs = grid("sweep", 2, TINY, code_version="test-v1")
    report = CampaignService(store=None).run(specs)
    assert report.executed == 2 and report.cached_hits == 0
    assert report.store_stats is None


def test_grid_builds_complete_configs():
    specs = grid("sweep", [5, 7], TINY, code_version="test-v1")
    assert [s.seed for s in specs] == [5, 7]
    # the spec carries the *full* effective config, not just overrides
    assert specs[0].config["kt"] == 4
    assert specs[0].config["drop_probability"] == 0.05


# -- the worker pool ---------------------------------------------------------


def test_pool_retries_crashed_worker(tmp_path):
    crash = _selftest_spec(0, mode="crash-once",
                           marker=str(tmp_path / "marker"))
    ok = _selftest_spec(1, mode="ok", value=7)
    results = run_specs([crash, ok], workers=2, max_retries=2)
    assert results[0].state == DONE
    assert results[0].attempts == 2
    assert results[0].artifact == {"seed": 0, "recovered": True}
    assert results[1].state == DONE


def test_pool_crash_retries_are_bounded(tmp_path):
    # no marker file is ever consulted twice with max_retries=0: the
    # first death exhausts the budget
    crash = _selftest_spec(0, mode="crash-once",
                           marker=str(tmp_path / "marker"))
    results = run_specs([crash], workers=2, max_retries=0)
    assert results[0].state == FAILED
    assert "worker process died" in results[0].error


def test_pool_fails_fast_on_job_exception():
    bad = _selftest_spec(0, mode="fail")
    ok = _selftest_spec(1, mode="ok", value=1)
    results = run_specs([bad, ok], workers=2)
    assert results[0].state == FAILED
    assert results[0].attempts == 1  # deterministic raise: no retry
    assert "ValueError" in results[0].error
    assert results[1].state == DONE


def test_pool_timeout_does_not_wedge_the_campaign():
    sleepy = _selftest_spec(0, mode="sleep", sleep_s=1.5)
    ok = [_selftest_spec(s, mode="ok", value=s) for s in (1, 2)]
    results = run_specs([sleepy, *ok], workers=2, timeout=0.4)
    assert results[0].state == FAILED
    assert "timeout" in results[0].error
    assert [r.state for r in results[1:]] == [DONE, DONE]


def test_pool_timeout_abandons_only_the_offender(tmp_path):
    """Regression: one job's lease expiry must not discard or re-run
    its siblings' work.  The tally files prove every sibling executed
    exactly once while the wedged worker sat abandoned."""
    sleepy = _selftest_spec(0, mode="sleep", sleep_s=3.0)
    siblings = [
        _selftest_spec(s, mode="count", sleep_s=0.3,
                       marker=str(tmp_path / f"tally-{s}"))
        for s in (1, 2, 3)
    ]
    results = run_specs([sleepy, *siblings], workers=2, timeout=0.8)
    assert results[0].state == FAILED
    assert results[0].detail.get("timeout") is True
    assert [r.state for r in results[1:]] == [DONE] * 3
    for s in (1, 2, 3):
        tally = (tmp_path / f"tally-{s}").read_text().splitlines()
        assert tally == [str(s)], f"sibling {s} ran {len(tally)} times"


def test_inline_and_pool_agree_on_results():
    specs = [_selftest_spec(s, mode="ok", value=s * s) for s in range(4)]
    inline = run_specs(specs, workers=1)
    pooled = run_specs(specs, workers=2)
    assert [r.artifact for r in inline] == [r.artifact for r in pooled]
    assert [r.state for r in inline] == [r.state for r in pooled]


# -- the journal -------------------------------------------------------------


def _journal_fixture(tmp_path, n=3):
    specs = [_selftest_spec(s, mode="ok", value=s) for s in range(n)]
    journal = Journal.create(
        tmp_path / "journal", specs,
        store_root=str(tmp_path / "cache"), options={"workers": 1},
        fsync="never",
    )
    return specs, journal


def test_journal_reader_tolerates_torn_tail(tmp_path):
    specs, journal = _journal_fixture(tmp_path)
    journal.record_started(0, 1)
    journal.record_finished(0, 1, "a" * 64)
    journal.record_started(1, 1)
    journal.close()
    # a crash mid-append leaves a partial final line (no newline)
    with open(tmp_path / "journal", "a") as fh:
        fh.write('{"type": "state", "index": 1, "sta')
    state = read_journal(tmp_path / "journal")
    assert state.records == 4                   # header + 3 complete records
    assert state.job(0).state == DONE
    assert state.job(0).artifact_sha256 == "a" * 64
    assert state.job(1).state == "running"      # torn terminal is dropped
    assert state.job(2).state == "pending"
    assert not state.complete


def test_journal_rotation_compacts_and_reopens(tmp_path):
    specs, journal = _journal_fixture(tmp_path)
    journal.record_started(0, 1)
    journal.record_finished(0, 1, "a" * 64)
    journal.record_started(1, 2)                # in flight: dropped by rotate
    journal.record_started(2, 1)
    journal.record_failed(2, 1, "boom")
    journal.close()

    state = read_journal(tmp_path / "journal")
    rotated = Journal.rotate(tmp_path / "journal", state, fsync="never")
    lines = (tmp_path / "journal").read_text().splitlines()
    assert len(lines) == 3                      # header + 2 terminal records
    compact = read_journal(tmp_path / "journal")
    assert [s.digest for s in compact.specs] == [s.digest for s in specs]
    assert compact.options == {"workers": 1}
    assert compact.job(0).state == DONE and compact.job(0).attempts == 1
    assert compact.job(1).state == "pending"    # re-queued, not recorded
    assert compact.job(2).state == FAILED and compact.job(2).error == "boom"

    # the rotated journal stays appendable
    rotated.record_started(1, 2)
    rotated.record_finished(1, 2, "b" * 64)
    rotated.record_end(read_journal(tmp_path / "journal").summary())
    rotated.close()
    final = read_journal(tmp_path / "journal")
    assert final.complete
    assert final.job(1).state == DONE and final.job(1).attempts == 2


def test_journal_rejects_missing_or_alien_header(tmp_path):
    empty = tmp_path / "empty"
    empty.write_text("")
    with pytest.raises(ValueError, match="no header"):
        read_journal(empty)
    alien = tmp_path / "alien"
    alien.write_text('{"type": "diary", "format": 1}\n')
    with pytest.raises(ValueError, match="not a campaign journal"):
        read_journal(alien)
    garbage = tmp_path / "garbage"
    garbage.write_text("not json at all\n")
    with pytest.raises(ValueError, match="not JSON"):
        read_journal(garbage)


def test_journal_rejects_future_format_with_upgrade_message(tmp_path):
    """Forward compatibility: a journal written by a hypothetical newer
    repro (format 2, extra header fields, unknown record types) is
    rejected with a clear upgrade error — not a KeyError deep in the
    replay loop, and never silently misread."""
    future = tmp_path / "future"
    future.write_text(
        '{"type": "campaign", "format": 2, "specs": [], "store": null, '
        '"options": {}, "shards": 4}\n'
        '{"type": "shard-map", "assignment": [0, 1, 2, 3]}\n'
        '{"type": "state", "index": 0, "state": "done", "attempts": 1, '
        '"artifact_sha256": null, "lease": "w3"}\n'
    )
    with pytest.raises(ValueError) as err:
        read_journal(future)
    msg = str(err.value)
    assert "format 2" in msg
    assert "only reads format 1" in msg
    assert "newer version" in msg

    # a missing format field is the same refusal, not a crash
    unversioned = tmp_path / "unversioned"
    unversioned.write_text('{"type": "campaign", "specs": []}\n')
    with pytest.raises(ValueError, match="format None"):
        read_journal(unversioned)


# -- the CLI -----------------------------------------------------------------


def _run_cli(*args, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=180, cwd=cwd,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_repro_help_lists_subcommand_table():
    proc = _run_cli("--help")
    assert proc.returncode == 0, proc.stderr
    assert "subcommands" in proc.stdout
    assert "profile" in proc.stdout
    assert "campaign" in proc.stdout


def test_campaign_cli_lists_scenarios():
    proc = _run_cli("campaign", "--list")
    assert proc.returncode == 0, proc.stderr
    for name in ("sweep", "sweep3060", "placement-penalty"):
        assert name in proc.stdout
    assert "_selftest" not in proc.stdout  # harness tenant stays hidden


def test_campaign_cli_end_to_end_with_cache(tmp_path):
    args = ("campaign", "sweep", "--seeds", "2", "--cache-dir",
            str(tmp_path / "cache"), "--jsonl")
    first = _run_cli(*args, cwd=str(tmp_path))
    assert first.returncode == 0, first.stderr
    events = [json.loads(line) for line in first.stdout.splitlines()]
    assert sum(1 for e in events if e["event"] == "finished") == 2
    second = _run_cli(*args, cwd=str(tmp_path))
    assert second.returncode == 0, second.stderr
    events = [json.loads(line) for line in second.stdout.splitlines()]
    assert sum(1 for e in events if e["event"] == "cached-hit") == 2
    assert not any(e["event"] == "started" for e in events)


def test_campaign_cli_rejects_unknown_scenario_and_keys(tmp_path):
    assert _run_cli("campaign", "no-such").returncode == 2
    proc = _run_cli("campaign", "sweep", "--seeds", "1",
                    "--set", "not_a_key=1")
    assert proc.returncode == 2
    assert "unknown config key" in proc.stderr


def test_profile_still_dispatches_through_the_registry():
    proc = _run_cli("profile", "--help")
    assert proc.returncode == 0, proc.stderr
    assert "scenario" in proc.stdout
