"""Golden-trace conformance: the tiny 4-rank sweep's span stream.

The ``sweep4`` scenario (2x2 KBA sweep, two timed iterations) is run
with the recorder attached end to end, and its exported span stream is
compared *exactly* against the committed fixture — category by
category, float by float.  Any change to the instrumented timeline, the
span schema, or the recording order shows up here.

To regenerate the fixture after an intentional change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_trace.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.obs import run_scenario, self_times, span_stream

FIXTURE = Path(__file__).parent / "fixtures" / "golden_trace.json"

#: every span dict carries exactly these keys
SPAN_KEYS = {"category", "track", "t0", "t1", "attrs"}

#: categories the sweep4 scenario is allowed to emit
KNOWN_CATEGORIES = {
    "sweep.iteration",
    "sweep.octant",
    "sweep.compute",
    "mpi.send",
    "mpi.recv",
    "mpi.collective",
    "link",
}


@pytest.fixture(scope="module")
def recorded():
    rec, sim_time = run_scenario("sweep4")
    return rec, sim_time, span_stream(rec)


def test_fixture_up_to_date(recorded):
    _rec, sim_time, stream = recorded
    payload = {"scenario": "sweep4", "sim_time": sim_time, "spans": stream}
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE.write_text(json.dumps(payload, indent=1) + "\n")
        pytest.skip(f"regenerated {FIXTURE}")
    golden = json.loads(FIXTURE.read_text())
    assert golden["sim_time"] == sim_time
    assert golden["spans"] == stream, (
        "span stream diverged from the golden fixture; if the change is "
        "intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )


def test_schema(recorded):
    _rec, sim_time, stream = recorded
    assert len(stream) > 0
    for span in stream:
        assert set(span) == SPAN_KEYS
        assert span["category"] in KNOWN_CATEGORIES
        assert isinstance(span["t0"], float) and isinstance(span["t1"], float)
        assert 0.0 <= span["t0"] <= span["t1"] <= sim_time
        assert isinstance(span["attrs"], dict)


def test_monotonic_close_order(recorded):
    """Spans are recorded as they *close*, so t1 never goes backwards."""
    _rec, _sim_time, stream = recorded
    ends = [span["t1"] for span in stream]
    assert ends == sorted(ends)


def test_rank_spans_nest_properly(recorded):
    """Per track, spans either disjoint or contained — the profiler's
    self_times() walks the stream without raising."""
    rec, _sim_time, _stream = recorded
    by_track: dict = {}
    for span in rec.spans:
        if span.category != "link":
            by_track.setdefault(span.track, []).append(span)
    assert set(by_track) == {0, 1, 2, 3}
    for spans in by_track.values():
        attributed = self_times(spans)  # raises on partial overlap
        assert len(attributed) == len(spans)
        assert all(self_time >= 0.0 for _s, self_time in attributed)
