"""Direct unit tests for the application timing models and power model.

The physics of MiniMD/MiniPIC and the headline Green500/Top500 claims
are covered elsewhere; these tests pin the *model* surfaces directly —
the OffloadModel's component accounting and limits, the MD/PIC timestep
models' byte and cycle bookkeeping, and the power models' arithmetic.
"""

from __future__ import annotations

import math

import pytest

from repro.apps.minimd import MDTimestepModel, MiniMD
from repro.apps.minipic import MiniPIC, PICTimestepModel
from repro.apps.offload import OffloadModel
from repro.apps.speedup import all_speedups, workload_cycles
from repro.apps.workloads import APP_WORKLOADS
from repro.hardware.cell import CELL_BE, POWERXCELL_8I
from repro.linpack.power import (
    GREEN500_CELL_ONLY_MODEL,
    TOP500_JUNE_2008_ANCHORS,
    CellOnlyPowerModel,
    PowerModel,
    top500_position,
)


# -- OffloadModel ------------------------------------------------------------

def _model(**kw) -> OffloadModel:
    defaults = dict(
        cpu_time=1.0, hotspot_fraction=0.9, kernel_speedup=20.0,
        bytes_down=1 << 20, bytes_up=1 << 20,
    )
    defaults.update(kw)
    return OffloadModel(**defaults)


def test_offload_components_sum_to_hybrid_time():
    m = _model()
    assert m.hybrid_time() == pytest.approx(
        m.host_time + m.kernel_time + m.transfer_time
    )
    assert m.host_time == pytest.approx(0.1)
    assert m.kernel_time == pytest.approx(0.9 / 20.0)
    assert m.transfer_time > 0


def test_offload_speedup_orderings():
    """Real speedup <= transfer-bound ceiling <= Amdahl ceiling."""
    m = _model()
    assert 1.0 < m.speedup() < m.transfer_bound_speedup() <= m.amdahl_limit()
    assert m.amdahl_limit() == pytest.approx(10.0)
    assert _model(hotspot_fraction=1.0).amdahl_limit() == math.inf


def test_offload_breakeven():
    m = _model()
    k = m.breakeven_kernel_speedup()
    assert k > 1.0
    # At the breakeven kernel speedup the offload neither wins nor loses.
    at = _model(kernel_speedup=k)
    assert at.speedup() == pytest.approx(1.0)
    assert _model(kernel_speedup=k * 2).speedup() > 1.0
    # A hotspot whose transfers already exceed it can never break even.
    tiny = _model(cpu_time=1e-9, hotspot_fraction=0.5)
    assert tiny.breakeven_kernel_speedup() == math.inf


def test_offload_calls_split_the_transfers():
    """N calls each pay link latency, so chattier offloads cost more."""
    one = _model(calls=1)
    many = _model(calls=16)
    assert many.transfer_time > one.transfer_time


def test_offload_validation():
    with pytest.raises(ValueError):
        _model(cpu_time=0.0)
    with pytest.raises(ValueError):
        _model(hotspot_fraction=1.5)
    with pytest.raises(ValueError):
        _model(kernel_speedup=0.0)
    with pytest.raises(ValueError):
        _model(bytes_down=-1)
    with pytest.raises(ValueError):
        _model(calls=0)


# -- MDTimestepModel ---------------------------------------------------------

@pytest.fixture(scope="module")
def md_system():
    return MiniMD(cells_per_side=3)


def test_md_offload_byte_accounting(md_system):
    model = MDTimestepModel().offload_model(md_system)
    # Positions down, forces back: 3 doubles per atom each way.
    assert model.bytes_down == md_system.n_atoms * 3 * 8
    assert model.bytes_up == model.bytes_down
    assert model.kernel_speedup > 1.0


def test_md_unaccelerated_time_is_the_cpu_time(md_system):
    ts = MDTimestepModel()
    assert ts.timestep_time(md_system, accelerated=False) == pytest.approx(
        ts.offload_model(md_system).cpu_time
    )
    assert ts.timestep_time(md_system) < ts.timestep_time(
        md_system, accelerated=False
    )


def test_md_timestep_scales_with_system_size():
    small, large = MiniMD(cells_per_side=3), MiniMD(cells_per_side=4)
    ts = MDTimestepModel()
    assert ts.timestep_time(large) > ts.timestep_time(small)


# -- PICTimestepModel --------------------------------------------------------

def test_pic_cycles_match_the_vpic_workload():
    pic = MiniPIC()
    model = PICTimestepModel()
    assert model.particle_cycles(POWERXCELL_8I) == pytest.approx(
        workload_cycles(APP_WORKLOADS["VPIC"], POWERXCELL_8I)
    )
    expect = (
        model.particle_cycles(POWERXCELL_8I) * pic.n_particles / 8
        / POWERXCELL_8I.clock_hz
    )
    assert model.timestep_time(pic, POWERXCELL_8I) == pytest.approx(expect)


def test_pic_pxc8i_speedup_is_exactly_one():
    """§IV-A's VPIC row: single precision, so the PXC8i buys nothing."""
    assert PICTimestepModel().pxc8i_speedup(MiniPIC()) == 1.0


def test_all_speedups_consistent_with_pairwise():
    table = all_speedups()
    assert table["VPIC"] == pytest.approx(1.0)
    assert table["Sweep3D"] > table["SPaSM"] > table["VPIC"]


# -- power models ------------------------------------------------------------

def test_node_power_includes_overhead():
    from repro.hardware.node import TRIBLADE

    pm = PowerModel()
    assert pm.node_power() == pytest.approx(
        TRIBLADE.power_watts + pm.node_overhead_watts
    )
    assert pm.system_power(3060) == pytest.approx(
        pm.node_power() * 3060 * 1.088
    )


def test_system_power_validation():
    with pytest.raises(ValueError):
        PowerModel().system_power(0)


def test_green500_scales_inversely_with_nodes():
    pm = PowerModel()
    rmax = 1.026e15
    assert pm.green500_mflops_per_watt(rmax, nodes=1530) == pytest.approx(
        2 * pm.green500_mflops_per_watt(rmax, nodes=3060)
    )


def test_cell_only_cluster_near_488_mflops_per_watt():
    """The two QS22-only systems above Roadrunner on the June 2008
    Green500 delivered ~488 Mflop/s per watt."""
    assert GREEN500_CELL_ONLY_MODEL.mflops_per_watt() == pytest.approx(
        488.0, rel=0.02
    )
    # Heavier infrastructure or lower HPL efficiency only hurts.
    worse = CellOnlyPowerModel(infrastructure_factor=2.0)
    assert worse.mflops_per_watt() < GREEN500_CELL_ONLY_MODEL.mflops_per_watt()


def test_top500_anchors_map_to_their_positions():
    for position, rmax in TOP500_JUNE_2008_ANCHORS:
        assert top500_position(rmax) == position


def test_top500_position_monotone_in_rmax():
    rmaxes = [9.0, 12.0, 30.0, 51.0, 106.1, 205.0, 478.2, 1026.0, 2000.0]
    positions = [top500_position(r) for r in rmaxes]
    assert positions == sorted(positions, reverse=True)
    assert positions[-1] == 1
