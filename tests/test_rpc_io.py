"""Tests for the CML RPC mechanism and the Panasas I/O path."""

import pytest

from repro.comm.dacs import DACS_MEASURED
from repro.comm.rpc import RpcEndpoint, RpcError
from repro.comm.transport import Transport
from repro.io.filepath import SweepInputReader
from repro.io.panasas import IoNodeSpec, PanasasModel
from repro.sim import Simulator
from repro.units import GB_S, MB_S, US

FAST_LINK = Transport("fast", latency=1 * US, bandwidth=1 * GB_S)


def run_call(sim, rpc, *args, **kwargs):
    out = {}

    def caller(sim):
        out["result"] = yield from rpc.call(*args, **kwargs)

    sim.process(caller(sim))
    sim.run()
    return out["result"]


# --- RPC --------------------------------------------------------------------------

def test_rpc_roundtrip_returns_result():
    sim = Simulator()
    rpc = RpcEndpoint(sim)
    ppe = rpc.add_target("ppe", FAST_LINK)
    ppe.register("malloc", handler=lambda size: f"buffer[{size}]")
    result = run_call(sim, rpc, "ppe", "malloc", 4096)
    assert result == "buffer[4096]"
    assert rpc.call_counts[("ppe", "malloc")] == 1


def test_rpc_charges_two_crossings_and_execution():
    sim = Simulator()
    rpc = RpcEndpoint(sim)
    ppe = rpc.add_target("ppe", FAST_LINK)
    ppe.register("work", handler=lambda: 7, execution_time=50e-6)
    run_call(sim, rpc, "ppe", "work")
    # request crossing + 50us execution + response crossing
    assert sim.now == pytest.approx(
        FAST_LINK.one_way_time(64) + 50e-6 + FAST_LINK.one_way_time(8)
    )


def test_rpc_unknown_function_raises_at_caller():
    sim = Simulator()
    rpc = RpcEndpoint(sim)
    rpc.add_target("ppe", FAST_LINK)
    caught = []

    def caller(sim):
        try:
            yield from rpc.call("ppe", "nonexistent")
        except RpcError as exc:
            caught.append(str(exc))

    sim.process(caller(sim))
    sim.run()
    assert caught and "nonexistent" in caught[0]


def test_rpc_handler_exception_becomes_rpc_error():
    sim = Simulator()
    rpc = RpcEndpoint(sim)
    ppe = rpc.add_target("ppe", FAST_LINK)

    def bad_handler():
        raise KeyError("inner bug")

    ppe.register("bad", handler=bad_handler)
    caught = []

    def caller(sim):
        try:
            yield from rpc.call("ppe", "bad")
        except RpcError as exc:
            caught.append(str(exc))

    sim.process(caller(sim))
    sim.run()
    assert caught


def test_rpc_unknown_target_raises_immediately():
    sim = Simulator()
    rpc = RpcEndpoint(sim)
    with pytest.raises(KeyError):
        list(rpc.call("nowhere", "f"))


def test_rpc_duplicate_target_rejected():
    sim = Simulator()
    rpc = RpcEndpoint(sim)
    rpc.add_target("ppe", FAST_LINK)
    with pytest.raises(ValueError):
        rpc.add_target("ppe", FAST_LINK)


def test_rpc_calls_serialize_at_the_server():
    """Two concurrent callers share the single server thread — the
    second call's execution waits for the first."""
    sim = Simulator()
    rpc = RpcEndpoint(sim)
    ppe = rpc.add_target("ppe", FAST_LINK)
    ppe.register("slow", handler=lambda: None, execution_time=100e-6)
    finish = []

    def caller(sim, name):
        yield from rpc.call("ppe", "slow")
        finish.append((name, sim.now))

    sim.process(caller(sim, "a"))
    sim.process(caller(sim, "b"))
    sim.run()
    times = sorted(t for _, t in finish)
    assert times[1] - times[0] == pytest.approx(100e-6, rel=0.01)


def test_rpc_negative_execution_time_rejected():
    sim = Simulator()
    rpc = RpcEndpoint(sim)
    ppe = rpc.add_target("ppe", FAST_LINK)
    with pytest.raises(ValueError):
        ppe.register("f", handler=lambda: None, execution_time=-1.0)


# --- Panasas -------------------------------------------------------------------------

def test_pfs_aggregate_bandwidth():
    pfs = PanasasModel(cu_count=17)
    assert pfs.io_node_count == 204
    assert pfs.aggregate_bandwidth == pytest.approx(204 * 400 * MB_S)


def test_pfs_read_time_single_client():
    pfs = PanasasModel(cu_count=1)
    t = pfs.read_time(1_000_000_000)
    assert t == pytest.approx(
        pfs.node.request_latency + 1e9 / (12 * 400 * MB_S)
    )


def test_pfs_many_clients_share_aggregate():
    pfs = PanasasModel(cu_count=1)
    solo = pfs.read_time(100_000_000, clients=1)
    crowded = pfs.read_time(100_000_000, clients=100)
    assert crowded > solo


def test_pfs_zero_read_free():
    assert PanasasModel().read_time(0) == 0.0


def test_pfs_checkpoint_time_scale():
    """Half of Roadrunner's ~98 TiB takes tens of minutes at ~82 GB/s."""
    pfs = PanasasModel(cu_count=17)
    t = pfs.checkpoint_time(memory_fraction=0.5)
    assert 300 < t < 3600


def test_pfs_validation():
    with pytest.raises(ValueError):
        PanasasModel(cu_count=0)
    with pytest.raises(ValueError):
        IoNodeSpec(bandwidth=0.0)
    pfs = PanasasModel()
    with pytest.raises(ValueError):
        pfs.read_time(-1)
    with pytest.raises(ValueError):
        pfs.read_time(10, clients=0)
    with pytest.raises(ValueError):
        pfs.checkpoint_time(0.0)


# --- the §V-C input-read path ------------------------------------------------------------

def test_sweep_input_reader_returns_contents():
    sim = Simulator()
    reader = SweepInputReader(sim)
    data, elapsed = reader.run()
    assert data == reader.contents
    assert elapsed > 0


def test_sweep_input_reader_charges_dacs_and_pfs():
    sim = Simulator()
    reader = SweepInputReader(sim)
    _data, elapsed = reader.run()
    floor = (
        DACS_MEASURED.one_way_time(64)
        + reader.pfs.read_time(len(reader.contents))
        + DACS_MEASURED.one_way_time(len(reader.contents))
    )
    assert elapsed == pytest.approx(floor, rel=1e-9)
