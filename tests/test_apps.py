"""Tests for the §IV-A application surrogates and derived speedups."""

import pytest

from repro.apps.speedup import all_speedups, pxc8i_speedup, workload_cycles
from repro.apps.workloads import APP_WORKLOADS, AppWorkload
from repro.hardware.cell import CELL_BE, POWERXCELL_8I
from repro.hardware.spe_pipeline import InstructionGroup
from repro.validation import paper_data


def test_all_four_applications_present():
    assert set(APP_WORKLOADS) == {"VPIC", "SPaSM", "Milagro", "Sweep3D"}


def test_vpic_is_single_precision():
    """§IV-A: VPIC 'doesn't show significant improvements on this new
    processor as its calculations use single precision'."""
    vpic = APP_WORKLOADS["VPIC"]
    assert not vpic.uses_double_precision
    assert vpic.mix.get(InstructionGroup.FP6, 0) > 0


def test_vpic_speedup_is_1x():
    assert pxc8i_speedup(APP_WORKLOADS["VPIC"]) == pytest.approx(
        paper_data.APP_SPEEDUP_VPIC, rel=0.02
    )


def test_spasm_speedup_is_1_5x():
    assert pxc8i_speedup(APP_WORKLOADS["SPaSM"]) == pytest.approx(
        paper_data.APP_SPEEDUP_SPASM, rel=0.05
    )


def test_milagro_speedup_is_1_5x():
    assert pxc8i_speedup(APP_WORKLOADS["Milagro"]) == pytest.approx(
        paper_data.APP_SPEEDUP_MILAGRO, rel=0.05
    )


def test_sweep3d_speedup_is_1_9x():
    assert pxc8i_speedup(APP_WORKLOADS["Sweep3D"]) == pytest.approx(
        paper_data.APP_SPEEDUP_SWEEP3D, rel=0.05
    )


def test_all_speedups_returns_every_app():
    speedups = all_speedups()
    assert set(speedups) == set(APP_WORKLOADS)
    assert all(s >= 1.0 for s in speedups.values())


def test_speedup_monotone_in_fpd_share():
    """More FPD per work unit -> bigger PXC8i advantage (the mechanism
    behind the §IV-A ordering VPIC < SPaSM/Milagro < Sweep3D)."""
    apps = sorted(APP_WORKLOADS.values(), key=lambda a: pxc8i_speedup(a))
    fpd_ratio = [
        a.fpd_count / sum(a.mix.values()) for a in apps
    ]
    assert fpd_ratio == sorted(fpd_ratio)


def test_workload_cycles_positive_and_pxc_faster():
    for app in APP_WORKLOADS.values():
        cbe = workload_cycles(app, CELL_BE)
        pxc = workload_cycles(app, POWERXCELL_8I)
        assert 0 < pxc <= cbe


def test_workload_validation():
    with pytest.raises(ValueError):
        AppWorkload("empty", "nothing", {}, "none")
    with pytest.raises(ValueError):
        AppWorkload("zeros", "nothing", {InstructionGroup.LS: 0}, "none")


def test_sweep3d_workload_shares_cellport_mix():
    from repro.sweep3d.cellport import SWEEP_MIX_PER_CELL_ANGLE

    assert dict(APP_WORKLOADS["Sweep3D"].mix) == dict(SWEEP_MIX_PER_CELL_ANGLE)
