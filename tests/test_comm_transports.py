"""Tests for transport models against the published Figs 6-9 numbers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.cml import (
    INTERNODE_CELL_PATH,
    INTERNODE_CELL_PATH_BEST,
    INTRANODE_CELL_PATH,
    LOCAL_LEG,
    CellMessagePath,
)
from repro.comm.dacs import DACS_MEASURED, PCIE_RAW
from repro.comm.eib import CML_EIB_PAIR, EIBRing
from repro.comm.ib import (
    IB_DEFAULT,
    IB_FAR_PAIR,
    IB_NEAR_PAIR,
    IB_PINNED,
    ib_between_cores,
)
from repro.comm.transport import PipelinePath, Transport
from repro.units import GB_S, KIB, MB, MB_S, US, to_mb_s, to_us
from repro.validation import paper_data


# --- Transport basics ---------------------------------------------------------

def test_transport_zero_byte_time_is_latency():
    t = Transport("t", latency=1e-6, bandwidth=1e9)
    assert t.one_way_time(0) == pytest.approx(1e-6)


def test_transport_validation():
    with pytest.raises(ValueError):
        Transport("bad", latency=-1.0, bandwidth=1e9)
    with pytest.raises(ValueError):
        Transport("bad", latency=0.0, bandwidth=0.0)
    with pytest.raises(ValueError):
        Transport("bad", latency=0.0, bandwidth=1e9, bidirectional_factor=0.0)
    with pytest.raises(ValueError):
        Transport("bad", latency=0.0, bandwidth=1e9, eager_bandwidth=-1.0)
    t = Transport("t", latency=1e-6, bandwidth=1e9)
    with pytest.raises(ValueError):
        t.one_way_time(-1)


def test_eager_knee_behaviour():
    t = Transport(
        "knee", latency=1e-6, bandwidth=1e9,
        eager_threshold=1024, eager_bandwidth=1e8, rendezvous_latency=5e-6,
    )
    below = t.one_way_time(1024)
    assert below == pytest.approx(1e-6 + 1024 / 1e8)
    # Just past the knee the cost is clamped at the knee value so the
    # protocol switch can never make a larger message cheaper...
    assert t.one_way_time(1025) == pytest.approx(below)
    # ...while far past the knee the rendezvous line takes over.
    assert t.one_way_time(100_000) == pytest.approx(1e-6 + 5e-6 + 100_000 / 1e9)


def test_effective_bandwidth_zero_size():
    assert DACS_MEASURED.effective_bandwidth(0) == 0.0


@settings(max_examples=60, deadline=None)
@given(size=st.integers(min_value=1, max_value=10_000_000))
def test_transport_time_monotone_in_size(size):
    for t in (DACS_MEASURED, PCIE_RAW, IB_DEFAULT, IB_PINNED, CML_EIB_PAIR):
        assert t.one_way_time(size) <= t.one_way_time(size + 4096)


@settings(max_examples=60, deadline=None)
@given(size=st.integers(min_value=1, max_value=10_000_000))
def test_effective_bandwidth_below_wire_rate(size):
    for t in (PCIE_RAW, IB_DEFAULT, IB_PINNED, CML_EIB_PAIR):
        assert t.effective_bandwidth(size) <= t.bandwidth * (1 + 1e-9)


# --- DaCS / PCIe (Figs 6, 7, 9; §VI-A) -----------------------------------------

def test_dacs_latency_is_3_19_us():
    assert to_us(DACS_MEASURED.latency) == pytest.approx(paper_data.DACS_LATENCY_US)


def test_pcie_raw_parameters():
    assert to_us(PCIE_RAW.latency) == pytest.approx(paper_data.PCIE_PEAK_LATENCY_US)
    assert PCIE_RAW.bandwidth == pytest.approx(paper_data.PCIE_PEAK_BW_GB_S * GB_S)


def test_dacs_1mb_unidirectional_near_1008_mb_s():
    """Fig 7: intranode 2x unidirectional = 2,017 MB/s -> ~1,008 each."""
    uni = to_mb_s(DACS_MEASURED.effective_bandwidth(1 * MB))
    assert uni == pytest.approx(paper_data.INTRANODE_2X_UNIDIR_MB_S / 2, rel=0.02)


def test_dacs_bidirectional_factor_is_fig7s_0_64():
    assert DACS_MEASURED.bidirectional_factor == pytest.approx(
        paper_data.INTRANODE_BIDIR_FRACTION
    )
    bidir = to_mb_s(DACS_MEASURED.bidirectional_sum_bandwidth(1 * MB))
    assert bidir == pytest.approx(paper_data.INTRANODE_BIDIR_MB_S, rel=0.02)


def test_dacs_under_half_of_ib_for_small_messages():
    """Fig 9: below ~20 KB DaCS achieves less than half the InfiniBand
    bandwidth (despite the comparison favouring DaCS)."""
    for size in (2 * KIB, 4 * KIB, 8 * KIB, 16 * KIB):
        ratio = DACS_MEASURED.effective_bandwidth(size) / IB_DEFAULT.effective_bandwidth(size)
        assert ratio < 0.5, size


def test_dacs_approaches_ib_for_large_messages():
    """Fig 9: the ratio approaches 1 at large message sizes."""
    ratio = DACS_MEASURED.effective_bandwidth(1 * MB) / IB_DEFAULT.effective_bandwidth(1 * MB)
    assert 0.9 < ratio < 1.1


def test_pcie_raw_beats_measured_dacs_everywhere():
    for size in (64, 1024, 16 * KIB, 128 * KIB, 1 * MB):
        assert PCIE_RAW.one_way_time(size) < DACS_MEASURED.one_way_time(size)


# --- InfiniBand (Figs 6, 8, 10) --------------------------------------------------

def test_ib_latency_is_2_16_us():
    assert to_us(IB_DEFAULT.latency) == pytest.approx(paper_data.MPI_IB_LATENCY_US)


def test_ib_default_1mb_is_980_mb_s():
    assert to_mb_s(IB_DEFAULT.effective_bandwidth(1 * MB)) == pytest.approx(
        paper_data.IB_1MB_DEFAULT_MB_S, rel=0.01
    )


def test_ib_pinned_1mb_is_1600_mb_s():
    assert to_mb_s(IB_PINNED.effective_bandwidth(1 * MB)) == pytest.approx(
        paper_data.IB_1MB_PINNED_MB_S, rel=0.01
    )


def test_fig8_near_pair_bandwidth():
    bw = to_mb_s(IB_NEAR_PAIR.effective_bandwidth(10 * MB))
    assert bw == pytest.approx(paper_data.OPTERON_NEAR_HCA_MB_S, rel=0.01)


def test_fig8_far_pair_bandwidth():
    bw = to_mb_s(IB_FAR_PAIR.effective_bandwidth(10 * MB))
    assert bw == pytest.approx(paper_data.OPTERON_FAR_HCA_MB_S, rel=0.01)


def test_ib_between_cores_selects_by_proximity():
    assert ib_between_cores(1, 3) is IB_NEAR_PAIR
    assert ib_between_cores(0, 2) is IB_FAR_PAIR
    assert ib_between_cores(0, 1) is IB_FAR_PAIR  # slower endpoint dominates
    with pytest.raises(ValueError):
        ib_between_cores(0, 4)


# --- EIB / CML intra-socket (§V-C) -------------------------------------------------

def test_cml_intra_socket_latency():
    assert to_us(CML_EIB_PAIR.latency) == pytest.approx(
        paper_data.CML_INTRA_SOCKET_LATENCY_US
    )


def test_cml_128kb_achieves_22_4_gb_s():
    bw = CML_EIB_PAIR.effective_bandwidth(128 * KIB)
    assert bw == pytest.approx(paper_data.CML_INTRA_SOCKET_BW_GB_S * GB_S, rel=0.01)


def test_eib_aggregate_bandwidth():
    ring = EIBRing()
    assert ring.aggregate_bandwidth == pytest.approx(96 * 3.2e9)


def test_eib_fair_share_capped_by_pair_rate():
    ring = EIBRing()
    assert ring.fair_share(1) == pytest.approx(CML_EIB_PAIR.bandwidth)
    # 16 flows share the 307.2 GB/s ring: 19.2 GB/s each.
    assert ring.fair_share(16) == pytest.approx(ring.aggregate_bandwidth / 16)
    with pytest.raises(ValueError):
        ring.fair_share(0)


def test_eib_supports_four_pair_transfers_at_full_rate():
    ring = EIBRing()
    assert ring.supports_all_pairs(CML_EIB_PAIR.bandwidth, 4)
    assert not ring.supports_all_pairs(CML_EIB_PAIR.bandwidth, 16)


# --- the Fig 6 path ------------------------------------------------------------------

def test_fig6_zero_byte_breakdown_sums_to_8_78_us():
    assert to_us(INTERNODE_CELL_PATH.zero_byte_latency) == pytest.approx(
        paper_data.CELL_TO_CELL_INTERNODE_LATENCY_US, abs=0.01
    )


def test_fig6_leg_latencies():
    legs = dict(INTERNODE_CELL_PATH.latency_breakdown())
    assert to_us(legs["DaCS over PCIe (measured)"]) == pytest.approx(3.19)
    assert to_us(legs["MPI over InfiniBand (default Open MPI)"]) == pytest.approx(2.16)
    assert to_us(legs["local SPE<->PPE leg"]) == pytest.approx(0.12)


def test_fig7_internode_unidirectional_268_mb_s():
    """536 MB/s two-times-unidirectional -> ~268 MB/s per direction."""
    uni = to_mb_s(INTERNODE_CELL_PATH.effective_bandwidth(1 * MB))
    assert uni == pytest.approx(paper_data.INTERNODE_2X_UNIDIR_MB_S / 2, rel=0.03)


def test_fig7_internode_bidirectional_375_mb_s():
    bidir = to_mb_s(INTERNODE_CELL_PATH.bidirectional_sum_bandwidth(1 * MB))
    assert bidir == pytest.approx(paper_data.INTERNODE_BIDIR_MB_S, rel=0.03)


def test_fig7_intranode_faster_than_internode():
    for size in (1 * KIB, 64 * KIB, 1 * MB):
        assert (
            INTRANODE_CELL_PATH.one_way_time(size)
            < INTERNODE_CELL_PATH.one_way_time(size)
        )


def test_best_path_beats_measured_path():
    for size in (0, 1 * KIB, 64 * KIB, 1 * MB):
        assert (
            INTERNODE_CELL_PATH_BEST.one_way_time(size)
            < INTERNODE_CELL_PATH.one_way_time(size)
        )


def test_cell_message_path_classification():
    path = CellMessagePath()
    assert path.classify((0, 0, 0), (0, 0, 0)) == "self"
    assert path.classify((0, 0, 0), (0, 0, 5)) == "intra-socket"
    assert path.classify((0, 0, 0), (0, 3, 5)) == "intranode"
    assert path.classify((0, 0, 0), (9, 0, 0)) == "internode"


def test_cell_message_path_times_ordered_by_distance():
    path = CellMessagePath()
    size = 16 * KIB
    t_self = path.one_way_time((0, 0, 0), (0, 0, 0), size)
    t_sock = path.one_way_time((0, 0, 0), (0, 0, 1), size)
    t_node = path.one_way_time((0, 0, 0), (0, 1, 0), size)
    t_far = path.one_way_time((0, 0, 0), (1, 0, 0), size)
    assert t_self == 0.0
    assert t_self < t_sock < t_node < t_far


def test_pipeline_path_validation():
    with pytest.raises(ValueError):
        PipelinePath("empty", legs=())
    with pytest.raises(ValueError):
        PipelinePath("bad-copy", legs=(LOCAL_LEG,), relay_copy_bandwidth=-1.0)
    with pytest.raises(ValueError):
        PipelinePath("bad-bidir", legs=(LOCAL_LEG,), bidirectional_factor=1.5)


def test_pipeline_serialization_time():
    t = INTERNODE_CELL_PATH
    assert t.serialization_time(0) == pytest.approx(0.0)
    assert t.serialization_time(1 * MB) == pytest.approx(
        t.one_way_time(1 * MB) - t.zero_byte_latency
    )
