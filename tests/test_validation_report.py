"""Tests for the one-shot validation report and compare helpers."""

import pytest

from repro.cli import main
from repro.validation.compare import monotonic, relative_error, shape_matches, within
from repro.validation.report import CheckResult, render_report, run_checks


def test_all_checks_pass():
    results = run_checks()
    failures = [r for r in results if not r.passed]
    assert not failures, [f"{r.section}: {r.claim}" for r in failures]


def test_checks_cover_every_section():
    sections = {r.section for r in run_checks()}
    for expected in ("Table I", "Table II", "Table III", "Table IV",
                     "§IV-A", "Fig 6", "Fig 14", "headline"):
        assert expected in sections


def test_report_renders_pass_count():
    results = run_checks()
    text = render_report(results)
    assert f"{len(results)}/{len(results)} checks pass" in text
    assert "FAIL" not in text


def test_report_shows_failures():
    bad = CheckResult("X", "claim", "1", "2", rel_error=1.0, tolerance=0.1)
    text = render_report([bad])
    assert "FAIL" in text
    assert "0/1 checks pass" in text


def test_cli_validate_exit_code(capsys):
    assert main(["validate"]) == 0
    out = capsys.readouterr().out
    assert "checks pass" in out


# --- compare helpers --------------------------------------------------------------

def test_relative_error_basics():
    assert relative_error(1.1, 1.0) == pytest.approx(0.1)
    assert relative_error(0.0, 0.0) == 0.0
    assert relative_error(1.0, 0.0) == float("inf")


def test_within():
    assert within(1.05, 1.0, 0.1)
    assert not within(1.2, 1.0, 0.1)


def test_monotonic():
    assert monotonic([1, 2, 3])
    assert monotonic([1, 1, 2], strict=False)
    assert not monotonic([1, 1, 2], strict=True)
    assert monotonic([3, 2, 1], increasing=False)


def test_shape_matches():
    assert shape_matches([1.0, 2.0], [1.05, 1.9], rel_tol=0.1)
    assert not shape_matches([1.0, 3.0], [1.0, 2.0], rel_tol=0.1)
    with pytest.raises(ValueError):
        shape_matches([1.0], [1.0, 2.0], rel_tol=0.1)
