"""Tests for the accelerator-mode offload model (§III)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.offload import OffloadModel
from repro.comm.dacs import PCIE_RAW
from repro.comm.transport import Transport

FREE_LINK = Transport("free", latency=1e-12, bandwidth=1e15)


def test_no_offload_means_no_change():
    model = OffloadModel(cpu_time=1.0, hotspot_fraction=0.0,
                         kernel_speedup=100.0, link=FREE_LINK)
    assert model.speedup() == pytest.approx(1.0)


def test_full_offload_free_links_gives_kernel_speedup():
    model = OffloadModel(cpu_time=1.0, hotspot_fraction=1.0,
                         kernel_speedup=30.0, link=FREE_LINK)
    assert model.speedup() == pytest.approx(30.0)


def test_amdahl_limit_caps_speedup():
    """90% hotspot with a 1000x accelerator still cannot beat 10x."""
    model = OffloadModel(cpu_time=1.0, hotspot_fraction=0.9,
                         kernel_speedup=1000.0, link=FREE_LINK)
    assert model.amdahl_limit() == pytest.approx(10.0)
    assert model.speedup() < model.amdahl_limit()
    assert model.speedup() > 9.0


def test_amdahl_limit_infinite_for_full_offload():
    model = OffloadModel(cpu_time=1.0, hotspot_fraction=1.0, kernel_speedup=2.0)
    assert model.amdahl_limit() == float("inf")


def test_transfers_erode_speedup():
    base = OffloadModel(cpu_time=10e-3, hotspot_fraction=0.95,
                        kernel_speedup=30.0)
    chatty = OffloadModel(cpu_time=10e-3, hotspot_fraction=0.95,
                          kernel_speedup=30.0,
                          bytes_down=4_000_000, bytes_up=4_000_000)
    assert chatty.speedup() < base.speedup()
    assert chatty.speedup() <= chatty.transfer_bound_speedup()


def test_many_small_calls_pay_latency():
    """The same bytes in 1000 calls cost far more than in one call —
    the paper's temporal-locality lesson."""
    bulk = OffloadModel(cpu_time=10e-3, hotspot_fraction=0.9,
                        kernel_speedup=20.0,
                        bytes_down=1_000_000, calls=1)
    chatty = OffloadModel(cpu_time=10e-3, hotspot_fraction=0.9,
                          kernel_speedup=20.0,
                          bytes_down=1_000_000, calls=1000)
    assert chatty.transfer_time > bulk.transfer_time + 900 * 3.19e-6
    assert chatty.speedup() < bulk.speedup()


def test_raw_pcie_beats_measured_dacs():
    kwargs = dict(cpu_time=5e-3, hotspot_fraction=0.9, kernel_speedup=25.0,
                  bytes_down=2_000_000, bytes_up=2_000_000)
    dacs = OffloadModel(**kwargs)
    pcie = OffloadModel(**kwargs, link=PCIE_RAW)
    assert pcie.speedup() > dacs.speedup()


def test_breakeven_kernel_speedup():
    model = OffloadModel(cpu_time=1e-3, hotspot_fraction=0.5,
                         kernel_speedup=10.0, bytes_down=100_000)
    be = model.breakeven_kernel_speedup()
    assert be > 1.0
    at_breakeven = OffloadModel(cpu_time=1e-3, hotspot_fraction=0.5,
                                kernel_speedup=be, bytes_down=100_000)
    assert at_breakeven.speedup() == pytest.approx(1.0, rel=1e-9)


def test_breakeven_infinite_when_transfers_dominate():
    model = OffloadModel(cpu_time=1e-6, hotspot_fraction=0.5,
                         kernel_speedup=10.0, bytes_down=10_000_000)
    assert model.breakeven_kernel_speedup() == float("inf")
    assert model.speedup() < 1.0


def test_validation():
    with pytest.raises(ValueError):
        OffloadModel(cpu_time=0.0, hotspot_fraction=0.5, kernel_speedup=2.0)
    with pytest.raises(ValueError):
        OffloadModel(cpu_time=1.0, hotspot_fraction=1.5, kernel_speedup=2.0)
    with pytest.raises(ValueError):
        OffloadModel(cpu_time=1.0, hotspot_fraction=0.5, kernel_speedup=0.0)
    with pytest.raises(ValueError):
        OffloadModel(cpu_time=1.0, hotspot_fraction=0.5, kernel_speedup=2.0,
                     calls=0)


@settings(max_examples=60, deadline=None)
@given(
    f=st.floats(min_value=0.0, max_value=1.0),
    s=st.floats(min_value=1.0, max_value=100.0),
    volume=st.integers(min_value=0, max_value=10_000_000),
)
def test_speedup_bounded_by_both_ceilings(f, s, volume):
    model = OffloadModel(cpu_time=1e-2, hotspot_fraction=f,
                         kernel_speedup=s, bytes_down=volume)
    speedup = model.speedup()
    assert speedup <= model.amdahl_limit() * (1 + 1e-12)
    assert speedup <= model.transfer_bound_speedup() * (1 + 1e-12)
    assert speedup > 0


@settings(max_examples=40, deadline=None)
@given(
    f=st.floats(min_value=0.1, max_value=1.0),
    s1=st.floats(min_value=1.0, max_value=50.0),
    s2=st.floats(min_value=1.0, max_value=50.0),
)
def test_speedup_monotone_in_kernel_speedup(f, s1, s2):
    lo, hi = sorted((s1, s2))
    slow = OffloadModel(cpu_time=1e-2, hotspot_fraction=f, kernel_speedup=lo)
    fast = OffloadModel(cpu_time=1e-2, hotspot_fraction=f, kernel_speedup=hi)
    assert fast.speedup() >= slow.speedup() * (1 - 1e-12)
