"""Tests for the MiniPIC application (real SP numerics + VPIC timing)."""

import numpy as np
import pytest

from repro.apps.minipic import MiniPIC, PICTimestepModel
from repro.hardware.cell import CELL_BE, POWERXCELL_8I


@pytest.fixture()
def pic():
    return MiniPIC(n_cells=32, particles_per_cell=10, dt=0.05)


def test_everything_is_float32(pic):
    """Like VPIC, the whole particle pipeline is single precision."""
    assert pic.uses_single_precision()
    rho = pic.deposit_charge()
    e = pic.solve_field(rho)
    assert rho.dtype == np.float32
    assert e.dtype == np.float32
    assert pic.gather_field(e).dtype == np.float32


def test_particle_count():
    pic = MiniPIC(n_cells=16, particles_per_cell=5)
    assert pic.n_particles == 80


def test_validation():
    with pytest.raises(ValueError):
        MiniPIC(n_cells=1)
    with pytest.raises(ValueError):
        MiniPIC(particles_per_cell=0)
    with pytest.raises(ValueError):
        MiniPIC(dt=0.0)
    with pytest.raises(ValueError):
        MiniPIC().step(0)


def test_charge_conservation(pic):
    """CIC deposition conserves total charge exactly (up to fp32)."""
    assert abs(pic.charge_total()) < 1e-4
    pic.step(20)
    assert abs(pic.charge_total()) < 1e-4


def test_field_has_zero_mean(pic):
    e = pic.solve_field(pic.deposit_charge())
    assert abs(float(e.mean())) < 1e-6


def test_momentum_conservation():
    """Linear deposit + spectral solve + linear gather: the scheme is
    momentum-conserving."""
    pic = MiniPIC(dt=0.1)
    p0 = pic.total_momentum()
    pic.step(100)
    assert pic.total_momentum() == pytest.approx(p0, abs=5e-3)


def test_cold_plasma_total_energy_conserved():
    pic = MiniPIC(beam_speed=0.0, dt=0.05)
    e0 = pic.field_energy() + pic.kinetic_energy()
    pic.step(100)
    e1 = pic.field_energy() + pic.kinetic_energy()
    # Energies are tiny for the quiet start; compare on thermal scale.
    assert abs(e1 - e0) < 1e-3


def test_two_stream_instability_grows():
    """The classic benchmark: counter-streaming beams pump the field
    energy by orders of magnitude before saturation."""
    pic = MiniPIC(beam_speed=0.2, dt=0.1)
    fe0 = pic.field_energy()
    pic.step(250)
    assert pic.field_energy() > 50 * fe0


def test_two_stream_conserves_total_energy():
    pic = MiniPIC(beam_speed=0.2, dt=0.1)
    tot0 = pic.field_energy() + pic.kinetic_energy()
    pic.step(250)
    tot1 = pic.field_energy() + pic.kinetic_energy()
    assert abs(tot1 - tot0) / tot0 < 0.01


def test_positions_stay_periodic(pic):
    pic.step(50)
    assert pic.positions.min() >= 0.0
    assert pic.positions.max() < pic.length


# --- Roadrunner timing (§IV-A's VPIC row) -------------------------------------

def test_pxc8i_buys_nothing_for_pic(pic):
    """'VPIC doesn't show significant improvements on this new
    processor as its calculations use single precision.'"""
    model = PICTimestepModel()
    assert model.pxc8i_speedup(pic) == pytest.approx(1.0)


def test_timestep_time_scales_with_particles():
    model = PICTimestepModel()
    small = MiniPIC(n_cells=16, particles_per_cell=5)
    large = MiniPIC(n_cells=16, particles_per_cell=10)
    ratio = model.timestep_time(large, POWERXCELL_8I) / model.timestep_time(
        small, POWERXCELL_8I
    )
    assert ratio == pytest.approx(2.0)


def test_cellbe_and_pxc_identical_cycles(pic):
    model = PICTimestepModel()
    assert model.particle_cycles(CELL_BE) == model.particle_cycles(POWERXCELL_8I)
