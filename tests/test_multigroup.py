"""Tests for the multigroup extension of the sweep solver."""

import numpy as np
import pytest

from repro.sweep3d.input import SweepInput
from repro.sweep3d.multigroup import (
    MultigroupInput,
    solve_multigroup,
)
from repro.sweep3d.solver import solve

BASE = SweepInput(it=6, jt=6, kt=6, mk=2, mmi=6, sigma_t=1.0, sigma_s=0.0)


def two_group(coupling=0.3):
    return MultigroupInput(
        base=BASE,
        sigma_t=(1.0, 2.0),
        sigma_s=((0.4, 0.0), (coupling, 0.8)),
        q=(1.0, 0.0),
    )


def test_validation():
    with pytest.raises(ValueError):
        MultigroupInput(BASE, sigma_t=(), sigma_s=(), q=())
    with pytest.raises(ValueError):
        MultigroupInput(BASE, sigma_t=(1.0,), sigma_s=((0.5,),), q=(1.0, 2.0))
    with pytest.raises(ValueError):  # upscatter forbidden
        MultigroupInput(
            BASE, sigma_t=(1.0, 1.0),
            sigma_s=((0.2, 0.1), (0.0, 0.2)), q=(1.0, 0.0),
        )
    with pytest.raises(ValueError):  # within-group scatter >= sigma_t
        MultigroupInput(BASE, sigma_t=(1.0,), sigma_s=((1.0,),), q=(1.0,))
    with pytest.raises(ValueError):  # negative cross-section
        MultigroupInput(BASE, sigma_t=(1.0,), sigma_s=((-0.1,),), q=(1.0,))


def test_single_group_reduces_to_scalar_solver():
    mg = MultigroupInput(BASE, sigma_t=(1.0,), sigma_s=((0.5,),), q=(1.0,))
    result = solve_multigroup(mg)
    import dataclasses

    single = solve(dataclasses.replace(BASE, sigma_t=1.0, sigma_s=0.5, q=1.0))
    np.testing.assert_allclose(result.phi[0], single.phi, rtol=1e-12)
    assert result.converged


def test_decoupled_groups_solve_independently():
    mg = MultigroupInput(
        BASE,
        sigma_t=(1.0, 2.0),
        sigma_s=((0.4, 0.0), (0.0, 0.8)),
        q=(1.0, 3.0),
    )
    result = solve_multigroup(mg)
    import dataclasses

    for g, (st, ss, q) in enumerate([(1.0, 0.4, 1.0), (2.0, 0.8, 3.0)]):
        single = solve(dataclasses.replace(BASE, sigma_t=st, sigma_s=ss, q=q))
        np.testing.assert_allclose(result.phi[g], single.phi, rtol=1e-12)


def test_downscatter_feeds_the_slow_group():
    """Group 2 has no fixed source; everything it holds arrived by
    downscatter from group 1."""
    coupled = solve_multigroup(two_group(coupling=0.3))
    uncoupled = solve_multigroup(two_group(coupling=0.0))
    assert coupled.phi[1].max() > 0
    assert uncoupled.phi[1].max() == 0
    # The fast group is unaffected by what happens below it.
    np.testing.assert_allclose(coupled.phi[0], uncoupled.phi[0], rtol=1e-12)


def test_downscatter_scales_linearly():
    weak = solve_multigroup(two_group(coupling=0.15))
    strong = solve_multigroup(two_group(coupling=0.30))
    np.testing.assert_allclose(strong.phi[1], 2 * weak.phi[1], rtol=1e-10)


def test_infinite_medium_group_balance():
    """Optically thick interior: phi_g matches the algebraic two-group
    infinite-medium solution."""
    base = SweepInput(
        it=13, jt=13, kt=13, mk=1, mmi=6,
        sigma_t=1.0, sigma_s=0.0, q=1.0,
    )
    mg = MultigroupInput(
        base,
        sigma_t=(2.0, 2.0),
        sigma_s=((1.0, 0.0), (0.5, 1.0)),
        q=(4.0, 0.0),
    )
    result = solve_multigroup(mg, max_iterations=300)
    c = 6
    phi1 = 4.0 / (2.0 - 1.0)                 # q1 / (st1 - ss11)
    phi2 = 0.5 * phi1 / (2.0 - 1.0)          # downscatter / (st2 - ss22)
    assert result.phi[0][c, c, c] == pytest.approx(phi1, rel=0.02)
    assert result.phi[1][c, c, c] == pytest.approx(phi2, rel=0.02)


def test_total_flux_sums_groups():
    result = solve_multigroup(two_group())
    np.testing.assert_allclose(
        result.total_flux(), result.phi[0] + result.phi[1], rtol=1e-14
    )


def test_group_balance_residuals_tiny():
    result = solve_multigroup(two_group())
    for r in result.group_results:
        assert r.balance_residual < 1e-10


def test_solver_external_source_validation():
    with pytest.raises(ValueError):
        solve(BASE, external_source=np.ones((2, 2, 2)))
