"""Tests for the negative-flux fixup kernel."""

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.sweep3d.fixup import sweep_octant_fixup, sweep_octants_batched_fixup
from repro.sweep3d.input import SweepInput
from repro.sweep3d.kernel import sweep_octant
from repro.sweep3d.quadrature import OCTANTS, make_angle_set
from repro.sweep3d.solver import _flip, solve, sweep_all_octants


def zero_inflows(I, J, K, M):
    return (
        np.zeros((J, K, M)),
        np.zeros((I, K, M)),
        np.zeros((I, J, M)),
    )


def test_fixup_matches_plain_kernel_when_no_negatives():
    """With zero inflow and a flat source plain DD stays non-negative,
    so the two kernels must agree exactly."""
    ang = make_angle_set(6)
    src = np.ones((4, 4, 4))
    ins = zero_inflows(4, 4, 4, 6)
    plain = sweep_octant(1.0, src, 1, 1, 1, ang, *ins)
    fixed = sweep_octant_fixup(1.0, src, 1, 1, 1, ang, *ins)
    for p, f in zip(plain, fixed):
        np.testing.assert_allclose(f, p, rtol=1e-13)


def test_plain_kernel_goes_negative_in_thick_cells():
    """The failure mode the fixup exists for: a strong incoming flux
    into an optically thick absorber extrapolates negative outflow."""
    ang = make_angle_set(6)
    src = np.zeros((3, 3, 3))
    in_x = np.full((3, 3, 6), 10.0)
    in_y = np.zeros((3, 3, 6))
    in_z = np.zeros((3, 3, 6))
    _, out_x, out_y, out_z = sweep_octant(
        8.0, src, 1, 1, 1, ang, in_x, in_y, in_z
    )
    assert min(out_x.min(), out_y.min(), out_z.min()) < 0


def test_fixup_keeps_everything_nonnegative():
    ang = make_angle_set(6)
    src = np.zeros((3, 3, 3))
    in_x = np.full((3, 3, 6), 10.0)
    in_y = np.zeros((3, 3, 6))
    in_z = np.zeros((3, 3, 6))
    phi, out_x, out_y, out_z = sweep_octant_fixup(
        8.0, src, 1, 1, 1, ang, in_x, in_y, in_z
    )
    assert phi.min() >= 0
    assert out_x.min() >= 0 and out_y.min() >= 0 and out_z.min() >= 0


def test_fixup_preserves_cell_balance():
    """The rebalance keeps the exact per-sweep particle balance the
    solver checks."""
    inp = SweepInput(it=5, jt=5, kt=5, mk=1, mmi=6, sigma_t=6.0, sigma_s=3.0)
    res = solve(inp, max_iterations=5, fixup=True)
    assert res.balance_residual < 1e-12


def test_fixup_solver_converges_and_is_nonnegative():
    inp = SweepInput(it=6, jt=6, kt=6, mk=2, mmi=6, sigma_t=10.0, sigma_s=2.0)
    res = solve(inp, max_iterations=100, fixup=True)
    assert res.converged
    assert res.phi.min() >= 0


def test_fixup_and_plain_agree_on_benign_problem():
    inp = SweepInput(it=5, jt=5, kt=5, mk=1, mmi=6, sigma_t=1.0, sigma_s=0.5)
    plain = solve(inp, max_iterations=50, fixup=False)
    fixed = solve(inp, max_iterations=50, fixup=True)
    np.testing.assert_allclose(fixed.phi, plain.phi, rtol=1e-10)


def test_batched_fixup_matches_per_octant_loop():
    """The 8-octant batched fixup is the same sweep as eight per-octant
    calls — bit-identical faces and octant-summed flux, including with
    a spatially varying (array) ``sigma_t``, where the rebalance engages
    in some cells and not others."""
    rng = np.random.default_rng(5)
    for I, J, K, mmi in [(4, 4, 4, 6), (5, 3, 2, 3), (1, 4, 3, 2), (3, 1, 5, 4)]:
        ang = make_angle_set(mmi)
        M = ang.n_angles
        src = rng.uniform(0.0, 0.3, (I, J, K))
        for sigma in (8.0, rng.uniform(2.0, 12.0, (I, J, K))):
            phi_b, ox_b, oy_b, oz_b = sweep_octants_batched_fixup(
                sigma, src, 0.9, 1.1, 1.3, ang
            )
            phi_ref = np.zeros((I, J, K))
            for octant in OCTANTS:
                src_f = np.ascontiguousarray(_flip(src, octant.signs))
                sig_f = (
                    sigma if np.ndim(sigma) == 0
                    else np.ascontiguousarray(_flip(sigma, octant.signs))
                )
                phi_o, ox, oy, oz = sweep_octant_fixup(
                    sig_f, src_f, 0.9, 1.1, 1.3, ang,
                    np.zeros((J, K, M)), np.zeros((I, K, M)), np.zeros((I, J, M)),
                )
                phi_ref += _flip(phi_o, octant.signs)
                assert np.array_equal(ox, ox_b[octant.id])
                assert np.array_equal(oy, oy_b[octant.id])
                assert np.array_equal(oz, oz_b[octant.id])
            assert np.array_equal(phi_ref, phi_b)


def test_fixup_solve_batched_matches_loop_bitwise():
    """A vacuum fixup solve is bit-identical whether the octants run
    batched (the auto default) or through the per-octant loop."""
    inp = SweepInput(it=5, jt=4, kt=6, mk=2, mmi=6, sigma_t=9.0, sigma_s=1.0)
    loop = solve(inp, max_iterations=25, fixup=True, batched=False)
    auto = solve(inp, max_iterations=25, fixup=True)
    assert np.array_equal(loop.phi, auto.phi)
    assert loop.leakage == auto.leakage
    assert loop.balance_residual == auto.balance_residual
    assert loop.iterations == auto.iterations


def test_batched_rejected_with_banked_face_memory():
    """The batched path only exists for vacuum inflows; banked mirror
    outflows must force (or raise on) the per-octant loop."""
    inp = SweepInput(it=3, jt=3, kt=3, mk=3, mmi=2)
    ang = make_angle_set(inp.mmi)
    src = np.ones((3, 3, 3))
    memory = {(0, "x"): np.ones((3, 3, ang.n_angles))}
    with pytest.raises(ValueError):
        sweep_all_octants(
            inp, src, ang, kernel=sweep_octant_fixup,
            face_memory=memory, batched=True,
        )


@settings(max_examples=30, deadline=None)
@given(
    sigma=st.floats(min_value=0.2, max_value=20.0),
    inflow=st.floats(min_value=0.0, max_value=50.0),
    seed=st.integers(0, 2**31),
)
@example(sigma=8.0, inflow=12.0, seed=170283)  # needs the 4th fixup pass
def test_fixup_nonnegativity_property(sigma, inflow, seed):
    """For ANY non-negative source/inflow, the fixup kernel never emits
    a negative flux anywhere."""
    rng = np.random.default_rng(seed)
    ang = make_angle_set(3)
    src = rng.random((3, 2, 2))
    in_x = inflow * rng.random((2, 2, 3))
    in_y = inflow * rng.random((3, 2, 3))
    in_z = inflow * rng.random((3, 2, 3))
    phi, ox, oy, oz = sweep_octant_fixup(
        sigma, src, 1.0, 1.0, 1.0, ang, in_x, in_y, in_z
    )
    assert phi.min() >= -1e-14
    assert min(ox.min(), oy.min(), oz.min()) >= -1e-14


@settings(max_examples=30, deadline=None)
@given(
    sigma=st.floats(min_value=0.3, max_value=15.0),
    inflow=st.floats(min_value=0.0, max_value=30.0),
    seed=st.integers(0, 2**31),
)
def test_both_kernels_preserve_octant_balance(sigma, inflow, seed):
    """The telescoped single-octant particle balance

        sum_d (c_d/2)(outflow_d - inflow_d) + sigma * sum(psi_c) = sum(S)

    holds exactly for the plain kernel AND for the fixup kernel on
    arbitrary non-negative inputs (the rebalance is conservative)."""
    rng = np.random.default_rng(seed)
    ang = make_angle_set(1)  # single angle: psi_c = phi / w
    src = rng.random((3, 4, 2))
    in_x = inflow * rng.random((4, 2, 1))
    in_y = inflow * rng.random((3, 2, 1))
    in_z = inflow * rng.random((3, 4, 1))
    for kernel in (sweep_octant, sweep_octant_fixup):
        phi, ox, oy, oz = kernel(
            sigma, src, 1.0, 1.0, 1.0, ang, in_x, in_y, in_z
        )
        psi_sum = phi.sum() / ang.weights[0]
        balance = (
            float(ang.mu[0]) * (ox.sum() - in_x.sum())
            + float(ang.eta[0]) * (oy.sum() - in_y.sum())
            + float(ang.xi[0]) * (oz.sum() - in_z.sum())
            + sigma * psi_sum
            - src.sum()
        )
        scale = max(abs(src.sum()), sigma * abs(psi_sum), 1.0)
        assert abs(balance) / scale < 1e-12, kernel.__name__
