"""Tests for the JSON data layer and the --json CLI path."""

import json

import pytest

from repro.cli import main
from repro.core.artifacts import ARTIFACTS
from repro.core.data import DATA_PRODUCERS, produce_data


def test_every_text_artifact_has_a_data_producer():
    missing = set(ARTIFACTS) - set(DATA_PRODUCERS)
    assert not missing


def test_all_producers_json_serializable():
    for name in DATA_PRODUCERS:
        payload = produce_data(name)
        text = json.dumps(payload)
        assert len(text) > 20, name


def test_unknown_producer_raises():
    with pytest.raises(KeyError):
        produce_data("fig99")


def test_table1_data_values():
    data = produce_data("table1")
    assert data["destinations_by_hops"] == {
        "0": 1, "1": 7, "3": 260, "5": 1932, "7": 860
    }
    assert data["average_hops"] == pytest.approx(5.3814, abs=1e-3)


def test_fig13_data_shapes():
    data = produce_data("fig13")
    n = len(data["nodes"])
    for key in ("opteron", "cell_measured", "cell_best"):
        assert len(data[key]) == n


def test_fig10_data_full_length():
    data = produce_data("fig10")
    assert len(data["latency_us_by_node"]) == 3060
    assert data["latency_us_by_node"][0] == 0.0


def test_validate_data_all_pass():
    data = produce_data("validate")
    assert data["passed"] == data["total"] == len(data["checks"])


def test_energy_data_advantages():
    data = produce_data("energy")
    assert set(data) == {"1", "64", "1024", "3060"}
    for point in data.values():
        assert point["energy_best"] >= point["energy_measured"] > 1.0


def test_cli_json_single(capsys):
    assert main(["--json", "linpack"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rmax_pflops"] == pytest.approx(1.026, rel=0.01)


def test_cli_json_multiple(capsys):
    assert main(["--json", "table1", "apps"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"table1", "apps"}
    assert payload["apps"]["Sweep3D"] == pytest.approx(1.95, rel=0.01)


def test_cli_json_unknown(capsys):
    assert main(["--json", "bogus"]) == 2
    assert "no JSON producer" in capsys.readouterr().err
