"""Tests for SimMPI: point-to-point semantics, matching, collectives."""

import pytest

from repro.comm.mpi import ANY_SOURCE, ANY_TAG, Location, SimMPI, UniformFabric
from repro.comm.transport import Transport
from repro.sim import Simulator
from repro.units import US


def make_comm(n_ranks, latency=1 * US, bandwidth=1e9):
    sim = Simulator()
    fabric = UniformFabric(Transport("test", latency=latency, bandwidth=bandwidth))
    comm = SimMPI(sim, fabric, [Location(node=i) for i in range(n_ranks)])
    return sim, comm


def run_ranks(sim, comm, rank_fn):
    """Start one process per rank running ``rank_fn(rank_api)``."""
    procs = []
    for r in range(comm.size):
        procs.append(sim.process(rank_fn(comm.rank(r)), name=f"rank{r}"))
    sim.run()
    return procs


def test_send_recv_delivers_payload_and_timing():
    sim, comm = make_comm(2)
    out = {}

    def body(rank):
        if rank.index == 0:
            yield from rank.send(1, size=1000, tag=7, payload="hello")
        else:
            msg = yield from rank.recv(source=0, tag=7)
            out["msg"] = msg
            out["time"] = rank.sim.now

    run_ranks(sim, comm, body)
    assert out["msg"].payload == "hello"
    assert out["msg"].size == 1000
    # Delivery = latency + serialization = 1us + 1000/1e9 s.
    assert out["time"] == pytest.approx(1e-6 + 1e-6)


def test_zero_byte_message_arrives_after_latency_only():
    sim, comm = make_comm(2, latency=5 * US)
    times = {}

    def body(rank):
        if rank.index == 0:
            yield from rank.send(1, size=0)
            times["sender_free"] = rank.sim.now
        else:
            yield from rank.recv()
            times["recv"] = rank.sim.now

    run_ranks(sim, comm, body)
    assert times["sender_free"] == pytest.approx(0.0)  # no serialization
    assert times["recv"] == pytest.approx(5e-6)


def test_self_message_is_free():
    sim, comm = make_comm(1)
    times = {}

    def body(rank):
        yield from rank.send(0, size=10_000, payload=123)
        msg = yield from rank.recv()
        times["t"] = rank.sim.now
        times["payload"] = msg.payload

    run_ranks(sim, comm, body)
    assert times["t"] == pytest.approx(0.0)
    assert times["payload"] == 123


def test_recv_matches_on_source_and_tag():
    sim, comm = make_comm(3)
    order = []

    def body(rank):
        if rank.index == 2:
            # Wait specifically for rank 1 first even though rank 0's
            # message arrives earlier.
            msg1 = yield from rank.recv(source=1, tag=5)
            order.append(msg1.source)
            msg0 = yield from rank.recv(source=0, tag=5)
            order.append(msg0.source)
        elif rank.index == 0:
            yield from rank.send(2, size=0, tag=5)
        else:
            yield rank.sim.timeout(1e-3)
            yield from rank.send(2, size=0, tag=5)

    run_ranks(sim, comm, body)
    assert order == [1, 0]


def test_any_source_any_tag_wildcards():
    sim, comm = make_comm(3)
    got = []

    def body(rank):
        if rank.index == 0:
            for _ in range(2):
                msg = yield from rank.recv(source=ANY_SOURCE, tag=ANY_TAG)
                got.append((msg.source, msg.tag))
        else:
            yield rank.sim.timeout(rank.index * 1e-6)
            yield from rank.send(0, size=0, tag=rank.index * 10)

    run_ranks(sim, comm, body)
    assert sorted(got) == [(1, 10), (2, 20)]


def test_messages_between_same_pair_arrive_in_order():
    sim, comm = make_comm(2)
    seen = []

    def body(rank):
        if rank.index == 0:
            for i in range(5):
                yield from rank.send(1, size=1000, tag=0, payload=i)
        else:
            for _ in range(5):
                msg = yield from rank.recv(source=0, tag=0)
                seen.append(msg.payload)

    run_ranks(sim, comm, body)
    assert seen == [0, 1, 2, 3, 4]


def test_send_validates_arguments():
    sim, comm = make_comm(2)

    def body(rank):
        if rank.index == 0:
            yield from rank.send(5, size=0)
        else:
            yield rank.sim.timeout(0.0)

    with pytest.raises(ValueError):
        run_ranks(sim, comm, body)


def test_send_rejects_negative_size():
    sim, comm = make_comm(2)

    def body(rank):
        if rank.index == 0:
            yield from rank.send(1, size=-1)
        else:
            yield rank.sim.timeout(0.0)

    with pytest.raises(ValueError):
        run_ranks(sim, comm, body)


def test_rank_handle_range_checked():
    _, comm = make_comm(2)
    with pytest.raises(ValueError):
        comm.rank(2)


def test_communicator_needs_ranks():
    sim = Simulator()
    fabric = UniformFabric(Transport("t", latency=0.0, bandwidth=1e9))
    with pytest.raises(ValueError):
        SimMPI(sim, fabric, [])


def test_sent_statistics():
    sim, comm = make_comm(2)

    def body(rank):
        if rank.index == 0:
            yield from rank.send(1, size=500)
            yield from rank.send(1, size=700)
        else:
            yield from rank.recv()
            yield from rank.recv()

    run_ranks(sim, comm, body)
    assert comm.sent_counts[0] == 2
    assert comm.sent_bytes[0] == 1200


# --- collectives ----------------------------------------------------------------

@pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8])
def test_barrier_synchronizes(n):
    sim, comm = make_comm(n)
    exit_times = {}

    def body(rank):
        # Stagger arrivals.
        yield rank.sim.timeout(rank.index * 1e-5)
        yield from rank.barrier()
        exit_times[rank.index] = rank.sim.now

    run_ranks(sim, comm, body)
    # Nobody leaves before the last arrival.
    last_arrival = (n - 1) * 1e-5
    assert all(t >= last_arrival for t in exit_times.values())


def test_two_consecutive_barriers_do_not_cross():
    sim, comm = make_comm(4)
    counters = {r: 0 for r in range(4)}

    def body(rank):
        yield rank.sim.timeout(rank.index * 3e-6)
        yield from rank.barrier()
        counters[rank.index] += 1
        yield from rank.barrier()
        counters[rank.index] += 1

    run_ranks(sim, comm, body)
    assert all(c == 2 for c in counters.values())


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_delivers_root_value(n, root):
    if root >= n:
        pytest.skip("root outside communicator")
    sim, comm = make_comm(n)
    results = {}

    def body(rank):
        value = f"data-{rank.index}" if rank.index == root else None
        got = yield from rank.bcast(value, root=root)
        results[rank.index] = got

    run_ranks(sim, comm, body)
    assert all(v == f"data-{root}" for v in results.values())


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
def test_reduce_sums_at_root(n):
    sim, comm = make_comm(n)
    results = {}

    def body(rank):
        got = yield from rank.reduce(rank.index + 1, op=lambda a, b: a + b, root=0)
        results[rank.index] = got

    run_ranks(sim, comm, body)
    assert results[0] == n * (n + 1) // 2
    assert all(results[r] is None for r in range(1, n))


@pytest.mark.parametrize("n", [1, 2, 4, 6])
def test_allreduce_everyone_gets_result(n):
    sim, comm = make_comm(n)
    results = {}

    def body(rank):
        got = yield from rank.allreduce(2 ** rank.index, op=lambda a, b: a + b)
        results[rank.index] = got

    run_ranks(sim, comm, body)
    expected = 2**n - 1
    assert all(v == expected for v in results.values())


def test_bcast_takes_logarithmic_rounds():
    """Binomial broadcast over n ranks with latency L finishes in
    ceil(log2 n) * L (zero-size serialization)."""
    latency = 1 * US
    sim, comm = make_comm(8, latency=latency)
    finish = {}

    def body(rank):
        yield from rank.bcast("x", root=0, size=0)
        finish[rank.index] = rank.sim.now

    run_ranks(sim, comm, body)
    assert max(finish.values()) == pytest.approx(3 * latency)


def test_location_aware_fabric_charges_by_distance():
    from repro.comm.cml import CellMessagePath
    from repro.comm.mpi import TransportMapFabric

    path = CellMessagePath()

    def classify(src, dst):
        if src == dst:
            return None
        return path.classify((src.node, src.cell, src.spe), (dst.node, dst.cell, dst.spe))

    fabric = TransportMapFabric(
        {
            "intra-socket": path.intra_socket,
            "intranode": path.intranode,
            "internode": path.internode,
        },
        classify,
    )
    sim = Simulator()
    locations = [
        Location(node=0, cell=0, spe=0),
        Location(node=0, cell=0, spe=1),
        Location(node=1, cell=0, spe=0),
    ]
    comm = SimMPI(sim, fabric, locations)
    times = {}

    def body(rank):
        if rank.index == 0:
            yield from rank.send(1, size=0)
            yield from rank.send(2, size=0)
        else:
            yield from rank.recv(source=0)
            times[rank.index] = rank.sim.now

    run_ranks(sim, comm, body)
    assert times[1] == pytest.approx(0.272e-6)
    assert times[2] == pytest.approx(8.78e-6, rel=0.01)


# -- interrupts delivered inside collectives --------------------------------

def test_interrupt_while_parked_in_barrier():
    """A process interrupted mid-barrier (parked in the dissemination
    exchange's recv) sees the Interrupt inside the collective and can
    clean up; the other ranks' barrier never completes."""
    from repro.sim.engine import Interrupt

    sim, comm = make_comm(4)
    seen = {}
    procs = {}

    def body(rank):
        if rank.index == 3:
            # Rank 3 never enters the barrier, so everyone else parks.
            yield rank.sim.timeout(1.0)
            return
        try:
            yield from rank.barrier()
            seen[rank.index] = "completed"
        except Interrupt as stop:
            seen[rank.index] = ("interrupted", stop.cause, rank.sim.now)

    for r in range(comm.size):
        procs[r] = sim.process(body(comm.rank(r)), name=f"rank{r}")

    def controller(sim):
        yield sim.timeout(0.5)
        procs[1].interrupt("node-down")

    sim.process(controller(sim), name="controller")
    for r in (0, 2):
        procs[r].defused = True  # parked forever once rank 1 dies
    sim.run(until=1.0)
    assert seen[1] == ("interrupted", "node-down", 0.5)
    assert 0 not in seen and 2 not in seen  # still parked, not completed


def test_interrupt_while_parked_in_allreduce():
    """Interrupt lands inside allreduce's internal recv; uninterrupted
    ranks that already got their contributions finish normally."""
    from repro.sim.engine import Interrupt

    sim, comm = make_comm(2)
    seen = {}

    def body(rank):
        try:
            total = yield from rank.allreduce(rank.index + 1, lambda a, b: a + b)
            seen[rank.index] = ("completed", total)
        except Interrupt as stop:
            seen[rank.index] = ("interrupted", stop.cause)

    procs = [sim.process(body(comm.rank(r)), name=f"rank{r}") for r in range(2)]

    def controller(sim):
        # Fire immediately: rank 0 is parked in reduce's recv at t=0.
        yield sim.timeout(0.0)
        procs[0].interrupt("fault")

    sim.process(controller(sim), name="controller")
    procs[1].defused = True  # its bcast recv will never be answered
    sim.run(until=1.0)
    assert seen[0] == ("interrupted", "fault")
    assert 1 not in seen  # parked in the broadcast that never comes


def test_interrupted_rank_can_reenter_collectives():
    """After catching an Interrupt inside a barrier, a process can keep
    using its Rank handle (fresh collective tags don't collide)."""
    from repro.sim.engine import Interrupt

    sim, comm = make_comm(2)
    log = []

    def survivor(rank):
        try:
            yield from rank.barrier()
        except Interrupt:
            log.append("interrupted")
        # Point-to-point still works after the aborted collective.
        yield from rank.send(1, size=64, tag=9, payload="post-fault")

    def peer(rank):
        # Never joins the barrier; receives the post-fault message.
        msg = yield from rank.recv(source=0, tag=9)
        log.append(msg.payload)

    p0 = sim.process(survivor(comm.rank(0)), name="rank0")
    sim.process(peer(comm.rank(1)), name="rank1")

    def controller(sim):
        yield sim.timeout(0.1)
        p0.interrupt("transient")

    sim.process(controller(sim), name="controller")
    sim.run()
    assert log == ["interrupted", "post-fault"]
