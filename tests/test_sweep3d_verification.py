"""Tests for the exact-solution verification of the sweep kernel."""

import numpy as np
import pytest

from repro.sweep3d.quadrature import make_angle_set
from repro.sweep3d.verification import (
    convergence_study,
    exact_absorber_flux,
)


def test_exact_flux_bounded_by_infinite_medium():
    """0 < phi < q/sigma everywhere (vacuum boundaries sap the edges)."""
    ang = make_angle_set(6)
    phi = exact_absorber_flux(extent=4.0, n_cells=8, sigma_t=1.0, q=2.0, angles=ang)
    assert phi.min() > 0
    assert phi.max() < 2.0  # q / sigma_t


def test_exact_flux_symmetry():
    ang = make_angle_set(6)
    phi = exact_absorber_flux(extent=2.0, n_cells=6, sigma_t=1.5, q=1.0, angles=ang)
    np.testing.assert_allclose(phi, np.flip(phi, axis=0), rtol=1e-12)
    np.testing.assert_allclose(phi, np.flip(phi, axis=1), rtol=1e-12)
    np.testing.assert_allclose(phi, np.flip(phi, axis=2), rtol=1e-12)


def test_exact_flux_peaks_at_center():
    ang = make_angle_set(6)
    phi = exact_absorber_flux(extent=4.0, n_cells=7, sigma_t=1.0, q=1.0, angles=ang)
    assert phi[3, 3, 3] == phi.max()


def test_exact_flux_approaches_infinite_medium_deep_inside():
    """In a huge box the center reaches q/sigma to many digits."""
    ang = make_angle_set(6)
    phi = exact_absorber_flux(extent=60.0, n_cells=5, sigma_t=1.0, q=1.0, angles=ang)
    assert phi[2, 2, 2] == pytest.approx(1.0, rel=1e-6)


def test_exact_flux_validation():
    ang = make_angle_set(2)
    with pytest.raises(ValueError):
        exact_absorber_flux(0.0, 4, 1.0, 1.0, ang)
    with pytest.raises(ValueError):
        exact_absorber_flux(1.0, 0, 1.0, 1.0, ang)
    with pytest.raises(ValueError):
        exact_absorber_flux(1.0, 4, 0.0, 1.0, ang)


def test_convergence_errors_shrink_with_refinement():
    points, _order = convergence_study((6, 12, 24))
    l2 = [p.l2_error for p in points]
    linf = [p.linf_error for p in points]
    assert l2[0] > l2[1] > l2[2]
    assert linf[0] > linf[1] > linf[2]


def test_observed_order_is_near_second():
    """Diamond difference is formally 2nd order; the pure-absorber
    solution's kinks pull the observed order down a little."""
    _points, order = convergence_study((8, 16, 32))
    assert 1.4 < order < 2.3


def test_convergence_study_needs_two_levels():
    with pytest.raises(ValueError):
        convergence_study((8,))
