"""Unit tests for processor/core spec types and the Opteron/Tigerton specs."""

import pytest

from repro.hardware.processor import CacheSpec, CoreSpec, ProcessorSpec
from repro.hardware.opteron import (
    OPTERON_2210_HE,
    OPTERON_QUAD_2356,
    TIGERTON_X7350,
)
from repro.units import GFLOPS, MIB
from repro.validation import paper_data


def test_core_peak_rates_derive_from_issue_width():
    core = CoreSpec("c", clock_hz=2e9, dp_flops_per_cycle=2, sp_flops_per_cycle=4)
    assert core.peak_dp_flops == pytest.approx(4e9)
    assert core.peak_sp_flops == pytest.approx(8e9)


def test_core_rejects_nonpositive_clock():
    with pytest.raises(ValueError):
        CoreSpec("bad", clock_hz=0.0, dp_flops_per_cycle=2, sp_flops_per_cycle=4)


def test_core_rejects_negative_issue_width():
    with pytest.raises(ValueError):
        CoreSpec("bad", clock_hz=1e9, dp_flops_per_cycle=-1, sp_flops_per_cycle=4)


def test_cache_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        CacheSpec("L1", 0)


def test_processor_requires_cores():
    with pytest.raises(ValueError):
        ProcessorSpec("empty", core_counts=())


def test_processor_rejects_zero_count():
    core = CoreSpec("c", clock_hz=1e9, dp_flops_per_cycle=2, sp_flops_per_cycle=4)
    with pytest.raises(ValueError):
        ProcessorSpec("bad", core_counts=((core, 0),))


def test_processor_aggregates_over_core_kinds():
    a = CoreSpec("a", clock_hz=1e9, dp_flops_per_cycle=2, sp_flops_per_cycle=4)
    b = CoreSpec("b", clock_hz=2e9, dp_flops_per_cycle=1, sp_flops_per_cycle=2)
    chip = ProcessorSpec("mix", core_counts=((a, 2), (b, 3)))
    assert chip.core_count == 5
    assert chip.peak_dp_flops == pytest.approx(2 * 2e9 + 3 * 2e9)


def test_cores_named_lookup_and_missing():
    core = CoreSpec("c", clock_hz=1e9, dp_flops_per_cycle=2, sp_flops_per_cycle=4)
    chip = ProcessorSpec("p", core_counts=((core, 2),))
    spec, count = chip.cores_named("c")
    assert spec is core and count == 2
    with pytest.raises(KeyError):
        chip.cores_named("nope")


def test_on_chip_bytes_includes_shared_caches():
    core = CoreSpec(
        "c", clock_hz=1e9, dp_flops_per_cycle=2, sp_flops_per_cycle=4,
        caches=(CacheSpec("L1", 1024),),
    )
    chip = ProcessorSpec(
        "p", core_counts=((core, 2),), shared_caches=(CacheSpec("L3", 4096),)
    )
    assert chip.on_chip_bytes == 2 * 1024 + 4096


# --- the Roadrunner Opteron (paper §II-A) ---------------------------------

def test_opteron_2210_clock():
    core, count = OPTERON_2210_HE.cores_named("opteron-2210he-core")
    assert core.clock_hz == pytest.approx(paper_data.OPTERON_CLOCK_GHZ * 1e9)
    assert count == 2


def test_opteron_core_issues_two_dp_flops_per_cycle():
    core, _ = OPTERON_2210_HE.cores_named("opteron-2210he-core")
    assert core.dp_flops_per_cycle == 2.0
    assert core.peak_dp_flops == pytest.approx(3.6 * GFLOPS)


def test_opteron_socket_peak_dp_is_7_2_gflops():
    assert OPTERON_2210_HE.peak_dp_flops == pytest.approx(7.2 * GFLOPS)


def test_opteron_caches_match_paper():
    """§II-A: 64 KB L1D, 64 KB L1I, 2 MB L2 per core."""
    core, _ = OPTERON_2210_HE.cores_named("opteron-2210he-core")
    caps = {c.name: c.capacity_bytes for c in core.caches}
    assert caps["L1D"] == 64 * 1024
    assert caps["L1I"] == 64 * 1024
    assert caps["L2"] == 2 * MIB


def test_comparator_sockets_have_four_cores():
    assert OPTERON_QUAD_2356.core_count == 4
    assert TIGERTON_X7350.core_count == 4


def test_tigerton_clock_is_2_93():
    core, _ = TIGERTON_X7350.cores_named("tigerton-x7350-core")
    assert core.clock_hz == pytest.approx(2.93e9)
