"""Tests for the recovery orchestrator and failure-aware placement:
seeded fault plans, re-place/restore/continue through mid-iteration
faults, bitwise-deterministic replay, and the hop model the placement
study's DES costs rest on."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.comm.mpi import Location
from repro.network.routing import hop_count
from repro.network.topology import RoadrunnerTopology
from repro.resilience import FabricHealth
from repro.resilience.recovery import (
    draw_fault_plan,
    placement_penalty,
    run_with_recovery,
)
from repro.sweep3d.decomposition import Decomposition2D
from repro.sweep3d.input import SweepInput
from repro.sweep3d.parallel import ParallelSweep, SweepAborted
from repro.sweep3d.placement import (
    _node_hops,
    failure_aware_locations,
    hop_aware_cell_fabric,
    naive_respawn_locations,
    spe_locations,
    unusable_nodes,
)

# Small comm-heavy job: 64 ranks over two nodes, so a node fault kills
# half the job and internode traffic is on the critical path.
INP = SweepInput(it=2, jt=2, kt=8, mk=4, mmi=3)
DECOMP = Decomposition2D(16, 4)
GRIND = 5e-8


# -- fault plans ------------------------------------------------------------

def test_draw_fault_plan_deterministic_sorted_truncated():
    nodes = tuple(range(8))
    plan = draw_fault_plan(3, nodes, mtbf=10.0, horizon=30.0)
    assert plan == draw_fault_plan(3, nodes, mtbf=10.0, horizon=30.0)
    assert list(plan) == sorted(plan)
    assert all(0.0 < t < 30.0 for t, _node in plan)
    assert all(node in nodes for _t, node in plan)
    assert plan != draw_fault_plan(4, nodes, mtbf=10.0, horizon=30.0)


def test_draw_fault_plan_validation():
    with pytest.raises(ValueError):
        draw_fault_plan(0, (0,), mtbf=0.0, horizon=1.0)
    with pytest.raises(ValueError):
        draw_fault_plan(0, (0,), mtbf=1.0, horizon=0.0)


# -- hop model and placement ------------------------------------------------

def test_node_hops_matches_routing_hop_count():
    """The placement module's closed form must agree with the network
    layer's hop_count on raw node ids (the promise in its docstring)."""
    import random

    topo = RoadrunnerTopology()
    rng = random.Random(7)
    pairs = [(rng.randrange(3060), rng.randrange(3060)) for _ in range(200)]
    pairs += [(0, 0), (0, 179), (0, 180), (0, 3059), (176, 178)]
    for a, b in pairs:
        assert _node_hops(a, b) == hop_count(topo, a, b), (a, b)


def test_unusable_nodes_covers_dead_access_links():
    health = FabricHealth()
    health.fail_node(7)
    health.fail_links([(("node", 0, 5), ("lower", 0, 0))])
    down = unusable_nodes(health, range(200))
    assert down == frozenset({5, 7})


def test_failure_aware_prefers_same_cu_naive_backfills_far():
    decomp = Decomposition2D(16, 8)  # 4 nodes: 0..3, all in CU 0
    base = spe_locations(decomp)
    health = FabricHealth()
    health.fail_node(1)
    aware = failure_aware_locations(decomp, health, base=base)
    naive = naive_respawn_locations(decomp, health, base=base)
    moved_aware = {l.node for l in aware} - {l.node for l in base}
    moved_naive = {l.node for l in naive} - {l.node for l in base}
    assert moved_aware == {4}      # lowest free node in the home CU
    assert moved_naive == {3059}   # far end of the machine
    # untouched ranks keep their exact locations under both policies
    for old, a, n in zip(base, aware, naive):
        if old.node != 1:
            assert a == old and n == old


def test_placement_raises_when_machine_exhausted():
    decomp = Decomposition2D(16, 8)
    health = FabricHealth()
    health.fail_node(0)
    with pytest.raises(ValueError):
        failure_aware_locations(decomp, health, machine_nodes=4)


def test_hop_aware_fabric_charges_extra_hops():
    fabric = hop_aware_cell_fabric()
    a, b_near, b_far = Location(node=0), Location(node=1), Location(node=3059)
    near = fabric.one_way_time(a, b_near, 4096)
    far = fabric.one_way_time(a, b_far, 4096)
    # nodes 0 and 1 share a lower crossbar (1 hop): no surcharge
    assert near == fabric.inner.one_way_time(a, b_near, 4096)
    # 0 -> 3059 crosses sides and crossbars (7 hops): 6 extra hops
    assert far == pytest.approx(near + 6 * fabric.hop_latency)
    # on-node messages never pay the surcharge
    same = Location(node=0, cell=1)
    assert fabric.one_way_time(a, same, 4096) == \
        fabric.inner.one_way_time(a, same, 4096)


# -- abort contract at the sweep layer --------------------------------------

def test_mid_iteration_fault_aborts_with_progress_and_retries():
    from repro.resilience import DeliveryPolicy, FaultInjector

    health = FabricHealth()
    fabric = hop_aware_cell_fabric()
    base = spe_locations(DECOMP)
    clean = ParallelSweep(INP, DECOMP, GRIND, fabric, locations=base)
    it_time = clean.run(iterations=1).iteration_time

    def hook(sim, procs, locs):
        injector = FaultInjector(sim, health=health)
        for proc, loc in zip(procs, locs):
            if loc.node == 1:
                injector.watch(1, proc)
        injector.fail_node_at(1.5 * it_time, 1)

    sweep = ParallelSweep(
        INP, DECOMP, GRIND, fabric, locations=base,
        delivery=DeliveryPolicy(health=health),
        recv_timeout=2.0 * it_time,
        fault_hook=hook,
    )
    with pytest.raises(SweepAborted) as exc:
        sweep.run(iterations=4)
    abort = exc.value
    assert 0 <= abort.completed_iterations < 4
    # detection bound: the survivors' bounded receives fire within one
    # recv_timeout of the fault, never the full remaining schedule
    assert 1.5 * it_time < abort.sim_time <= 1.5 * it_time + 3 * (2.0 * it_time)
    assert abort.retries > 0  # lost sends were retried before giving up


# -- recovery orchestration -------------------------------------------------

def test_no_fault_recovery_matches_plain_run_bit_for_bit():
    fabric = hop_aware_cell_fabric()
    base = spe_locations(DECOMP)
    plain = ParallelSweep(
        INP, DECOMP, GRIND, fabric, locations=base
    ).run(iterations=2)
    out = run_with_recovery(
        INP, DECOMP, GRIND, (),
        iterations=2, fabric=fabric, base_locations=base,
        checkpoint_time=0.0,
    )
    assert out.attempts == 1
    assert out.faults_hit == 0 and out.rework_iterations == 0
    assert out.wallclock == plain.iteration_time * 2
    assert np.array_equal(out.result.phi, plain.phi)


def test_recovery_survives_fault_and_replays_bitwise():
    fabric = hop_aware_cell_fabric()
    base = spe_locations(DECOMP)
    it_time = ParallelSweep(
        INP, DECOMP, GRIND, fabric, locations=base
    ).run(iterations=1).iteration_time
    plan = ((1.5 * it_time, 1),)

    def run(policy):
        return run_with_recovery(
            INP, DECOMP, GRIND, plan,
            iterations=4, placement=policy, fabric=fabric,
            base_locations=base, checkpoint_interval=2,
            recv_timeout=2.0 * it_time,
        )

    aware = run("aware")
    assert aware.attempts == 2 and aware.faults_hit == 1
    assert aware.iterations == 4 and aware.retries > 0
    assert [e.kind for e in aware.log] == ["restart", "complete"]
    assert aware.wallclock > 4 * it_time  # rework + detection cost money
    # bitwise replay: identical wall clock, log, and flux
    again = run("aware")
    assert again.wallclock == aware.wallclock
    assert again.log == aware.log
    assert np.array_equal(again.result.phi, aware.result.phi)
    # the naive placement pays at least the aware wall clock
    naive = run("naive")
    assert naive.faults_hit == 1
    assert aware.wallclock <= naive.wallclock
    # physics does not depend on where ranks landed
    assert np.array_equal(naive.result.phi, aware.result.phi)


def test_run_with_recovery_validation():
    with pytest.raises(ValueError):
        run_with_recovery(INP, DECOMP, GRIND, iterations=0)
    with pytest.raises(ValueError):
        run_with_recovery(INP, DECOMP, GRIND, checkpoint_interval=0)
    with pytest.raises(ValueError):
        run_with_recovery(INP, DECOMP, GRIND, checkpoint_time=-1.0)
    with pytest.raises(ValueError):
        run_with_recovery(INP, DECOMP, GRIND, placement="psychic")


def test_placement_penalty_reports_both_policies():
    report = placement_penalty(INP, DECOMP, GRIND, seed=1, iterations=4)
    assert report["faults"] >= 1  # seed 1 is known to strike this job
    assert report["aware_s"] <= report["naive_s"]
    assert report["penalty"] == report["naive_s"] / report["aware_s"]
    assert report["aware_slowdown"] > 1.0
    # same seed, same numbers
    again = placement_penalty(INP, DECOMP, GRIND, seed=1, iterations=4)
    assert again == report


def test_campaign_quick_seeds_within_bands():
    """The checked-in quick bands must accept a fresh 3-seed campaign
    (the deterministic subset of the nightly 100-seed run)."""
    script = Path(__file__).resolve().parents[1] / "examples" / "failure_study.py"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    proc = subprocess.run(
        [sys.executable, str(script), "--campaign", "--seeds", "3"],
        capture_output=True, text=True, timeout=180, env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "within 'quick' bands" in proc.stdout
