"""Tests for SPE-centric rank placement and boundary locality."""

import pytest

from repro.comm.cml import QS21_CROSS_SOCKET, CML_EIB_PAIR, INTRANODE_CELL_PATH
from repro.comm.mpi import Location
from repro.sweep3d.decomposition import Decomposition2D
from repro.sweep3d.placement import (
    SPE_TILE,
    boundary_classes,
    cell_fabric,
    spe_locations,
)


def test_single_node_tile():
    dec = Decomposition2D(8, 4)
    locs = spe_locations(dec)
    assert len(locs) == 32
    assert all(loc.node == 0 for loc in locs)
    assert {loc.cell for loc in locs} == {0, 1, 2, 3}
    assert {loc.spe for loc in locs} == set(range(8))


def test_multi_node_tiling():
    dec = Decomposition2D(16, 8)  # 4 nodes in a 2x2 tile grid
    locs = spe_locations(dec)
    nodes = {loc.node for loc in locs}
    assert nodes == {0, 1, 2, 3}
    # Each node holds exactly 32 ranks.
    for node in nodes:
        assert sum(1 for loc in locs if loc.node == node) == 32


def test_rank_zero_is_node0_cell0_spe0():
    dec = Decomposition2D(16, 8)
    assert spe_locations(dec)[0] == Location(node=0, cell=0, spe=0)


def test_i_neighbours_mostly_share_a_socket():
    """The tiling's point: within a column of 8, i-neighbours are on
    the same Cell."""
    dec = Decomposition2D(8, 4)
    locs = spe_locations(dec)
    a = locs[dec.rank_of(2, 1)]
    b = locs[dec.rank_of(3, 1)]
    assert (a.node, a.cell) == (b.node, b.cell)


def test_boundary_census_single_node():
    dec = Decomposition2D(8, 4)
    census = boundary_classes(dec)
    assert census["internode"] == 0
    # i-boundaries within socket columns: 7 per column x 4 = 28.
    assert census["intra-socket"] == 28
    # j-boundaries between the node's cells: 3 per row x 8 = 24.
    assert census["intranode"] == 24


def test_boundary_census_multi_node_mostly_local():
    dec = Decomposition2D(16, 8)
    census = boundary_classes(dec)
    total = sum(census.values())
    assert census["internode"] > 0
    # The tiling keeps >= 75% of boundaries off the network.
    assert (census["intra-socket"] + census["intranode"]) / total >= 0.75


def test_cell_fabric_charges_by_class():
    fabric = cell_fabric()
    same_socket = fabric.one_way_time(
        Location(0, 0, 0), Location(0, 0, 1), 0
    )
    in_node = fabric.one_way_time(Location(0, 0, 0), Location(0, 1, 0), 0)
    across = fabric.one_way_time(Location(0, 0, 0), Location(1, 0, 0), 0)
    assert same_socket == pytest.approx(CML_EIB_PAIR.latency)
    assert in_node == pytest.approx(INTRANODE_CELL_PATH.zero_byte_latency)
    assert same_socket < in_node < across
    assert fabric.one_way_time(Location(0, 0, 0), Location(0, 0, 0), 100) == 0.0


def test_qs21_coherent_path_beats_roadrunner_intranode():
    """§V-C: on a QS21 the cross-socket hop stays on the EIB; on
    Roadrunner it must relay over PCIe — orders of magnitude apart."""
    for size in (0, 4096, 131072):
        assert (
            QS21_CROSS_SOCKET.one_way_time(size)
            < INTRANODE_CELL_PATH.one_way_time(size) / 5
        )
    # But it is slower than staying on-chip.
    assert QS21_CROSS_SOCKET.one_way_time(131072) > CML_EIB_PAIR.one_way_time(131072)
