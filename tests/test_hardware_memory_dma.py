"""Tests for the memory-system (Table III) and MFC DMA models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.dma import MFC_DMA, MFC_MAX_TRANSFER, DMAEngine, SharedMemoryController
from repro.hardware.memory import (
    MEMORY_SYSTEMS,
    MemoryLevel,
    MemorySystem,
    OPTERON_MEMORY,
    PPE_MEMORY,
    SPE_LOCAL_STORE,
)
from repro.sim import Simulator
from repro.units import GB_S, KIB, MIB, NS, to_gb_s
from repro.validation import paper_data


# --- Table III ----------------------------------------------------------------

@pytest.mark.parametrize("name", list(paper_data.STREAM_TRIAD_GB_S))
def test_stream_triad_matches_table3(name):
    system = MEMORY_SYSTEMS[name]
    measured = to_gb_s(system.stream_triad_bandwidth())
    assert measured == pytest.approx(paper_data.STREAM_TRIAD_GB_S[name], rel=1e-6)


@pytest.mark.parametrize("name", list(paper_data.MEMTIME_LATENCY_NS))
def test_memtime_main_memory_matches_table3(name):
    system = MEMORY_SYSTEMS[name]
    # memtime probes with a working set far larger than any cache.
    latency_ns = system.memtime_latency(256 * MIB) / NS
    assert latency_ns == pytest.approx(paper_data.MEMTIME_LATENCY_NS[name])


def test_ppe_is_the_bandwidth_bottleneck():
    """§IV-B: 'the PPE is a bottleneck and is best used for control
    functions' — it sustains far less than either other system."""
    ppe = PPE_MEMORY.stream_triad_bandwidth()
    assert ppe < OPTERON_MEMORY.stream_triad_bandwidth()
    assert ppe < SPE_LOCAL_STORE.stream_triad_bandwidth()
    assert ppe / PPE_MEMORY.peak_bandwidth < 0.05


def test_spe_local_store_fastest():
    assert SPE_LOCAL_STORE.stream_triad_bandwidth() > OPTERON_MEMORY.stream_triad_bandwidth()


def test_spe_ls_peak_is_51_2_gb_s():
    assert SPE_LOCAL_STORE.peak_bandwidth == pytest.approx(
        paper_data.SPE_LS_PEAK_BW_GB_S * GB_S
    )


# --- memtime hierarchy behaviour -----------------------------------------------

def test_memtime_small_working_set_hits_l1():
    lat = OPTERON_MEMORY.memtime_latency(16 * KIB)
    assert lat == pytest.approx(3 / 1.8e9)


def test_memtime_medium_working_set_hits_l2():
    lat = OPTERON_MEMORY.memtime_latency(1 * MIB)
    assert lat == pytest.approx(12 / 1.8e9)


def test_memtime_curve_is_nondecreasing():
    sizes = [4 * KIB, 16 * KIB, 64 * KIB, 256 * KIB, 1 * MIB, 4 * MIB, 64 * MIB]
    for system in MEMORY_SYSTEMS.values():
        curve = [lat for _, lat in system.memtime_curve(sizes)]
        assert all(b >= a for a, b in zip(curve, curve[1:])), system.name


def test_memtime_rejects_nonpositive_working_set():
    with pytest.raises(ValueError):
        OPTERON_MEMORY.memtime_latency(0)


def test_stream_triad_time_scales_linearly():
    t1 = OPTERON_MEMORY.stream_triad_time(1_000_000)
    t2 = OPTERON_MEMORY.stream_triad_time(2_000_000)
    assert t2 == pytest.approx(2 * t1)


def test_stream_triad_time_rejects_negative():
    with pytest.raises(ValueError):
        OPTERON_MEMORY.stream_triad_time(-1)


def test_memory_system_validation():
    with pytest.raises(ValueError):
        MemorySystem("bad-eff", 1 * GB_S, 0.0, (MemoryLevel("m", None, 1 * NS),))
    with pytest.raises(ValueError):
        MemorySystem("no-terminal", 1 * GB_S, 0.5, (MemoryLevel("L1", 1024, 1 * NS),))
    with pytest.raises(ValueError):
        MemorySystem(
            "shrinking", 1 * GB_S, 0.5,
            (
                MemoryLevel("L2", 2048, 1 * NS),
                MemoryLevel("L1", 1024, 1 * NS),
                MemoryLevel("m", None, 2 * NS),
            ),
        )


# --- MFC DMA --------------------------------------------------------------------

def test_dma_command_count_respects_16kb_limit():
    assert MFC_DMA.commands_for(0) == 0
    assert MFC_DMA.commands_for(1) == 1
    assert MFC_DMA.commands_for(MFC_MAX_TRANSFER) == 1
    assert MFC_DMA.commands_for(MFC_MAX_TRANSFER + 1) == 2
    assert MFC_DMA.commands_for(10 * MFC_MAX_TRANSFER) == 10


def test_dma_transfer_time_components():
    size = 64 * KIB
    t = MFC_DMA.transfer_time(size, pipelined=True)
    assert t == pytest.approx(MFC_DMA.setup_latency + size / MFC_DMA.bandwidth)


def test_unpipelined_dma_pays_setup_per_command():
    size = 64 * KIB  # 4 commands
    t = MFC_DMA.transfer_time(size, pipelined=False)
    assert t == pytest.approx(4 * MFC_DMA.setup_latency + size / MFC_DMA.bandwidth)


def test_dma_effective_bandwidth_approaches_peak_for_large_transfers():
    small = MFC_DMA.effective_bandwidth(128)
    large = MFC_DMA.effective_bandwidth(16 * MIB)
    assert small < large
    assert large / MFC_DMA.bandwidth > 0.95


def test_dma_zero_size():
    assert MFC_DMA.transfer_time(0) == 0.0
    assert MFC_DMA.effective_bandwidth(0) == 0.0


def test_dma_negative_size_rejected():
    with pytest.raises(ValueError):
        MFC_DMA.commands_for(-1)


def test_dma_engine_validation():
    with pytest.raises(ValueError):
        DMAEngine("bad", setup_latency=-1.0, bandwidth=1.0)
    with pytest.raises(ValueError):
        DMAEngine("bad", setup_latency=0.0, bandwidth=0.0)


@settings(max_examples=60, deadline=None)
@given(size=st.integers(min_value=1, max_value=64 * 1024 * 1024))
def test_dma_time_monotone_in_size(size):
    assert MFC_DMA.transfer_time(size) <= MFC_DMA.transfer_time(size + 1024)


# --- shared memory controller (DES) ----------------------------------------------

def test_shared_controller_single_dma_time():
    sim = Simulator()
    mc = SharedMemoryController(sim)
    size = 256 * KIB
    done = mc.dma(size)
    sim.run(until=done)
    assert sim.now == pytest.approx(MFC_DMA.setup_latency + size / MFC_DMA.bandwidth)


def test_shared_controller_contention_halves_bandwidth():
    sim = Simulator()
    mc = SharedMemoryController(sim)
    size = 1 * MIB
    d1 = mc.dma(size)
    d2 = mc.dma(size)
    sim.run(until=d1)
    sim.run(until=d2)
    solo = MFC_DMA.setup_latency + size / MFC_DMA.bandwidth
    # Two concurrent streams take ~2x the bandwidth phase.
    expected = MFC_DMA.setup_latency + 2 * size / MFC_DMA.bandwidth
    assert sim.now == pytest.approx(expected, rel=1e-6)
    assert sim.now > solo


def test_shared_controller_zero_byte():
    sim = Simulator()
    mc = SharedMemoryController(sim)
    done = mc.dma(0)
    sim.run(until=done)
    assert sim.now == 0.0
