"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.5)
        yield sim.timeout(0.5)

    sim.process(proc(sim))
    sim.run()
    assert sim.now == pytest.approx(2.0)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    log = []

    def proc(sim, name, delay):
        yield sim.timeout(delay)
        log.append(name)

    sim.process(proc(sim, "late", 3.0))
    sim.process(proc(sim, "early", 1.0))
    sim.process(proc(sim, "mid", 2.0))
    sim.run()
    assert log == ["early", "mid", "late"]


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    log = []

    def proc(sim, name):
        yield sim.timeout(1.0)
        log.append(name)

    for name in "abcde":
        sim.process(proc(sim, name))
    sim.run()
    assert log == list("abcde")


def test_process_return_value_propagates():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        return 42

    def parent(sim, out):
        value = yield sim.process(child(sim))
        out.append(value)

    out = []
    sim.process(parent(sim, out))
    sim.run()
    assert out == [42]


def test_run_until_event_returns_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2.0)
        return "done"

    proc = sim.process(child(sim))
    assert sim.run(until=proc) == "done"
    assert sim.now == pytest.approx(2.0)


def test_run_until_time_stops_and_sets_clock():
    sim = Simulator()
    log = []

    def proc(sim):
        while True:
            yield sim.timeout(1.0)
            log.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=3.5)
    assert log == [1.0, 2.0, 3.0]
    assert sim.now == pytest.approx(3.5)


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_event_succeed_wakes_waiter_with_value():
    sim = Simulator()
    evt = sim.event()
    got = []

    def waiter(sim):
        value = yield evt
        got.append((sim.now, value))

    def trigger(sim):
        yield sim.timeout(4.0)
        evt.succeed("payload")

    sim.process(waiter(sim))
    sim.process(trigger(sim))
    sim.run()
    assert got == [(4.0, "payload")]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    evt = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield evt
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim))
    evt.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_failure_propagates_to_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("kaput")

    sim.process(bad(sim))
    with pytest.raises(RuntimeError, match="kaput"):
        sim.run()


def test_joining_failed_process_reraises_in_parent():
    sim = Simulator()
    seen = []

    def bad(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("inner")

    def parent(sim):
        try:
            yield sim.process(bad(sim))
        except RuntimeError as exc:
            seen.append(str(exc))

    sim.process(parent(sim))
    sim.run()
    assert seen == ["inner"]


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()
    evt = sim.event()
    evt.succeed("early")
    out = []

    def waiter(sim):
        yield sim.timeout(1.0)  # evt fires during this wait
        value = yield evt
        out.append((sim.now, value))

    sim.process(waiter(sim))
    sim.run()
    assert out == [(1.0, "early")]


def test_yield_non_event_raises_simulation_error():
    sim = Simulator()

    def bad(sim):
        yield 123

    sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def interrupter(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt("wake up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_dead_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_timeout_does_not_resume_later():
    """After an interrupt, the stale timeout must not re-wake the process."""
    sim = Simulator()
    wakes = []

    def sleeper(sim):
        try:
            yield sim.timeout(10.0)
            wakes.append("timeout")
        except Interrupt:
            wakes.append("interrupt")
        yield sim.timeout(20.0)  # outlive the original timeout
        wakes.append("end")

    def interrupter(sim, victim):
        yield sim.timeout(1.0)
        victim.interrupt()

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert wakes == ["interrupt", "end"]


def test_allof_waits_for_all():
    sim = Simulator()
    done = []

    def waiter(sim):
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(3.0, value="b")
        results = yield AllOf(sim, [t1, t2])
        done.append((sim.now, sorted(results.values())))

    sim.process(waiter(sim))
    sim.run()
    assert done == [(3.0, ["a", "b"])]


def test_anyof_fires_on_first():
    sim = Simulator()
    done = []

    def waiter(sim):
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(3.0, value="slow")
        results = yield AnyOf(sim, [t1, t2])
        done.append((sim.now, list(results.values())))

    sim.process(waiter(sim))
    sim.run()
    assert done == [(1.0, ["fast"])]


def test_empty_allof_fires_immediately():
    sim = Simulator()
    done = []

    def waiter(sim):
        results = yield AllOf(sim, [])
        done.append((sim.now, results))

    sim.process(waiter(sim))
    sim.run()
    assert done == [(0.0, {})]


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(7.0)
    assert sim.peek() == pytest.approx(7.0)
    sim.run()
    assert sim.peek() == float("inf")


def test_step_on_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_many_processes_deterministic():
    """Two identical runs produce identical event orderings."""

    def run_once():
        sim = Simulator()
        log = []

        def proc(sim, pid):
            for i in range(5):
                yield sim.timeout((pid % 3) + 0.5)
                log.append((sim.now, pid, i))

        for pid in range(20):
            sim.process(proc(sim, pid))
        sim.run()
        return log

    assert run_once() == run_once()


def test_interrupt_detaches_among_many_waiters():
    """Interrupting one of many processes parked on the same event must
    detach exactly that process: the others still wake when the event
    fires, and the stale registration never re-resumes the victim."""
    sim = Simulator()
    gate = sim.event()
    woken = []
    interrupted = []

    def waiter(sim, tag):
        try:
            value = yield gate
            woken.append((tag, value))
        except Interrupt as intr:
            interrupted.append((tag, intr.cause))
            yield sim.timeout(5.0)  # victim keeps running afterwards

    procs = [sim.process(waiter(sim, i)) for i in range(50)]

    def interrupter(sim):
        yield sim.timeout(1.0)
        procs[17].interrupt("evicted")
        procs[31].interrupt("evicted")
        yield sim.timeout(1.0)
        gate.succeed("go")

    sim.process(interrupter(sim))
    sim.run()
    assert sorted(interrupted) == [(17, "evicted"), (31, "evicted")]
    assert len(woken) == 48
    assert {tag for tag, _ in woken} == set(range(50)) - {17, 31}
    assert all(value == "go" for _, value in woken)


def test_interrupt_victim_waiting_alone_detaches_fast_slot():
    """The single-waiter fast slot must also be cleared on interrupt:
    the event then fires with no one parked on it."""
    sim = Simulator()
    gate = sim.event()
    log = []

    def lone(sim):
        try:
            yield gate
            log.append("woken")
        except Interrupt:
            log.append("interrupted")
            yield sim.timeout(3.0)
            log.append("resumed later")

    victim = sim.process(lone(sim))

    def driver(sim):
        yield sim.timeout(1.0)
        victim.interrupt()
        yield sim.timeout(1.0)
        gate.succeed()

    sim.process(driver(sim))
    sim.run()
    assert log == ["interrupted", "resumed later"]
    assert sim.now == pytest.approx(4.0)
