"""Straggler sensitivity of the wavefront sweep.

A pipelined wavefront gives a slow rank global reach: every block of
every octant flows through it.  These tests inject per-rank grind
variation and check both the physics (unchanged) and the timing
(dominated by the straggler), quantifying why Roadrunner's tightly
synchronized SPE-centric model needed uniform SPE performance.
"""

import numpy as np
import pytest

from repro.comm.mpi import UniformFabric
from repro.comm.transport import Transport
from repro.sweep3d.decomposition import Decomposition2D
from repro.sweep3d.input import SweepInput
from repro.sweep3d.parallel import ParallelSweep

FREE = UniformFabric(Transport("free", latency=1e-12, bandwidth=1e18))
INP = SweepInput(it=2, jt=2, kt=8, mk=2, mmi=1)


def run(grinds, dec=None):
    dec = dec or Decomposition2D(4, 4)
    return ParallelSweep(INP, dec, grinds, FREE).run()


def test_per_rank_grind_validation():
    dec = Decomposition2D(2, 2)
    with pytest.raises(ValueError):
        ParallelSweep(INP, dec, [1e-6, 1e-6], FREE)  # wrong length
    with pytest.raises(ValueError):
        ParallelSweep(INP, dec, [1e-6, 1e-6, 0.0, 1e-6], FREE)


def test_straggler_does_not_change_physics():
    dec = Decomposition2D(4, 4)
    uniform = run(1e-6, dec)
    grinds = [1e-6] * 16
    grinds[5] = 4e-6
    skewed = run(grinds, dec)
    np.testing.assert_array_equal(uniform.phi, skewed.phi)


def test_single_straggler_dominates_iteration_time():
    """One 2x-slow rank adds roughly its full excess compute time: the
    wavefront cannot route around it."""
    base = 1e-6
    dec = Decomposition2D(4, 4)
    uniform = run(base, dec)
    grinds = [base] * 16
    grinds[5] = 2 * base  # an interior rank on every sweep's path
    skewed = run(grinds, dec)
    blocks = 8 * INP.k_blocks
    excess = blocks * INP.block_angle_work() * base  # 1x extra per block
    slowdown = skewed.iteration_time - uniform.iteration_time
    assert slowdown == pytest.approx(excess, rel=0.35)


def test_corner_straggler_also_fully_exposed():
    base = 1e-6
    dec = Decomposition2D(4, 4)
    uniform = run(base, dec)
    grinds = [base] * 16
    grinds[0] = 3 * base
    skewed = run(grinds, dec)
    assert skewed.iteration_time > uniform.iteration_time * 1.5


def test_uniform_speedup_scales_time_exactly():
    dec = Decomposition2D(2, 2)
    slow = run([2e-6] * 4, dec)
    fast = run([1e-6] * 4, dec)
    assert slow.iteration_time == pytest.approx(2 * fast.iteration_time)


def test_many_small_variations_cost_less_than_one_big():
    """Spreading the same total excess over all ranks hurts less than
    concentrating it in one rank (pipeline overlap absorbs it)."""
    base = 1e-6
    dec = Decomposition2D(4, 4)
    spread = run([base * 1.0625] * 16, dec)  # +6.25% everywhere
    concentrated = [base] * 16
    concentrated[5] = 2 * base  # same total excess, one rank
    lumped = run(concentrated, dec)
    assert spread.iteration_time < lumped.iteration_time