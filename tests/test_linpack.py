"""Tests for the LINPACK performance + power models (headline claims)."""

import pytest

from repro.linpack.hpl import HPLModel
from repro.linpack.power import (
    GREEN500_CELL_ONLY_MODEL,
    PowerModel,
    top500_position,
)
from repro.units import MEGAWATT
from repro.validation import paper_data


@pytest.fixture(scope="module")
def model():
    return HPLModel()


def test_roadrunner_rmax_is_1_026_pflops(model):
    run = model.roadrunner_run()
    assert run.rmax_flops / 1e15 == pytest.approx(
        paper_data.LINPACK_SUSTAINED_PFLOPS, rel=0.01
    )


def test_roadrunner_efficiency_about_75_percent(model):
    run = model.roadrunner_run()
    assert 0.72 < run.efficiency < 0.78
    assert run.efficiency > paper_data.LINPACK_EFFICIENCY_MIN


def test_problem_fills_memory(model):
    run = model.roadrunner_run()
    from repro.hardware.node import TRIBLADE

    total_memory = TRIBLADE.memory_bytes * 3060
    assert run.n**2 * 8 <= total_memory
    assert run.n**2 * 8 >= 0.75 * total_memory


def test_run_takes_hours_not_minutes(model):
    """Real petascale HPL runs lasted several hours."""
    run = model.roadrunner_run()
    assert 2 * 3600 < run.time_seconds < 12 * 3600


def test_opteron_only_lands_near_top500_position_50(model):
    """§III: 'Without accelerators, Roadrunner would appear at
    approximately position 50 on the June 2008 Top 500 list.'"""
    run = model.opteron_only_run()
    position = top500_position(run.rmax_flops / 1e12)
    assert 35 <= position <= 60


def test_opteron_only_rmax_reasonable(model):
    run = model.opteron_only_run()
    # 44.06 Tflop/s peak at ~75% efficiency.
    assert 28 < run.rmax_flops / 1e12 < 38


def test_accelerators_buy_a_factor_of_about_30(model):
    full = model.roadrunner_run().rmax_flops
    opteron = model.opteron_only_run().rmax_flops
    assert 25 < full / opteron < 35


def test_hpl_scales_down_to_one_cu(model):
    cu = model.roadrunner_run(nodes=180)
    full = model.roadrunner_run(nodes=3060)
    assert cu.rmax_flops < full.rmax_flops
    # One CU: 80.9 Tflop/s peak, similar efficiency band.
    assert 0.70 < cu.efficiency < 0.80


def test_hpl_model_validation():
    with pytest.raises(ValueError):
        HPLModel(dgemm_efficiency=0.0)
    with pytest.raises(ValueError):
        HPLModel(memory_fill=1.5)
    with pytest.raises(ValueError):
        HPLModel(node_bandwidth=0.0)
    m = HPLModel()
    with pytest.raises(ValueError):
        m.problem_size(0)
    with pytest.raises(ValueError):
        m.run(peak_flops=0.0, total_memory_bytes=1e12, nodes=10)


# --- power / Green500 ----------------------------------------------------------

def test_system_power_about_2_35_megawatts():
    pm = PowerModel()
    assert pm.system_power() == pytest.approx(2.35 * MEGAWATT, rel=0.01)


def test_green500_437_mflops_per_watt(model):
    pm = PowerModel()
    rmax = model.roadrunner_run().rmax_flops
    assert pm.green500_mflops_per_watt(rmax) == pytest.approx(
        paper_data.GREEN500_MFLOPS_PER_WATT, rel=0.01
    )


def test_cell_only_systems_beat_roadrunner_efficiency():
    """§II: the two systems above Roadrunner achieved 488 Mflop/s/W by
    omitting 'the less power-efficient Opterons'."""
    cell_only = GREEN500_CELL_ONLY_MODEL.mflops_per_watt()
    assert cell_only == pytest.approx(
        paper_data.GREEN500_CELL_ONLY_MFLOPS_PER_WATT, rel=0.01
    )
    assert cell_only > paper_data.GREEN500_MFLOPS_PER_WATT


def test_power_model_validation():
    pm = PowerModel()
    with pytest.raises(ValueError):
        pm.system_power(nodes=0)


# --- Top 500 position estimator ----------------------------------------------------

def test_position_1_for_roadrunner_class_rmax():
    assert top500_position(1026.0) == 1
    assert top500_position(2000.0) == 1


def test_position_interpolates_between_anchors():
    assert top500_position(478.2) == 2
    assert 2 <= top500_position(460.0) <= 3
    assert top500_position(30.0) == 50


def test_position_clamps_at_500():
    assert top500_position(0.001) == 500


def test_position_rejects_nonpositive():
    with pytest.raises(ValueError):
        top500_position(0.0)


def test_scaling_curve_grows_superlinearly_in_rmax(model):
    """Bigger machines fill more memory (larger N), so efficiency holds
    roughly constant and Rmax grows ~linearly with node count."""
    curve = model.scaling_curve([180, 360, 1440, 3060])
    rmaxes = [r.rmax_flops for r in curve]
    assert all(b > a for a, b in zip(rmaxes, rmaxes[1:]))
    # Per-node Rmax stays within a tight band.
    per_node = [r.rmax_flops / n for r, n in zip(curve, [180, 360, 1440, 3060])]
    assert max(per_node) / min(per_node) < 1.05
    # The 17-CU endpoint is the published number.
    assert curve[-1].rmax_flops / 1e15 == pytest.approx(1.026, rel=0.01)


def test_one_cu_would_have_made_the_2008_top25(model):
    """A single CU sustains ~60 Tflop/s — a top-25 class June 2008
    entry by itself, context for the 17-CU machine's 1.026 Pflop/s."""
    cu = model.roadrunner_run(nodes=180)
    assert 40 < cu.rmax_flops / 1e12 < 80
    assert top500_position(cu.rmax_flops / 1e12) <= 25
