"""Tests for the microbenchmark programs — each measured value must
agree with the analytic model it probes (cross-layer validation)."""

import pytest

from repro.comm.cml import CellMessagePath, INTERNODE_CELL_PATH
from repro.comm.mpi import Location, TransportMapFabric, UniformFabric
from repro.comm.transport import Transport
from repro.hardware.memory import MEMORY_SYSTEMS, OPTERON_MEMORY
from repro.hardware.spe_pipeline import (
    CELL_BE_TABLE,
    INSTRUCTION_GROUPS,
    InstructionGroup,
    POWERXCELL_8I_TABLE,
)
from repro.microbench import (
    bandwidth_sweep,
    instruction_microbenchmark,
    measure_latency_map,
    memtime_probe,
    pingpong,
    stream_triad_probe,
)
from repro.network.latency import IBLatencyModel
from repro.network.topology import RoadrunnerTopology
from repro.units import KIB, MIB, US


# --- instruction probes -----------------------------------------------------------

@pytest.mark.parametrize("table", [CELL_BE_TABLE, POWERXCELL_8I_TABLE],
                         ids=lambda t: t.name)
def test_instruction_probes_match_tables(table):
    measured = instruction_microbenchmark(table)
    for group in INSTRUCTION_GROUPS:
        m = measured[group]
        assert m.latency == pytest.approx(table.latency(group))
        assert m.repetition == pytest.approx(table.repetition(group))


def test_global_stall_probe_isolates_fpd():
    measured = instruction_microbenchmark(CELL_BE_TABLE)
    assert measured[InstructionGroup.FPD].global_stall == 7
    for group in INSTRUCTION_GROUPS:
        if group is not InstructionGroup.FPD:
            assert measured[group].global_stall == 0, group
    pxc = instruction_microbenchmark(POWERXCELL_8I_TABLE)
    assert pxc[InstructionGroup.FPD].global_stall == 0


# --- ping-pong --------------------------------------------------------------------

def test_pingpong_zero_byte_measures_latency():
    transport = Transport("t", latency=2 * US, bandwidth=1e9)
    result = pingpong(UniformFabric(transport), Location(0), Location(1))
    assert result.one_way_time == pytest.approx(2e-6)
    assert result.bandwidth == 0.0


def test_pingpong_measures_transport_curve():
    transport = Transport("t", latency=2 * US, bandwidth=1e9)
    fabric = UniformFabric(transport)
    for size in (1024, 64 * KIB, 1_000_000):
        result = pingpong(fabric, Location(0), Location(1), size=size)
        assert result.one_way_time == pytest.approx(transport.one_way_time(size))
        assert result.bandwidth == pytest.approx(
            transport.effective_bandwidth(size)
        )


def test_pingpong_reproduces_fig6_total():
    """The Cell-to-Cell ping-pong measures the 8.78 us path."""
    path = CellMessagePath()

    def classify(src, dst):
        if src == dst:
            return None
        return path.classify(tuple(src), tuple(dst))

    fabric = TransportMapFabric(
        {"intra-socket": path.intra_socket, "intranode": path.intranode,
         "internode": path.internode},
        classify,
    )
    result = pingpong(fabric, Location(0, 0, 0), Location(5, 0, 0))
    assert result.one_way_time == pytest.approx(
        INTERNODE_CELL_PATH.zero_byte_latency, rel=1e-9
    )


def test_bandwidth_sweep_is_monotone():
    transport = Transport("t", latency=2 * US, bandwidth=1e9)
    sweep = bandwidth_sweep(
        UniformFabric(transport), Location(0), Location(1),
        sizes=[64, 1024, 16384, 262144],
    )
    bws = [r.bandwidth for r in sweep]
    assert all(b > a for a, b in zip(bws, bws[1:]))


def test_pingpong_validates_repetitions():
    with pytest.raises(ValueError):
        pingpong(UniformFabric(Transport("t", 1e-6, 1e9)),
                 Location(0), Location(1), repetitions=0)


# --- streams / memtime ---------------------------------------------------------------

@pytest.mark.parametrize("name", list(MEMORY_SYSTEMS))
def test_triad_probe_matches_model(name):
    system = MEMORY_SYSTEMS[name]
    probe = stream_triad_probe(system, elements=50_000)
    assert probe.modeled_bandwidth == pytest.approx(
        system.stream_triad_bandwidth()
    )
    assert probe.modeled_time == pytest.approx(
        system.stream_triad_time(50_000)
    )


def test_triad_probe_validates_elements():
    with pytest.raises(ValueError):
        stream_triad_probe(OPTERON_MEMORY, elements=0)


def test_memtime_probe_staircase():
    sizes = [16 * KIB, 1 * MIB, 64 * MIB]
    curve = memtime_probe(OPTERON_MEMORY, sizes)
    latencies = [lat for _, lat in curve]
    assert latencies[0] < latencies[1] < latencies[2]
    assert latencies == [OPTERON_MEMORY.memtime_latency(s) for s in sizes]


# --- the Fig 10 probe ------------------------------------------------------------------

def test_latency_map_probe_matches_analytic_model():
    topo = RoadrunnerTopology(cu_count=2)
    model = IBLatencyModel()
    samples = [1, 9, 100, 180, 200]
    measured = measure_latency_map(topo, destinations=samples)
    for dst in samples:
        assert measured[dst] == pytest.approx(
            model.zero_byte_latency(topo, 0, dst), rel=1e-9
        )


def test_latency_map_rejects_bad_destination():
    topo = RoadrunnerTopology(cu_count=1)
    with pytest.raises(ValueError):
        measure_latency_map(topo, destinations=[0])
    with pytest.raises(ValueError):
        measure_latency_map(topo, destinations=[180])
