"""Tests for the resilience subsystem: fault injection, retry delivery,
degraded routing, and the checkpoint/restart cost model."""

import pytest

from repro.comm.mpi import DeliveryError, Location, SimMPI, UniformFabric
from repro.comm.transport import Transport
from repro.network.crossbar import XbarId
from repro.network.intercu import uplink_edges
from repro.network.loadmap import (
    degraded_bisection_summary,
    degraded_link_loads,
    link_loads,
)
from repro.network.routing import (
    UNREACHABLE,
    degraded_hop_census,
    degraded_hop_vector,
    degraded_route,
    hop_count,
    hop_vector,
)
from repro.network.topology import RoadrunnerTopology
from repro.resilience import (
    CheckpointModel,
    DeliveryPolicy,
    FabricHealth,
    FaultInjector,
    RetryPolicy,
    checkpoint_clock,
    edge_key,
    sweep_failure_study,
)
from repro.sim import Simulator, Tracer
from repro.sim.engine import Interrupt
from repro.units import US


def make_comm(n_ranks, delivery=None, tracer=None, latency=1 * US):
    sim = Simulator()
    fabric = UniformFabric(Transport("test", latency=latency, bandwidth=1e9))
    comm = SimMPI(
        sim, fabric, [Location(node=i) for i in range(n_ranks)],
        tracer=tracer if tracer is not None else Tracer(categories=frozenset()),
        delivery=delivery,
    )
    return sim, comm


# -- FabricHealth -----------------------------------------------------------

def test_health_node_bookkeeping():
    health = FabricHealth()
    assert health.node_ok(5) and not health.degraded
    health.fail_node(5)
    assert not health.node_ok(5) and health.degraded
    assert health.failed_nodes == frozenset({5})
    health.repair_node(5)
    assert health.node_ok(5) and not health.degraded


def test_health_links_are_undirected():
    health = FabricHealth()
    u, v = XbarId("L", 0, 0), XbarId("U", 0, 3)
    health.fail_link(v, u)
    assert not health.link_ok(u, v)
    assert health.failed_links == frozenset({edge_key(u, v)})
    health.repair_link(u, v)
    assert health.link_ok(v, u)


def test_edge_key_is_canonical():
    u, v = XbarId("F", 0, 0), XbarId("M", 0, 0)
    assert edge_key(u, v) == edge_key(v, u)
    node = ("node", 0, 0)
    assert edge_key(node, XbarId("L", 0, 0)) == edge_key(XbarId("L", 0, 0), node)


# -- FaultInjector ----------------------------------------------------------

def test_injector_timetable_is_seed_deterministic():
    def timetable(seed):
        inj = FaultInjector(Simulator(), seed=seed)
        inj.schedule_node_faults(range(50), mtbf=10.0, horizon=100.0,
                                 repair_after=1.0)
        return [(f.time, f.kind, f.target) for f in inj.faults]

    assert timetable(3) == timetable(3)
    assert timetable(3) != timetable(4)


def test_node_fault_interrupts_victim_parked_in_recv():
    sim, comm = make_comm(2)
    seen = {}

    def victim(rank):
        try:
            yield from rank.recv()
        except Interrupt as stop:
            seen["cause"] = stop.cause
            seen["time"] = sim.now

    injector = FaultInjector(sim)
    proc = sim.process(victim(comm.rank(1)), name="victim")
    injector.watch(1, proc)
    fault = injector.fail_node_at(0.5, 1)
    sim.run()
    assert seen["cause"] is fault
    assert seen["time"] == pytest.approx(0.5)
    assert not injector.health.node_ok(1)


def test_uncaught_fault_kills_victim_without_aborting_run():
    sim, comm = make_comm(2)

    def victim(rank):
        yield from rank.recv()  # parked forever; never handles the fault

    injector = FaultInjector(sim)
    proc = sim.process(victim(comm.rank(1)), name="victim")
    injector.watch(1, proc)
    injector.fail_node_at(0.25, 1)
    sim.run()  # must not raise
    assert not proc.is_alive


def test_fault_repair_restores_health_and_traces():
    sim = Simulator()
    tracer = Tracer()
    injector = FaultInjector(sim, tracer=tracer)
    injector.fail_node_at(1.0, 7, repair_after=2.0)
    sim.run()
    assert injector.health.node_ok(7)
    actions = [(r.time, r.detail["action"]) for r in tracer.filter("fault")]
    assert actions == [(1.0, "fail"), (3.0, "repair")]


def test_link_fault_flips_ledger():
    sim = Simulator()
    injector = FaultInjector(sim)
    u, v = XbarId("F", 2, 3), XbarId("M", 2, 3)
    injector.fail_link_at(0.1, v, u)
    sim.run()
    assert not injector.health.link_ok(u, v)
    assert injector.health.failed_links == frozenset({edge_key(u, v)})


def test_checkpoint_clock_respects_horizon_and_traces():
    sim = Simulator()
    tracer = Tracer()
    sim.process(checkpoint_clock(sim, interval=10.0, cost=2.0,
                                 tracer=tracer, horizon=50.0))
    sim.run()
    records = list(tracer.filter("checkpoint"))
    # Checkpoints start every 12 s of wall clock (10 work + 2 write);
    # the one starting at 46 still completes by the 50 s horizon, and
    # the next (would finish at 60) is never started.
    assert [r.time for r in records] == [10.0, 22.0, 34.0, 46.0]
    assert [r.detail["n"] for r in records] == [1, 2, 3, 4]
    assert sim.now <= 50.0


# -- DeliveryPolicy / resilient send ---------------------------------------

def test_policy_validation():
    with pytest.raises(ValueError):
        DeliveryPolicy(drop_probability=1.0)
    with pytest.raises(ValueError):
        DeliveryPolicy(ack_timeout=0.0)
    with pytest.raises(ValueError):
        DeliveryPolicy(backoff=0.5)


def test_retry_delay_backs_off_exponentially_with_cap():
    policy = DeliveryPolicy(ack_timeout=10 * US, backoff=2.0, max_delay=35 * US)
    delays = [policy.retry_delay(k) for k in range(4)]
    assert delays == pytest.approx([10 * US, 20 * US, 35 * US, 35 * US])


# -- RetryPolicy: the shared backoff schedule (property tests) ---------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_retry_policies = st.builds(
    RetryPolicy,
    base_delay=st.floats(0.0, 10.0, allow_nan=False),
    backoff=st.floats(1.0, 8.0, allow_nan=False),
    max_delay=st.floats(0.001, 100.0, allow_nan=False),
    jitter=st.floats(0.0, 0.999, allow_nan=False),
    seed=st.integers(0, 2**32),
)


@settings(max_examples=100, deadline=None)
@given(_retry_policies, st.integers(0, 40))
def test_retry_policy_is_a_pure_function_of_seed_and_attempt(policy, attempt):
    # identical fields => identical schedule; no hidden RNG state, so
    # call order and repetition are invisible
    clone = RetryPolicy(
        base_delay=policy.base_delay, backoff=policy.backoff,
        max_delay=policy.max_delay, jitter=policy.jitter, seed=policy.seed,
    )
    later = policy.delay(attempt + 1)  # perturb any would-be shared state
    assert policy.delay(attempt) == clone.delay(attempt)
    assert policy.delay(attempt) == policy.delay(attempt)
    assert later == clone.delay(attempt + 1)


@settings(max_examples=100, deadline=None)
@given(_retry_policies, st.integers(0, 40))
def test_retry_policy_delay_is_bounded(policy, attempt):
    raw = min(policy.base_delay * policy.backoff**attempt, policy.max_delay)
    d = policy.delay(attempt)
    assert d >= 0.0
    assert raw * (1.0 - policy.jitter) - 1e-12 <= d
    assert d <= raw * (1.0 + policy.jitter) + 1e-12
    assert d <= policy.max_delay * (1.0 + policy.jitter) + 1e-12


@settings(max_examples=50, deadline=None)
@given(
    st.floats(1e-6, 1.0, allow_nan=False),   # ack_timeout
    st.floats(1.0, 8.0, allow_nan=False),    # backoff
    st.floats(1e-6, 10.0, allow_nan=False),  # max_delay
    st.integers(0, 20),                      # attempt
)
def test_jitter_free_retry_policy_matches_delivery_schedule(
    ack_timeout, backoff, max_delay, attempt
):
    # DeliveryPolicy delegates to a jitter-free RetryPolicy; both must
    # equal the closed form the DES timeline has always used
    delivery = DeliveryPolicy(
        ack_timeout=ack_timeout, backoff=backoff, max_delay=max_delay
    )
    shared = RetryPolicy(
        base_delay=ack_timeout, backoff=backoff, max_delay=max_delay
    )
    expected = min(ack_timeout * backoff**attempt, max_delay)
    assert delivery.retry_delay(attempt) == shared.delay(attempt)
    assert shared.delay(attempt) == expected
    assert shared.schedule(3) == [shared.delay(a) for a in range(3)]


def test_send_to_failed_node_exhausts_retries():
    health = FabricHealth()
    health.fail_node(1)
    tracer = Tracer()
    policy = DeliveryPolicy(health=health, ack_timeout=10 * US,
                            backoff=2.0, max_retries=3, max_delay=1.0)
    sim, comm = make_comm(2, delivery=policy, tracer=tracer)
    outcome = {}

    def sender(rank):
        try:
            yield from rank.send(1, size=0)
        except DeliveryError:
            outcome["time"] = sim.now

    sim.process(sender(comm.rank(0)), name="sender")
    sim.run()
    # 4 attempts; backoff waits of 10, 20, 40 us between them.
    assert outcome["time"] == pytest.approx(70 * US)
    assert comm.retry_counts[0] == 3
    retries = list(tracer.filter("retry"))
    assert [r.detail["attempt"] for r in retries] == [1, 2, 3]


def test_lossy_delivery_is_seed_deterministic_and_eventually_delivers():
    def run(seed):
        tracer = Tracer()
        policy = DeliveryPolicy(drop_probability=0.5, seed=seed,
                                ack_timeout=10 * US, max_retries=20)
        sim, comm = make_comm(2, delivery=policy, tracer=tracer)
        got = []

        def sender(rank):
            for _ in range(20):
                yield from rank.send(1, size=100)

        def receiver(rank):
            for _ in range(20):
                msg = yield from rank.recv()
                got.append(msg.size)

        sim.process(sender(comm.rank(0)), name="s")
        sim.process(receiver(comm.rank(1)), name="r")
        sim.run()
        return got, sim.now, tracer.records

    got_a, now_a, rec_a = run(11)
    got_b, now_b, rec_b = run(11)
    assert got_a == [100] * 20
    assert (got_a, now_a, rec_a) == (got_b, now_b, rec_b)
    assert any(r.category == "retry" for r in rec_a)  # 50% loss retries


def _collective_workload(sim, comm, result):
    def body(rank):
        yield from rank.send((rank.index + 1) % comm.size, size=4096, tag=1)
        yield from rank.recv(tag=1)
        yield from rank.barrier()
        total = yield from rank.allreduce(rank.index, lambda a, b: a + b)
        result[rank.index] = (total, sim.now)

    for r in range(comm.size):
        sim.process(body(comm.rank(r)), name=f"rank{r}")


def test_perfect_policy_matches_disabled_path_exactly():
    """DeliveryPolicy() (perfect) must not change one event: same trace,
    same finish time, no RNG draws — the zero-overhead contract."""
    tracer_off = Tracer()
    sim_off, comm_off = make_comm(4, tracer=tracer_off)
    result_off = {}
    _collective_workload(sim_off, comm_off, result_off)
    sim_off.run()

    policy = DeliveryPolicy()
    rng_before = policy._rng.getstate()
    tracer_on = Tracer()
    sim_on, comm_on = make_comm(4, delivery=policy, tracer=tracer_on)
    result_on = {}
    _collective_workload(sim_on, comm_on, result_on)
    sim_on.run()

    assert result_on == result_off
    assert sim_on.now == sim_off.now
    assert tracer_on.records == tracer_off.records
    assert comm_on.retry_counts == [0] * 4
    assert policy._rng.getstate() == rng_before


# -- degraded routing -------------------------------------------------------

@pytest.fixture(scope="module")
def topo():
    return RoadrunnerTopology(cu_count=17)


def test_degraded_hop_vector_matches_closed_form_when_healthy(topo):
    assert (degraded_hop_vector(topo, 0, frozenset())
            == hop_vector(topo, 0)).all()


@pytest.mark.parametrize("edge_index", [0, 1, 37, 95])
def test_census_sums_to_node_count_with_failed_uplink(topo, edge_index):
    failed = frozenset({edge_key(*uplink_edges(0)[edge_index])})
    census = degraded_hop_census(topo, 0, failed)
    assert sum(census.values()) == topo.node_count == 3060
    assert UNREACHABLE not in census  # one uplink never partitions


@pytest.mark.parametrize("level_pair", [("F", "M"), ("M", "T")])
def test_census_sums_to_node_count_with_failed_chain_link(topo, level_pair):
    a, b = level_pair
    failed = frozenset({edge_key(XbarId(a, 0, 0), XbarId(b, 0, 0))})
    census = degraded_hop_census(topo, 0, failed)
    assert sum(census.values()) == topo.node_count == 3060
    assert UNREACHABLE not in census


def test_degraded_route_avoids_failed_links_at_same_length(topo):
    src, dst = 0, 3059  # opposite sides of the fat tree
    baseline = hop_count(topo, src, dst)
    path = degraded_route(topo, src, dst, frozenset())
    assert len(path) == baseline
    # Fail the first uplink a route would naturally take.
    failed = frozenset({edge_key(*uplink_edges(0)[0])})
    rerouted = degraded_route(topo, src, dst, failed)
    assert len(rerouted) == baseline  # plenty of equal-cost alternatives
    edges = {edge_key(u, v) for u, v in zip(rerouted, rerouted[1:])}
    assert not (edges & failed)


def test_severed_access_link_partitions_one_node(topo):
    access = edge_key(topo.graph_node(1), XbarId("L", 0, 0))
    census = degraded_hop_census(topo, 0, frozenset({access}))
    assert census[UNREACHABLE] == 1
    assert sum(census.values()) == topo.node_count
    assert degraded_route(topo, 0, 1, frozenset({access})) is None


def test_degraded_bisection_summary_prices_losses():
    uplink = edge_key(*uplink_edges(3)[0])
    chain = edge_key(XbarId("M", 5, 2), XbarId("T", 5, 2))
    summary = degraded_bisection_summary([uplink, chain])
    assert summary["failed_links"] == 2.0
    assert summary["uplinks_lost"] == 1.0
    assert summary["worst_cu_uplinks_remaining"] == 95.0
    assert summary["cross_side_links_lost"] == 1.0
    assert summary["cross_side_capacity_remaining"] == 95 * 2e9
    assert summary["worst_cu_oversubscription"] == pytest.approx(180 / 95)
    assert summary["far_side_per_node_share_degraded"] < summary[
        "far_side_per_node_share"]


def test_fm_and_mt_failures_of_same_chain_count_once():
    fm = edge_key(XbarId("F", 1, 4), XbarId("M", 1, 4))
    mt = edge_key(XbarId("M", 1, 4), XbarId("T", 1, 4))
    summary = degraded_bisection_summary([fm, mt])
    assert summary["cross_side_links_lost"] == 1.0


# -- checkpoint model -------------------------------------------------------

def test_daly_interval_refines_young():
    model = CheckpointModel(mtbf=3600.0, checkpoint_time=60.0)
    young = model.young_interval()
    daly = model.daly_interval()
    assert young == pytest.approx((2 * 60.0 * 3600.0) ** 0.5)
    # Daly's correction is small when delta << M.
    assert abs(daly - young) / young < 0.25
    # ... and the optimum it picks is at least as good as Young's.
    assert model.expected_slowdown(daly) <= model.expected_slowdown(young) + 1e-12


def test_optimal_interval_beats_fixed_choices():
    model = CheckpointModel.from_node_mtbf(
        node_mtbf=10 * 8760 * 3600.0, nodes=3060,
        checkpoint_time=120.0, restart_time=300.0,
    )
    best = model.expected_slowdown()
    for tau in (300.0, 1200.0, 3600.0, 7200.0, 4 * 3600.0):
        assert best <= model.expected_slowdown(tau) + 1e-12
    assert best > 1.0  # failures always cost something


def test_expected_runtime_scales_linearly_with_solve_time():
    model = CheckpointModel(mtbf=1800.0, checkpoint_time=30.0)
    one = model.expected_runtime(1000.0)
    assert model.expected_runtime(2000.0) == pytest.approx(2 * one)
    assert model.expected_runtime(0.0) == 0.0


def test_from_node_mtbf_aggregates():
    model = CheckpointModel.from_node_mtbf(3060.0, 3060, checkpoint_time=1.0)
    assert model.mtbf == pytest.approx(1.0)
    with pytest.raises(ValueError):
        CheckpointModel.from_node_mtbf(100.0, 0, checkpoint_time=1.0)
    with pytest.raises(ValueError):
        CheckpointModel(mtbf=-1.0, checkpoint_time=1.0)


def test_sweep_failure_study_rows_improve_with_mtbf():
    study = sweep_failure_study(node_mtbf_hours=(8760.0, 87600.0),
                                campaign_hours=1.0)
    assert study["nodes"] == 3060
    assert len(study["rows"]) == 2
    worse, better = study["rows"]
    assert worse["expected_slowdown"] > better["expected_slowdown"] > 1.0
    assert worse["daly_interval_s"] < better["daly_interval_s"]
    for row in study["rows"]:
        assert row["expected_wallclock_hours"] == pytest.approx(
            row["expected_slowdown"] * study["campaign_hours"]
        )


def test_parallel_sweep_result_expected_wallclock():
    from repro.sweep3d.parallel import ParallelSweepResult

    result = ParallelSweepResult(
        phi=None, iteration_time=2.0, iterations=50, messages=0, bytes_sent=0,
    )
    model = CheckpointModel(mtbf=3600.0, checkpoint_time=10.0)
    assert result.expected_wallclock(model) == pytest.approx(
        model.expected_runtime(100.0)
    )
    assert result.expected_wallclock(model, interval=600.0) == pytest.approx(
        model.expected_runtime(100.0, 600.0)
    )


# -- correlated power-domain failures ---------------------------------------

def test_correlated_faults_take_down_whole_domains():
    inj = FaultInjector(Simulator(), seed=5)
    placed = inj.schedule_correlated_node_faults(
        range(360), mtbf=50.0, horizon=200.0, domain_size=180
    )
    node_faults = [f for f in inj.faults if f.kind == "node"]
    assert placed == len(node_faults) > 0
    # every event strikes all 180 members of one domain at one instant
    by_time = {}
    for f in node_faults:
        by_time.setdefault(f.time, set()).add(f.target)
    for nodes in by_time.values():
        domains = {n // 180 for n in nodes}
        assert len(domains) == 1
        (d,) = domains
        assert nodes == set(range(d * 180, (d + 1) * 180))


def test_correlated_faults_seed_deterministic_and_pairwise():
    def timetable(seed, domain_size):
        inj = FaultInjector(Simulator(), seed=seed)
        inj.schedule_correlated_node_faults(
            range(40), mtbf=5.0, horizon=100.0, domain_size=domain_size
        )
        return [(f.time, f.kind, f.target) for f in inj.faults]

    assert timetable(2, 2) == timetable(2, 2)
    assert timetable(2, 2) != timetable(3, 2)
    # triblade pairs: node failures come in even counts
    assert len(timetable(2, 2)) % 2 == 0


def test_from_node_mtbf_burst_size_stretches_event_mtbf():
    independent = CheckpointModel.from_node_mtbf(
        87600.0, 3060, checkpoint_time=600.0
    )
    cu_burst = CheckpointModel.from_node_mtbf(
        87600.0, 3060, checkpoint_time=600.0, burst_size=180
    )
    assert cu_burst.mtbf == pytest.approx(independent.mtbf * 180)
    # rarer (bigger) events: longer Daly interval, smaller slowdown
    assert cu_burst.daly_interval() > independent.daly_interval()
    assert (cu_burst.expected_slowdown(cu_burst.daly_interval())
            < independent.expected_slowdown(independent.daly_interval()))
    with pytest.raises(ValueError):
        CheckpointModel.from_node_mtbf(
            87600.0, 3060, checkpoint_time=600.0, burst_size=0
        )


def test_from_pfs_prices_checkpoint_from_panasas():
    from repro.io.panasas import PanasasModel

    model = CheckpointModel.from_pfs(87600.0 * 3600.0, 3060)
    assert model.checkpoint_time == pytest.approx(
        PanasasModel().checkpoint_time(0.5)
    )
    assert model.mtbf == pytest.approx(87600.0 * 3600.0 / 3060)


def test_sweep_failure_study_defaults_to_pfs_and_threads_burst():
    from repro.io.panasas import PanasasModel

    study = sweep_failure_study(node_mtbf_hours=(87600.0,), campaign_hours=1.0)
    assert study["checkpoint_time_s"] == pytest.approx(
        PanasasModel().checkpoint_time(0.5)
    )
    assert study["burst_size"] == 1
    burst = sweep_failure_study(
        node_mtbf_hours=(87600.0,), campaign_hours=1.0, burst_size=180
    )
    assert burst["burst_size"] == 180
    assert (burst["rows"][0]["expected_slowdown"]
            < study["rows"][0]["expected_slowdown"])
    # Daly interval stretches ~sqrt(burst) while delta << tau holds
    ratio = burst["rows"][0]["daly_interval_s"] / study["rows"][0]["daly_interval_s"]
    assert 0.5 * 180 ** 0.5 < ratio < 1.5 * 180 ** 0.5


# -- degraded link loads ----------------------------------------------------

def test_degraded_link_loads_matches_healthy_when_nothing_failed(topo):
    pairs = [(n, 180 + n) for n in range(8)]
    healthy = link_loads(topo, pairs)
    degraded, unroutable = degraded_link_loads(topo, pairs, frozenset())
    assert not unroutable
    assert degraded == healthy


def test_degraded_link_loads_concentrates_on_survivors(topo):
    pairs = [(n, 180 + n) for n in range(32)]
    dead = [edge_key(*e) for e in uplink_edges(0)[:2]]
    healthy = link_loads(topo, pairs, spread=True)
    degraded, unroutable = degraded_link_loads(topo, pairs, frozenset(dead))
    assert not unroutable
    assert sum(degraded.values()) > 0
    for edge in dead:
        assert degraded[edge] == 0  # nothing rides a dead uplink
    # the surviving uplinks absorb the displaced flows
    assert max(degraded.values()) > max(healthy.values())


def test_degraded_link_loads_reports_unroutable_pairs(topo):
    access = edge_key(topo.graph_node(1), XbarId("L", 0, 0))
    loads, unroutable = degraded_link_loads(
        topo, [(0, 1), (0, 2)], frozenset({access})
    )
    assert unroutable == [(0, 1)]
    assert sum(loads.values()) > 0  # the routable flow still lands
