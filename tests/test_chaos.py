"""Chaos-harness tests: real faults against the durable campaign stack.

Every fault here is *real* — workers die by ``SIGKILL``, the campaign
driver is killed at journal-record boundaries and resumed in a fresh
process tree, cache files are truncated and bit-flipped on disk, and
store/journal writes raise genuine ``ENOSPC`` — and every test holds
the same three invariants from the durability model
(``docs/CAMPAIGN.md``):

1. **No job is lost**: every submitted spec reaches a terminal state.
2. **No job exceeds its retry budget**: ``attempts <= 1 + max_retries``.
3. **Surviving artifacts are byte-identical** to a fault-free
   reference run, and the chaos fault ledger accounts for every
   injected fault via the ``campaign.chaos.*`` counters.

Scale knobs (the nightly ``chaos-campaign`` CI job raises both):

* ``REPRO_CHAOS_FULL=1`` — kill/resume at *every* journal-record
  boundary instead of the tier-1 smoke subset;
* ``REPRO_CHAOS_SEEDS=N`` — N seeded multi-fault campaigns (default 3);
* ``REPRO_CHAOS_REPORT=path`` — write the seeded suite's summary JSON
  (the CI upload artifact).
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import signal

import pytest

from repro.campaign import (
    BREAKER_ERROR_PREFIX,
    CampaignService,
    grid,
    read_journal,
)
from repro.campaign import chaos

N_JOBS = 16  # the determinism-campaign width the ISSUE pins

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="chaos harness needs os.fork"
)


def _specs(n=N_JOBS, code_version="chaos-test", **overrides):
    return grid("_selftest", n, {"mode": "ok", **overrides},
                code_version=code_version)


def _cache_bytes(root) -> dict[str, bytes]:
    """Every artifact file under a store root, keyed by relative path."""
    root = pathlib.Path(root)
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.glob("??/*.json"))
    }


def _fork_and_wait(child) -> "os.waitpid result status":
    """Run ``child()`` in a forked process; returns the wait status.

    The child exits via ``os._exit`` always: 0 if ``child`` returned,
    42 if it raised (the exception is printed for the test log).  The
    child leads its own process group and the group is SIGKILLed after
    the wait, so pool workers orphaned by a chaos driver-kill can
    never outlive the test (they'd hold pytest's capture pipes open).
    """
    pid = os.fork()
    if pid == 0:
        os.setpgid(0, 0)
        code = 42
        try:
            child()
            code = 0
        except BaseException as exc:  # noqa: BLE001 — report, then _exit
            import traceback

            traceback.print_exc()
            print(f"chaos child failed: {exc!r}", flush=True)
        finally:
            os._exit(code)
    _, status = os.waitpid(pid, 0)
    try:
        os.killpg(pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass
    return status


def _assert_sigkilled(status):
    assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL, (
        f"expected the campaign process to die by SIGKILL, got {status=}"
    )


# -- kill the campaign at every journal boundary and resume ------------------


def _boundaries(total: int) -> list[int]:
    if os.environ.get("REPRO_CHAOS_FULL"):
        return list(range(1, total + 1))
    # tier-1 smoke subset: first boundaries (header, first job), a
    # mid-campaign spread, and the last two (final job, end record)
    picks = {1, 2, 3, 4, total // 3, total // 2, 2 * total // 3,
             total - 1, total}
    return sorted(p for p in picks if 1 <= p <= total)


def test_kill_at_every_journal_boundary_resume_matches(tmp_path):
    """Satellite 4: SIGKILL the driver right after each journal record
    lands, resume in a fresh process, and require the resumed report
    *and* the cache bytes to match the uninterrupted run exactly."""
    specs = _specs()
    ref_dir = tmp_path / "ref"
    ref = CampaignService(ref_dir / "cache", workers=1).run(
        specs, journal=str(ref_dir / "journal")
    )
    ref_json = json.dumps(ref.to_dict(), sort_keys=True)
    ref_bytes = _cache_bytes(ref_dir / "cache")
    total = read_journal(ref_dir / "journal").records
    assert total == 2 * N_JOBS + 2  # header + (started+finished)/job + end

    for n in _boundaries(total):
        work = tmp_path / f"kill-{n:03d}"
        work.mkdir()
        cache, journal = work / "cache", work / "journal"

        def child():
            chaos.install(
                chaos.ChaosPlan(kill_campaign_after_records=n,
                                ledger=str(work / "ledger")),
                work / "plan.json",
            )
            CampaignService(cache, workers=1).run(specs, journal=str(journal))

        _assert_sigkilled(_fork_and_wait(child))
        # the fault ledger recorded the kill before it landed
        assert chaos.ledger_counts(work / "ledger") == {
            "campaign.chaos.campaign_kill": 1
        }

        resumed = CampaignService.resume(str(journal))
        assert json.dumps(resumed.to_dict(), sort_keys=True) == ref_json, (
            f"resume after kill at journal record {n} diverged"
        )
        assert _cache_bytes(cache) == ref_bytes
        assert resumed.counters["campaign.resumed"] == 1
        assert read_journal(journal).complete


def test_campaign_kill_and_resume_with_worker_pool(tmp_path):
    """Driver death mid-flight with a real worker pool: in-flight jobs
    re-queue and the resumed report matches the uninterrupted one."""
    specs = _specs(8, code_version="chaos-pool")
    ref = CampaignService(tmp_path / "ref", workers=2).run(specs)
    cache, journal = tmp_path / "cache", tmp_path / "journal"

    def child():
        chaos.install(
            chaos.ChaosPlan(kill_campaign_after_records=7),
            tmp_path / "plan.json",
        )
        CampaignService(cache, workers=2).run(specs, journal=str(journal))

    _assert_sigkilled(_fork_and_wait(child))
    partial = read_journal(journal)
    assert not partial.complete

    resumed = CampaignService.resume(str(journal))
    assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
        ref.to_dict(), sort_keys=True
    )


# -- workers really die by SIGKILL -------------------------------------------


def test_worker_sigkill_chaos_converges_and_accounts(tmp_path):
    """A drawn worker-kill plan: every job still completes within its
    retry budget, artifacts are byte-identical to the fault-free
    reference, and the counters account for every injected kill."""
    specs = _specs(10, code_version="chaos-kill")
    ref_cache = tmp_path / "ref"
    CampaignService(ref_cache, workers=3).run(specs)

    max_kills = 2
    plan = chaos.draw_plan(
        1, [s.digest for s in specs], kill_probability=0.45,
        max_kills_per_job=max_kills, ledger=str(tmp_path / "ledger"),
    )
    assert plan.kill_before or plan.kill_after, "plan drew no kills"
    chaos.install(plan, tmp_path / "plan.json")
    try:
        report = CampaignService(
            tmp_path / "cache", workers=3, max_retries=max_kills,
        ).run(specs, journal=str(tmp_path / "journal"))
    finally:
        chaos.clear()

    assert len(report.outcomes) == len(specs)           # no job lost
    assert all(o.state == "done" for o in report.outcomes)
    assert all(o.attempts <= 1 + max_kills for o in report.outcomes)
    assert _cache_bytes(tmp_path / "cache") == _cache_bytes(ref_cache)
    ledger = chaos.ledger_counts(tmp_path / "ledger")
    assert ledger["campaign.chaos.worker_kill"] >= len(
        [a for v in plan.kill_before.values() for a in v]
    )
    # every ledgered fault is folded into the report counters
    assert report.counters["campaign.chaos.worker_kill"] == (
        ledger["campaign.chaos.worker_kill"]
    )


def test_worker_kill_retries_exhausted_fails_cleanly(tmp_path):
    """A job killed on every allowed attempt fails with a structured
    error instead of hanging or crashing the campaign."""
    specs = _specs(3, code_version="chaos-exhaust")
    doomed = specs[1].digest[:12]
    plan = chaos.ChaosPlan(kill_before={doomed: [1, 2]})
    chaos.install(plan, tmp_path / "plan.json")
    try:
        report = CampaignService(
            tmp_path / "cache", workers=2, max_retries=1,
        ).run(specs)
    finally:
        chaos.clear()
    by_digest = {o.digest[:12]: o for o in report.outcomes}
    assert by_digest[doomed].state == "failed"
    assert "worker process died" in by_digest[doomed].error
    assert by_digest[doomed].attempts == 2
    others = [o for o in report.outcomes if o.digest[:12] != doomed]
    assert all(o.state == "done" for o in others)


# -- cache corruption: truncation and bit-flips -------------------------------


def test_cache_corruption_detected_and_healed(tmp_path):
    """Truncated and bit-flipped cache entries are detected as corrupt,
    recomputed, healed on disk, and the rerun report matches."""
    specs = _specs(12, code_version="chaos-corrupt")
    cache = tmp_path / "cache"
    ref = CampaignService(cache, workers=1).run(specs)
    clean = _cache_bytes(cache)

    damaged = chaos.corrupt_store(cache, seed=7,
                                  ledger=str(tmp_path / "ledger"))
    assert damaged, "corruption pass damaged nothing"
    assert _cache_bytes(cache) != clean

    service = CampaignService(cache, workers=1)
    rerun = service.run(specs)
    assert all(o.state == "done" for o in rerun.outcomes)
    assert rerun.artifacts() == ref.artifacts()
    assert rerun.cached_hits == len(specs) - len(damaged)
    assert rerun.executed == len(damaged)
    # counters: every damaged entry was detected and healed
    stats = service.store.stats()
    assert stats["corrupt"] == len(damaged)
    assert stats["healed"] == len(damaged)
    assert stats["hits"] == len(specs) - len(damaged)
    # the store is fully repaired: bytes match the clean run again
    assert _cache_bytes(cache) == clean
    assert chaos.ledger_counts(tmp_path / "ledger") == {
        "campaign.chaos.corruption": len(damaged)
    }


def test_corrupt_store_is_deterministic_per_seed(tmp_path):
    specs = _specs(8, code_version="chaos-corrupt-det")
    for name in ("a", "b"):
        CampaignService(tmp_path / name, workers=1).run(specs)
    da = chaos.corrupt_store(tmp_path / "a", seed=3)
    db = chaos.corrupt_store(tmp_path / "b", seed=3)
    assert [p.name for p in da] == [p.name for p in db]
    assert _cache_bytes(tmp_path / "a") == _cache_bytes(tmp_path / "b")


# -- disk-full ----------------------------------------------------------------


def test_store_disk_full_is_absorbed_and_healed_on_rerun(tmp_path):
    """ENOSPC on a cache write never fails the job: the artifact stays
    in the report, the write error is counted, and a rerun recomputes
    (then caches) the missing entry."""
    specs = _specs(4, code_version="chaos-enospc")
    plan = chaos.ChaosPlan(store_enospc_writes=[2],
                           ledger=str(tmp_path / "ledger"))
    chaos.install(plan, tmp_path / "plan.json")
    try:
        report = CampaignService(tmp_path / "cache", workers=1).run(
            specs, journal=str(tmp_path / "journal")
        )
    finally:
        chaos.clear()
    assert all(o.state == "done" for o in report.outcomes)
    assert all(o.artifact is not None for o in report.outcomes)
    assert report.counters["campaign.store.put_errors"] == 1
    assert report.counters["campaign.chaos.store_enospc"] == 1
    assert len(_cache_bytes(tmp_path / "cache")) == len(specs) - 1

    # rerun with space available: the hole is recomputed and cached
    rerun = CampaignService(tmp_path / "cache", workers=1).run(specs)
    assert rerun.cached_hits == len(specs) - 1
    assert rerun.executed == 1
    assert len(_cache_bytes(tmp_path / "cache")) == len(specs)


def test_journal_disk_full_is_absorbed_and_resume_recovers(tmp_path):
    """ENOSPC on a journal append under-records but never fails the
    run; a resume of that journal simply recomputes the un-recorded
    job and converges to the same report."""
    specs = _specs(5, code_version="chaos-jfull")
    ref = CampaignService(tmp_path / "ref", workers=1).run(specs)

    # record 5 is job index 1's terminal record in an uninterrupted
    # workers=1 run (header, started 0, finished 0, started 1, ...)
    plan = chaos.ChaosPlan(journal_enospc_records=[5],
                           ledger=str(tmp_path / "ledger"))
    chaos.install(plan, tmp_path / "plan.json")
    try:
        report = CampaignService(tmp_path / "cache", workers=1).run(
            specs, journal=str(tmp_path / "journal")
        )
    finally:
        chaos.clear()
    assert all(o.state == "done" for o in report.outcomes)
    assert report.counters["campaign.journal.write_errors"] == 1
    assert report.counters["campaign.chaos.journal_enospc"] == 1

    state = read_journal(tmp_path / "journal")
    assert state.complete                    # the end record landed
    # the lost record was job 1's *terminal* record: its `started`
    # landed, so the journal still says running — which a resume
    # re-queues and recomputes
    assert state.job(1).state == "running"

    resumed = CampaignService.resume(str(tmp_path / "journal"))
    assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
        ref.to_dict(), sort_keys=True
    )


# -- the store directory disappears wholesale --------------------------------


def test_store_vanishes_wholesale_and_campaign_converges(tmp_path):
    """The whole artifact-store directory is deleted out from under a
    live campaign (operator wipe / tmpfs reset).  The run completes
    with no job lost, later writes heal the tree, and a journaled
    resume recomputes the wiped entries and converges byte-for-byte
    with a fault-free reference."""
    specs = _specs(8, code_version="chaos-vanish")
    ref = CampaignService(tmp_path / "ref", workers=1).run(specs)
    ref_bytes = _cache_bytes(tmp_path / "ref")

    vanish_after = 3
    cache, journal = tmp_path / "cache", tmp_path / "journal"
    plan = chaos.ChaosPlan(store_vanish_after_writes=vanish_after,
                           ledger=str(tmp_path / "ledger"))
    chaos.install(plan, tmp_path / "plan.json")
    try:
        report = CampaignService(cache, workers=1).run(
            specs, journal=str(journal)
        )
    finally:
        chaos.clear()

    # no job lost: every spec reached done despite the mid-run wipe,
    # and the in-memory report still carries every artifact
    assert len(report.outcomes) == len(specs)
    assert all(o.state == "done" for o in report.outcomes)
    assert report.artifacts() == ref.artifacts()
    # the first N entries were wiped; the very next put re-created the
    # tree via mkdir(parents=True), so exactly the later entries survive
    assert len(_cache_bytes(cache)) == len(specs) - vanish_after
    assert chaos.ledger_counts(tmp_path / "ledger") == {
        "campaign.chaos.store_vanished": 1
    }
    assert report.counters["campaign.chaos.store_vanished"] == 1

    # a resume of the journal sees done jobs whose artifacts did not
    # survive, recomputes them, and converges — store fully healed
    resumed = CampaignService.resume(str(journal))
    assert len(resumed.outcomes) == len(specs)
    assert all(o.state == "done" for o in resumed.outcomes)
    assert resumed.artifacts() == ref.artifacts()
    assert resumed.counters["campaign.resumed"] == 1
    assert resumed.counters["campaign.restore_misses"] == vanish_after
    assert _cache_bytes(cache) == ref_bytes


# -- circuit breaker degradation ---------------------------------------------


def test_breaker_trips_degrades_and_survives_resume(tmp_path):
    """After K consecutive failures the scenario's breaker opens:
    remaining jobs fail fast with a structured reason, the campaign
    still reports, and a resumed campaign re-arms the open breaker."""
    specs = grid("_selftest", 8,
                 {"mode": "fail-seeds", "fail_seeds": list(range(1, 8))},
                 code_version="chaos-breaker")
    cache, journal = tmp_path / "cache", tmp_path / "journal"
    service = CampaignService(cache, workers=1, breaker_threshold=3)
    report = service.run(specs, journal=str(journal))

    states = [o.state for o in report.outcomes]
    assert states == ["done"] + ["failed"] * 7
    executed_failures = [o for o in report.outcomes
                         if o.state == "failed"
                         and not o.error.startswith(BREAKER_ERROR_PREFIX)]
    skipped = [o for o in report.outcomes
               if o.error and o.error.startswith(BREAKER_ERROR_PREFIX)]
    assert len(executed_failures) == 3          # seeds 1..3 really ran
    assert len(skipped) == 4                    # seeds 4..7 failed fast
    assert report.counters["campaign.breaker_trips"] == 1
    assert report.counters["campaign.breaker_skipped"] == 4

    # the journal marks breaker-skipped jobs distinctly
    state = read_journal(journal)
    assert [state.job(i).breaker for i in range(8)] == (
        [False] * 4 + [True] * 4
    )

    # a resume of the finished journal restores everything verbatim
    resumed = CampaignService.resume(str(journal))
    assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
        report.to_dict(), sort_keys=True
    )


# -- the seeded multi-fault suite (nightly scales this up) --------------------


def _chaos_seeds() -> range:
    return range(int(os.environ.get("REPRO_CHAOS_SEEDS", "3")))


def test_seeded_multi_fault_campaigns(tmp_path):
    """For each seed: draw a worker-kill plan, add a seeded disk-full
    fault, run a pooled journaled campaign, and hold the full invariant
    set.  ``REPRO_CHAOS_SEEDS`` scales the sweep (nightly: >= 25)."""
    max_kills = 2
    specs = _specs(8, code_version="chaos-suite")
    ref = CampaignService(tmp_path / "ref", workers=2).run(specs)
    ref_artifacts = ref.artifacts()
    summaries = []

    for seed in _chaos_seeds():
        work = tmp_path / f"seed-{seed:03d}"
        work.mkdir()
        plan = chaos.draw_plan(
            seed, [s.digest for s in specs], kill_probability=0.35,
            kill_after_probability=0.25, max_kills_per_job=max_kills,
            ledger=str(work / "ledger"),
        )
        # one seeded ENOSPC per stream keeps the absorb paths hot
        plan.store_enospc_writes = [1 + seed % 8]
        plan.journal_enospc_records = [2 + seed % 10]
        chaos.install(plan, work / "plan.json")
        try:
            report = CampaignService(
                work / "cache", workers=2, max_retries=max_kills,
            ).run(specs, journal=str(work / "journal"))
        finally:
            chaos.clear()

        assert len(report.outcomes) == len(specs)
        assert all(o.state == "done" for o in report.outcomes), (
            f"seed {seed}: {[o.error for o in report.outcomes if o.error]}"
        )
        assert all(o.attempts <= 1 + max_kills for o in report.outcomes)
        assert report.artifacts() == ref_artifacts
        ledger = chaos.ledger_counts(work / "ledger")
        for name, total in ledger.items():
            assert report.counters.get(name) == total, (
                f"seed {seed}: counter {name} does not account for "
                f"{total} ledgered fault(s)"
            )
        summaries.append({
            "seed": seed,
            "planned_kills": sum(len(v) for v in plan.kill_before.values())
            + sum(len(v) for v in plan.kill_after.values()),
            "ledger": ledger,
            "counters": report.counters,
            "attempts": [o.attempts for o in report.outcomes],
        })

    out = os.environ.get("REPRO_CHAOS_REPORT")
    if out:
        pathlib.Path(out).write_text(json.dumps({
            "jobs": len(specs),
            "seeds": len(summaries),
            "max_retries": max_kills,
            "campaigns": summaries,
        }, indent=2, sort_keys=True) + "\n")
        # export the per-seed journals next to the report so the
        # nightly job can upload them with it
        jdir = pathlib.Path(out).with_suffix(".journals")
        jdir.mkdir(exist_ok=True)
        for seed in _chaos_seeds():
            src = tmp_path / f"seed-{seed:03d}" / "journal"
            if src.exists():
                shutil.copy(src, jdir / f"seed-{seed:03d}.journal")
