"""Tests for reflective boundary conditions.

The fully reflective box is the strongest verification problem a sweep
code has: with a uniform source it must reproduce the infinite-medium
solution phi = q / (sigma_t - sigma_s) in *every* cell.
"""

import dataclasses

import numpy as np
import pytest

from repro.sweep3d.input import SweepInput
from repro.sweep3d.solver import ALL_REFLECTIVE, FACES, solve


def base_input(**kw):
    defaults = dict(
        it=4, jt=4, kt=4, mk=2, mmi=6, sigma_t=1.0, sigma_s=0.5, q=2.0,
        epsi=1e-9,
    )
    defaults.update(kw)
    return SweepInput(**defaults)


def test_fully_reflective_box_is_the_infinite_medium():
    inp = base_input()
    res = solve(inp, max_iterations=500, reflective=ALL_REFLECTIVE)
    assert res.converged
    exact = inp.q / (inp.sigma_t - inp.sigma_s)
    np.testing.assert_allclose(res.phi, exact, rtol=1e-7)


def test_fully_reflective_box_leaks_nothing():
    res = solve(base_input(), max_iterations=500, reflective=ALL_REFLECTIVE)
    assert res.leakage == 0.0


def test_reflective_balance_exact_every_iteration():
    res = solve(base_input(), max_iterations=5, reflective=ALL_REFLECTIVE)
    assert res.balance_residual < 1e-12


def test_partial_reflection_balance_and_leakage():
    x_mirrors = frozenset({("x", "low"), ("x", "high")})
    res = solve(base_input(), max_iterations=300, reflective=x_mirrors)
    assert res.converged
    assert res.balance_residual < 1e-12
    assert res.leakage > 0  # y and z faces still leak


def test_reflection_raises_the_flux():
    """Closing faces keeps particles in: flux rises monotonically with
    the number of mirrored faces."""
    inp = base_input()
    vacuum = solve(inp, max_iterations=300).phi.mean()
    x_only = solve(
        inp, max_iterations=300,
        reflective=frozenset({("x", "low"), ("x", "high")}),
    ).phi.mean()
    closed = solve(inp, max_iterations=500, reflective=ALL_REFLECTIVE).phi.mean()
    assert vacuum < x_only < closed


def test_partial_reflection_symmetry():
    """Mirroring only the x faces preserves the y/z vacuum symmetry and
    flattens the profile along x."""
    inp = base_input(it=6, jt=6, kt=6)
    res = solve(
        inp, max_iterations=400,
        reflective=frozenset({("x", "low"), ("x", "high")}),
    )
    phi = res.phi
    np.testing.assert_allclose(phi, np.flip(phi, axis=1), rtol=1e-8)
    np.testing.assert_allclose(phi, np.flip(phi, axis=2), rtol=1e-8)
    # Along x the profile is (near-)uniform: reflection removed the sag.
    x_spread = phi.max(axis=0) / phi.min(axis=0)
    assert x_spread.max() < 1.001


def test_reflective_with_fixup_kernel():
    inp = base_input(sigma_t=4.0, sigma_s=2.0)
    res = solve(
        inp, max_iterations=500, reflective=ALL_REFLECTIVE, fixup=True
    )
    assert res.converged
    exact = inp.q / (inp.sigma_t - inp.sigma_s)
    np.testing.assert_allclose(res.phi, exact, rtol=1e-6)


def test_reflective_solve_unchanged_through_plan_layer():
    """A reflective solve must take the per-octant loop (the batched
    path is vacuum-only) and give the same bits whether the loop is
    reached by the auto gate or forced explicitly."""
    inp = base_input()
    auto = solve(inp, max_iterations=40, reflective=ALL_REFLECTIVE)
    forced = solve(inp, max_iterations=40, reflective=ALL_REFLECTIVE, batched=False)
    assert np.array_equal(auto.phi, forced.phi)
    assert auto.leakage == forced.leakage
    assert auto.balance_residual == forced.balance_residual


def test_vacuum_solve_batched_matches_loop_bitwise():
    """With vacuum boundaries the auto gate engages the batched kernel;
    it must change nothing — same flux, leakage and balance, bit for
    bit, as the per-octant loop."""
    inp = base_input()
    loop = solve(inp, max_iterations=40, batched=False)
    fast = solve(inp, max_iterations=40, batched=True)
    auto = solve(inp, max_iterations=40)
    for other in (fast, auto):
        assert np.array_equal(loop.phi, other.phi)
        assert loop.leakage == other.leakage
        assert loop.balance_residual == other.balance_residual
        assert loop.iterations == other.iterations


def test_batched_with_reflective_faces_rejected():
    with pytest.raises(ValueError):
        solve(
            base_input(), max_iterations=5,
            reflective=ALL_REFLECTIVE, batched=True,
        )


def test_unknown_face_rejected():
    from repro.sweep3d.quadrature import make_angle_set
    from repro.sweep3d.solver import sweep_all_octants

    inp = base_input()
    with pytest.raises(ValueError):
        sweep_all_octants(
            inp,
            np.ones((inp.it, inp.jt, inp.kt)),
            make_angle_set(inp.mmi),
            reflective=frozenset({("x", "middle")}),
        )


def test_faces_constant_covers_all_six():
    assert len(FACES) == 6
    assert ALL_REFLECTIVE == FACES
