"""Tests for the extended collectives: gather, scatter, allgather,
alltoall — including property-based no-deadlock/correctness checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.mpi import Location, SimMPI, UniformFabric
from repro.comm.transport import Transport
from repro.sim import Simulator
from repro.units import US


def make_comm(n, latency=1 * US):
    sim = Simulator()
    fabric = UniformFabric(Transport("t", latency=latency, bandwidth=1e9))
    comm = SimMPI(sim, fabric, [Location(node=i) for i in range(n)])
    return sim, comm


def run_ranks(sim, comm, body):
    for r in range(comm.size):
        sim.process(body(comm.rank(r)), name=f"rank{r}")
    sim.run()


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_gather_collects_in_rank_order(n, root):
    if root >= n:
        pytest.skip("root outside communicator")
    sim, comm = make_comm(n)
    results = {}

    def body(rank):
        got = yield from rank.gather(f"v{rank.index}", root=root)
        results[rank.index] = got

    run_ranks(sim, comm, body)
    assert results[root] == [f"v{r}" for r in range(n)]
    for r in range(n):
        if r != root:
            assert results[r] is None


@pytest.mark.parametrize("n", [1, 2, 4, 7])
def test_scatter_distributes_by_rank(n):
    sim, comm = make_comm(n)
    results = {}

    def body(rank):
        values = [f"s{i}" for i in range(n)] if rank.index == 0 else None
        got = yield from rank.scatter(values, root=0)
        results[rank.index] = got

    run_ranks(sim, comm, body)
    assert results == {r: f"s{r}" for r in range(n)}


def test_scatter_requires_values_at_root():
    sim, comm = make_comm(2)

    def body(rank):
        if rank.index == 0:
            yield from rank.scatter([1], root=0)  # wrong length
        else:
            yield from rank.scatter(None, root=0)

    with pytest.raises(ValueError):
        run_ranks(sim, comm, body)


@pytest.mark.parametrize("n", [1, 2, 3, 6, 8])
def test_allgather_everyone_sees_everything(n):
    sim, comm = make_comm(n)
    results = {}

    def body(rank):
        got = yield from rank.allgather(rank.index * 10)
        results[rank.index] = got

    run_ranks(sim, comm, body)
    expected = [r * 10 for r in range(n)]
    assert all(v == expected for v in results.values())


def test_allgather_takes_logarithmic_rounds():
    latency = 1 * US
    sim, comm = make_comm(8, latency=latency)
    finish = {}

    def body(rank):
        yield from rank.allgather("x", size=0)
        finish[rank.index] = rank.sim.now

    run_ranks(sim, comm, body)
    assert max(finish.values()) == pytest.approx(3 * latency)


@pytest.mark.parametrize("n", [1, 2, 3, 5])
def test_alltoall_personalized_exchange(n):
    sim, comm = make_comm(n)
    results = {}

    def body(rank):
        outgoing = [(rank.index, j) for j in range(n)]
        got = yield from rank.alltoall(outgoing)
        results[rank.index] = got

    run_ranks(sim, comm, body)
    for j in range(n):
        assert results[j] == [(i, j) for i in range(n)]


def test_alltoall_validates_length():
    sim, comm = make_comm(3)

    def body(rank):
        yield from rank.alltoall([1, 2])  # wrong length

    with pytest.raises(ValueError):
        run_ranks(sim, comm, body)


def test_consecutive_mixed_collectives_do_not_cross():
    """A stress sequence of different collectives back to back."""
    sim, comm = make_comm(5)
    results = {}

    def body(rank):
        a = yield from rank.allreduce(1, op=lambda x, y: x + y)
        b = yield from rank.allgather(rank.index)
        yield from rank.barrier()
        c = yield from rank.bcast("z" if rank.index == 2 else None, root=2)
        d = yield from rank.gather(rank.index**2, root=0)
        results[rank.index] = (a, b, c, d)

    run_ranks(sim, comm, body)
    for r, (a, b, c, d) in results.items():
        assert a == 5
        assert b == [0, 1, 2, 3, 4]
        assert c == "z"
        if r == 0:
            assert d == [0, 1, 4, 9, 16]
        else:
            assert d is None


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=9),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_random_collective_sequences_complete(n, seed):
    """Any same-order sequence of collectives completes with correct
    results (no deadlock, no cross-matching)."""
    import random

    rng = random.Random(seed)
    ops = [rng.choice(["barrier", "bcast", "reduce", "allgather", "alltoall"])
           for _ in range(4)]
    sim, comm = make_comm(n)
    results = {r: [] for r in range(n)}

    def body(rank):
        for op in ops:
            if op == "barrier":
                yield from rank.barrier()
                results[rank.index].append("b")
            elif op == "bcast":
                got = yield from rank.bcast(
                    "root" if rank.index == 0 else None, root=0
                )
                results[rank.index].append(got)
            elif op == "reduce":
                got = yield from rank.reduce(1, op=lambda a, b: a + b, root=0)
                results[rank.index].append(got)
            elif op == "allgather":
                got = yield from rank.allgather(rank.index)
                results[rank.index].append(tuple(got))
            else:
                got = yield from rank.alltoall(list(range(n)))
                results[rank.index].append(tuple(got))

    run_ranks(sim, comm, body)
    for r in range(n):
        assert len(results[r]) == len(ops)
    for step, op in enumerate(ops):
        if op == "bcast":
            assert all(results[r][step] == "root" for r in range(n))
        elif op == "reduce":
            assert results[0][step] == n
        elif op == "allgather":
            assert all(results[r][step] == tuple(range(n)) for r in range(n))
        elif op == "alltoall":
            for r in range(n):
                assert results[r][step] == tuple([r] * n)
