"""Tests for the MiniMD application (real numerics + offload timing)."""

import numpy as np
import pytest

from repro.apps.minimd import MDTimestepModel, MiniMD
from repro.comm.dacs import PCIE_RAW


@pytest.fixture(scope="module")
def system():
    return MiniMD(cells_per_side=3)


def test_fcc_lattice_atom_count():
    assert MiniMD(cells_per_side=3).n_atoms == 108
    assert MiniMD(cells_per_side=4).n_atoms == 256


def test_box_matches_density():
    md = MiniMD(cells_per_side=3, density=0.8)
    assert md.n_atoms / md.box**3 == pytest.approx(0.8)


def test_validation():
    with pytest.raises(ValueError):
        MiniMD(cells_per_side=0)
    with pytest.raises(ValueError):
        MiniMD(density=0.0)
    with pytest.raises(ValueError):
        MiniMD(dt=0.0)
    with pytest.raises(ValueError):
        MiniMD(cells_per_side=2)  # cutoff > box/2: minimum image violated
    md = MiniMD(cells_per_side=3)
    with pytest.raises(ValueError):
        md.step(0)


def test_initial_net_momentum_zero(system):
    assert np.abs(system.momentum()).max() < 1e-12


def test_forces_obey_newtons_third_law(system):
    forces, _ = system.forces()
    assert np.abs(forces.sum(axis=0)).max() < 1e-10


def test_lattice_is_near_equilibrium():
    """On a perfect FCC lattice the net force on every atom vanishes
    by symmetry."""
    md = MiniMD(cells_per_side=3)
    forces, _ = md.forces()
    assert np.abs(forces).max() < 1e-9


def test_energy_conservation():
    md = MiniMD(cells_per_side=3, dt=0.002)
    e0 = md.total_energy()
    md.step(100)
    e1 = md.total_energy()
    assert abs(e1 - e0) / abs(e0) < 1e-3


def test_momentum_conserved_through_dynamics():
    md = MiniMD(cells_per_side=3)
    md.step(50)
    assert np.abs(md.momentum()).max() < 1e-10


def test_smaller_dt_conserves_better():
    drift = {}
    for dt in (0.008, 0.002):
        md = MiniMD(cells_per_side=3, dt=dt, seed=7)
        e0 = md.total_energy()
        md.step(50)
        drift[dt] = abs(md.total_energy() - e0)
    assert drift[0.002] < drift[0.008]


def test_positions_stay_in_box():
    md = MiniMD(cells_per_side=3)
    md.step(30)
    assert md.positions.min() >= 0.0
    assert md.positions.max() < md.box


def test_interacting_pairs_positive(system):
    pairs = system.interacting_pairs()
    assert 0 < pairs < system.n_atoms * (system.n_atoms - 1) // 2
    assert system.force_flops() == pairs * 50


# --- offload timing -------------------------------------------------------------

def test_accelerated_timestep_faster(system):
    model = MDTimestepModel()
    host = model.timestep_time(system, accelerated=False)
    accel = model.timestep_time(system, accelerated=True)
    assert accel < host
    assert model.speedup(system) == pytest.approx(host / accel)


def test_speedup_in_spasm_band(system):
    """Hotspot offload of a DP force kernel lands in the few-x band
    SPaSM reported on Roadrunner."""
    speedup = MDTimestepModel().speedup(system)
    assert 2.0 < speedup < 8.0


def test_raw_pcie_improves_the_offload(system):
    dacs = MDTimestepModel().speedup(system)
    pcie = MDTimestepModel(link=PCIE_RAW).speedup(system)
    assert pcie > dacs


def test_kernel_speedup_derives_from_spasm_mix(system):
    model = MDTimestepModel().offload_model(system)
    # 8 SPEs running the SPaSM mix vs a ~0.9 Gflop/s host core.
    assert 5.0 < model.kernel_speedup < 30.0
