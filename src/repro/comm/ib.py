"""MPI-over-InfiniBand transport models (Figs 6-10; §IV-C).

Tunings:

* :data:`IB_DEFAULT` — default Open MPI parameters: 2.16 µs latency
  (Fig 6's Opteron-Opteron leg) and 980 MB/s at 1 MB (the rank-0 average
  the paper reports).
* :data:`IB_PINNED` — pinned memory buffers: 1.6 GB/s at 1 MB.
* :data:`IB_NEAR_PAIR` / :data:`IB_FAR_PAIR` — Fig 8's core-dependent
  rates.  Cores 0/2 sit one HyperTransport hop farther from the HCA, so
  the far-pair bandwidth is the harmonic combination of the near rate
  with an HT-crossing penalty; the penalty constant is fit so the two
  published endpoints (1,478 and 1,087 MB/s) come out.
"""

from __future__ import annotations

from repro.comm.transport import Transport
from repro.units import GB_S, MB_S, US

__all__ = [
    "IB_DEFAULT",
    "IB_PINNED",
    "IB_NEAR_PAIR",
    "IB_FAR_PAIR",
    "HT_EXTRA_HOP_BANDWIDTH",
    "ib_between_cores",
]

_LATENCY = 2.16 * US

IB_DEFAULT = Transport(
    name="MPI over InfiniBand (default Open MPI)",
    latency=_LATENCY,
    bandwidth=983 * MB_S,
    bidirectional_factor=0.70,
)

IB_PINNED = Transport(
    name="MPI over InfiniBand (pinned buffers)",
    latency=_LATENCY,
    bandwidth=1.61 * GB_S,
    bidirectional_factor=0.70,
)

#: Cores 1 and 3 (and their memory) are adjacent to the HCA (Fig 8).
IB_NEAR_PAIR = Transport(
    name="MPI over InfiniBand (cores 1<->3, near HCA)",
    latency=_LATENCY,
    bandwidth=1.480 * GB_S,
    bidirectional_factor=0.70,
)

#: Effective bandwidth of the extra HyperTransport crossing that traffic
#: from cores 0/2 pays to reach the HCA: fit from Fig 8's endpoints,
#: 1/(1/1087 - 1/1478) MB/s ~= 4.1 GB/s (~64% of the HT x16 peak).
HT_EXTRA_HOP_BANDWIDTH = 1.0 / (1.0 / (1.087 * GB_S) - 1.0 / (1.480 * GB_S))

IB_FAR_PAIR = Transport(
    name="MPI over InfiniBand (cores 0<->2, far from HCA)",
    latency=_LATENCY,
    bandwidth=1.0 / (1.0 / IB_NEAR_PAIR.bandwidth + 1.0 / HT_EXTRA_HOP_BANDWIDTH),
    bidirectional_factor=0.70,
)


def ib_between_cores(core_a: int, core_b: int) -> Transport:
    """The internode transport between two Opteron cores (Fig 8).

    The slower endpoint dominates: if either core is far from its HCA,
    the whole path pays the extra HyperTransport crossing.
    """
    from repro.hardware.node import HCA_NEAR_CORES

    if not (0 <= core_a < 4 and 0 <= core_b < 4):
        raise ValueError("Opteron core indices are 0-3")
    if core_a in HCA_NEAR_CORES and core_b in HCA_NEAR_CORES:
        return IB_NEAR_PAIR
    return IB_FAR_PAIR
