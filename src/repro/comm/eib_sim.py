"""Discrete-event model of the Element Interconnect Bus.

The EIB is four unidirectional 16-byte-wide rings (two per rotation
direction) clocked at half the core clock; each ring can carry up to
three simultaneous non-overlapping transfers.  The paper quotes the
controller-visible figure — 96 bytes per core cycle in aggregate —
which this model reproduces: 4 rings x 16 B x 1.6 GHz = 102.4 GB/s of
raw ring capacity, arbitrated down to ~96 B/cycle by the data
arbiter's slot accounting.

The DES version materializes ring slots as FIFO resources and ring
bandwidth as fair-shared links, so concurrent SPE-to-SPE DMAs exhibit
both effects the analytic :class:`repro.comm.eib.EIBRing` asserts:
aggregate capping and per-pair degradation under load.
"""

from __future__ import annotations

from repro.sim.engine import Event, Simulator
from repro.sim.resources import BandwidthLink, Resource

__all__ = ["EIBSim"]


class EIBSim:
    """One Cell's on-chip ring fabric on the simulator."""

    RINGS = 4
    SLOTS_PER_RING = 3
    RING_BYTES_PER_CYCLE = 16
    #: the rings clock at half the 3.2 GHz core clock
    RING_CLOCK_HZ = 1.6e9
    #: per-transfer arbitration latency (command phase on the address ring)
    ARBITRATION_LATENCY = 50e-9

    def __init__(self, sim: Simulator):
        self.sim = sim
        # 16 B per 1.6 GHz ring cycle: the canonical 25.6 GB/s per ring.
        ring_bw = self.RING_BYTES_PER_CYCLE * self.RING_CLOCK_HZ
        self._rings = [
            BandwidthLink(sim, ring_bw, name=f"eib-ring-{i}")
            for i in range(self.RINGS)
        ]
        self._slots = [
            Resource(sim, capacity=self.SLOTS_PER_RING) for _ in range(self.RINGS)
        ]
        self._next_ring = 0
        #: completed transfer count
        self.transfers_completed = 0

    @property
    def aggregate_bandwidth(self) -> float:
        """Raw capacity of all four rings, B/s."""
        return sum(r.bandwidth for r in self._rings)

    def transfer(self, size_bytes: int) -> Event:
        """Move ``size_bytes`` between two on-chip units.

        Returns the completion event.  Rings are assigned round-robin
        (the real arbiter picks by path non-overlap; round-robin gives
        the same steady-state sharing for symmetric traffic).
        """
        if size_bytes < 0:
            raise ValueError("size must be >= 0")
        done = Event(self.sim)
        if size_bytes == 0:
            done.succeed(self.sim.now)
            return done
        ring_idx = self._next_ring
        self._next_ring = (self._next_ring + 1) % self.RINGS
        ring = self._rings[ring_idx]
        slots = self._slots[ring_idx]

        def mover(sim):
            req = slots.request()
            yield req
            try:
                yield sim.timeout(self.ARBITRATION_LATENCY)
                yield ring.transfer(size_bytes)
            finally:
                slots.release(req)
            self.transfers_completed += 1
            return sim.now

        proc = self.sim.process(mover(self.sim), name=f"eib-xfer-r{ring_idx}")
        proc.callbacks.append(
            lambda evt: done.succeed(evt.value) if evt.ok else done.fail(evt.value)
        )
        return done
