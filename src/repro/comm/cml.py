"""Cell Messaging Layer path compositions (Fig 6, Fig 7; §V-C).

CML gives every SPE in the cluster an MPI rank.  A message between SPEs
crosses a location-dependent chain of transports:

* same socket — one hop over the EIB (0.272 µs);
* same node, different Cell — SPE→PPE, DaCS to the Opteron side, a
  shared-memory copy between Opteron cores, DaCS back down, PPE→SPE;
* different nodes — the full Fig 6 path: local leg, DaCS up, MPI over
  InfiniBand between Opterons, DaCS down, local leg (8.78 µs zero-byte).

Staging copies at the four relay points reproduce Fig 7's internode
unidirectional rate (~268 MB/s, i.e. half of the published 536 MB/s
two-times-unidirectional figure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.dacs import DACS_MEASURED, PCIE_RAW
from repro.comm.eib import CML_EIB_PAIR
from repro.comm.ib import IB_DEFAULT
from repro.comm.transport import PipelinePath, Transport
from repro.units import GB_S, US

__all__ = [
    "LOCAL_LEG",
    "CellMessagePath",
    "INTRANODE_CELL_PATH",
    "INTERNODE_CELL_PATH",
    "INTERNODE_CELL_PATH_BEST",
    "RELAY_COPY_BANDWIDTH",
]

#: The short SPE<->PPE leg at each end of an off-chip CML message
#: (Fig 6's two 0.12 µs segments); bandwidth is the EIB wire rate.
LOCAL_LEG = Transport(
    name="local SPE<->PPE leg",
    latency=0.12 * US,
    bandwidth=CML_EIB_PAIR.bandwidth,
)

#: Effective rate of the staging copy charged at each of the path's four
#: relay points (SPE->PPE buffer hand-off, PPE DaCS->Opteron MPI buffer,
#: and their mirror images at the receiver).  The Cell-side copies ride
#: the EIB and are fast; the Opteron-side memcpys dominate.  Fit so the
#: composed path reproduces Fig 7's ~268 MB/s internode unidirectional
#: rate at 1 MB.
RELAY_COPY_BANDWIDTH = 6.215 * GB_S

#: Shared-memory hop between the two Opteron cores handling an
#: intranode Cell-to-Cell message.
_SHM_LEG = Transport(
    name="Opteron shared-memory leg",
    latency=0.3 * US,
    bandwidth=2.7 * GB_S,
)

#: Cell-to-Cell within one triblade: up over DaCS, across shared memory,
#: down over DaCS.
INTRANODE_CELL_PATH = PipelinePath(
    name="Cell-Opteron-Opteron-Cell (intranode)",
    legs=(LOCAL_LEG, DACS_MEASURED, _SHM_LEG, DACS_MEASURED, LOCAL_LEG),
    relay_copy_bandwidth=0.0,
    bidirectional_factor=0.64,
)

#: The Fig 6 path: Cell-to-Cell between different triblades.
INTERNODE_CELL_PATH = PipelinePath(
    name="Cell-Opteron-Opteron-Cell (internode)",
    legs=(LOCAL_LEG, DACS_MEASURED, IB_DEFAULT, DACS_MEASURED, LOCAL_LEG),
    relay_copy_bandwidth=RELAY_COPY_BANDWIDTH,
    bidirectional_factor=0.70,
)

#: The same path with the raw-PCIe 'best' parameters of §VI-A — the
#: transport behind the paper's 'Cell (best)' Sweep3D projection.
INTERNODE_CELL_PATH_BEST = PipelinePath(
    name="Cell-Opteron-Opteron-Cell (peak PCIe)",
    legs=(LOCAL_LEG, PCIE_RAW, IB_DEFAULT, PCIE_RAW, LOCAL_LEG),
    relay_copy_bandwidth=RELAY_COPY_BANDWIDTH,
    bidirectional_factor=0.70,
)

#: On a stock QS21 blade the two Cell sockets are cache-coherent, so
#: SPE-to-SPE messages across sockets "can proceed entirely over the
#: high-speed Element Interconnect Bus with no PPE involvement" (§V-C)
#: — unlike Roadrunner's QS22s, whose PPEs must relay over PCIe.  The
#: coherent FlexIO hop roughly halves the pair bandwidth and adds a
#: small latency over the on-chip case.
QS21_CROSS_SOCKET = Transport(
    name="CML cross-socket (QS21 coherent EIB)",
    latency=0.60 * US,
    bandwidth=CML_EIB_PAIR.bandwidth / 2,
)

#: Intranode Cell-to-Cell with the raw-PCIe parameters (the single-node
#: limit of the 'best' projection).
INTRANODE_CELL_PATH_BEST = PipelinePath(
    name="Cell-Opteron-Opteron-Cell (intranode, peak PCIe)",
    legs=(LOCAL_LEG, PCIE_RAW, _SHM_LEG, PCIE_RAW, LOCAL_LEG),
    relay_copy_bandwidth=0.0,
    bidirectional_factor=0.64,
)


@dataclass(frozen=True)
class CellMessagePath:
    """Resolve the transport chain between two SPE-centric endpoints.

    An endpoint is ``(node, cell, spe)``; ``cell`` indexes the four
    PowerXCell 8i chips of a triblade.
    """

    intra_socket: Transport = CML_EIB_PAIR
    intranode: PipelinePath = INTRANODE_CELL_PATH
    internode: PipelinePath = INTERNODE_CELL_PATH

    def classify(
        self, src: tuple[int, int, int], dst: tuple[int, int, int]
    ) -> str:
        """'self', 'intra-socket', 'intranode', or 'internode'."""
        if src == dst:
            return "self"
        if src[0] == dst[0]:
            return "intra-socket" if src[1] == dst[1] else "intranode"
        return "internode"

    def one_way_time(
        self, src: tuple[int, int, int], dst: tuple[int, int, int], size_bytes: int
    ) -> float:
        """Delivery time of ``size_bytes`` between two SPEs."""
        kind = self.classify(src, dst)
        if kind == "self":
            return 0.0
        if kind == "intra-socket":
            return self.intra_socket.one_way_time(size_bytes)
        if kind == "intranode":
            return self.intranode.one_way_time(size_bytes)
        return self.internode.one_way_time(size_bytes)

    def zero_byte_latency(
        self, src: tuple[int, int, int], dst: tuple[int, int, int]
    ) -> float:
        """Zero-byte latency between two SPEs."""
        return self.one_way_time(src, dst, 0)
