"""Live membership and shrink-and-continue collectives.

A dead rank parks every binomial collective in :mod:`repro.comm.mpi`
forever: the tree is wired over the *full* communicator, so one missing
partner starves its whole subtree.  ULFM-style recovery rebuilds the
tree over the survivors instead.  This module provides that protocol
for the simulated MPI:

* :class:`Membership` — the communicator's view of who is alive, read
  from the shared :class:`~repro.resilience.health.FabricHealth` ledger
  (a rank is live iff its node is up);
* :func:`shrink_barrier` / :func:`shrink_bcast` / :func:`shrink_reduce`
  / :func:`shrink_allreduce` — collectives that complete over the live
  membership, reached via ``rank.allreduce(..., shrink=True,
  timeout=...)`` after ``comm.attach_health(health)``.

The shrink protocol
-------------------
Every invocation shares one :class:`_ShrinkState` cell on the
communicator, keyed by the collective sequence number (MPI ordering
makes the numbers agree across ranks).  Each *attempt* snapshots the
live membership once — lazily, by the first rank to enter it — numbers
the survivors densely, and runs an ordinary binomial reduce-then-
broadcast over that group with per-attempt tags, every receive bounded
by ``timeout``.  On a :class:`~repro.comm.mpi.DeliveryError` a rank

1. returns the committed result if some attempt's root already wrote
   it into the shared cell (the **commit point**: after the reduce
   completes, before the broadcast starts), charging one modeled round
   trip to re-fetch it;
2. otherwise advances the shared attempt counter (unless another rank
   already has) and retries over a fresh snapshot — members that died
   since the last snapshot are now excluded;
3. gives up with ``DeliveryError`` once ``max_attempts`` is exhausted.

At most one attempt ever commits: completing attempt ``a + 1`` needs
every survivor of its snapshot to participate — including attempt
``a``'s root if it is still alive — yet a root that committed ``a``
returns instead of joining ``a + 1``, and a root that died cannot
commit.  Ranks that time out after the commit fetch the committed
value, so every survivor returns the same result.  No randomness is
involved and all state transitions happen at well-defined simulated
times, so shrink runs are exactly as deterministic as the healthy
collectives.

This simulates the *cost structure* of the recovery protocol (timeout
detection, re-coordination rounds, refetch traffic); it is not a
byte-accurate ULFM implementation.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.comm.mpi import DeliveryError, Location, Rank

__all__ = [
    "Membership",
    "shrink_barrier",
    "shrink_bcast",
    "shrink_reduce",
    "shrink_allreduce",
]

#: tag space for shrink attempts, above the healthy collectives' blocks
_SHRINK_TAG = 1 << 24
#: tags per attempt: reduce phase at +0, broadcast phase at +_BCAST_OFFSET
_ATTEMPT_STRIDE = 64
_BCAST_OFFSET = 32
#: attempts per invocation tag block — the hard cap on ``max_attempts``
_MAX_ATTEMPTS = 64
_INVOCATION_STRIDE = _ATTEMPT_STRIDE * _MAX_ATTEMPTS
#: invocation blocks before tags wrap (far beyond any campaign length)
_INVOCATION_SPAN = 1 << 20

#: broadcast contribution of every non-root rank (module singleton, so
#: identity survives the by-reference message payloads)
_ABSENT = object()


class Membership:
    """Which ranks of a communicator are currently alive.

    A thin view over rank locations and a shared health ledger: rank
    ``r`` is live iff ``health.node_ok(locations[r].node)``.  Because
    every consumer reads the same ledger, one injected fault changes
    the membership of every attached communicator at once.
    """

    def __init__(self, locations: list[Location], health):
        self.locations = list(locations)
        self.health = health

    def is_live(self, rank: int) -> bool:
        return self.health.node_ok(self.locations[rank].node)

    def live_ranks(self) -> tuple[int, ...]:
        """Sorted tuple of currently-live ranks (a snapshot)."""
        ok = self.health.node_ok
        return tuple(r for r, loc in enumerate(self.locations) if ok(loc.node))


class _ShrinkState:
    """Shared cell of one shrink invocation (one per collective seq)."""

    __slots__ = ("attempt", "groups", "committed", "result", "group")

    def __init__(self):
        self.attempt = 0
        #: lazily-snapshotted live group per attempt; the first rank to
        #: enter an attempt freezes its membership, so every rank of
        #: the attempt agrees on the tree shape
        self.groups: dict[int, tuple[int, ...]] = {}
        self.committed = False
        self.result: Any = None
        #: the committing attempt's group (root = group[0])
        self.group: tuple[int, ...] = ()

    def group_for(self, membership: Membership, attempt: int) -> tuple[int, ...]:
        g = self.groups.get(attempt)
        if g is None:
            g = membership.live_ranks()
            self.groups[attempt] = g
        return g

    def commit(self, value: Any, group: tuple[int, ...]) -> None:
        self.committed = True
        self.result = value
        self.group = group


def _attempt(rank: Rank, group: tuple[int, ...], value, op, size, tag,
             timeout, state: _ShrinkState):
    """One reduce-then-broadcast attempt over ``group`` (generator)."""
    n = len(group)
    vr = group.index(rank.index)
    acc = value
    mask = 1
    while mask < n:
        if vr & mask:
            yield from rank.send(group[vr ^ mask], size, tag=tag, payload=acc)
            break
        partner = vr | mask
        if partner < n:
            msg = yield from rank.recv(
                source=group[partner], tag=tag, timeout=timeout
            )
            acc = op(acc, msg.payload)
        mask <<= 1
    if vr == 0:
        # Commit point: the outcome is now decided.  Ranks that time
        # out from here on fetch this value instead of opening another
        # attempt, so a root death mid-broadcast cannot fork results.
        state.commit(acc, group)
    btag = tag + _BCAST_OFFSET
    result = acc if vr == 0 else None
    mask = 1
    while mask < n:
        if vr & mask:
            msg = yield from rank.recv(
                source=group[vr ^ mask], tag=btag, timeout=timeout
            )
            result = msg.payload
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vr + mask < n:
            yield from rank.send(group[vr + mask], size, tag=btag, payload=result)
        mask >>= 1
    return result


def _refetch(rank: Rank, state: _ShrinkState):
    """Pull an already-committed result (generator): charge one round
    trip to the committing root's location — the modeled cost of an
    orphaned rank asking the survivors for the agreement value."""
    comm = rank.comm
    root = state.group[0] if state.group else rank.index
    latency = comm.fabric.zero_byte_latency(
        comm.locations[rank.index], comm.locations[root]
    )
    if latency > 0:
        yield rank.sim.timeout(2.0 * latency)
    return state.result


def _shrink_engine(rank: Rank, value, op: Callable[[Any, Any], Any],
                   size: int, timeout: float | None, max_attempts: int):
    """Core shrink protocol (generator): returns ``(result, group)``
    where ``group`` is the committing attempt's membership snapshot."""
    if timeout is None or timeout <= 0:
        raise ValueError("shrink collectives need a positive timeout")
    if not 1 <= max_attempts <= _MAX_ATTEMPTS:
        raise ValueError(f"max_attempts must be in 1..{_MAX_ATTEMPTS}")
    comm = rank.comm
    member = comm.membership
    if member is None:
        raise ValueError(
            "shrink collectives need a live membership: call "
            "comm.attach_health(health) first"
        )
    seq = rank._next_coll_seq()
    state = comm._shrink_state.get(seq)
    if state is None:
        state = comm._shrink_state[seq] = _ShrinkState()
    base = _SHRINK_TAG + (seq % _INVOCATION_SPAN) * _INVOCATION_STRIDE
    for _ in range(max_attempts):
        attempt = state.attempt
        group = state.group_for(member, attempt)
        if rank.index not in group:
            raise DeliveryError(
                f"rank {rank.index}: excluded from shrink group (node "
                "marked failed at snapshot time)"
            )
        tag = base + attempt * _ATTEMPT_STRIDE
        try:
            result = yield from _attempt(
                rank, group, value, op, size, tag, timeout, state
            )
        except DeliveryError:
            if state.committed:
                result = yield from _refetch(rank, state)
                comm.tracer.record(
                    rank.sim.now, "shrink", rank.index,
                    {"seq": seq, "attempt": attempt, "refetch": True},
                )
                return result, state.group
            if state.attempt == attempt:
                state.attempt = attempt + 1
            continue
        comm.tracer.record(
            rank.sim.now, "shrink", rank.index,
            {"seq": seq, "attempt": attempt, "group": len(group)},
        )
        return result, state.group
    raise DeliveryError(
        f"rank {rank.index}: shrink collective gave up after "
        f"{max_attempts} attempts"
    )


def shrink_allreduce(rank: Rank, value, op: Callable[[Any, Any], Any],
                     size: int = 8, timeout: float | None = None,
                     max_attempts: int = 8):
    """All-reduce over the live membership (generator): every surviving
    rank returns the same reduction of the survivors' contributions."""
    result, _group = yield from _shrink_engine(
        rank, value, op, size, timeout, max_attempts
    )
    return result


def shrink_barrier(rank: Rank, timeout: float | None = None,
                   max_attempts: int = 8):
    """Barrier over the live membership (generator): returns once the
    survivors have synchronized; dead ranks are not waited for."""
    yield from _shrink_engine(
        rank, None, lambda a, b: None, 0, timeout, max_attempts
    )


def shrink_reduce(rank: Rank, value, op: Callable[[Any, Any], Any],
                  root: int = 0, size: int = 8,
                  timeout: float | None = None, max_attempts: int = 8):
    """Reduce over the live membership (generator): the result lands at
    ``root`` if it survived, else at the committing group's lowest
    rank; every other rank returns ``None``."""
    result, group = yield from _shrink_engine(
        rank, value, op, size, timeout, max_attempts
    )
    owner = root if root in group else group[0]
    return result if rank.index == owner else None


def shrink_bcast(rank: Rank, value, root: int = 0, size: int = 8,
                 timeout: float | None = None, max_attempts: int = 8):
    """Broadcast over the live membership (generator).  The root's
    value reaches every survivor; if the root itself is dead the value
    is unobtainable and every survivor raises ``DeliveryError`` — a
    consistent outcome, decided by the same committed agreement."""
    contribution = value if rank.index == root else _ABSENT
    result, _group = yield from _shrink_engine(
        rank, contribution, lambda a, b: b if a is _ABSENT else a,
        size, timeout, max_attempts,
    )
    if result is _ABSENT:
        raise DeliveryError(
            f"rank {rank.index}: bcast root {root} is not in the live "
            "membership"
        )
    return result
