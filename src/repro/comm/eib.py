"""Element Interconnect Bus (EIB) model and CML intra-socket transport.

The EIB is the on-chip ring joining the eight SPEs, the PPE, and the
memory controller; it moves 96 bytes per 3.2 GHz cycle in aggregate
(§IV-B).  A single SPE-to-SPE CML transfer achieves 0.272 µs latency and
22.4 GB/s for a 128 KB message (§V-C) — the fastest layer of
Roadrunner's communication hierarchy and the reason the SPE-centric
Sweep3D keeps most traffic on-chip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.transport import Transport
from repro.units import GB_S, KIB, US

__all__ = ["CML_EIB_PAIR", "EIBRing"]

#: One SPE-to-SPE CML transfer over the EIB.  The 23.5 GB/s wire rate is
#: chosen so a 128 KiB message achieves exactly the published 22.4 GB/s
#: once the 0.272 µs latency is charged.
CML_EIB_PAIR = Transport(
    name="CML intra-socket (SPE-SPE over EIB)",
    latency=0.272 * US,
    bandwidth=23.5 * GB_S,
)


@dataclass(frozen=True)
class EIBRing:
    """Aggregate capacity of one Cell's on-chip interconnect."""

    clock_hz: float = 3.2e9
    bytes_per_cycle: int = 96

    @property
    def aggregate_bandwidth(self) -> float:
        """Total B/s the ring can move among all units (307.2 GB/s)."""
        return self.bytes_per_cycle * self.clock_hz

    def fair_share(self, concurrent_flows: int) -> float:
        """Per-flow B/s when ``concurrent_flows`` transfers share the
        ring, capped by the single-pair wire rate."""
        if concurrent_flows < 1:
            raise ValueError("need at least one flow")
        return min(
            CML_EIB_PAIR.bandwidth, self.aggregate_bandwidth / concurrent_flows
        )

    def supports_all_pairs(self, pair_bandwidth: float, flows: int) -> bool:
        """Whether ``flows`` simultaneous transfers can each sustain
        ``pair_bandwidth`` without exceeding the ring's capacity."""
        return pair_bandwidth * flows <= self.aggregate_bandwidth
