"""SimMPI: a simulated MPI subset running on the DES engine.

Ranks are generator processes.  Each rank owns a mailbox; ``send``
charges the sender its serialization time (LogGP's ``o + s·G``) and
delivers the message — payload included, by reference — into the
destination mailbox after the path's one-way time.  ``recv`` matches on
``(source, tag)`` with wildcards in arrival order.  Collectives
(barrier, broadcast, reduce, allreduce) are binomial trees built from
the point-to-point layer, mirroring how CML implements them on the SPEs.

The *fabric* maps a pair of :class:`Location` endpoints to a transport
cost; :class:`UniformFabric` applies one transport everywhere, while
Sweep3D's runs use location-aware fabrics from :mod:`repro.comm.cml`
and :mod:`repro.network.latency`.

On an unhealthy machine the collectives are survivable: ``timeout=``
bounds every receive in the tree (a dead partner raises
:class:`DeliveryError` instead of stalling the subtree forever), and
``shrink=True`` completes the collective over the live membership from
a :class:`~repro.resilience.health.FabricHealth` ledger (see
:mod:`repro.comm.membership`).  Both default off; the default path is
bit-identical to the historical perfect-fabric communicator.
"""

from __future__ import annotations

from typing import Any, Callable, NamedTuple

from repro.comm.transport import PipelinePath, Transport
from repro.sim.engine import AnyOf, Event, Simulator
from repro.sim.trace import NULL_TRACER, Tracer

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "DeliveryError",
    "Location",
    "Message",
    "UniformFabric",
    "TransportMapFabric",
    "SimMPI",
    "Rank",
]

ANY_SOURCE = -1
ANY_TAG = -1


class DeliveryError(Exception):
    """A message could not be delivered.

    Raised by :meth:`Rank.send` once a :class:`~repro.resilience.policy.
    DeliveryPolicy` exhausts its retries, and used by fabrics (e.g.
    :class:`~repro.network.simfabric.ContendedFabric` with a health
    ledger) to fail a transfer whose endpoint is down.
    """


class Location(NamedTuple):
    """Where a rank physically lives in the machine."""

    node: int
    cell: int = 0
    spe: int = 0


class Message:
    """An in-flight or delivered message.

    Slotted: a full-machine sweep keeps hundreds of thousands of these
    alive per iteration, and the per-instance ``__dict__`` of a plain
    class would dominate their footprint.  A hand-written ``__init__``
    rather than a frozen dataclass — the send hot path constructs one
    per message, and the frozen form pays ``object.__setattr__`` per
    field.  Treat instances as immutable.
    """

    __slots__ = (
        "source", "dest", "tag", "size", "payload", "sent_at",
        "delivered_at",
    )

    def __init__(
        self,
        source: int,
        dest: int,
        tag: int,
        size: int,
        payload: Any = None,
        sent_at: float = 0.0,
        delivered_at: float = 0.0,
    ):
        self.source = source
        self.dest = dest
        self.tag = tag
        self.size = size
        self.payload = payload
        self.sent_at = sent_at
        self.delivered_at = delivered_at

    def __repr__(self) -> str:
        return (
            f"Message(source={self.source}, dest={self.dest}, "
            f"tag={self.tag}, size={self.size}, payload={self.payload!r}, "
            f"sent_at={self.sent_at}, delivered_at={self.delivered_at})"
        )


class UniformFabric:
    """One transport between every distinct pair; zero cost to self."""

    def __init__(self, transport: Transport | PipelinePath):
        self.transport = transport

    def one_way_time(self, src: Location, dst: Location, size: int) -> float:
        if src == dst:
            return 0.0
        return self.transport.one_way_time(size)

    def zero_byte_latency(self, src: Location, dst: Location) -> float:
        return self.one_way_time(src, dst, 0)


_MISSING = object()


class TransportMapFabric:
    """Location-aware fabric: a classifier picks the transport.

    ``classify(src, dst)`` returns a key into ``transports`` (or
    ``None`` for free self-messages).  Classification is memoized per
    location pair — the classifier is pure in the endpoints, and a
    Sweep3D run resolves the same few pairs millions of times.
    """

    #: cap on memoized location pairs (3060-node all-to-all patterns
    #: stay bounded; typical communicators use far fewer)
    _PAIR_CACHE_MAX = 1 << 17

    def __init__(
        self,
        transports: dict[str, Transport | PipelinePath],
        classify: Callable[[Location, Location], str | None],
    ):
        self.transports = transports
        self.classify = classify
        self._pair_cache: dict[tuple[Location, Location], Transport | PipelinePath | None] = {}

    def _transport_for(self, src: Location, dst: Location):
        cache = self._pair_cache
        key = (src, dst)
        transport = cache.get(key, _MISSING)
        if transport is _MISSING:
            kind = self.classify(src, dst)
            transport = None if kind is None else self.transports[kind]
            if len(cache) < self._PAIR_CACHE_MAX:
                cache[key] = transport
        return transport

    def one_way_time(self, src: Location, dst: Location, size: int) -> float:
        transport = self._transport_for(src, dst)
        if transport is None:
            return 0.0
        return transport.one_way_time(size)

    def zero_byte_latency(self, src: Location, dst: Location) -> float:
        return self.one_way_time(src, dst, 0)


class _Mailbox:
    """One rank's receive queue: delivered-but-unclaimed messages and
    posted-but-unmatched receives.  Slotted — a communicator
    preallocates one per rank, and at 3,060 ranks the dataclass
    ``__dict__`` these used to carry is measurable memory."""

    __slots__ = ("pending", "waiters")

    def __init__(self):
        self.pending: list[Message] = []
        self.waiters: list[tuple[int, int, Event]] = []

    # ``_matches`` is inlined in the two scans below: one call per
    # scanned entry is measurable at 96k deliveries per iteration.
    def deliver(self, msg: Message) -> None:
        waiters = self.waiters
        if waiters:
            msrc, mtag = msg.source, msg.tag
            for i, (src, tag, evt) in enumerate(waiters):
                if (src == ANY_SOURCE or msrc == src) and (
                    tag == ANY_TAG or mtag == tag
                ):
                    del waiters[i]
                    evt.succeed(msg)
                    return
        self.pending.append(msg)

    def take(self, sim: Simulator, source: int, tag: int) -> Event:
        evt = Event(sim)
        pending = self.pending
        if pending:
            for i, msg in enumerate(pending):
                if (source == ANY_SOURCE or msg.source == source) and (
                    tag == ANY_TAG or msg.tag == tag
                ):
                    del pending[i]
                    evt.succeed(msg)
                    return evt
        self.waiters.append((source, tag, evt))
        return evt

    def cancel(self, evt: Event) -> None:
        """Deregister a waiter created by :meth:`take`.  A receive that
        gives up (deadline expired) must remove its stale event, or the
        next matching message would be swallowed by it and lost."""
        for i, (_src, _tag, waiting) in enumerate(self.waiters):
            if waiting is evt:
                del self.waiters[i]
                return


class _Cohort:
    """Slotted, reusable batch-delivery record for one arrival instant.

    All messages whose delivery lands at the same simulated time share
    one timeout and one callback: the first send targeting an instant
    schedules the timeout and registers the cohort under that time in
    ``comm._cohorts``; later sends landing at the bit-identical instant
    just append their message.  Firing drains the whole cohort in one
    pass, in append order — which is exactly the (time, seq) dispatch
    order the per-message timeouts would have had, since sends enqueue
    messages in seq order.  After firing, the record (and its list) park
    on the communicator's free-list, so the steady-state send path
    allocates no callback objects and the event loop dispatches one
    event per *instant* instead of one per message.
    """

    __slots__ = ("comm", "time", "msgs")

    def __init__(self, comm: "SimMPI", time: float):
        self.comm = comm
        self.time = time
        self.msgs: list[Message] = []

    def __call__(self, _evt: Event) -> None:
        comm, msgs = self.comm, self.msgs
        # Unregister *before* delivering: a receiver woken at this same
        # instant may send again with zero latency, and that message
        # belongs to a fresh cohort scheduled behind this dispatch.
        del comm._cohorts[self.time]
        mailboxes = comm._mailboxes
        for msg in msgs:
            mailboxes[msg.dest].deliver(msg)
        n = len(msgs)
        if n > 1:
            obs = comm.obs
            if obs is not None:
                obs.count("mpi.batched_deliveries", n - 1)
        msgs.clear()
        free = comm._free_cohorts
        if len(free) < 64:
            free.append(self)


def _matches(msg: Message, source: int, tag: int) -> bool:
    return (source == ANY_SOURCE or msg.source == source) and (
        tag == ANY_TAG or msg.tag == tag
    )


class SimMPI:
    """A simulated communicator over ``len(locations)`` ranks."""

    #: tag space reserved for collectives
    _COLL_TAG = 1 << 20

    def __init__(
        self,
        sim: Simulator,
        fabric,
        locations: list[Location],
        tracer: Tracer = NULL_TRACER,
        delivery=None,
        obs=None,
    ):
        if not locations:
            raise ValueError("communicator needs at least one rank")
        self.sim = sim
        self.fabric = fabric
        self.locations = list(locations)
        self.tracer = tracer
        #: optional DeliveryPolicy (duck-typed: delivered()/retry_delay()/
        #: max_retries); None keeps the historical perfect-fabric path
        self.delivery = delivery
        #: optional :class:`repro.obs.recorder.ObsRecorder` receiving
        #: send/recv/collective spans and message/byte/retry counters;
        #: None (the default) keeps recording branches off the hot path
        if obs is not None:
            from repro.obs.recorder import active

            obs = active(obs)
        self.obs = obs
        #: optional :class:`repro.comm.membership.Membership` consulted
        #: by the ``shrink=True`` collectives; set via :meth:`attach_health`
        self.membership = None
        #: shared shrink-protocol state, one cell per collective
        #: sequence number (see :mod:`repro.comm.membership`)
        self._shrink_state: dict[int, Any] = {}
        self._mailboxes = [_Mailbox() for _ in locations]
        #: in-flight batch deliveries keyed by arrival instant, plus a
        #: free-list of reusable records (see :class:`_Cohort`)
        self._cohorts: dict[float, _Cohort] = {}
        self._free_cohorts: list[_Cohort] = []
        #: zero-byte latency memoized per (src_rank, dest_rank) — rank
        #: locations are fixed for the communicator's lifetime
        self._lat_cache: dict[tuple[int, int], float] = {}
        #: full one-way time memoized per (src_rank, dest_rank, size) —
        #: a sweep sends the same few payload sizes millions of times
        self._time_cache: dict[tuple[int, int, int], float] = {}
        self._contended = hasattr(fabric, "transfer")
        #: statistics: (messages, bytes) sent per rank
        self.sent_counts = [0] * len(locations)
        self.sent_bytes = [0] * len(locations)
        #: retransmissions per rank (stays all-zero without a policy)
        self.retry_counts = [0] * len(locations)
        # Per-rank collective-invocation counters.  MPI requires every
        # rank to call collectives in the same order, so these counters
        # agree across ranks and give each invocation a fresh tag block,
        # preventing messages of consecutive collectives from matching
        # each other.
        self._coll_seq = [0] * len(locations)

    @property
    def size(self) -> int:
        return len(self.locations)

    def attach_health(self, health):
        """Give the communicator a live-membership view over ``health``
        (a :class:`~repro.resilience.health.FabricHealth`), enabling the
        ``shrink=True`` collectives.  Returns the Membership."""
        from repro.comm.membership import Membership

        self.membership = Membership(self.locations, health)
        return self.membership

    def rank(self, index: int) -> "Rank":
        """Handle used by rank ``index``'s process."""
        if not 0 <= index < self.size:
            raise ValueError(f"rank {index} out of range 0..{self.size - 1}")
        return Rank(self, index)


class Rank:
    """Per-rank MPI API.  All methods are generators to be ``yield
    from``-ed inside a simulation process (or events to ``yield``)."""

    __slots__ = ("comm", "index", "sim")

    def __init__(self, comm: SimMPI, index: int):
        self.comm = comm
        self.index = index
        self.sim = comm.sim

    @property
    def location(self) -> Location:
        return self.comm.locations[self.index]

    @property
    def size(self) -> int:
        return self.comm.size

    # -- point to point ------------------------------------------------------
    def send(self, dest: int, size: int, tag: int = 0, payload: Any = None):
        """Blocking send (generator): the sender is busy for its
        serialization time; delivery happens one wire latency later."""
        if not 0 <= dest < self.comm.size:
            raise ValueError(f"destination rank {dest} out of range")
        if size < 0:
            raise ValueError("message size must be >= 0")
        comm, sim = self.comm, self.sim
        if comm.delivery is not None:
            # Resilient path lives out-of-line so the default (perfect
            # fabric) path stays allocation-identical to the historical
            # code — asserted by benchmarks/perf/perf_resilience.py.
            return (yield from self._send_resilient(dest, size, tag, payload))
        src_loc = comm.locations[self.index]
        dst_loc = comm.locations[dest]
        pair = (self.index, dest)
        latency = comm._lat_cache.get(pair)
        if latency is None:
            latency = comm.fabric.zero_byte_latency(src_loc, dst_loc)
            comm._lat_cache[pair] = latency
        tkey = (self.index, dest, size)
        total = comm._time_cache.get(tkey)
        if total is None:
            total = comm.fabric.one_way_time(src_loc, dst_loc, size)
            comm._time_cache[tkey] = total
        sent_at = sim.now
        comm.sent_counts[self.index] += 1
        comm.sent_bytes[self.index] += size
        tracer = comm.tracer
        if tracer is not NULL_TRACER:
            tracer.record(sim.now, "mpi.send", self.index,
                          {"dest": dest, "size": size, "tag": tag})
        if comm._contended:
            # Contended fabric: the bandwidth phase runs through shared
            # link resources; the sender is occupied until its payload
            # clears them (conservative store-and-forward semantics).
            yield comm.fabric.transfer(src_loc, dst_loc, size)
        else:
            serialize = max(0.0, total - latency)
            if serialize > 0:
                yield sim.timeout(serialize)
        when = sim.now + latency
        msg = Message(
            source=self.index, dest=dest, tag=tag, size=size,
            payload=payload, sent_at=sent_at,
            delivered_at=when,
        )
        cohorts = comm._cohorts
        rec = cohorts.get(when)
        if rec is None:
            free = comm._free_cohorts
            if free:
                rec = free.pop()
                rec.time = when
            else:
                rec = _Cohort(comm, when)
            cohorts[when] = rec
            sim.timeout(latency).callbacks.append(rec)
        rec.msgs.append(msg)
        obs = comm.obs
        if obs is not None:
            obs.span("mpi.send", self.index, sent_at, sim.now,
                     dest=dest, size=size, tag=tag)
            obs.count("mpi.messages", track=self.index)
            obs.count("mpi.bytes", size, track=self.index)
        return msg

    def _send_resilient(self, dest: int, size: int, tag: int, payload: Any):
        """Send under a DeliveryPolicy (generator): retransmit lost
        attempts with exponential backoff; raise :class:`DeliveryError`
        once retries are exhausted.

        With a *perfect* policy (no drops, no failed endpoints) this
        path produces the exact event timeline of the policy-free
        ``send`` — same trace records, same timeouts, no RNG draws —
        which ``tests/test_resilience.py`` pins.
        """
        comm, sim = self.comm, self.sim
        policy = comm.delivery
        src_loc = comm.locations[self.index]
        dst_loc = comm.locations[dest]
        pair = (self.index, dest)
        latency = comm._lat_cache.get(pair)
        if latency is None:
            latency = comm.fabric.zero_byte_latency(src_loc, dst_loc)
            comm._lat_cache[pair] = latency
        total = comm.fabric.one_way_time(src_loc, dst_loc, size)
        sent_at = sim.now
        comm.sent_counts[self.index] += 1
        comm.sent_bytes[self.index] += size
        comm.tracer.record(sim.now, "mpi.send", self.index,
                           {"dest": dest, "size": size, "tag": tag})
        attempt = 0
        while True:
            if comm._contended:
                try:
                    yield comm.fabric.transfer(src_loc, dst_loc, size)
                except DeliveryError:
                    # The fabric itself refused (endpoint NIC down):
                    # counts as a lost attempt, retried below.
                    delivered = False
                else:
                    delivered = policy.delivered(src_loc, dst_loc, size)
            else:
                serialize = max(0.0, total - latency)
                if serialize > 0:
                    yield sim.timeout(serialize)
                delivered = policy.delivered(src_loc, dst_loc, size)
            if delivered:
                when = sim.now + latency
                msg = Message(
                    source=self.index, dest=dest, tag=tag, size=size,
                    payload=payload, sent_at=sent_at,
                    delivered_at=when,
                )
                cohorts = comm._cohorts
                rec = cohorts.get(when)
                if rec is None:
                    free = comm._free_cohorts
                    if free:
                        rec = free.pop()
                        rec.time = when
                    else:
                        rec = _Cohort(comm, when)
                    cohorts[when] = rec
                    sim.timeout(latency).callbacks.append(rec)
                rec.msgs.append(msg)
                obs = comm.obs
                if obs is not None:
                    obs.span("mpi.send", self.index, sent_at, sim.now,
                             dest=dest, size=size, tag=tag, attempts=attempt + 1)
                    obs.count("mpi.messages", track=self.index)
                    obs.count("mpi.bytes", size, track=self.index)
                return msg
            if attempt >= policy.max_retries:
                raise DeliveryError(
                    f"rank {self.index} -> rank {dest}: {size}-byte message "
                    f"undeliverable after {attempt + 1} attempts"
                )
            comm.retry_counts[self.index] += 1
            comm.tracer.record(
                sim.now, "retry", self.index,
                {"dest": dest, "size": size, "tag": tag, "attempt": attempt + 1},
            )
            obs = comm.obs
            if obs is not None:
                obs.count("mpi.retries", track=self.index)
            yield sim.timeout(policy.retry_delay(attempt))
            attempt += 1

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ):
        """Blocking receive (generator); returns the :class:`Message`.

        With ``timeout`` the wait is bounded: if no matching message
        arrives within ``timeout`` simulated seconds the receive gives
        up and raises :class:`DeliveryError` — the detection primitive
        the survivable collectives are built on.  ``timeout=None`` (the
        default) is the historical unbounded receive.
        """
        obs = self.comm.obs
        t0 = self.sim.now if obs is not None else 0.0
        if timeout is not None:
            msg = yield from self._recv_deadline(source, tag, timeout)
        else:
            msg = yield self.irecv(source=source, tag=tag)
        tracer = self.comm.tracer
        if tracer is not NULL_TRACER:
            tracer.record(self.sim.now, "mpi.recv", self.index,
                          {"source": msg.source, "size": msg.size})
        if obs is not None:
            obs.span("mpi.recv", self.index, t0, self.sim.now,
                     source=msg.source, tag=tag, size=msg.size)
        return msg

    def _recv_deadline(self, source: int, tag: int, timeout: float):
        """Receive bounded by a deadline (generator): race the mailbox
        event against a timer; on expiry deregister the waiter (so a
        later matching message is not silently consumed by the stale
        event) and raise :class:`DeliveryError`."""
        if timeout <= 0:
            raise ValueError("recv timeout must be positive")
        sim = self.sim
        evt = self.irecv(source=source, tag=tag)
        if evt._triggered:  # already matched against pending messages
            msg = yield evt
            return msg
        timer = sim.timeout(timeout)
        fired = yield AnyOf(sim, (evt, timer))
        if evt in fired:
            return fired[evt]
        if evt._triggered:
            # The message landed in the very instant the deadline
            # expired, after the timer in heap order: take it rather
            # than lose a delivered message.
            return evt._value
        self.comm._mailboxes[self.index].cancel(evt)
        obs = self.comm.obs
        if obs is not None:
            obs.count("mpi.recv_timeouts", track=self.index)
        who = "any source" if source == ANY_SOURCE else f"rank {source}"
        raise DeliveryError(
            f"rank {self.index}: no message from {who} (tag {tag}) "
            f"within {timeout:g} s"
        )

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Non-blocking receive: an event firing with the message."""
        return self.comm._mailboxes[self.index].take(self.sim, source, tag)

    # -- collectives (binomial trees over point-to-point) ---------------------
    #
    # All four core collectives take two survivability knobs:
    #
    # * ``timeout`` bounds every receive in the tree — a dead partner
    #   surfaces as :class:`DeliveryError` out of the collective (abort
    #   contract) instead of parking its whole subtree forever;
    # * ``shrink=True`` (requires ``comm.attach_health(...)`` and a
    #   ``timeout``) instead rebuilds the tree over the live membership
    #   and completes with a survivor-only result — the shrink-and-
    #   continue protocol of :mod:`repro.comm.membership`.
    #
    # The defaults keep the historical, perfect-fabric behavior.
    def _next_coll_seq(self) -> int:
        """This rank's next collective sequence number (MPI ordering
        makes these agree across ranks)."""
        seq = self.comm._coll_seq[self.index]
        self.comm._coll_seq[self.index] += 1
        return seq

    def _next_coll_tag(self) -> int:
        """Fresh 64-tag block for one collective invocation."""
        return SimMPI._COLL_TAG + self._next_coll_seq() * 64

    def _collective_span(self, op: str, gen):
        """Delegate to a collective's body (generator), recording an
        ``mpi.collective`` span over it when a recorder is attached.
        The span closes even when the body aborts (DeliveryError), so
        failed collectives still appear in the timeline."""
        obs = self.comm.obs
        if obs is None:
            result = yield from gen
            return result
        t0 = self.sim.now
        try:
            result = yield from gen
        finally:
            obs.span("mpi.collective", self.index, t0, self.sim.now, op=op)
        return result

    def barrier(self, timeout: float | None = None, shrink: bool = False):
        """Dissemination barrier (generator)."""
        return (
            yield from self._collective_span(
                "barrier", self._barrier_impl(timeout=timeout, shrink=shrink)
            )
        )

    def _barrier_impl(self, timeout: float | None = None, shrink: bool = False):
        if shrink:
            from repro.comm.membership import shrink_barrier

            return (yield from shrink_barrier(self, timeout=timeout))
        tag = self._next_coll_tag()
        n = self.comm.size
        if n == 1:
            return
        round_no = 0
        distance = 1
        while distance < n:
            dest = (self.index + distance) % n
            src = (self.index - distance) % n
            yield from self.send(dest, 0, tag=tag + round_no)
            yield from self.recv(source=src, tag=tag + round_no, timeout=timeout)
            distance *= 2
            round_no += 1

    def bcast(
        self,
        value: Any,
        root: int = 0,
        size: int = 8,
        tag: int | None = None,
        timeout: float | None = None,
        shrink: bool = False,
    ):
        """Binomial-tree broadcast (generator); returns the value."""
        return (
            yield from self._collective_span(
                "bcast",
                self._bcast_impl(
                    value, root=root, size=size, tag=tag,
                    timeout=timeout, shrink=shrink,
                ),
            )
        )

    def _bcast_impl(
        self,
        value: Any,
        root: int = 0,
        size: int = 8,
        tag: int | None = None,
        timeout: float | None = None,
        shrink: bool = False,
    ):
        if shrink:
            from repro.comm.membership import shrink_bcast

            return (
                yield from shrink_bcast(
                    self, value, root=root, size=size, timeout=timeout
                )
            )
        tag = tag if tag is not None else self._next_coll_tag()
        n = self.comm.size
        if n == 1:
            return value
        vrank = (self.index - root) % n
        mask = 1
        while mask < n:
            if vrank & mask:
                src = ((vrank ^ mask) + root) % n
                msg = yield from self.recv(source=src, tag=tag, timeout=timeout)
                value = msg.payload
                break
            mask <<= 1
        # mask is now the receiver's lowest set bit (or >= n at the root);
        # fan out to children below that bit.
        mask >>= 1
        while mask > 0:
            if vrank + mask < n:
                dest = (vrank + mask + root) % n
                yield from self.send(dest, size, tag=tag, payload=value)
            mask >>= 1
        return value

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        root: int = 0,
        size: int = 8,
        tag: int | None = None,
        timeout: float | None = None,
        shrink: bool = False,
    ):
        """Binomial-tree reduction (generator); root returns the result,
        other ranks return ``None``."""
        return (
            yield from self._collective_span(
                "reduce",
                self._reduce_impl(
                    value, op, root=root, size=size, tag=tag,
                    timeout=timeout, shrink=shrink,
                ),
            )
        )

    def _reduce_impl(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        root: int = 0,
        size: int = 8,
        tag: int | None = None,
        timeout: float | None = None,
        shrink: bool = False,
    ):
        if shrink:
            from repro.comm.membership import shrink_reduce

            return (
                yield from shrink_reduce(
                    self, value, op, root=root, size=size, timeout=timeout
                )
            )
        tag = tag if tag is not None else self._next_coll_tag()
        n = self.comm.size
        vrank = (self.index - root) % n
        acc = value
        mask = 1
        while mask < n:
            if vrank & mask:
                dest = ((vrank ^ mask) + root) % n
                yield from self.send(dest, size, tag=tag, payload=acc)
                return None
            partner = vrank | mask
            if partner < n:
                msg = yield from self.recv(
                    source=(partner + root) % n, tag=tag, timeout=timeout
                )
                acc = op(acc, msg.payload)
            mask <<= 1
        return acc

    def allreduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        size: int = 8,
        timeout: float | None = None,
        shrink: bool = False,
    ):
        """Reduce-to-root then broadcast (generator); all ranks return
        the reduced value."""
        return (
            yield from self._collective_span(
                "allreduce",
                self._allreduce_impl(
                    value, op, size=size, timeout=timeout, shrink=shrink
                ),
            )
        )

    def _allreduce_impl(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        size: int = 8,
        timeout: float | None = None,
        shrink: bool = False,
    ):
        if shrink:
            from repro.comm.membership import shrink_allreduce

            return (
                yield from shrink_allreduce(
                    self, value, op, size=size, timeout=timeout
                )
            )
        # The inner phases delegate to the *impl* bodies so a user-level
        # allreduce records exactly one collective span.
        reduced = yield from self._reduce_impl(value, op, root=0, size=size,
                                               timeout=timeout)
        result = yield from self._bcast_impl(reduced, root=0, size=size,
                                             timeout=timeout)
        return result

    def gather(self, value: Any, root: int = 0, size: int = 8):
        """Gather every rank's value at ``root`` (generator); root gets
        the list ordered by rank, others get ``None``."""
        return (
            yield from self._collective_span(
                "gather", self._gather_impl(value, root=root, size=size)
            )
        )

    def _gather_impl(self, value: Any, root: int = 0, size: int = 8):
        tag = self._next_coll_tag()
        n = self.comm.size
        if self.index == root:
            values: list[Any] = [None] * n
            values[self.index] = value
            for _ in range(n - 1):
                msg = yield from self.recv(source=ANY_SOURCE, tag=tag)
                values[msg.source] = msg.payload
            return values
        yield from self.send(root, size, tag=tag, payload=value)
        return None

    def scatter(self, values: list[Any] | None, root: int = 0, size: int = 8):
        """Scatter ``values`` (length = communicator size, significant
        at root only); every rank returns its element."""
        return (
            yield from self._collective_span(
                "scatter", self._scatter_impl(values, root=root, size=size)
            )
        )

    def _scatter_impl(self, values: list[Any] | None, root: int = 0, size: int = 8):
        tag = self._next_coll_tag()
        n = self.comm.size
        if self.index == root:
            if values is None or len(values) != n:
                raise ValueError("root must supply one value per rank")
            for dest in range(n):
                if dest != root:
                    yield from self.send(dest, size, tag=tag, payload=values[dest])
            return values[root]
        msg = yield from self.recv(source=root, tag=tag)
        return msg.payload

    def allgather(self, value: Any, size: int = 8):
        """Bruck-style allgather (generator): every rank returns the
        list of all ranks' values, ordered by rank."""
        return (
            yield from self._collective_span(
                "allgather", self._allgather_impl(value, size=size)
            )
        )

    def _allgather_impl(self, value: Any, size: int = 8):
        tag = self._next_coll_tag()
        n = self.comm.size
        values: dict[int, Any] = {self.index: value}
        distance = 1
        round_no = 0
        while distance < n:
            dest = (self.index + distance) % n
            src = (self.index - distance) % n
            chunk = dict(values)
            yield from self.send(
                dest, size * len(chunk), tag=tag + round_no, payload=chunk
            )
            msg = yield from self.recv(source=src, tag=tag + round_no)
            values.update(msg.payload)
            distance *= 2
            round_no += 1
        return [values[r] for r in range(n)]

    def alltoall(self, values: list[Any], size: int = 8):
        """Personalized all-to-all (generator): rank i's ``values[j]``
        lands at rank j; returns the list received, ordered by source."""
        return (
            yield from self._collective_span(
                "alltoall", self._alltoall_impl(values, size=size)
            )
        )

    def _alltoall_impl(self, values: list[Any], size: int = 8):
        tag = self._next_coll_tag()
        n = self.comm.size
        if len(values) != n:
            raise ValueError("alltoall needs one value per rank")
        received: list[Any] = [None] * n
        received[self.index] = values[self.index]
        # Ring exchange: round k sends to (i+k) and receives from (i-k);
        # one tag suffices since each round's source is distinct.
        for k in range(1, n):
            dest = (self.index + k) % n
            src = (self.index - k) % n
            yield from self.send(dest, size, tag=tag, payload=values[dest])
            msg = yield from self.recv(source=src, tag=tag)
            received[src] = msg.payload
        return received
