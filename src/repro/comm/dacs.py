"""DaCS-over-PCIe transport models (Figs 6, 7, 9; §IV-C, §VI-A).

Two parameterizations of the same PCIe x8 link:

* :data:`DACS_MEASURED` — the early-software DaCS stack the paper
  measures: 3.19 µs one-way latency, a slow bounce-buffered eager path
  below ~16 KB (which is why Fig 9 shows DaCS under half of InfiniBand's
  bandwidth for small messages), and ~1.0 GB/s sustained for large
  transfers (Fig 7's 2,017 MB/s two-times-unidirectional intranode).
* :data:`PCIE_RAW` — the measured capability of the raw link (§VI-A):
  2 µs latency and 1.6 GB/s, the parameters behind the paper's
  'Cell (best)' Sweep3D projection.
"""

from __future__ import annotations

from repro.comm.transport import Transport
from repro.units import GB_S, KIB, MB_S, US

__all__ = ["DACS_MEASURED", "PCIE_RAW"]

#: The pre-production DaCS stack.  The eager path's 350 MB/s reflects the
#: driver's copy-in/copy-out bounce buffering; the rendezvous path adds a
#: 5 µs handshake and sustains 1.017 GB/s so a 1 MB transfer achieves the
#: ~1,008 MB/s unidirectional rate behind Fig 7's intranode curve.  The
#: 0.64 bidirectional factor is Fig 7's measured 1,295/2,017 ratio.
DACS_MEASURED = Transport(
    name="DaCS over PCIe (measured)",
    latency=3.19 * US,
    bandwidth=1.017 * GB_S,
    eager_threshold=16 * KIB,
    eager_bandwidth=350 * MB_S,
    rendezvous_latency=5.0 * US,
    bidirectional_factor=0.64,
)

#: What the PCIe x8 link itself can do (measured with a small
#: microbenchmark, §VI-A): the software ceiling DaCS should approach as
#: it matures.
PCIE_RAW = Transport(
    name="raw PCIe x8",
    latency=2.0 * US,
    bandwidth=1.6 * GB_S,
    bidirectional_factor=0.64,
)
