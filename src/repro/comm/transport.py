"""Piecewise LogGP-style point-to-point transport model.

A :class:`Transport` charges a message of *s* bytes

* below the eager threshold:  ``T(s) = latency + s / eager_bandwidth``
* above it (rendezvous):      ``T(s) = latency + rendezvous_latency
  + s / bandwidth``

which produces the classic saturating bandwidth curve with a protocol
knee.  :class:`PipelinePath` composes transports store-and-forward (the
Cell -> Opteron -> Opteron -> Cell relay of §IV-C) with optional copy
costs at relay points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

__all__ = ["Transport", "PipelinePath", "set_transport_observer"]

#: cap on each instance's memoized size -> time curve points; real
#: workloads use a handful of message sizes, so this is generous
_TIME_CACHE_MAX = 4096

#: module-level observability hook: when a recorder is installed via
#: :func:`set_transport_observer`, every cost-model evaluation counts a
#: ``transport.cache_hit`` / ``transport.cache_miss`` on the transport's
#: name track.  Module-level (not per-instance) because transports are
#: frozen dataclasses shared across fabrics; None keeps the hot path to
#: one global load and an ``is None`` test.
_OBSERVER = None


def set_transport_observer(obs) -> None:
    """Install (or with ``None`` remove) the module's cost-model
    observer.  ``obs`` is normalized like every ``obs=`` argument: a
    disabled recorder counts as ``None``."""
    global _OBSERVER
    if obs is not None:
        from repro.obs.recorder import active

        obs = active(obs)
    _OBSERVER = obs


@dataclass(frozen=True)
class Transport:
    """One point-to-point communication mechanism."""

    name: str
    #: zero-byte one-way latency, seconds
    latency: float
    #: large-message (rendezvous) bandwidth, B/s
    bandwidth: float
    #: messages at or below this size use the eager path, bytes
    eager_threshold: int = 0
    #: effective small-message bandwidth (copy-in/copy-out path), B/s;
    #: defaults to the large-message bandwidth (no eager penalty)
    eager_bandwidth: float | None = None
    #: extra handshake latency on the rendezvous path, seconds
    rendezvous_latency: float = 0.0
    #: per-direction fraction of unidirectional rate retained when both
    #: directions are saturated (Fig 7's 0.64 / 0.70 factors)
    bidirectional_factor: float = 1.0

    def __post_init__(self):
        if self.latency < 0 or self.rendezvous_latency < 0:
            raise ValueError(f"{self.name}: latencies must be >= 0")
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.eager_bandwidth is not None and self.eager_bandwidth <= 0:
            raise ValueError(f"{self.name}: eager bandwidth must be positive")
        if not 0 < self.bidirectional_factor <= 1:
            raise ValueError(f"{self.name}: bidirectional factor in (0, 1]")
        # Per-instance size -> time cache (the instance is frozen, so the
        # curve never changes).  SimMPI sends the same handful of message
        # sizes millions of times; this turns the piecewise evaluation
        # into one dict hit.  Excluded from dataclass eq/hash/repr.
        object.__setattr__(self, "_time_cache", {})

    # -- core cost model ----------------------------------------------------
    def one_way_time(self, size_bytes: int) -> float:
        """One-way delivery time of a ``size_bytes`` message, seconds."""
        cache = self._time_cache
        cached = cache.get(size_bytes)
        if cached is not None:
            if _OBSERVER is not None:
                _OBSERVER.count("transport.cache_hit", track=self.name)
            return cached
        if _OBSERVER is not None:
            _OBSERVER.count("transport.cache_miss", track=self.name)
        if size_bytes < 0:
            raise ValueError("message size must be >= 0")
        eager_bw = self.eager_bandwidth or self.bandwidth
        if size_bytes <= self.eager_threshold:
            result = self.latency + size_bytes / eager_bw
        else:
            result = self.latency + self.rendezvous_latency + size_bytes / self.bandwidth
            if self.eager_threshold > 0:
                # Monotonicity across the protocol knee: a message one byte
                # over the threshold cannot be cheaper than one at it.
                at_knee = self.latency + self.eager_threshold / eager_bw
                result = max(result, at_knee)
        if len(cache) < _TIME_CACHE_MAX:
            cache[size_bytes] = result
        return result

    def effective_bandwidth(self, size_bytes: int) -> float:
        """Achieved unidirectional B/s at one message size."""
        if size_bytes <= 0:
            return 0.0
        return size_bytes / self.one_way_time(size_bytes)

    def bidirectional_sum_bandwidth(self, size_bytes: int) -> float:
        """Sum of both directions' achieved B/s under full-duplex load
        (the quantity Fig 7 plots as 'bidirectional')."""
        return 2 * self.effective_bandwidth(size_bytes) * self.bidirectional_factor

    def bandwidth_curve(self, sizes: Sequence[int]) -> list[tuple[int, float]]:
        """(size, achieved B/s) pairs for a sweep of message sizes."""
        return [(s, self.effective_bandwidth(s)) for s in sizes]

    def serialization_time(self, size_bytes: int) -> float:
        """Sender-side occupancy: total time minus the wire latency."""
        return self.one_way_time(size_bytes) - self.latency

    def derated(self, factor: float, name: str | None = None) -> "Transport":
        """A copy of this transport at ``factor`` of its bandwidth.

        Models a degraded path — a fabric rerouted around failed links
        delivers the same latencies over fewer parallel lanes, so only
        the bandwidth terms scale.  ``factor`` is the retained fraction,
        in (0, 1]; ``derated(1.0)`` is a plain copy.
        """
        if not 0 < factor <= 1:
            raise ValueError("derate factor must be in (0, 1]")
        return replace(
            self,
            name=name if name is not None else f"{self.name}@{factor:g}",
            bandwidth=self.bandwidth * factor,
            eager_bandwidth=(
                None if self.eager_bandwidth is None
                else self.eager_bandwidth * factor
            ),
        )


@dataclass(frozen=True)
class PipelinePath:
    """A store-and-forward chain of transports with per-relay copies.

    ``legs`` are crossed in sequence; between consecutive legs the relay
    host performs a memory copy at ``relay_copy_bandwidth`` (0 disables
    the copy term).  The zero-byte latency of the path is the sum of leg
    latencies — exactly the Fig 6 decomposition.
    """

    name: str
    legs: tuple[Transport, ...]
    relay_copy_bandwidth: float = 0.0
    bidirectional_factor: float = 1.0

    def __post_init__(self):
        if not self.legs:
            raise ValueError(f"path {self.name!r} needs at least one leg")
        if self.relay_copy_bandwidth < 0:
            raise ValueError(f"path {self.name!r}: copy bandwidth must be >= 0")
        if not 0 < self.bidirectional_factor <= 1:
            raise ValueError(f"path {self.name!r}: bidirectional factor in (0, 1]")
        # Same per-instance memoization as Transport.one_way_time.
        object.__setattr__(self, "_time_cache", {})

    @property
    def zero_byte_latency(self) -> float:
        """Sum of the legs' zero-byte latencies (Fig 6's 8.78 µs)."""
        return sum(leg.latency for leg in self.legs)

    def latency_breakdown(self) -> list[tuple[str, float]]:
        """Per-leg zero-byte latency, in path order (Fig 6)."""
        return [(leg.name, leg.latency) for leg in self.legs]

    def one_way_time(self, size_bytes: int) -> float:
        """Store-and-forward delivery time for ``size_bytes``."""
        cache = self._time_cache
        cached = cache.get(size_bytes)
        if cached is not None:
            if _OBSERVER is not None:
                _OBSERVER.count("transport.cache_hit", track=self.name)
            return cached
        if _OBSERVER is not None:
            _OBSERVER.count("transport.cache_miss", track=self.name)
        total = sum(leg.one_way_time(size_bytes) for leg in self.legs)
        if self.relay_copy_bandwidth > 0 and len(self.legs) > 1:
            relays = len(self.legs) - 1
            total += relays * size_bytes / self.relay_copy_bandwidth
        if len(cache) < _TIME_CACHE_MAX:
            cache[size_bytes] = total
        return total

    def effective_bandwidth(self, size_bytes: int) -> float:
        """Achieved unidirectional B/s over the whole path."""
        if size_bytes <= 0:
            return 0.0
        return size_bytes / self.one_way_time(size_bytes)

    def bidirectional_sum_bandwidth(self, size_bytes: int) -> float:
        """Both directions' summed B/s under full-duplex load."""
        return 2 * self.effective_bandwidth(size_bytes) * self.bidirectional_factor

    def bandwidth_curve(self, sizes: Sequence[int]) -> list[tuple[int, float]]:
        """(size, achieved B/s) pairs for a sweep of message sizes."""
        return [(s, self.effective_bandwidth(s)) for s in sizes]

    def serialization_time(self, size_bytes: int) -> float:
        """Sender-side occupancy (total minus wire latency)."""
        return self.one_way_time(size_bytes) - self.zero_byte_latency
