"""CML's remote procedure call mechanism (paper §V-C).

"CML does provide a convenient remote procedure call (RPC) mechanism
that enables a SPE to invoke a function on the PPE, and the PPE to
invoke a function on the Opteron, and receive the result."  Sweep3D
uses it for ``malloc()`` on the PPE (main-memory buffers) and for
reading the input file via the Opteron (the parallel filesystem is not
exposed to the PPEs).

The DES implementation runs a server process per tier; a call costs a
request message up the hierarchy, the handler's execution time, and the
response message back down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.comm.transport import PipelinePath, Transport
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Store

__all__ = ["RpcError", "RpcTarget", "RpcEndpoint"]


class RpcError(RuntimeError):
    """Raised at the caller when the remote handler fails or the
    requested function does not exist."""


@dataclass(frozen=True)
class RpcTarget:
    """One callable tier (a PPE or an Opteron) reachable over a link."""

    name: str
    #: the link between caller and this tier
    link: Transport | PipelinePath
    #: registered functions: name -> (handler, execution_time_fn)
    handlers: dict[str, tuple[Callable[..., Any], Callable[..., float]]]

    def register(
        self,
        func_name: str,
        handler: Callable[..., Any],
        execution_time: float | Callable[..., float] = 0.0,
    ) -> None:
        """Expose ``handler`` as ``func_name``; ``execution_time`` may
        be a constant or a function of the call arguments."""
        if callable(execution_time):
            time_fn = execution_time
        else:
            fixed = float(execution_time)
            if fixed < 0:
                raise ValueError("execution_time must be >= 0")
            time_fn = lambda *a, **k: fixed  # noqa: E731
        self.handlers[func_name] = (handler, time_fn)


class RpcEndpoint:
    """Caller-side RPC runtime on the DES.

    One server process per target drains a request queue, executes
    handlers (charging their execution time), and responds.  Calls from
    multiple client processes serialize at the server, as they did on
    the single PPE thread.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._targets: dict[str, RpcTarget] = {}
        self._queues: dict[str, Store] = {}
        #: completed call count per (target, function)
        self.call_counts: dict[tuple[str, str], int] = {}

    def add_target(self, name: str, link: Transport | PipelinePath) -> RpcTarget:
        """Create a tier reachable over ``link`` and start its server."""
        if name in self._targets:
            raise ValueError(f"target {name!r} already exists")
        target = RpcTarget(name=name, link=link, handlers={})
        self._targets[name] = target
        queue = Store(self.sim)
        self._queues[name] = queue
        self.sim.process(self._server(target, queue), name=f"rpc-{name}")
        return target

    def target(self, name: str) -> RpcTarget:
        return self._targets[name]

    def _server(self, target: RpcTarget, queue: Store):
        while True:
            request = yield queue.get()
            func_name, args, kwargs, request_bytes, reply = request
            entry = target.handlers.get(func_name)
            if entry is None:
                reply.fail(RpcError(
                    f"no function {func_name!r} on target {target.name!r}"
                ))
                continue
            handler, time_fn = entry
            exec_time = time_fn(*args, **kwargs)
            if exec_time > 0:
                yield self.sim.timeout(exec_time)
            try:
                result = handler(*args, **kwargs)
            except Exception as exc:  # handler bug surfaces at the caller
                reply.fail(RpcError(str(exc)))
                continue
            self.call_counts[(target.name, func_name)] = (
                self.call_counts.get((target.name, func_name), 0) + 1
            )
            # Response crosses the link back to the caller.
            response_bytes = _sizeof(result)
            reply.succeed((result, target.link.one_way_time(response_bytes)))

    def call(
        self,
        target_name: str,
        func_name: str,
        *args: Any,
        request_bytes: int = 64,
        **kwargs: Any,
    ):
        """Invoke a remote function (generator); returns its result.

        Charges: request crossing, queueing + execution at the server,
        response crossing.
        """
        if target_name not in self._targets:
            raise KeyError(f"unknown RPC target {target_name!r}")
        target = self._targets[target_name]
        # Request travels up the hierarchy.
        yield self.sim.timeout(target.link.one_way_time(request_bytes))
        reply = Event(self.sim)
        self._queues[target_name].put(
            (func_name, args, kwargs, request_bytes, reply)
        )
        result, response_time = yield reply
        if response_time > 0:
            yield self.sim.timeout(response_time)
        return result


def _sizeof(value: Any) -> int:
    """Crude wire size of a result (bytes)."""
    if value is None:
        return 8
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode())
    try:
        import numpy as np

        if isinstance(value, np.ndarray):
            return int(value.nbytes)
    except ImportError:  # pragma: no cover
        pass
    return 64
