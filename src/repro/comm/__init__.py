"""Communication-stack models: DaCS, MPI-over-InfiniBand, the EIB, and
the Cell Messaging Layer, plus a DES-backed simulated MPI.

Transports are *mechanisms* (latency + piecewise bandwidth with protocol
knees), calibrated so the published curve points of Figs 6-9 come out of
the model; the message-passing layers compose them along the paper's
Cell -> Opteron -> InfiniBand -> Opteron -> Cell path.
"""

from repro.comm.transport import PipelinePath, Transport
from repro.comm.dacs import DACS_MEASURED, PCIE_RAW
from repro.comm.ib import (
    IB_DEFAULT,
    IB_PINNED,
    ib_between_cores,
    IB_NEAR_PAIR,
    IB_FAR_PAIR,
)
from repro.comm.eib import CML_EIB_PAIR, EIBRing
from repro.comm.cml import CellMessagePath, INTERNODE_CELL_PATH, INTRANODE_CELL_PATH
from repro.comm.mpi import Location, SimMPI, UniformFabric, ANY_SOURCE, ANY_TAG

__all__ = [
    "Transport",
    "PipelinePath",
    "DACS_MEASURED",
    "PCIE_RAW",
    "IB_DEFAULT",
    "IB_PINNED",
    "IB_NEAR_PAIR",
    "IB_FAR_PAIR",
    "ib_between_cores",
    "CML_EIB_PAIR",
    "EIBRing",
    "CellMessagePath",
    "INTERNODE_CELL_PATH",
    "INTRANODE_CELL_PATH",
    "Location",
    "SimMPI",
    "UniformFabric",
    "ANY_SOURCE",
    "ANY_TAG",
]
