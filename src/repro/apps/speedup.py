"""PowerXCell 8i speedups derived from the pipeline tables (§IV-A)."""

from __future__ import annotations

from repro.apps.workloads import APP_WORKLOADS, AppWorkload
from repro.hardware.cell import CELL_BE, POWERXCELL_8I, CellVariant
from repro.hardware.spe_pipeline import SPEPipeline, build_interleaved_stream

__all__ = ["workload_cycles", "pxc8i_speedup", "all_speedups"]


def workload_cycles(
    workload: AppWorkload, variant: CellVariant, repeats: int = 64
) -> float:
    """Cycles per work unit of ``workload`` on one SPE of ``variant``."""
    pipe = SPEPipeline(variant.pipeline)
    stream = build_interleaved_stream(workload.mix, repeats=repeats)
    return pipe.run_cycles(stream) / repeats


def pxc8i_speedup(workload: AppWorkload) -> float:
    """Cell BE -> PowerXCell 8i speedup of the workload's hot loop."""
    return workload_cycles(workload, CELL_BE) / workload_cycles(
        workload, POWERXCELL_8I
    )


def all_speedups() -> dict[str, float]:
    """§IV-A's table: speedup per application, keyed by name."""
    return {name: pxc8i_speedup(app) for name, app in APP_WORKLOADS.items()}
