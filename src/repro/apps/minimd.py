"""A miniature molecular-dynamics application (the SPaSM surrogate).

SPaSM is the paper's flagship *accelerator-model* application (§III;
the 350-450 Tflop/s Gordon Bell run of [8]).  This module provides a
real — if small — MD code in its image: Lennard-Jones particles on an
FCC lattice, minimum-image periodic boundaries, velocity-Verlet
integration.  The numerics are genuine (energy and momentum
conservation are tested); the *timing* of a timestep on Roadrunner
comes from composing the force kernel's work with the
:class:`repro.apps.offload.OffloadModel`, exactly the hotspot-offload
structure SPaSM used.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.offload import OffloadModel
from repro.comm.dacs import DACS_MEASURED
from repro.comm.transport import Transport

__all__ = ["MiniMD", "MDTimestepModel"]

#: Lennard-Jones parameters in reduced units.
_EPSILON = 1.0
_SIGMA = 1.0


@dataclass
class MiniMD:
    """An N-particle Lennard-Jones system in a periodic cubic box.

    ``cells_per_side`` FCC unit cells per axis give
    ``4 * cells_per_side**3`` particles at the chosen reduced density.
    """

    cells_per_side: int = 3
    density: float = 0.8442
    cutoff: float = 2.5
    dt: float = 0.004
    seed: int = 2008
    temperature: float = 0.2

    positions: np.ndarray = field(init=False, repr=False)
    velocities: np.ndarray = field(init=False, repr=False)
    box: float = field(init=False)

    def __post_init__(self):
        if self.cells_per_side < 1:
            raise ValueError("cells_per_side must be >= 1")
        if self.density <= 0 or self.cutoff <= 0 or self.dt <= 0:
            raise ValueError("density, cutoff, and dt must be positive")
        n_cells = self.cells_per_side
        # FCC basis in a unit cell.
        basis = np.array(
            [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
        )
        n_atoms = 4 * n_cells**3
        self.box = (n_atoms / self.density) ** (1.0 / 3.0)
        if self.cutoff > self.box / 2:
            raise ValueError(
                f"cutoff {self.cutoff} exceeds half the box ({self.box / 2:.3f}); "
                "minimum-image convention would be violated — use more cells "
                "or a shorter cutoff"
            )
        a = self.box / n_cells
        cells = np.stack(
            np.meshgrid(range(n_cells), range(n_cells), range(n_cells),
                        indexing="ij"),
            axis=-1,
        ).reshape(-1, 3)
        self.positions = (
            (cells[:, None, :] + basis[None, :, :]).reshape(-1, 3) * a
        )
        rng = np.random.default_rng(self.seed)
        v = rng.normal(scale=np.sqrt(self.temperature), size=(n_atoms, 3))
        v -= v.mean(axis=0)  # zero net momentum
        self.velocities = v

    @property
    def n_atoms(self) -> int:
        return len(self.positions)

    # -- physics -----------------------------------------------------------
    def _pair_terms(self):
        """Minimum-image displacements, squared distances, cutoff mask."""
        delta = self.positions[:, None, :] - self.positions[None, :, :]
        delta -= self.box * np.rint(delta / self.box)
        r2 = (delta**2).sum(axis=-1)
        np.fill_diagonal(r2, np.inf)
        mask = r2 < self.cutoff**2
        return delta, r2, mask

    def forces(self) -> tuple[np.ndarray, float]:
        """LJ forces and potential energy (O(N^2) with cutoff)."""
        delta, r2, mask = self._pair_terms()
        inv_r2 = np.where(mask, 1.0 / r2, 0.0)
        sr6 = (_SIGMA**2 * inv_r2) ** 3
        sr12 = sr6**2
        # dU/dr / r  (negated): magnitude of the pair force over r.
        f_over_r = 24.0 * _EPSILON * (2.0 * sr12 - sr6) * inv_r2
        forces = (f_over_r[:, :, None] * delta).sum(axis=1)
        potential = 2.0 * _EPSILON * (sr12 - sr6)[mask].sum()  # x4/2 pairs
        return forces, float(potential)

    def kinetic_energy(self) -> float:
        return float(0.5 * (self.velocities**2).sum())

    def total_energy(self) -> float:
        _f, potential = self.forces()
        return self.kinetic_energy() + potential

    def momentum(self) -> np.ndarray:
        return self.velocities.sum(axis=0)

    def step(self, n: int = 1) -> None:
        """Advance ``n`` velocity-Verlet timesteps."""
        if n < 1:
            raise ValueError("n must be >= 1")
        f, _ = self.forces()
        for _ in range(n):
            self.velocities += 0.5 * self.dt * f
            self.positions = (self.positions + self.dt * self.velocities) % self.box
            f, _ = self.forces()
            self.velocities += 0.5 * self.dt * f

    # -- workload accounting --------------------------------------------------
    def interacting_pairs(self) -> int:
        """Pairs inside the cutoff (each counted once)."""
        _delta, _r2, mask = self._pair_terms()
        return int(mask.sum() // 2)

    def force_flops(self, flops_per_pair: int = 50) -> float:
        """Floating-point work of one force evaluation."""
        return self.interacting_pairs() * flops_per_pair


@dataclass(frozen=True)
class MDTimestepModel:
    """Roadrunner timing of one MiniMD timestep via hotspot offload.

    The force kernel (the hotspot) offloads to the paired Cell at the
    pipeline-derived SPaSM speedup; integration and neighbour upkeep
    stay on the Opteron.  Per step, positions go down and forces come
    back over the PCIe link.
    """

    #: sustained Opteron rate on the force kernel, flop/s
    host_rate: float = 0.9e9
    #: fraction of a step that is force computation
    hotspot_fraction: float = 0.95
    link: Transport = DACS_MEASURED

    def offload_model(self, system: MiniMD) -> OffloadModel:
        from repro.apps.speedup import pxc8i_speedup
        from repro.apps.workloads import APP_WORKLOADS
        from repro.hardware.cell import CELL_BE, POWERXCELL_8I
        from repro.apps.speedup import workload_cycles

        force_time = system.force_flops() / self.host_rate
        cpu_time = force_time / self.hotspot_fraction
        # Kernel speedup over the host: 8 SPEs at the SPaSM mix's
        # cycles-per-pair vs the host's rate, folded into one factor.
        spasm = APP_WORKLOADS["SPaSM"]
        spe_rate = (
            50 / (workload_cycles(spasm, POWERXCELL_8I) / 3.2e9)
        ) * 8  # flops/s across the paired Cell's SPEs
        kernel_speedup = spe_rate / self.host_rate
        bytes_each_way = system.n_atoms * 3 * 8
        return OffloadModel(
            cpu_time=cpu_time,
            hotspot_fraction=self.hotspot_fraction,
            kernel_speedup=kernel_speedup,
            bytes_down=bytes_each_way,
            bytes_up=bytes_each_way,
            link=self.link,
        )

    def timestep_time(self, system: MiniMD, accelerated: bool = True) -> float:
        """Modeled seconds per MD step on one Opteron core (+ Cell)."""
        model = self.offload_model(system)
        return model.hybrid_time() if accelerated else model.cpu_time

    def speedup(self, system: MiniMD) -> float:
        """Accelerated over host-only step time."""
        return self.offload_model(system).speedup()
