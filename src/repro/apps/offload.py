"""The accelerator usage model: hotspot offload over PCIe (paper §III).

"Users can identify performance-critical sections of code and modify
those sections to run on the Cell blades" — SPaSM and Milagro took this
path.  The model is Amdahl's law with explicit transfer costs on the
Cell-Opteron link: per timestep,

    T_hybrid = (1 - f) * T_cpu                     (unported remainder)
             + f * T_cpu / kernel_speedup          (hotspot on the Cell)
             + transfers                           (DaCS/PCIe crossings)

where ``f`` is the hotspot's fraction of the original CPU time.  The
model exposes the design pressure the paper describes: with the SPEs
~30x faster than an Opteron core on DP-dense kernels, the achievable
application speedup is set by ``f`` and by how rarely data crosses the
PCIe bus — "the SPE programs run for long stretches of time out of
Cell memory".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.dacs import DACS_MEASURED
from repro.comm.transport import Transport

__all__ = ["OffloadModel"]


@dataclass(frozen=True)
class OffloadModel:
    """Hotspot offload of one application timestep."""

    #: original all-CPU time per timestep, seconds
    cpu_time: float
    #: fraction of ``cpu_time`` spent in the offloadable hotspot
    hotspot_fraction: float
    #: how much faster the Cell runs the hotspot than the host core
    kernel_speedup: float
    #: bytes shipped to the Cell per timestep (and back)
    bytes_down: int = 0
    bytes_up: int = 0
    #: number of offload invocations per timestep (each pays latency)
    calls: int = 1
    #: the host<->accelerator link
    link: Transport = DACS_MEASURED

    def __post_init__(self):
        if self.cpu_time <= 0:
            raise ValueError("cpu_time must be positive")
        if not 0 <= self.hotspot_fraction <= 1:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        if self.kernel_speedup <= 0:
            raise ValueError("kernel_speedup must be positive")
        if self.bytes_down < 0 or self.bytes_up < 0 or self.calls < 1:
            raise ValueError("invalid transfer parameters")

    # -- components ---------------------------------------------------------
    @property
    def host_time(self) -> float:
        """Time of the unported remainder on the Opteron."""
        return (1.0 - self.hotspot_fraction) * self.cpu_time

    @property
    def kernel_time(self) -> float:
        """Hotspot time on the accelerator."""
        return self.hotspot_fraction * self.cpu_time / self.kernel_speedup

    @property
    def transfer_time(self) -> float:
        """PCIe crossings per timestep (down + up, per call)."""
        per_call_down = self.bytes_down // self.calls
        per_call_up = self.bytes_up // self.calls
        return self.calls * (
            self.link.one_way_time(per_call_down)
            + self.link.one_way_time(per_call_up)
        )

    # -- the model -------------------------------------------------------------
    def hybrid_time(self) -> float:
        """Per-timestep time in accelerator mode."""
        return self.host_time + self.kernel_time + self.transfer_time

    def speedup(self) -> float:
        """Application speedup over the all-CPU run."""
        return self.cpu_time / self.hybrid_time()

    def amdahl_limit(self) -> float:
        """Speedup with an infinitely fast accelerator and free links."""
        serial = 1.0 - self.hotspot_fraction
        return float("inf") if serial == 0 else 1.0 / serial

    def transfer_bound_speedup(self) -> float:
        """Speedup if compute on the accelerator were free but the
        transfers remained — the locality ceiling of §III."""
        denom = self.host_time + self.transfer_time
        return float("inf") if denom == 0 else self.cpu_time / denom

    def breakeven_kernel_speedup(self) -> float:
        """Minimum kernel speedup for which offloading wins at all."""
        hotspot = self.hotspot_fraction * self.cpu_time
        budget = hotspot - self.transfer_time
        if budget <= 0:
            return float("inf")  # transfers alone already eat the gain
        return hotspot / budget
