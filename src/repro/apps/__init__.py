"""Application-workload surrogates (paper §IV-A).

The paper reports how the PowerXCell 8i's redesigned double-precision
unit translated into application speedups over the Cell BE: SPaSM and
Milagro by ~1.5x, VPIC essentially unchanged (single-precision code),
and Sweep3D by ~1.9x (§VI).  Each application is represented by the
instruction mix of its SPE hot loop; the speedups then *derive* from
the SPE pipeline tables, making the §IV-A factors an output of the
FPD-unit redesign rather than quoted constants.
"""

from repro.apps.workloads import APP_WORKLOADS, AppWorkload
from repro.apps.speedup import pxc8i_speedup, all_speedups
from repro.apps.offload import OffloadModel
from repro.apps.minimd import MiniMD, MDTimestepModel
from repro.apps.minipic import MiniPIC, PICTimestepModel

__all__ = [
    "AppWorkload",
    "APP_WORKLOADS",
    "pxc8i_speedup",
    "all_speedups",
    "OffloadModel",
    "MiniMD",
    "MDTimestepModel",
    "MiniPIC",
    "PICTimestepModel",
]
