"""Instruction-mix surrogates of the LANL applications of §IV-A.

Each :class:`AppWorkload` captures the SPE inner loop of one
application as per-work-unit instruction counts:

* **VPIC** — relativistic particle-in-cell; "its calculations use
  single precision floating-point operations", so its mix is FP6-heavy
  with *no* FPD at all.
* **SPaSM** — molecular dynamics (Lennard-Jones/EAM force loops):
  DP-heavy but with substantial neighbour-list integer/load work.
* **Milagro** — implicit Monte Carlo radiation transport: DP arithmetic
  interleaved with branchy event logic and table lookups.
* **Sweep3D** — the §V port; its mix lives in
  :mod:`repro.sweep3d.cellport` and is re-exported here.

The FPD share of each mix is what determines the Cell BE -> PowerXCell
8i speedup (each FPD stalls the Cell BE's pipelines for 6 extra
cycles); the mixes below are calibrated so the §IV-A factors emerge.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.hardware.spe_pipeline import InstructionGroup
from repro.sweep3d.cellport import SWEEP_MIX_PER_CELL_ANGLE

__all__ = ["AppWorkload", "APP_WORKLOADS"]

_G = InstructionGroup


@dataclass(frozen=True)
class AppWorkload:
    """One application's SPE hot-loop instruction mix."""

    name: str
    description: str
    mix: Mapping[InstructionGroup, int]
    #: what one repetition of the mix accomplishes (for documentation)
    work_unit: str

    def __post_init__(self):
        if not self.mix or all(v == 0 for v in self.mix.values()):
            raise ValueError(f"workload {self.name!r} has an empty mix")

    @property
    def uses_double_precision(self) -> bool:
        return self.mix.get(_G.FPD, 0) > 0

    @property
    def fpd_count(self) -> int:
        return self.mix.get(_G.FPD, 0)


def _mix(**counts: int) -> Mapping[InstructionGroup, int]:
    return MappingProxyType({_G[name]: n for name, n in counts.items()})


VPIC = AppWorkload(
    name="VPIC",
    description=(
        "Particle-in-cell plasma simulation; single-precision particle "
        "push and current deposition (0.365 Pflop/s Gordon Bell run)"
    ),
    mix=_mix(FP6=40, FX2=30, LS=45, SHUF=20, BR=5),
    work_unit="one particle push",
)

SPASM = AppWorkload(
    name="SPaSM",
    description=(
        "Classical molecular dynamics; double-precision pair-force "
        "kernels over neighbour lists (350-450 Tflop/s Gordon Bell run)"
    ),
    mix=_mix(FPD=10, FP7=10, FX2=50, LS=80, SHUF=30, BR=10),
    work_unit="one pair interaction batch",
)

MILAGRO = AppWorkload(
    name="Milagro",
    description=(
        "Implicit Monte Carlo thermal radiative transfer; double-"
        "precision tallies amid branchy per-particle event logic"
    ),
    mix=_mix(FPD=12, FP7=8, FX2=60, LS=95, SHUF=35, BR=14),
    work_unit="one particle event",
)

SWEEP3D = AppWorkload(
    name="Sweep3D",
    description=(
        "Discrete-ordinates neutron transport; the SPE-centric port of "
        "§V (16 two-wide DP FMAs per cell-angle)"
    ),
    mix=MappingProxyType(dict(SWEEP_MIX_PER_CELL_ANGLE)),
    work_unit="one cell-angle update",
)

APP_WORKLOADS: Mapping[str, AppWorkload] = MappingProxyType(
    {app.name: app for app in (VPIC, SPASM, MILAGRO, SWEEP3D)}
)
