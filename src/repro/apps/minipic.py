"""A miniature particle-in-cell code (the VPIC surrogate).

VPIC is the paper's flagship *SPE-centric* application (§III; the
0.365 Pflop/s trillion-particle Gordon Bell run of [9]) and the §IV-A
example of a code the PowerXCell 8i does *not* speed up, "as its
calculations use single precision floating-point operations".

This module is a real 1-D electrostatic PIC code — cloud-in-cell
deposition, periodic FFT-free field solve, leapfrog push — carried out
in ``float32`` end to end like VPIC.  Its physics is testable (charge
conservation, momentum conservation, the two-stream instability), and
its Roadrunner timing follows the SPE-centric model with the VPIC
instruction mix, whose CBE->PXC8i speedup is 1.0 by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MiniPIC", "PICTimestepModel"]


@dataclass
class MiniPIC:
    """Electrons on a periodic 1-D grid with a neutralizing background.

    Normalized units: plasma frequency = 1, cell size via ``length``.
    """

    n_cells: int = 64
    particles_per_cell: int = 20
    length: float = 2 * np.pi
    dt: float = 0.1
    #: two-stream beam speed (0 disables the instability setup)
    beam_speed: float = 0.2
    seed: int = 2008

    positions: np.ndarray = field(init=False, repr=False)
    velocities: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        if self.n_cells < 2 or self.particles_per_cell < 1:
            raise ValueError("need >= 2 cells and >= 1 particle per cell")
        if self.length <= 0 or self.dt <= 0:
            raise ValueError("length and dt must be positive")
        n = self.n_particles
        rng = np.random.default_rng(self.seed)
        # Quiet start: uniform positions with a tiny seeded ripple.
        x = (np.arange(n) + 0.5) / n * self.length
        x += 1e-3 * np.sin(2 * np.pi * x / self.length) * self.length / (2 * np.pi)
        self.positions = x.astype(np.float32) % np.float32(self.length)
        v = np.where(np.arange(n) % 2 == 0, self.beam_speed, -self.beam_speed)
        v = v + rng.normal(scale=1e-4, size=n)
        self.velocities = v.astype(np.float32)

    @property
    def n_particles(self) -> int:
        return self.n_cells * self.particles_per_cell

    @property
    def dx(self) -> float:
        return self.length / self.n_cells

    # -- PIC machinery (all float32, like VPIC) ------------------------------
    def deposit_charge(self) -> np.ndarray:
        """Cloud-in-cell charge density (background-subtracted)."""
        x = self.positions / np.float32(self.dx)
        left = np.floor(x).astype(np.int64) % self.n_cells
        frac = (x - np.floor(x)).astype(np.float32)
        rho = np.zeros(self.n_cells, dtype=np.float32)
        np.add.at(rho, left, 1.0 - frac)
        np.add.at(rho, (left + 1) % self.n_cells, frac)
        # Normalize so the neutralizing background gives <rho> = 0.
        rho /= np.float32(self.particles_per_cell)
        return rho - np.float32(1.0)

    def solve_field(self, rho: np.ndarray) -> np.ndarray:
        """Electric field from Gauss's law, solved spectrally.

        ``rho`` is the electron *excess* density (n_e - 1); the charge
        density is its negative, so ``dE/dx = -(n_e - 1)``.  The
        symmetric spectral solve (with linear deposition and gather)
        makes the scheme momentum-conserving.
        """
        rho_hat = np.fft.rfft(-rho.astype(np.float64))
        k = 2 * np.pi * np.fft.rfftfreq(self.n_cells, d=self.dx)
        with np.errstate(divide="ignore", invalid="ignore"):
            e_hat = np.where(k > 0, rho_hat / (1j * k), 0.0)
        e = np.fft.irfft(e_hat, n=self.n_cells)
        return e.astype(np.float32)

    def gather_field(self, e_grid: np.ndarray) -> np.ndarray:
        """Field at particle positions (linear interpolation)."""
        x = self.positions / np.float32(self.dx)
        left = np.floor(x).astype(np.int64) % self.n_cells
        frac = (x - np.floor(x)).astype(np.float32)
        return (1.0 - frac) * e_grid[left] + frac * e_grid[(left + 1) % self.n_cells]

    def step(self, n: int = 1) -> None:
        """Advance ``n`` leapfrog steps."""
        if n < 1:
            raise ValueError("n must be >= 1")
        for _ in range(n):
            rho = self.deposit_charge()
            e_grid = self.solve_field(rho)
            e_part = self.gather_field(e_grid)
            # Electrons: acceleration = -E in these units.
            self.velocities -= np.float32(self.dt) * e_part
            self.positions = (
                self.positions + np.float32(self.dt) * self.velocities
            ) % np.float32(self.length)

    # -- diagnostics ------------------------------------------------------------
    def field_energy(self) -> float:
        rho = self.deposit_charge()
        e = self.solve_field(rho)
        return float(0.5 * (e.astype(np.float64) ** 2).sum() * self.dx)

    def kinetic_energy(self) -> float:
        return float(0.5 * (self.velocities.astype(np.float64) ** 2).sum())

    def total_momentum(self) -> float:
        return float(self.velocities.astype(np.float64).sum())

    def charge_total(self) -> float:
        """Background-subtracted total charge (must be ~0)."""
        return float(self.deposit_charge().astype(np.float64).sum())

    def uses_single_precision(self) -> bool:
        return (
            self.positions.dtype == np.float32
            and self.velocities.dtype == np.float32
        )


@dataclass(frozen=True)
class PICTimestepModel:
    """Roadrunner timing of a PIC step under the SPE-centric model.

    Work per particle per step follows the VPIC instruction mix; being
    single precision, the mix contains no FPD and the Cell BE ->
    PowerXCell 8i 'upgrade' changes nothing — §IV-A's VPIC row.
    """

    def particle_cycles(self, variant) -> float:
        from repro.apps.speedup import workload_cycles
        from repro.apps.workloads import APP_WORKLOADS

        return workload_cycles(APP_WORKLOADS["VPIC"], variant)

    def timestep_time(self, system: MiniPIC, variant) -> float:
        """Seconds per step with the particles spread over 8 SPEs."""
        cycles = self.particle_cycles(variant) * system.n_particles / 8
        return cycles / variant.clock_hz

    def pxc8i_speedup(self, system: MiniPIC) -> float:
        from repro.hardware.cell import CELL_BE, POWERXCELL_8I

        return self.timestep_time(system, CELL_BE) / self.timestep_time(
            system, POWERXCELL_8I
        )
