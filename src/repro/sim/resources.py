"""Shared-resource primitives for the DES kernel.

Three primitives cover every hardware sharing pattern in the Roadrunner
models:

:class:`Resource`
    A counted FIFO server (e.g. a DMA engine with N channels, a NIC send
    queue of depth 1).
:class:`Store`
    An unbounded FIFO of items with blocking ``get`` (e.g. a message
    mailbox).
:class:`BandwidthLink`
    A processor-sharing pipe: concurrent transfers split the link's
    bandwidth equally, the exact model of a full-duplex-ish shared bus.
    This is what produces the paper's "bidirectional < 2x unidirectional"
    behaviour when a direction-shared efficiency factor is applied.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "BandwidthLink"]


class Resource:
    """A counted FIFO resource with ``capacity`` concurrent slots.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ... hold the resource ...
        finally:
            resource.release(req)
    """

    __slots__ = ("sim", "capacity", "_users", "_waiting")

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: set[Event] = set()
        self._waiting: deque[Event] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted (FIFO order)."""
        req = Event(self.sim)
        if len(self._users) < self.capacity and not self._waiting:
            self._users.add(req)
            req.succeed(self)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Event) -> None:
        """Release the slot held by ``request``."""
        try:
            self._users.remove(request)
        except KeyError:
            raise SimulationError("release() of a request that does not hold the resource")
        if self._waiting:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed(self)

    def cancel(self, request: Event) -> None:
        """Withdraw a request that is no longer wanted.

        Required in a process's ``except Interrupt`` handler when it was
        interrupted while queued: otherwise the orphaned request is
        eventually granted a slot nobody will release.  Safe to call
        whether the request is still waiting or was already granted;
        a request unknown to the resource is ignored (it may have been
        cancelled already).
        """
        try:
            self._waiting.remove(request)
            return
        except ValueError:
            pass
        if request in self._users:
            self.release(request)


class Store:
    """Unbounded FIFO item store with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event whose value is the
    item, fired immediately if an item is available, otherwise when the
    next ``put`` arrives.  Waiters are served in FIFO order.
    """

    __slots__ = ("sim", "_items", "_getters")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        evt = Event(self.sim)
        if self._items:
            evt.succeed(self._items.popleft())
        else:
            self._getters.append(evt)
        return evt


class _Transfer:
    __slots__ = ("size", "remaining", "done")

    def __init__(self, size: float, done: Event):
        self.size = float(size)
        self.remaining = float(size)
        self.done = done


class BandwidthLink:
    """A fair-shared (processor-sharing) bandwidth pipe.

    ``n`` concurrent transfers each progress at ``bandwidth / n`` bytes
    per second.  :meth:`transfer` returns an event that fires when the
    requested number of bytes has fully crossed the link.

    The implementation is event-driven: whenever the set of active
    transfers changes, remaining byte counts are advanced to the current
    time and a fresh completion event is scheduled for the next finisher.
    A generation counter invalidates completion events that were
    scheduled under an outdated sharing level.
    """

    __slots__ = (
        "sim",
        "bandwidth",
        "name",
        "_active",
        "_last_update",
        "_generation",
        "bytes_transferred",
    )

    def __init__(self, sim: Simulator, bandwidth: float, name: str = "link"):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.name = name
        self._active: list[_Transfer] = []
        self._last_update = 0.0
        self._generation = 0
        #: cumulative bytes that have fully crossed the link
        self.bytes_transferred = 0.0

    @property
    def active_transfers(self) -> int:
        """Number of transfers currently sharing the link."""
        return len(self._active)

    def transfer(self, size: float) -> Event:
        """Start moving ``size`` bytes; returns the completion event."""
        if size < 0:
            raise ValueError(f"transfer size must be >= 0, got {size}")
        done = Event(self.sim)
        if size == 0:
            done.succeed(0.0)
            return done
        self._advance()
        self._active.append(_Transfer(size, done))
        self._reschedule()
        return done

    # -- internal ---------------------------------------------------------
    def _rate(self) -> float:
        return self.bandwidth / len(self._active) if self._active else 0.0

    def _advance(self) -> None:
        """Progress all active transfers up to the current instant."""
        now = self.sim.now
        if self._active:
            moved = (now - self._last_update) * self._rate()
            if moved > 0:
                for t in self._active:
                    t.remaining -= moved
        self._last_update = now

    def _reschedule(self) -> None:
        self._generation += 1
        gen = self._generation
        if not self._active:
            return
        rate = self._rate()
        next_done = min(t.remaining for t in self._active)
        delay = max(0.0, next_done / rate)
        timer = self.sim.timeout(delay)
        timer.callbacks.append(lambda _evt, gen=gen: self._on_timer(gen))

    def _on_timer(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a membership change
        self._advance()

        def is_done(t: _Transfer) -> bool:
            # Absolute floor plus a relative tolerance: repeated
            # rate-change bookkeeping leaves O(eps * size) residuals.
            return t.remaining <= max(1e-9, 1e-9 * t.size)

        finished = [t for t in self._active if is_done(t)]
        if not finished and self._active:
            # Guaranteed progress: if the earliest finisher's residual
            # is too small for the clock to advance (now + dt == now in
            # floating point), force-complete it rather than livelock.
            rate = self._rate()
            nearest = min(self._active, key=lambda t: t.remaining)
            if self.sim.now + nearest.remaining / rate == self.sim.now:
                finished = [nearest]
        finished_set = set(id(t) for t in finished)
        self._active = [t for t in self._active if id(t) not in finished_set]
        for t in finished:
            self.bytes_transferred += t.size
            t.done.succeed(self.sim.now)
        self._reschedule()
