"""Time-stamped tracing and summary statistics for simulation runs.

A :class:`Tracer` collects :class:`TraceRecord` tuples emitted by model
components (message sends, DMA completions, sweep block starts).  It is
deliberately passive — recording never perturbs simulated time — and
offers simple filtering/aggregation used by tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulated time in seconds.
    category:
        Free-form event class, e.g. ``"mpi.send"`` or ``"dma"``.
    source:
        Identifier of the emitting component (rank, link name, ...).
    detail:
        Arbitrary payload describing the occurrence.
    """

    time: float
    category: str
    source: Any
    detail: Any = None


@dataclass
class Tracer:
    """Accumulates trace records; optionally restricted to some categories."""

    categories: frozenset[str] | None = None
    records: list[TraceRecord] = field(default_factory=list)

    def enabled_for(self, category: str) -> bool:
        """Whether records of ``category`` are being kept."""
        return self.categories is None or category in self.categories

    def record(self, time: float, category: str, source: Any, detail: Any = None) -> None:
        """Append a record if its category is enabled."""
        if self.enabled_for(category):
            self.records.append(TraceRecord(time, category, source, detail))

    def __len__(self) -> int:
        return len(self.records)

    def filter(
        self,
        category: str | None = None,
        predicate: Callable[[TraceRecord], bool] | None = None,
    ) -> Iterator[TraceRecord]:
        """Iterate records matching ``category`` and/or ``predicate``."""
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if predicate is not None and not predicate(rec):
                continue
            yield rec

    def count(self, category: str) -> int:
        """Number of records in ``category``."""
        return sum(1 for _ in self.filter(category))

    def span(self) -> float:
        """Time between the first and last record (0.0 if < 2 records)."""
        if len(self.records) < 2:
            return 0.0
        times = [r.time for r in self.records]
        return max(times) - min(times)

    def clear(self) -> None:
        """Drop all accumulated records."""
        self.records.clear()


#: A tracer that keeps nothing; components use it as a no-op default.
NULL_TRACER = Tracer(categories=frozenset())
