"""Core discrete-event simulation kernel.

The kernel is deliberately small and deterministic:

* The event queue is a binary heap ordered by ``(time, priority, seq)``.
  ``seq`` is a monotonically increasing tie-breaker, so two events
  scheduled for the same instant always fire in scheduling order.  This
  makes every simulation run bit-for-bit reproducible.
* Processes are plain Python generators.  A process yields an
  :class:`Event` (or a :class:`Process`, which is itself an event that
  fires on termination) and is resumed with the event's value when the
  event succeeds, or has the failure exception thrown into it when the
  event fails.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a", 2.0))
>>> _ = sim.process(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from collections.abc import Generator, Iterable
from typing import Any

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. time travel)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event priorities: URGENT events (internal resumptions) run before NORMAL
# events scheduled for the same instant, so resource handoffs complete
# before new work starts at a timestep.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* (scheduled to fire) via :meth:`succeed` or
    :meth:`fail` and *processed* when the simulator pops it from the
    queue, at which point all registered callbacks run.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list = []
        self._value: Any = None
        self._ok: bool | None = None
        self._triggered = False
        self._processed = False
        #: set True once some waiter consumed a failure; unhandled failures
        #: are re-raised by the simulator at the end of the step.
        self.defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Valid only after triggering."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's result value (or failure exception)."""
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay=delay)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self._processed
            else "triggered"
            if self._triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self._triggered = True
        self._ok = True
        self._value = value
        self.delay = delay
        sim._schedule(self, delay=delay)


class Process(Event):
    """A running simulation process wrapping a generator.

    A :class:`Process` is itself an :class:`Event` that fires when the
    generator terminates: its value is the generator's return value, or
    the uncaught exception on failure.  This lets one process ``yield``
    another to join it.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str | None = None):
        if not isinstance(generator, Generator):
            raise TypeError(f"Process requires a generator, got {type(generator)!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        # Bootstrap: resume the generator at the current instant.
        init = Event(sim)
        init._triggered = True
        init._ok = True
        sim._schedule(init, delay=0.0, priority=URGENT)
        init.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return not self._triggered

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        evt = Event(self.sim)
        evt._triggered = True
        evt._ok = False
        evt._value = Interrupt(cause)
        evt.defused = True
        # Detach from the current target so its eventual firing is ignored.
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None
        self.sim._schedule(evt, delay=0.0, priority=URGENT)
        evt.callbacks.append(self._resume)

    # -- internal ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.sim._active_process = self
        try:
            while True:
                if event._ok:
                    try:
                        target = self.generator.send(event._value)
                    except StopIteration as stop:
                        self._terminate(value=stop.value)
                        return
                    except BaseException as exc:
                        self._terminate(error=exc)
                        return
                else:
                    event.defused = True
                    try:
                        target = self.generator.throw(event._value)
                    except StopIteration as stop:
                        self._terminate(value=stop.value)
                        return
                    except BaseException as exc:
                        if exc is event._value:
                            # The process did not handle the failure; it
                            # propagates as this process's own failure.
                            self._terminate(error=exc)
                            return
                        raise
                if not isinstance(target, Event):
                    exc = SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}"
                    )
                    try:
                        self.generator.throw(exc)
                    except StopIteration as stop:
                        self._terminate(value=stop.value)
                        return
                    except SimulationError as err:
                        self._terminate(error=err)
                        return
                if target.sim is not self.sim:
                    raise SimulationError("cannot wait on an event from another simulator")
                if target._processed:
                    # Already fired: loop and resume immediately with its value.
                    event = target
                    continue
                self._target = target
                target.callbacks.append(self._resume)
                return
        finally:
            self.sim._active_process = None

    def _terminate(self, value: Any = None, error: BaseException | None = None) -> None:
        self._target = None
        if error is not None:
            self.fail(error)
        else:
            self.succeed(value)


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        for evt in self.events:
            if evt.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for evt in self.events:
            if evt._processed:
                self._check(evt)
            else:
                evt.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e._processed and e._ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once *all* constituent events have fired successfully."""

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as *any* constituent event fires successfully."""

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Simulator:
    """The event loop: owns the clock and the pending-event heap."""

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        time, _prio, _seq, event = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError("event queue corrupted: time moved backwards")
        self._now = time
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, time ``until``, or event ``until``.

        Returns the event's value when ``until`` is an event that fired.
        """
        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited event fired"
                    )
                self.step()
            if stop._ok:
                return stop._value
            stop.defused = True
            raise stop._value
        horizon = float("inf") if until is None else float(until)
        if horizon < self._now:
            raise SimulationError(f"run(until={horizon!r}) is in the past (now={self._now!r})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        if horizon != float("inf"):
            self._now = horizon
        return None
