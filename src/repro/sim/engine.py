"""Core discrete-event simulation kernel.

The kernel is deliberately small and deterministic:

* The event queue is a binary heap ordered by ``(time, priority, seq)``.
  ``seq`` is a monotonically increasing tie-breaker, so two events
  scheduled for the same instant always fire in scheduling order.  This
  makes every simulation run bit-for-bit reproducible.
* Processes are plain Python generators.  A process yields an
  :class:`Event` (or a :class:`Process`, which is itself an event that
  fires on termination) and is resumed with the event's value when the
  event succeeds, or has the failure exception thrown into it when the
  event fails.

Determinism contract
--------------------
Given the same sequence of ``process()``/``timeout()``/``succeed()``
calls, the simulator pops events in an identical order and advances the
clock through identical floating-point times, run after run.  Every
scheduling path — including the inlined fast paths below — consumes
exactly one ``seq`` number per scheduled occurrence, in call order, and
waiters are woken in registration order; nothing in the kernel iterates
a ``set``/``dict`` whose order could vary.  The perf-regression harness
(``benchmarks/perf``) uses this contract as its acceptance oracle:
optimizations must leave event order, event times and process results
bit-identical.

Performance notes
-----------------
The event loop is the hottest code in the repository (every figure
reproduction that exercises the DES bottoms out here), so the kernel
trades some repetition for speed:

* all event types carry ``__slots__`` (no per-instance dict);
* the first process to wait on an event with no other callbacks is
  parked in the event's ``_waiter`` slot instead of the ``callbacks``
  list, and :meth:`Simulator.run` resumes such a waiter *inline* —
  no callback-list allocation, iteration, or ``_resume`` call frame
  on the dominant ``yield sim.timeout(...)`` / ``yield event`` path
  (callbacks registered after the waiter still fire, after it, in
  registration order — identical to the pre-fast-path wake order);
* process bootstrap pushes a two-word :class:`_Bootstrap` marker on
  the heap instead of a full pre-succeeded :class:`Event`;
* ``Timeout``/``succeed``/``fail`` inline the heap push instead of
  calling :meth:`Simulator._schedule`;
* a processed :class:`Timeout` is recycled through a bounded
  per-simulator free-list (``Simulator(pool_size=...)``, default 64
  entries, 0 disables) when the run loop holds the only remaining
  reference (checked with ``sys.getrefcount``), so steady-state
  timeout loops — including bursty many-rank schedules that retire
  several timeouts between creations — allocate no event objects at
  all.  A timeout anyone still references — held in a variable,
  parked in a condition — is never recycled, so ``.value``/``.ok``
  stay valid.  Process-bootstrap markers recycle through a one-deep
  slot the same way;
* after a heap pop, the next queued entry is hoisted into the empty
  min buffer when it fires at the same instant, so same-timestamp
  event cohorts (a wavefront diagonal firing together) drain through
  slotted pops;
* bounded ``run(until=t)`` pushes a heap sentinel at the horizon
  instead of comparing ``queue[0][0] <= t`` every iteration;
* a one-slot min buffer (``Simulator._next``, see :func:`_push`) sits
  in front of the heap: an entry that sorts before everything queued
  waits in a single attribute, so the push-one/pop-one cadence of a
  timeout chain bypasses ``heapq`` entirely while reproducing the
  heap's total order exactly;
* the future-event set itself is pluggable
  (``Simulator(scheduler=...)`` / the ``REPRO_SCHED`` environment
  variable): the default ``"calendar"`` backend replaces the binary
  heap with a calendar of occupied instants — a small spine heap of
  *distinct* times over per-instant priority lanes (see
  :mod:`repro.sim.calendar`) — making scheduling into an occupied
  instant an O(1) dict-lookup-plus-append with no entry tuple at all,
  which is the dominant pattern in same-instant wavefront cohorts.
  The ``"heap"`` backend is the seed's binary heap, retained as the
  reference; both produce bit-identical event timelines (the lanes
  preserve the exact ``(time, priority, seq)`` total order) and both
  sit behind the same one-slot min buffer.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a", 2.0))
>>> _ = sim.process(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from collections.abc import Generator, Iterable
from heapq import heappop, heappush
from sys import getrefcount
from time import perf_counter
from types import GeneratorType
from typing import Any

from repro.sim import calendar as _calendar

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. time travel)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event priorities: URGENT events (internal resumptions) run before NORMAL
# events scheduled for the same instant, so resource handoffs complete
# before new work starts at a timestep.
URGENT = 0
NORMAL = 1


def _insert_displaced(sim: "Simulator", entry: tuple) -> None:
    """File an entry displaced from the one-slot buffer in its lane.

    Calendar backend only.  The displaced entry was the global minimum,
    so its ``seq`` is older than every stored entry's: it belongs at
    the *front* of its lane's undrained region — the one push for which
    the plain append (correct for fresh, monotonically numbered
    entries) would misorder the lane.
    """
    t, prio, _seq, event = entry
    buckets = sim._buckets
    b = buckets.get(t)
    if b is None:
        heappush(sim._times, t)
        b = [[], [], [], 0, 0, 0]
        b[prio].append(event)
        buckets[t] = b
    else:
        b[prio].insert(b[3 + prio], event)


def _push(sim: "Simulator", entry: tuple) -> None:
    """Insert ``entry`` preserving the single-slot min-buffer invariant.

    ``sim._next``, when not None, holds the entry that sorts before
    everything queued (binary heap and calendar alike); pops take it
    without touching the backend.  A workload alternating one push with
    one pop (the timeout chain every process body reduces to) then
    never pays for queue maintenance at all.  Entries are unique in
    their ``seq`` field, so the tuple comparisons below reproduce the
    heap's total order exactly — the slot is invisible to the
    determinism contract.

    On the calendar backend (``sim._buckets`` is a dict) an entry bound
    for an occupied instant is appended to that instant's priority
    lane: ``seq`` numbers are handed out monotonically, so appends keep
    every lane sorted and the lanes replay the heap's
    ``(time, priority, seq)`` order exactly (the sole exception — an
    entry displaced from the slot — is handled by
    :func:`_insert_displaced`).

    The hot construction sites (``Timeout.__init__``,
    ``Simulator.timeout``, ``Event.succeed``, process bootstrap) inline
    this body to avoid the call frame; keep them in sync.
    """
    nxt = sim._next
    buckets = sim._buckets
    if buckets is None:
        if nxt is None:
            if sim._queue:
                heappush(sim._queue, entry)
            else:
                sim._next = entry
        elif entry < nxt:
            sim._next = entry
            heappush(sim._queue, nxt)
        else:
            heappush(sim._queue, entry)
    elif nxt is None and not buckets:
        sim._next = entry
    elif nxt is not None and entry < nxt:
        sim._next = entry
        _insert_displaced(sim, nxt)
    else:
        t = entry[0]
        b = buckets.get(t)
        if b is None:
            heappush(sim._times, t)
            b = [[], [], [], 0, 0, 0]
            buckets[t] = b
        b[entry[1]].append(entry[3])


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* (scheduled to fire) via :meth:`succeed` or
    :meth:`fail` and *processed* when the simulator pops it from the
    queue, at which point the parked waiter (if any) is resumed and all
    registered callbacks run.  ``callbacks`` is a list until the event
    is processed and ``None`` afterwards; callbacks must only be
    registered on unprocessed events.
    """

    __slots__ = (
        "sim",
        "callbacks",
        "_value",
        "_ok",
        "_triggered",
        "_processed",
        "_waiter",
        "defused",
    )

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list | None = []
        self._value: Any = None
        self._ok: bool | None = None
        self._triggered = False
        self._processed = False
        #: the first process waiting on this event, resumed inline by
        #: the run loop before any ``callbacks`` entries fire
        self._waiter: Process | None = None
        #: set True once some waiter consumed a failure; unhandled failures
        #: are re-raised by the simulator at the end of the step.
        self.defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Valid only after triggering."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's result value (or failure exception)."""
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        self._triggered = True
        self._ok = True
        self._value = value
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        t = sim._now + delay
        # Inline _push (hot: every process termination lands here).
        nxt = sim._next
        buckets = sim._buckets
        if buckets is None:
            entry = (t, NORMAL, seq, self)
            if nxt is None:
                if sim._queue:
                    heappush(sim._queue, entry)
                else:
                    sim._next = entry
            elif entry < nxt:
                sim._next = entry
                heappush(sim._queue, nxt)
            else:
                heappush(sim._queue, entry)
        elif nxt is None and not buckets:
            sim._next = (t, NORMAL, seq, self)
        elif nxt is not None and (t, NORMAL, seq, self) < nxt:
            sim._next = (t, NORMAL, seq, self)
            _insert_displaced(sim, nxt)
        else:
            b = buckets.get(t)
            if b is None:
                heappush(sim._times, t)
                buckets[t] = [[], [self], [], 0, 0, 0]
            else:
                b[1].append(self)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        self._triggered = True
        self._ok = False
        self._value = exception
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        _push(sim, (sim._now + delay, NORMAL, seq, self))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self._processed
            else "triggered"
            if self._triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        # Inline Event.__init__ + Simulator._schedule: a timeout is born
        # triggered, and this constructor is the hottest allocation site
        # in the repository.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._waiter = None
        self.defused = False
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        t = sim._now + delay
        # Inline _push (hottest allocation site in the repository).
        nxt = sim._next
        buckets = sim._buckets
        if buckets is None:
            entry = (t, NORMAL, seq, self)
            if nxt is None:
                if sim._queue:
                    heappush(sim._queue, entry)
                else:
                    sim._next = entry
            elif entry < nxt:
                sim._next = entry
                heappush(sim._queue, nxt)
            else:
                heappush(sim._queue, entry)
        elif nxt is None and not buckets:
            sim._next = (t, NORMAL, seq, self)
        elif nxt is not None and (t, NORMAL, seq, self) < nxt:
            sim._next = (t, NORMAL, seq, self)
            _insert_displaced(sim, nxt)
        else:
            b = buckets.get(t)
            if b is None:
                heappush(sim._times, t)
                buckets[t] = [[], [self], [], 0, 0, 0]
            else:
                b[1].append(self)


class _Bootstrap:
    """A heap marker that resumes a newly created process.

    Stands in for the pre-succeeded bootstrap :class:`Event` the kernel
    used to allocate per process: two words instead of a full event plus
    callbacks list.  The class-level ``_ok``/``_value``/``defused``
    attributes let the generic :meth:`Process._resume` treat it as a
    succeeded event on the slow :meth:`Simulator.step` path.
    """

    __slots__ = ("process",)

    _ok = True
    _value = None
    defused = True

    def __init__(self, process: "Process"):
        self.process = process


class Process(Event):
    """A running simulation process wrapping a generator.

    A :class:`Process` is itself an :class:`Event` that fires when the
    generator terminates: its value is the generator's return value, or
    the uncaught exception on failure.  This lets one process ``yield``
    another to join it.
    """

    __slots__ = ("generator", "name", "_target", "_send", "_throw")

    def __init__(self, sim: "Simulator", generator: Generator, name: str | None = None):
        if type(generator) is GeneratorType:
            if not name:
                name = generator.__name__
        elif isinstance(generator, Generator):
            if not name:
                name = getattr(generator, "__name__", "process")
        else:
            raise TypeError(f"Process requires a generator, got {type(generator)!r}")
        # Inline Event.__init__: process creation is the spawn/join hot
        # path, and the ABC isinstance above is bypassed for the plain
        # generators every caller in this repository passes.
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = None
        self._triggered = False
        self._processed = False
        self._waiter = None
        self.defused = False
        self.generator = generator
        self.name = name
        self._target: Event | None = None
        self._send = generator.send
        self._throw = generator.throw
        # Bootstrap: resume the generator at the current instant.  The
        # marker consumes one seq number like any scheduled event and is
        # drawn from a one-deep free slot refilled by the run loop.
        marker = sim._free_bootstrap
        if marker is not None:
            sim._free_bootstrap = None
            marker.process = self
        else:
            marker = _Bootstrap(self)
        sim._seq = seq = sim._seq + 1
        t = sim._now
        # Inline _push (URGENT: bootstraps run before NORMAL events at
        # the same instant — lane 0 on the calendar backend).
        nxt = sim._next
        buckets = sim._buckets
        if buckets is None:
            entry = (t, URGENT, seq, marker)
            if nxt is None:
                if sim._queue:
                    heappush(sim._queue, entry)
                else:
                    sim._next = entry
            elif entry < nxt:
                sim._next = entry
                heappush(sim._queue, nxt)
            else:
                heappush(sim._queue, entry)
        elif nxt is None and not buckets:
            sim._next = (t, URGENT, seq, marker)
        elif nxt is not None and (t, URGENT, seq, marker) < nxt:
            sim._next = (t, URGENT, seq, marker)
            _insert_displaced(sim, nxt)
        else:
            b = buckets.get(t)
            if b is None:
                heappush(sim._times, t)
                buckets[t] = [[marker], [], [], 0, 0, 0]
            else:
                b[0].append(marker)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return not self._triggered

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        sim = self.sim
        evt = Event.__new__(Event)
        evt.sim = sim
        evt.callbacks = [self._resume]
        evt._value = Interrupt(cause)
        evt._ok = False
        evt._triggered = True
        evt._processed = False
        evt._waiter = None
        evt.defused = True
        # Detach from the current target so its eventual firing is
        # ignored.  A single guarded remove() replaces the former
        # containment scan + remove (one O(n) pass instead of two when
        # the target has many waiters).
        target = self._target
        if target is not None:
            if target._waiter is self:
                target._waiter = None
            elif target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        sim._seq = seq = sim._seq + 1
        _push(sim, (sim._now, URGENT, seq, evt))

    # -- internal ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        sim = self.sim
        sim._active_process = self
        send = self._send
        try:
            while True:
                if event._ok:
                    try:
                        target = send(event._value)
                    except StopIteration as stop:
                        self._terminate(value=stop.value)
                        return
                    except BaseException as exc:
                        self._terminate(error=exc)
                        return
                else:
                    event.defused = True
                    try:
                        target = self._throw(event._value)
                    except StopIteration as stop:
                        self._terminate(value=stop.value)
                        return
                    except BaseException as exc:
                        if exc is event._value:
                            # The process did not handle the failure; it
                            # propagates as this process's own failure.
                            self._terminate(error=exc)
                            return
                        raise
                if not isinstance(target, Event):
                    exc = SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}"
                    )
                    try:
                        self._throw(exc)
                    except StopIteration as stop:
                        self._terminate(value=stop.value)
                        return
                    except SimulationError as err:
                        self._terminate(error=err)
                        return
                if target.sim is not sim:
                    raise SimulationError("cannot wait on an event from another simulator")
                if target._processed:
                    # Already fired: loop and resume immediately with its value.
                    event = target
                    continue
                self._target = target
                if target._waiter is None and not target.callbacks:
                    target._waiter = self
                else:
                    target.callbacks.append(self._resume)
                return
        finally:
            sim._active_process = None

    def _park_slow(self, target: Any) -> None:
        """Handle a non-fast-path yield from the inlined run loop.

        Covers non-event yields, events of another simulator, and
        already-processed targets; mirrors the corresponding branches
        of :meth:`_resume`.
        """
        if isinstance(target, Event):
            if target.sim is not self.sim:
                raise SimulationError("cannot wait on an event from another simulator")
            # target is processed here (unprocessed same-sim events are
            # parked inline by the run loop): consume it immediately.
            self._resume(target)
            return
        sim = self.sim
        sim._active_process = self
        try:
            exc = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            try:
                self._throw(exc)
            except StopIteration as stop:
                self._terminate(value=stop.value)
                return
            except SimulationError as err:
                self._terminate(error=err)
                return
            raise exc
        finally:
            sim._active_process = None

    def _terminate(self, value: Any = None, error: BaseException | None = None) -> None:
        self._target = None
        if error is not None:
            self.fail(error)
        else:
            self.succeed(value)


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        for evt in self.events:
            if evt.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for evt in self.events:
            if evt._processed:
                self._check(evt)
            else:
                evt.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e._processed and e._ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once *all* constituent events have fired successfully."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as *any* constituent event fires successfully."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


#: heap priority of the run-horizon sentinel: after every real event
#: scheduled for the same instant (``run(until=t)`` is inclusive of t).
_AFTER = 2


class _Stop:
    """Run-horizon sentinel pushed on the heap by bounded :meth:`Simulator.run`.

    Popping the current run's sentinel ends the loop with no per-event
    horizon comparison.  A sentinel orphaned by a run that raised is
    recognized by identity and skipped by later runs.
    """

    __slots__ = ()


#: default depth of the per-simulator timeout free-list (see Simulator)
_POOL_SIZE = 64


class Simulator:
    """The event loop: owns the clock and the future-event set.

    ``pool_size`` bounds the timeout free-list (``None`` uses the
    module default, ``0`` disables recycling entirely — the unpooled
    reference path the full-machine benchmark cross-checks against).

    ``scheduler`` picks the future-event-set backend: ``"calendar"``
    (the default — a calendar of occupied instants, O(1) scheduling
    into an occupied instant, see :mod:`repro.sim.calendar`) or
    ``"heap"`` (the seed's binary heap, retained as the reference).
    ``None`` defers to :data:`repro.sim.calendar.DEFAULT_SCHEDULER`,
    i.e. the ``REPRO_SCHED`` environment variable.  Both backends pop
    in the identical ``(time, priority, seq)`` total order, so every
    simulation is bit-for-bit reproducible under either.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_times",
        "_buckets",
        "_next",
        "_seq",
        "_active_process",
        "_free_timeout",
        "_free_timeouts",
        "_free_bootstrap",
        "_pool_cap",
        "_observer",
        "scheduler",
    )

    def __init__(self, pool_size: int | None = None, scheduler: str | None = None):
        if scheduler is None:
            scheduler = _calendar.DEFAULT_SCHEDULER
        if scheduler not in _calendar.SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected one of "
                f"{_calendar.SCHEDULERS}"
            )
        #: the future-event-set backend this simulator runs on
        self.scheduler = scheduler
        self._now = 0.0
        #: binary-heap backend storage (always a list so emptiness
        #: checks stay cheap; unused — empty — on the calendar backend)
        self._queue: list[tuple[float, int, int, Event]] = []
        if scheduler == "calendar":
            #: spine heap of the distinct occupied instants
            self._times: list[float] | None = []
            #: time -> [urgent, normal, after, ui, ni, ai] lane bucket;
            #: also the backend discriminator (None means heap mode)
            self._buckets: dict[float, list] | None = {}
        else:
            self._times = None
            self._buckets = None
        #: single-slot min buffer in front of either backend (see _push)
        self._next: tuple[float, int, int, Event] | None = None
        self._seq = 0
        self._active_process: Process | None = None
        #: one-deep first-level timeout free slot (the chain cadence
        #: recycles through this without touching the overflow list)
        self._free_timeout: Timeout | None = None
        #: overflow free-list of dead Timeout objects behind the slot
        #: (bursty schedules retire several timeouts between
        #: creations); bounded by _pool_cap
        self._free_timeouts: list[Timeout] = []
        #: one-deep free slot for process-bootstrap heap markers
        self._free_bootstrap: _Bootstrap | None = None
        self._pool_cap = _POOL_SIZE if pool_size is None else pool_size
        #: observability sink (see attach_observer); None keeps run()
        #: on the uninstrumented fast loop
        self._observer = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- observability -------------------------------------------------------
    @property
    def observer(self):
        """The attached observability sink, if any."""
        return self._observer

    def attach_observer(self, observer) -> None:
        """Route :meth:`run` through the observed loop.

        ``observer`` implements ``_note_event(cls_name, proc_name,
        host_dt)`` (see :class:`repro.obs.recorder.ObsRecorder`) and may
        expose a ``host_run_time`` accumulator.  Observation never
        changes the event timeline: the observed loop dispatches through
        the same generic machinery as :meth:`step`, consumes ``seq``
        numbers identically to the fast loop, and only *reads* state —
        the determinism contract holds with or without an observer.
        ``None`` (or an observer whose ``enabled`` is false) detaches.
        """
        if observer is not None and not getattr(observer, "enabled", True):
            observer = None
        self._observer = observer

    def detach_observer(self) -> None:
        """Return :meth:`run` to the uninstrumented fast loop."""
        self._observer = None

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        t = self._free_timeout
        if t is not None:
            self._free_timeout = None
        else:
            free = self._free_timeouts
            if not free:
                return Timeout(self, delay, value)
            t = free.pop()
        if delay < 0:
            self._free_timeout = t
            raise SimulationError(f"negative timeout delay: {delay!r}")
        t._value = value
        t.delay = delay
        self._seq = seq = self._seq + 1
        when = self._now + delay
        # Inline _push (the recycled-timeout fast path).
        nxt = self._next
        buckets = self._buckets
        if buckets is None:
            entry = (when, NORMAL, seq, t)
            if nxt is None:
                if self._queue:
                    heappush(self._queue, entry)
                else:
                    self._next = entry
            elif entry < nxt:
                self._next = entry
                heappush(self._queue, nxt)
            else:
                heappush(self._queue, entry)
        elif nxt is None and not buckets:
            self._next = (when, NORMAL, seq, t)
        elif nxt is not None and (when, NORMAL, seq, t) < nxt:
            self._next = (when, NORMAL, seq, t)
            _insert_displaced(self, nxt)
        else:
            b = buckets.get(when)
            if b is None:
                heappush(self._times, when)
                buckets[when] = [[], [t], [], 0, 0, 0]
            else:
                b[1].append(t)
        return t

    def process(self, generator: Generator, name: str | None = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        self._seq += 1
        _push(self, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        nxt = self._next
        if nxt is not None:
            return nxt[0]
        if self._buckets is None:
            return self._queue[0][0] if self._queue else float("inf")
        # Eager bucket retirement keeps the spine free of exhausted
        # times, so its front is the next instant verbatim.
        return self._times[0] if self._times else float("inf")

    def _pop_bucket(self) -> tuple[float, Any] | None:
        """Extract the next event from the calendar (slot already empty).

        Returns ``(time, event)``, or None when no events remain.  The
        pop that drains a bucket's last lane entry also retires the
        bucket — no user code runs in between, so a dispatch that
        schedules back into that instant re-creates the bucket *after*
        everything previously there has been extracted, preserving the
        ``(time, priority, seq)`` order.  The run loop inlines this
        body; keep them in sync.
        """
        times = self._times
        if not times:
            return None
        t = times[0]
        buckets = self._buckets
        b = buckets[t]
        for prio in (0, 1, 2):
            i = b[3 + prio]
            lane = b[prio]
            if i < len(lane):
                event = lane[i]
                lane[i] = None
                b[3 + prio] = i + 1
                if (
                    b[3] == len(b[0])
                    and b[4] == len(b[1])
                    and b[5] == len(b[2])
                ):
                    heappop(times)
                    del buckets[t]
                return t, event
        raise SimulationError("event queue corrupted: exhausted bucket on spine")

    def step(self) -> None:
        """Process exactly one event (the slow, single-step path)."""
        nxt = self._next
        if nxt is not None:
            self._next = None
            time, _prio, _seq, event = nxt
        elif self._buckets is not None:
            popped = self._pop_bucket()
            if popped is None:
                raise SimulationError("step() on an empty event queue")
            time, event = popped
        elif self._queue:
            time, _prio, _seq, event = heappop(self._queue)
        else:
            raise SimulationError("step() on an empty event queue")
        if time < self._now:
            raise SimulationError("event queue corrupted: time moved backwards")
        self._now = time
        cls = type(event)
        if cls is _Bootstrap:
            event.process._resume(event)
            return
        if cls is _Stop:
            # Sentinel orphaned by a bounded run() that raised: skip it.
            return
        event._processed = True
        waiter = event._waiter
        if waiter is not None:
            event._waiter = None
            waiter._resume(event)
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            raise event._value

    def _step_observed(self, obs) -> Any:
        """Pop and dispatch one event, reporting it to ``obs``.

        Mirrors :meth:`step`'s generic dispatch (identical event order
        and clock advance — the inlined fast paths of :meth:`run` exist
        for speed, not semantics) and additionally attributes the host
        wall-clock cost of each dispatch to the resumed process.
        Returns the popped occurrence so :meth:`_run_observed` can
        recognize its own horizon sentinel.
        """
        nxt = self._next
        if nxt is not None:
            self._next = None
            time, _prio, _seq, event = nxt
        elif self._buckets is not None:
            time, event = self._pop_bucket()
        else:
            time, _prio, _seq, event = heappop(self._queue)
        if time < self._now:
            raise SimulationError("event queue corrupted: time moved backwards")
        self._now = time
        cls = type(event)
        if cls is _Stop:
            return event
        t0 = perf_counter()
        if cls is _Bootstrap:
            process = event.process
            process._resume(event)
            obs._note_event("Bootstrap", process.name, perf_counter() - t0)
            return event
        event._processed = True
        waiter = event._waiter
        name = waiter.name if waiter is not None else None
        if waiter is not None:
            event._waiter = None
            waiter._resume(event)
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        obs._note_event(cls.__name__, name, perf_counter() - t0)
        if not event._ok and not event.defused:
            raise event._value
        return event

    def _run_observed(self, until: float | Event | None) -> Any:
        """The observed counterpart of :meth:`run`.

        Reproduces run()'s semantics exactly — including the horizon
        sentinel (one ``seq`` consumed, identical to the fast loop) and
        orphaned-sentinel skipping — while counting every processed
        event and attributing host time per resumed process.
        """
        obs = self._observer
        t_run = perf_counter()
        try:
            if isinstance(until, Event):
                stop = until
                while not stop._processed:
                    if self._next is None and not self._queue and not self._times:
                        raise SimulationError(
                            "simulation ran out of events before the awaited "
                            "event fired"
                        )
                    self._step_observed(obs)
                if stop._ok:
                    return stop._value
                stop.defused = True
                raise stop._value
            marker = None
            if until is not None:
                horizon = float(until)
                if horizon < self._now:
                    raise SimulationError(
                        f"run(until={horizon!r}) is in the past (now={self._now!r})"
                    )
                marker = _Stop()
                self._seq = seq = self._seq + 1
                _push(self, (horizon, _AFTER, seq, marker))
            while self._next is not None or self._queue or self._times:
                occurrence = self._step_observed(obs)
                if occurrence is marker and marker is not None:
                    break
            if marker is not None:
                self._now = horizon
            return None
        finally:
            try:
                obs.host_run_time += perf_counter() - t_run
            except AttributeError:
                pass

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, time ``until``, or event ``until``.

        Returns the event's value when ``until`` is an event that fired.
        """
        if self._observer is not None:
            return self._run_observed(until)
        # NB: named stop_evt, not stop — the dispatch arms' `except
        # StopIteration as stop` clauses delete `stop` on block exit.
        stop_evt = None
        marker = None
        if isinstance(until, Event):
            # An awaited stop event runs through the same inlined hot
            # loop as an unbounded run: one `stop_evt._processed` check
            # per iteration replaces the seed's step()-per-event loop
            # (the full-machine sweep drives its finish-line event
            # through here, so this is the hottest run() mode in the
            # repo).
            stop_evt = until
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"run(until={horizon!r}) is in the past (now={self._now!r})"
                )
            # A sentinel at the horizon (at _AFTER priority, i.e. behind
            # every real event scheduled for that instant) replaces the
            # per-iteration `queue[0][0] <= horizon` bound check.  The
            # sentinel is in the heap, so the loop below cannot drain the
            # queue without popping it: a bounded run always exits at its
            # own marker (or by an exception, which orphans the marker —
            # later runs recognize and skip orphans by identity).
            marker = _Stop()
            self._seq = seq = self._seq + 1
            _push(self, (horizon, _AFTER, seq, marker))
        # The hot loop: step() inlined with queue/heappop bound to
        # locals, dispatched on the event's concrete class (Timeout
        # first — it dominates every workload in this repo), and the
        # parked waiter resumed without a _resume call frame.  Heap pops
        # are monotone by construction (negative delays are rejected at
        # scheduling time), so the corruption check lives only on the
        # slow step() path.  The inline resume block is deliberately
        # repeated in all three dispatch arms: hoisting it into a helper
        # costs a Python call frame per event, which is precisely what
        # this loop exists to avoid.
        queue = self._queue
        times = self._times
        buckets = self._buckets
        pop = heappop
        free = self._free_timeouts
        cap = self._pool_cap
        while True:
            if stop_evt is not None and stop_evt._processed:
                break
            entry = self._next
            if entry is not None:
                self._next = None
                time, _prio, _seq, event = entry
                # Drop the tuple: the refcount==2 recycle test below
                # must see only this frame's reference to the event.
                entry = None
            elif buckets is None:
                if queue:
                    time, _prio, _seq, event = pop(queue)
                    if queue and queue[0][0] == time:
                        # Same-instant cohort (a wavefront diagonal
                        # firing together): hoist the next member into
                        # the empty slot so the cohort drains through
                        # slotted pops and pushes during dispatch
                        # compare against it first.
                        self._next = pop(queue)
                else:
                    break
            elif times:
                # Calendar pop (the inlined body of _pop_bucket): front
                # bucket, first undrained lane in priority order; the
                # extraction that empties a bucket retires it in place.
                time = times[0]
                b = buckets[time]
                i = b[3]
                lane = b[0]
                if i < len(lane):
                    event = lane[i]
                    lane[i] = None
                    i += 1
                    b[3] = i
                    if i == len(lane) and b[4] == len(b[1]) and b[5] == len(b[2]):
                        pop(times)
                        del buckets[time]
                else:
                    i = b[4]
                    lane = b[1]
                    if i < len(lane):
                        event = lane[i]
                        lane[i] = None
                        i += 1
                        b[4] = i
                        if i == len(lane) and b[5] == len(b[2]):
                            pop(times)
                            del buckets[time]
                    else:
                        i = b[5]
                        lane = b[2]
                        event = lane[i]
                        lane[i] = None
                        i += 1
                        b[5] = i
                        if i == len(lane):
                            pop(times)
                            del buckets[time]
            else:
                break
            self._now = time
            cls = type(event)
            if cls is Timeout:
                event._processed = True
                waiter = event._waiter
                if waiter is not None:
                    # Timeouts always succeed: resume the waiter inline.
                    event._waiter = None
                    value = event._value
                    self._active_process = waiter
                    send = waiter._send
                    while True:
                        try:
                            target = send(value)
                        except StopIteration as stop:
                            self._active_process = None
                            waiter._target = None
                            # Inline Event.succeed: process termination is
                            # the spawn/join hot path.
                            if waiter._triggered:
                                raise SimulationError("event already triggered")
                            waiter._triggered = True
                            waiter._ok = True
                            waiter._value = stop.value
                            self._seq = seq = self._seq + 1
                            nxt = self._next
                            if buckets is None:
                                entry = (time, NORMAL, seq, waiter)
                                if nxt is None:
                                    if queue:
                                        heappush(queue, entry)
                                    else:
                                        self._next = entry
                                elif entry < nxt:
                                    self._next = entry
                                    heappush(queue, nxt)
                                else:
                                    heappush(queue, entry)
                            elif nxt is None and not buckets:
                                self._next = (time, NORMAL, seq, waiter)
                            elif nxt is not None and (time, NORMAL, seq, waiter) < nxt:
                                self._next = (time, NORMAL, seq, waiter)
                                _insert_displaced(self, nxt)
                            else:
                                b = buckets.get(time)
                                if b is None:
                                    heappush(times, time)
                                    buckets[time] = [[], [waiter], [], 0, 0, 0]
                                else:
                                    b[1].append(waiter)
                            # Clear the parked-yield local: a stale reference
                            # would defeat the timeout recycle test below.
                            target = None
                            break
                        except BaseException as exc:
                            self._active_process = None
                            waiter._target = None
                            waiter.fail(exc)
                            target = None
                            break
                        if type(target) is Timeout and target.sim is self:
                            if target._processed:
                                value = target._value
                                continue
                            waiter._target = target
                            if target._waiter is None and not target.callbacks:
                                target._waiter = waiter
                            else:
                                target.callbacks.append(waiter._resume)
                            self._active_process = None
                            break
                        if (
                            isinstance(target, Event)
                            and target.sim is self
                            and not target._processed
                        ):
                            waiter._target = target
                            if target._waiter is None and not target.callbacks:
                                target._waiter = waiter
                            else:
                                target.callbacks.append(waiter._resume)
                            self._active_process = None
                            break
                        self._active_process = None
                        waiter._park_slow(target)
                        break
                # Callbacks registered after the parked waiter fire after
                # it, preserving registration order; with none, recycle
                # the timeout if the loop holds the only live reference
                # (into the one-deep slot first, the overflow list once
                # the slot is taken).
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                elif cap and getrefcount(event) == 2:
                    if self._free_timeout is None:
                        # callbacks (the original empty list) stays attached.
                        event._value = None
                        event._processed = False
                        self._free_timeout = event
                    elif len(free) < cap:
                        event._value = None
                        event._processed = False
                        free.append(event)
                    else:
                        event.callbacks = None
                else:
                    event.callbacks = None
                continue
            if cls is _Bootstrap:
                waiter = event.process
                value = None
                self._active_process = waiter
                send = waiter._send
                while True:
                    try:
                        target = send(value)
                    except StopIteration as stop:
                        self._active_process = None
                        waiter._target = None
                        # Inline Event.succeed: process termination is
                        # the spawn/join hot path.
                        if waiter._triggered:
                            raise SimulationError("event already triggered")
                        waiter._triggered = True
                        waiter._ok = True
                        waiter._value = stop.value
                        self._seq = seq = self._seq + 1
                        nxt = self._next
                        if buckets is None:
                            entry = (time, NORMAL, seq, waiter)
                            if nxt is None:
                                if queue:
                                    heappush(queue, entry)
                                else:
                                    self._next = entry
                            elif entry < nxt:
                                self._next = entry
                                heappush(queue, nxt)
                            else:
                                heappush(queue, entry)
                        elif nxt is None and not buckets:
                            self._next = (time, NORMAL, seq, waiter)
                        elif nxt is not None and (time, NORMAL, seq, waiter) < nxt:
                            self._next = (time, NORMAL, seq, waiter)
                            _insert_displaced(self, nxt)
                        else:
                            b = buckets.get(time)
                            if b is None:
                                heappush(times, time)
                                buckets[time] = [[], [waiter], [], 0, 0, 0]
                            else:
                                b[1].append(waiter)
                        # Clear the parked-yield local: a stale reference
                        # would defeat the timeout recycle test below.
                        target = None
                        break
                    except BaseException as exc:
                        self._active_process = None
                        waiter._target = None
                        waiter.fail(exc)
                        target = None
                        break
                    if type(target) is Timeout and target.sim is self:
                        if target._processed:
                            value = target._value
                            continue
                        waiter._target = target
                        if target._waiter is None and not target.callbacks:
                            target._waiter = waiter
                        else:
                            target.callbacks.append(waiter._resume)
                        self._active_process = None
                        break
                    if (
                        isinstance(target, Event)
                        and target.sim is self
                        and not target._processed
                    ):
                        waiter._target = target
                        if target._waiter is None and not target.callbacks:
                            target._waiter = waiter
                        else:
                            target.callbacks.append(waiter._resume)
                        self._active_process = None
                        break
                    self._active_process = None
                    waiter._park_slow(target)
                    break
                # Recycle the two-word marker for the next spawn (the
                # loop holds the only reference once the entry is gone).
                if self._free_bootstrap is None and getrefcount(event) == 2:
                    event.process = None
                    self._free_bootstrap = event
                continue
            if cls is _Stop:
                if event is marker:
                    break
                # Sentinel orphaned by an earlier run that raised: skip.
                continue
            # Generic event (Process termination, bare Events, conditions).
            event._processed = True
            waiter = event._waiter
            if waiter is not None and event._ok:
                event._waiter = None
                value = event._value
                self._active_process = waiter
                send = waiter._send
                while True:
                    try:
                        target = send(value)
                    except StopIteration as stop:
                        self._active_process = None
                        waiter._target = None
                        # Inline Event.succeed: process termination is
                        # the spawn/join hot path.
                        if waiter._triggered:
                            raise SimulationError("event already triggered")
                        waiter._triggered = True
                        waiter._ok = True
                        waiter._value = stop.value
                        self._seq = seq = self._seq + 1
                        nxt = self._next
                        if buckets is None:
                            entry = (time, NORMAL, seq, waiter)
                            if nxt is None:
                                if queue:
                                    heappush(queue, entry)
                                else:
                                    self._next = entry
                            elif entry < nxt:
                                self._next = entry
                                heappush(queue, nxt)
                            else:
                                heappush(queue, entry)
                        elif nxt is None and not buckets:
                            self._next = (time, NORMAL, seq, waiter)
                        elif nxt is not None and (time, NORMAL, seq, waiter) < nxt:
                            self._next = (time, NORMAL, seq, waiter)
                            _insert_displaced(self, nxt)
                        else:
                            b = buckets.get(time)
                            if b is None:
                                heappush(times, time)
                                buckets[time] = [[], [waiter], [], 0, 0, 0]
                            else:
                                b[1].append(waiter)
                        # Clear the parked-yield local: a stale reference
                        # would defeat the timeout recycle test below.
                        target = None
                        break
                    except BaseException as exc:
                        self._active_process = None
                        waiter._target = None
                        waiter.fail(exc)
                        target = None
                        break
                    if type(target) is Timeout and target.sim is self:
                        if target._processed:
                            value = target._value
                            continue
                        waiter._target = target
                        if target._waiter is None and not target.callbacks:
                            target._waiter = waiter
                        else:
                            target.callbacks.append(waiter._resume)
                        self._active_process = None
                        break
                    if (
                        isinstance(target, Event)
                        and target.sim is self
                        and not target._processed
                    ):
                        waiter._target = target
                        if target._waiter is None and not target.callbacks:
                            target._waiter = waiter
                        else:
                            target.callbacks.append(waiter._resume)
                        self._active_process = None
                        break
                    self._active_process = None
                    waiter._park_slow(target)
                    break
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                continue
            if waiter is not None:
                # Failed event with a parked waiter: the generic path
                # throws the failure into the generator.
                event._waiter = None
                waiter._resume(event)
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                raise event._value
        if marker is not None:
            self._now = horizon
        if stop_evt is not None:
            if stop_evt._processed:
                if stop_evt._ok:
                    return stop_evt._value
                stop_evt.defused = True
                raise stop_evt._value
            raise SimulationError(
                "simulation ran out of events before the awaited event fired"
            )
        return None
