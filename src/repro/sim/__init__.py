"""Discrete-event simulation engine.

A compact, dependency-free process-oriented DES kernel in the style of
SimPy: simulation processes are Python generators that ``yield`` events
(timeouts, triggerable events, resource requests) and are resumed by the
:class:`~repro.sim.engine.Simulator` event loop when those events fire.

The engine is the substrate on which all of the Roadrunner machine models
run: links are bandwidth-shared resources, DMA engines and NICs are
servers, and application ranks (e.g. the distributed Sweep3D sweep) are
processes exchanging simulated messages.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import BandwidthLink, Resource, Store
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthLink",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
