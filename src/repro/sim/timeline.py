"""Busy-interval timelines and text Gantt rendering.

A :class:`Timeline` collects (actor, start, end, label) intervals —
e.g. per-rank compute blocks of the distributed sweep — and renders
them as a monospace Gantt chart, giving terminal-level visibility into
pipeline fill, drain, and stragglers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Interval", "Timeline"]


@dataclass(frozen=True)
class Interval:
    """One busy span of one actor."""

    actor: str
    start: float
    end: float
    label: str = ""

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError("interval ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """Accumulates intervals and summarizes utilization."""

    intervals: list[Interval] = field(default_factory=list)

    def record(self, actor: str, start: float, end: float, label: str = "") -> None:
        """Append one busy interval."""
        self.intervals.append(Interval(actor, start, end, label))

    def actors(self) -> list[str]:
        """Actor names in first-appearance order."""
        seen: dict[str, None] = {}
        for iv in self.intervals:
            seen.setdefault(iv.actor, None)
        return list(seen)

    @property
    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) over all intervals."""
        if not self.intervals:
            return (0.0, 0.0)
        return (
            min(iv.start for iv in self.intervals),
            max(iv.end for iv in self.intervals),
        )

    def busy_time(self, actor: str) -> float:
        """Total busy seconds of one actor (intervals assumed disjoint)."""
        return sum(iv.duration for iv in self.intervals if iv.actor == actor)

    def utilization(self, actor: str) -> float:
        """Busy fraction of the whole timeline span."""
        lo, hi = self.span
        total = hi - lo
        return self.busy_time(actor) / total if total > 0 else 0.0

    def render(self, width: int = 60, busy_char: str = "#", idle_char: str = ".") -> str:
        """A text Gantt: one row per actor, ``width`` columns of time."""
        if width < 1:
            raise ValueError("width must be >= 1")
        lo, hi = self.span
        total = hi - lo
        names = self.actors()
        if not names or total <= 0:
            return "(empty timeline)"
        name_w = max(len(n) for n in names)
        lines = []
        for name in names:
            row = [idle_char] * width
            for iv in self.intervals:
                if iv.actor != name:
                    continue
                a = int((iv.start - lo) / total * width)
                b = max(a + 1, int((iv.end - lo) / total * width))
                for col in range(a, min(b, width)):
                    row[col] = busy_char
            lines.append(
                f"{name.ljust(name_w)} |{''.join(row)}| "
                f"{self.utilization(name):5.1%}"
            )
        return "\n".join(lines)
