"""Calendar-queue event scheduling for the DES kernel.

The seed engine keeps the future-event set in one binary heap ordered by
``(time, priority, seq)``.  Heap pushes and pops cost O(log n)
comparisons each, and the full-machine workloads (3,060+ rank Sweep3D
wavefronts) spend a measurable slice of their event budget on heap
maintenance — while exhibiting a strongly *clustered* schedule: most
events land on a small set of distinct instants (a wavefront diagonal's
cohort all fires at the same simulated time).

The calendar queue exploits that clustering.  Instead of one heap of
entries it keeps a **calendar of occupied instants**:

* ``_times`` — a small heap ("spine") of the *distinct* times that
  currently have scheduled events.  Its size is the number of occupied
  instants D, not the number of pending events n (for the full-machine
  sweep D is orders of magnitude below n).
* ``_buckets`` — a dict mapping each occupied time to a *bucket*: three
  priority **lanes** (``URGENT``, ``NORMAL``, ``_AFTER``) holding the
  events scheduled for that instant, each with a drain index.

Because the engine hands out ``seq`` numbers monotonically, plain
``list.append`` keeps every lane sorted by ``seq`` — scheduling into an
occupied instant is a dict lookup plus an append, O(1), with **no entry
tuple and no comparisons at all**.  Popping takes the front bucket's
first undrained lane in priority order, O(1); only the first event of a
*new* instant pays an O(log D) spine push, and retiring an exhausted
instant pays an O(log D) spine pop.  The pop order is exactly the
heap's ``(time, priority, seq)`` total order, so every simulation trace
is bit-identical under either backend — the determinism contract, not
wall-clock, is the acceptance oracle (``tests/test_calendar.py``
property-checks this against a ``heapq`` reference, and the perf smoke
tier re-runs the golden trace under both).

The engine keeps its one-slot min buffer (``Simulator._next``) in front
of the calendar, exactly as it sits in front of the heap: the
push-one/pop-one cadence of a lone timeout chain stays in the slot and
never touches the spine, dict, or lanes, so sparse workloads keep the
seed's fast path while clustered workloads get O(1) cohort scheduling.
An entry displaced from the slot by a smaller one carries an *older*
``seq`` than anything stored, so it is inserted at the front of its
lane's undrained region (the one place plain append would misorder);
see ``engine._insert_displaced``.

Buckets are retired **eagerly**: the pop that extracts a bucket's last
undrained event also removes the bucket and its spine time.  The spine
therefore never holds duplicate or stale ("husk") times, ``peek()`` is
``times[0]`` verbatim, and — because no user code runs between the
extraction and the retirement — a dispatch that schedules back into the
just-retired instant simply re-creates the bucket with a fresh spine
push, preserving order (everything previously at that instant has
already been extracted).

Backend selection
-----------------
``Simulator(scheduler="calendar" | "heap")`` picks the backend per
simulator; the default is :data:`DEFAULT_SCHEDULER`, read once from the
``REPRO_SCHED`` environment variable (``calendar`` unless overridden).
The heap remains the reference backend — CI runs the perf smoke tier
under both so neither can rot.

For speed the engine *inlines* the lane push/pop at its hot sites (the
same treatment the seed gives ``heappush``); the :class:`CalendarQueue`
class below is the standalone, uninlined form of the same structure —
the executable specification the property tests exercise, with the lazy
cancellation the engine itself never needs (the kernel never removes a
scheduled event; it detaches waiters instead).
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heappop, heappush
from typing import Any

__all__ = ["SCHEDULERS", "DEFAULT_SCHEDULER", "CalendarQueue"]

#: the recognized ``Simulator(scheduler=...)`` / ``REPRO_SCHED`` values
SCHEDULERS = ("calendar", "heap")


def _default_scheduler() -> str:
    value = os.environ.get("REPRO_SCHED", "calendar")
    if value not in SCHEDULERS:
        raise ValueError(
            f"REPRO_SCHED={value!r} is not a scheduler backend; "
            f"expected one of {SCHEDULERS}"
        )
    return value


#: backend used when ``Simulator(scheduler=None)``: the ``REPRO_SCHED``
#: environment variable, else ``"calendar"``.  Read once at import;
#: tests monkeypatch this attribute to pin a backend.
DEFAULT_SCHEDULER = _default_scheduler()

# Lane indices inside a bucket: [urgent, normal, after, ui, ni, ai].
# The lane index *is* the engine's event priority (URGENT=0, NORMAL=1,
# horizon sentinel _AFTER=2), so ``bucket[priority]`` selects the lane
# and ``bucket[3 + priority]`` its drain index.
_U, _N, _A, _UI, _NI, _AI = range(6)


class CalendarQueue:
    """Standalone calendar queue over ``(time, priority, seq)`` entries.

    The uninlined specification of the structure the engine embeds:
    a spine heap of distinct occupied times over per-instant priority
    lanes, popping in exactly the ``(time, priority, seq)`` order a
    ``heapq`` of the same entries would produce.  Unlike the engine's
    embedded form it supports **lazy cancellation**: :meth:`cancel`
    marks a pending ``seq`` and :meth:`pop` silently skips marked
    entries when they surface (rescheduling is cancel + push with a
    fresh ``seq``).  ``seq`` numbers must be unique; pushes need not be
    monotone — an out-of-order ``seq`` is placed by bisection, the
    monotone common case degenerates to an append.
    """

    __slots__ = ("_times", "_buckets", "_cancelled", "_pending")

    def __init__(self) -> None:
        self._times: list[float] = []
        self._buckets: dict[float, list] = {}
        self._cancelled: set[int] = set()
        self._pending: set[int] = set()

    def __len__(self) -> int:
        return len(self._pending)

    def push(self, time: float, priority: int, seq: int, item: Any = None) -> None:
        """Schedule ``item`` at ``(time, priority, seq)``."""
        if seq in self._pending:
            raise ValueError(f"duplicate seq {seq}")
        bucket = self._buckets.get(time)
        if bucket is None:
            heappush(self._times, time)
            bucket = [[], [], [], 0, 0, 0]
            self._buckets[time] = bucket
        lane = bucket[priority]
        # seqs are unique, so insort never compares items; a monotone
        # push lands at the end after one comparison.  The drain index
        # bounds the search: positions below it hold popped/cancelled
        # husks (None) that must never be compared against.
        insort(lane, (seq, item), lo=bucket[3 + priority])
        self._pending.add(seq)

    def cancel(self, seq: int) -> bool:
        """Lazily cancel the pending entry carrying ``seq``.

        Returns True if ``seq`` was pending; the entry stays in its
        lane and is discarded when a pop surfaces it.
        """
        if seq not in self._pending:
            return False
        self._pending.remove(seq)
        self._cancelled.add(seq)
        return True

    def _front(self):
        """(bucket, lane, drain-index-slot) of the next live entry."""
        times, buckets = self._times, self._buckets
        cancelled = self._cancelled
        while times:
            t = times[0]
            bucket = buckets[t]
            for lane_idx in (_U, _N, _A):
                lane = bucket[lane_idx]
                i = bucket[3 + lane_idx]
                while i < len(lane):
                    seq = lane[i][0]
                    if seq not in cancelled:
                        bucket[3 + lane_idx] = i
                        return t, bucket, lane_idx, i
                    cancelled.remove(seq)
                    lane[i] = None
                    i += 1
                bucket[3 + lane_idx] = i
            heappop(times)
            del buckets[t]
        return None

    def peek(self) -> tuple[float, int, int] | None:
        """``(time, priority, seq)`` of the next live entry, or None."""
        front = self._front()
        if front is None:
            return None
        t, bucket, lane_idx, i = front
        return t, lane_idx, bucket[lane_idx][i][0]

    def pop(self) -> tuple[float, int, int, Any]:
        """Remove and return the next live ``(time, priority, seq, item)``."""
        front = self._front()
        if front is None:
            raise IndexError("pop from an empty CalendarQueue")
        t, bucket, lane_idx, i = front
        lane = bucket[lane_idx]
        seq, item = lane[i]
        lane[i] = None
        bucket[3 + lane_idx] = i + 1
        self._pending.remove(seq)
        # Exhausted buckets are retired by the next _front() walk; the
        # engine's embedded form retires eagerly at the extraction site.
        return t, lane_idx, seq, item
