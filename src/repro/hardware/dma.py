"""Memory Flow Controller (MFC) DMA engine model.

SPEs reach main memory only through explicit MFC DMA transfers between
local store and the Cell's memory controller (paper §II-A).  The model
captures the three costs that matter to the Sweep3D port: per-command
setup, the 16 KB hardware transfer-size limit (larger requests are split
into list elements), and the 25.6 GB/s controller bandwidth shared by all
eight SPEs on the chip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Event, Simulator
from repro.sim.resources import BandwidthLink
from repro.units import GB_S, KIB, NS

__all__ = ["DMAEngine", "MFC_DMA", "SharedMemoryController"]

#: Hardware limit of a single MFC DMA command.
MFC_MAX_TRANSFER = 16 * KIB


@dataclass(frozen=True)
class DMAEngine:
    """Analytic cost model of one SPE's MFC.

    ``transfer_time(size)`` assumes an otherwise idle memory controller;
    contention across SPEs is modeled separately by
    :class:`SharedMemoryController`.
    """

    name: str
    setup_latency: float
    bandwidth: float
    max_transfer: int = MFC_MAX_TRANSFER
    #: number of in-flight commands the MFC queue supports
    queue_depth: int = 16

    def __post_init__(self):
        if self.setup_latency < 0 or self.bandwidth <= 0 or self.max_transfer <= 0:
            raise ValueError(f"invalid DMA engine parameters for {self.name!r}")

    def commands_for(self, size_bytes: int) -> int:
        """Number of hardware DMA commands a request of ``size`` needs."""
        if size_bytes < 0:
            raise ValueError("size must be >= 0")
        if size_bytes == 0:
            return 0
        return -(-size_bytes // self.max_transfer)

    def transfer_time(self, size_bytes: int, pipelined: bool = True) -> float:
        """Seconds to move ``size_bytes`` between local store and memory.

        With ``pipelined`` (double-buffered list DMA) only the first
        command's setup is exposed; otherwise setup is paid per command.
        """
        cmds = self.commands_for(size_bytes)
        if cmds == 0:
            return 0.0
        setups = self.setup_latency if pipelined else cmds * self.setup_latency
        return setups + size_bytes / self.bandwidth

    def effective_bandwidth(self, size_bytes: int, pipelined: bool = True) -> float:
        """Achieved B/s for one request of the given size."""
        if size_bytes <= 0:
            return 0.0
        return size_bytes / self.transfer_time(size_bytes, pipelined=pipelined)


#: The PowerXCell 8i MFC: ~200 ns command issue/completion overhead and
#: the 25.6 GB/s controller as the per-transfer ceiling.
MFC_DMA = DMAEngine(
    name="PowerXCell 8i MFC",
    setup_latency=200 * NS,
    bandwidth=25.6 * GB_S,
)


class SharedMemoryController:
    """DES-backed memory controller shared by the SPEs (and PPE) of one
    Cell: concurrent DMA streams fair-share the 25.6 GB/s.

    Used by the simulated Sweep3D Cell port to expose the bandwidth-bound
    behaviour the paper attributes to the earlier master/worker
    implementation (§V-B).
    """

    def __init__(self, sim: Simulator, engine: DMAEngine = MFC_DMA):
        self.sim = sim
        self.engine = engine
        self.link = BandwidthLink(sim, engine.bandwidth, name="cell-mc")

    def dma(self, size_bytes: int) -> Event:
        """Start a DMA of ``size_bytes``; returns its completion event.

        The setup latency precedes the bandwidth phase; each request is a
        separate stream into the fair-shared controller.
        """
        done = Event(self.sim)
        if size_bytes == 0:
            done.succeed(0.0)
            return done

        def runner(sim):
            yield sim.timeout(self.engine.setup_latency)
            yield self.link.transfer(size_bytes)
            return sim.now

        proc = self.sim.process(runner(self.sim), name="dma")
        proc.callbacks.append(
            lambda evt: done.succeed(evt.value) if evt.ok else done.fail(evt.value)
        )
        return done
