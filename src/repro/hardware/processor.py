"""Processor and core specification types.

A :class:`CoreSpec` declares a core's clock and per-cycle floating-point
issue widths; a :class:`ProcessorSpec` is a bag of (core, count) pairs.
Peak rates are *computed* from these declarations — the paper's headline
aggregates (1.38 Pflop/s DP, 2.91 Pflop/s SP, 435.2 Gflop/s per node from
the Cell blades, ...) must all emerge from sums over spec objects, which
is enforced by the validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheSpec", "CoreSpec", "ProcessorSpec"]


@dataclass(frozen=True)
class CacheSpec:
    """One level of on-chip storage (cache or local store)."""

    name: str
    capacity_bytes: int
    #: load-to-use latency in core cycles, if modeled (0 = unspecified)
    latency_cycles: int = 0

    def __post_init__(self):
        if self.capacity_bytes <= 0:
            raise ValueError(f"cache {self.name!r} needs positive capacity")


@dataclass(frozen=True)
class CoreSpec:
    """A single core (or SPE) with its issue widths and private storage."""

    name: str
    clock_hz: float
    dp_flops_per_cycle: float
    sp_flops_per_cycle: float
    caches: tuple[CacheSpec, ...] = ()

    def __post_init__(self):
        if self.clock_hz <= 0:
            raise ValueError(f"core {self.name!r} needs a positive clock")
        if self.dp_flops_per_cycle < 0 or self.sp_flops_per_cycle < 0:
            raise ValueError(f"core {self.name!r} has negative issue width")

    @property
    def peak_dp_flops(self) -> float:
        """Peak double-precision rate in flop/s."""
        return self.dp_flops_per_cycle * self.clock_hz

    @property
    def peak_sp_flops(self) -> float:
        """Peak single-precision rate in flop/s."""
        return self.sp_flops_per_cycle * self.clock_hz

    @property
    def on_chip_bytes(self) -> int:
        """Total private on-chip storage (caches + local store)."""
        return sum(c.capacity_bytes for c in self.caches)


@dataclass(frozen=True)
class ProcessorSpec:
    """A processor chip: a multiset of cores plus off-chip memory.

    Attributes
    ----------
    core_counts:
        Tuple of ``(core_spec, count)`` pairs; e.g. the PowerXCell 8i is
        ``((PPE, 1), (SPE, 8))``.
    memory_bytes:
        Off-chip memory attached to this processor's controller.
    memory_bandwidth:
        Peak bandwidth of that controller in B/s.
    """

    name: str
    core_counts: tuple[tuple[CoreSpec, int], ...]
    memory_bytes: int = 0
    memory_bandwidth: float = 0.0
    tdp_watts: float = 0.0
    shared_caches: tuple[CacheSpec, ...] = field(default=())

    def __post_init__(self):
        if not self.core_counts:
            raise ValueError(f"processor {self.name!r} has no cores")
        for core, count in self.core_counts:
            if count < 1:
                raise ValueError(f"processor {self.name!r}: count for {core.name!r} < 1")

    @property
    def core_count(self) -> int:
        """Total number of cores of all kinds."""
        return sum(count for _, count in self.core_counts)

    def cores_named(self, name: str) -> tuple[CoreSpec, int]:
        """Return the ``(spec, count)`` pair whose core name is ``name``."""
        for core, count in self.core_counts:
            if core.name == name:
                return core, count
        raise KeyError(f"processor {self.name!r} has no core named {name!r}")

    @property
    def peak_dp_flops(self) -> float:
        """Chip peak DP rate in flop/s (sum over cores)."""
        return sum(core.peak_dp_flops * count for core, count in self.core_counts)

    @property
    def peak_sp_flops(self) -> float:
        """Chip peak SP rate in flop/s (sum over cores)."""
        return sum(core.peak_sp_flops * count for core, count in self.core_counts)

    @property
    def on_chip_bytes(self) -> int:
        """Total on-chip storage: per-core private plus chip-shared."""
        per_core = sum(core.on_chip_bytes * count for core, count in self.core_counts)
        shared = sum(c.capacity_bytes for c in self.shared_caches)
        return per_core + shared
