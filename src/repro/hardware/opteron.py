"""AMD Opteron and Intel Tigerton processor specifications.

The Roadrunner LS21 blade carries two dual-core Opteron 2210 HE chips at
1.8 GHz, each core issuing 2 DP (4 SP) flops per cycle — 14.4 Gflop/s DP
per blade (paper §II-A).  The quad-core Opteron and Tigerton entries are
the comparator sockets of Fig 12.
"""

from __future__ import annotations

from repro.hardware.processor import CacheSpec, CoreSpec, ProcessorSpec
from repro.units import GHZ, GB_S, GIB, KIB, MIB

__all__ = [
    "OPTERON_2210_HE",
    "OPTERON_QUAD_2356",
    "TIGERTON_X7350",
    "OPTERON_CORE",
]

#: One Opteron 2210 HE core: 1.8 GHz, 2 DP / 4 SP flops per cycle,
#: 64 KB L1I + 64 KB L1D private, 2 MB private L2 (paper §II-A).
OPTERON_CORE = CoreSpec(
    name="opteron-2210he-core",
    clock_hz=1.8 * GHZ,
    dp_flops_per_cycle=2.0,
    sp_flops_per_cycle=4.0,
    caches=(
        CacheSpec("L1D", 64 * KIB, latency_cycles=3),
        CacheSpec("L1I", 64 * KIB),
        CacheSpec("L2", 2 * MIB, latency_cycles=12),
    ),
)

#: The Roadrunner Opteron socket: dual-core, 4 GiB of 667 MHz DDR2 per
#: core (the blade has 4 GiB per core; memory is per-socket here), peak
#: 10.7 GB/s to main memory per socket (Fig 1).
OPTERON_2210_HE = ProcessorSpec(
    name="Opteron 2210 HE",
    core_counts=((OPTERON_CORE, 2),),
    memory_bytes=8 * GIB,
    memory_bandwidth=10.7 * GB_S,
    tdp_watts=68.0,
)

_QUAD_CORE = CoreSpec(
    name="opteron-2356-core",
    clock_hz=2.0 * GHZ,
    dp_flops_per_cycle=4.0,  # Barcelona: 128-bit FP units
    sp_flops_per_cycle=8.0,
    caches=(
        CacheSpec("L1D", 64 * KIB, latency_cycles=3),
        CacheSpec("L1I", 64 * KIB),
        CacheSpec("L2", 512 * KIB, latency_cycles=12),
    ),
)

#: Quad-core Opteron comparator of Fig 12 ("Opteron Quad-core 2.0GHz").
OPTERON_QUAD_2356 = ProcessorSpec(
    name="Opteron 2356 (quad-core 2.0 GHz)",
    core_counts=((_QUAD_CORE, 4),),
    memory_bytes=8 * GIB,
    memory_bandwidth=12.8 * GB_S,
    shared_caches=(CacheSpec("L3", 2 * MIB),),
    tdp_watts=75.0,
)

_TIGERTON_CORE = CoreSpec(
    name="tigerton-x7350-core",
    clock_hz=2.93 * GHZ,
    dp_flops_per_cycle=4.0,
    sp_flops_per_cycle=8.0,
    caches=(
        CacheSpec("L1D", 32 * KIB, latency_cycles=3),
        CacheSpec("L1I", 32 * KIB),
    ),
)

#: Quad-core Intel Tigerton comparator of Fig 12 ("Tigerton 2.93GHz").
TIGERTON_X7350 = ProcessorSpec(
    name="Intel Xeon X7350 (Tigerton, quad-core 2.93 GHz)",
    core_counts=((_TIGERTON_CORE, 4),),
    memory_bytes=8 * GIB,
    memory_bandwidth=8.5 * GB_S,
    shared_caches=(CacheSpec("L2", 8 * MIB),),
    tdp_watts=130.0,
)
