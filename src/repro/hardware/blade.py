"""Blade assemblies: the IBM LS21 (Opteron) and QS22 (PowerXCell 8i).

A blade is two sockets plus their memory; peak rates and capacities are
sums over the contained :class:`~repro.hardware.processor.ProcessorSpec`
objects (the 14.4 Gflop/s DP LS21 figure of §II-A is a derived check).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cell import CELL_BE, POWERXCELL_8I
from repro.hardware.opteron import OPTERON_2210_HE
from repro.hardware.processor import ProcessorSpec

__all__ = ["Blade", "LS21_BLADE", "QS22_BLADE", "QS21_BLADE"]


@dataclass(frozen=True)
class Blade:
    """A compute blade: some number of identical processor sockets."""

    name: str
    processor: ProcessorSpec
    socket_count: int
    #: nominal power draw of the whole blade in watts (used by Green500)
    power_watts: float = 0.0

    def __post_init__(self):
        if self.socket_count < 1:
            raise ValueError(f"blade {self.name!r} needs >= 1 socket")

    @property
    def peak_dp_flops(self) -> float:
        return self.processor.peak_dp_flops * self.socket_count

    @property
    def peak_sp_flops(self) -> float:
        return self.processor.peak_sp_flops * self.socket_count

    @property
    def memory_bytes(self) -> int:
        return self.processor.memory_bytes * self.socket_count

    @property
    def core_count(self) -> int:
        return self.processor.core_count * self.socket_count

    @property
    def on_chip_bytes(self) -> int:
        return self.processor.on_chip_bytes * self.socket_count


#: The triblade's Opteron blade: two dual-core Opteron 2210 HE sockets,
#: 4 GiB per core (16 GiB per blade), 14.4 Gflop/s DP.
LS21_BLADE = Blade(
    name="IBM LS21",
    processor=OPTERON_2210_HE,
    socket_count=2,
    power_watts=185.0,
)

#: One of the triblade's two Cell blades: two PowerXCell 8i sockets with
#: 4 GiB DDR2-800 each, 217.6 Gflop/s DP per blade.
QS22_BLADE = Blade(
    name="IBM QS22",
    processor=POWERXCELL_8I.spec,
    socket_count=2,
    power_watts=235.0,
)

#: The earlier Cell BE blade (cache-coherent sockets; paper §V-C) — the
#: platform of the prior Sweep3D Cell port compared in Table IV.
QS21_BLADE = Blade(
    name="IBM QS21",
    processor=CELL_BE.spec,
    socket_count=2,
    power_watts=230.0,
)
