"""SPE instruction-issue pipeline model (source of Figs 4 and 5).

The paper characterizes each SPE execution-unit *instruction group* with
three assembly-coded microbenchmark quantities:

* **latency** — cycles from pipeline entry to exit,
* **local stall** — minimum cycles between two issues to the same unit,
* **global stall** — cycles the whole processor stalls before *any*
  further instruction can issue.

The *repetition distance* plotted in Fig 5 is ``local + global`` stall; a
value of 1 means fully pipelined.  The only difference between the Cell
BE and the PowerXCell 8i is the FPD (double-precision) group: latency
13 → 9 cycles, and repetition 7 → 1 (full pipelining).  Everything the
library claims about CBE→PXC8i speedups — the 7× DP peak ratio, Sweep3D's
1.9×, the §IV-A application factors — derives from these two tables via
the :class:`SPEPipeline` issue simulator.

References for the constant values: the paper's Figs 4–5 plus the SPU
pipeline documentation cited there ([21], [22]).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

__all__ = [
    "InstructionGroup",
    "Pipe",
    "GroupTiming",
    "PipelineTable",
    "SPEPipeline",
    "Instruction",
    "build_interleaved_stream",
    "INSTRUCTION_GROUPS",
    "CELL_BE_TABLE",
    "POWERXCELL_8I_TABLE",
    "pipeline_table_for",
]


class Pipe(enum.Enum):
    """SPE dual-issue pipes: EVEN executes arithmetic, ODD does
    loads/stores, shuffles, and branches."""

    EVEN = "even"
    ODD = "odd"


class InstructionGroup(enum.Enum):
    """The nine instruction groups of the paper's microbenchmarks."""

    BR = "BR"      # branch
    FP6 = "FP6"    # 6-cycle single-precision floating point
    FP7 = "FP7"    # 7-cycle floating point (integer multiply / converts)
    FPD = "FPD"    # double-precision floating point
    FX2 = "FX2"    # 2-cycle fixed point
    FX3 = "FX3"    # word-rotate/shift class fixed point
    FXB = "FXB"    # byte operations
    LS = "LS"      # local-store load/store
    SHUF = "SHUF"  # shuffle/quadword ops


#: Stable iteration order matching the x-axis of Figs 4-5.
INSTRUCTION_GROUPS: tuple[InstructionGroup, ...] = (
    InstructionGroup.BR,
    InstructionGroup.FP6,
    InstructionGroup.FP7,
    InstructionGroup.FPD,
    InstructionGroup.FX2,
    InstructionGroup.FX3,
    InstructionGroup.FXB,
    InstructionGroup.LS,
    InstructionGroup.SHUF,
)

#: Which pipe each group issues on.
GROUP_PIPE: Mapping[InstructionGroup, Pipe] = {
    InstructionGroup.BR: Pipe.ODD,
    InstructionGroup.FP6: Pipe.EVEN,
    InstructionGroup.FP7: Pipe.EVEN,
    InstructionGroup.FPD: Pipe.EVEN,
    InstructionGroup.FX2: Pipe.EVEN,
    InstructionGroup.FX3: Pipe.EVEN,
    InstructionGroup.FXB: Pipe.EVEN,
    InstructionGroup.LS: Pipe.ODD,
    InstructionGroup.SHUF: Pipe.ODD,
}

#: SIMD flop payload of one instruction, for groups that do flops.  FPD is
#: a 2-wide DP FMA (4 flops); FP6 is a 4-wide SP FMA (8 flops).
GROUP_FLOPS: Mapping[InstructionGroup, int] = {
    InstructionGroup.FPD: 4,
    InstructionGroup.FP6: 8,
}


@dataclass(frozen=True)
class GroupTiming:
    """Microbenchmark-visible timing of one instruction group."""

    latency: int
    local_stall: int
    global_stall: int

    def __post_init__(self):
        if self.latency < 1:
            raise ValueError("latency must be >= 1 cycle")
        if self.local_stall < 1:
            raise ValueError("local stall (min issue distance) must be >= 1")
        if self.global_stall < 0:
            raise ValueError("global stall must be >= 0")

    @property
    def repetition(self) -> int:
        """Repetition distance as plotted in Fig 5 (1 = fully pipelined)."""
        return self.local_stall + self.global_stall


@dataclass(frozen=True)
class PipelineTable:
    """Per-group timings of one Cell variant's SPE."""

    name: str
    timings: Mapping[InstructionGroup, GroupTiming]

    def __post_init__(self):
        missing = set(INSTRUCTION_GROUPS) - set(self.timings)
        if missing:
            raise ValueError(f"pipeline table {self.name!r} missing groups: {missing}")

    def latency(self, group: InstructionGroup) -> int:
        return self.timings[group].latency

    def repetition(self, group: InstructionGroup) -> int:
        return self.timings[group].repetition

    def flops_per_cycle(self, group: InstructionGroup) -> float:
        """Sustained flops/cycle from back-to-back issue of ``group``."""
        flops = GROUP_FLOPS.get(group, 0)
        return flops / self.timings[group].repetition

    @property
    def dp_flops_per_cycle(self) -> float:
        """Peak sustained DP flops/cycle (back-to-back FPD FMAs)."""
        return self.flops_per_cycle(InstructionGroup.FPD)

    @property
    def sp_flops_per_cycle(self) -> float:
        """Peak sustained SP flops/cycle (back-to-back FP6 FMAs)."""
        return self.flops_per_cycle(InstructionGroup.FP6)


def _table(name: str, rows: dict[InstructionGroup, tuple[int, int, int]]) -> PipelineTable:
    return PipelineTable(
        name=name,
        timings={g: GroupTiming(*rows[g]) for g in INSTRUCTION_GROUPS},
    )


_G = InstructionGroup

#: Cell BE (PlayStation 3-era) SPE: FPD is 13-cycle latency and stalls the
#: processor 6 cycles per issue (repetition distance 7) — the source of
#: its poor 1.83 Gflop/s DP per SPE.
CELL_BE_TABLE = _table(
    "Cell BE",
    {
        _G.BR: (4, 1, 0),
        _G.FP6: (6, 1, 0),
        _G.FP7: (7, 1, 0),
        _G.FPD: (13, 1, 6),
        _G.FX2: (2, 1, 0),
        _G.FX3: (4, 1, 0),
        _G.FXB: (4, 1, 0),
        _G.LS: (6, 1, 0),
        _G.SHUF: (4, 1, 0),
    },
)

#: PowerXCell 8i SPE: identical except the redesigned, fully pipelined
#: double-precision unit — latency 13 -> 9, repetition 7 -> 1 (Figs 4-5).
POWERXCELL_8I_TABLE = _table(
    "PowerXCell 8i",
    {
        _G.BR: (4, 1, 0),
        _G.FP6: (6, 1, 0),
        _G.FP7: (7, 1, 0),
        _G.FPD: (9, 1, 0),
        _G.FX2: (2, 1, 0),
        _G.FX3: (4, 1, 0),
        _G.FXB: (4, 1, 0),
        _G.LS: (6, 1, 0),
        _G.SHUF: (4, 1, 0),
    },
)

_TABLES = {
    "Cell BE": CELL_BE_TABLE,
    "PowerXCell 8i": POWERXCELL_8I_TABLE,
}


def pipeline_table_for(variant_name: str) -> PipelineTable:
    """Look up the pipeline table for a Cell variant by name."""
    try:
        return _TABLES[variant_name]
    except KeyError:
        raise KeyError(
            f"unknown Cell variant {variant_name!r}; known: {sorted(_TABLES)}"
        ) from None


def build_interleaved_stream(
    mix: Mapping[InstructionGroup, int], repeats: int = 1
) -> list["Instruction"]:
    """An instruction stream of ``repeats`` copies of ``mix``, with
    even- and odd-pipe instructions alternated the way a hand-scheduled
    SPE loop pairs them for dual issue."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if not mix or all(count == 0 for count in mix.values()):
        raise ValueError("instruction mix must contain instructions")
    even: list[InstructionGroup] = []
    odd: list[InstructionGroup] = []
    for group, count in mix.items():
        if count < 0:
            raise ValueError(f"negative count for {group}")
        bucket = odd if GROUP_PIPE[group] is Pipe.ODD else even
        bucket.extend([group] * count)
    template: list[InstructionGroup] = []
    e = o = 0
    while e < len(even) or o < len(odd):
        if e < len(even):
            template.append(even[e])
            e += 1
        if o < len(odd):
            template.append(odd[o])
            o += 1
    return [Instruction(g) for _ in range(repeats) for g in template]


@dataclass(frozen=True)
class Instruction:
    """One instruction in a stream fed to :class:`SPEPipeline`.

    ``depends_on`` is the index of the producing instruction in the same
    stream (or ``None``): the consumer cannot issue until the producer's
    result is available (producer issue cycle + latency).
    """

    group: InstructionGroup
    depends_on: int | None = None


class SPEPipeline:
    """Cycle-accurate-enough in-order dual-issue scheduler for one SPE.

    The model captures exactly the three effects the paper's
    microbenchmarks measure: result latency (dependent chains), per-unit
    issue spacing (local stall), and whole-processor issue stalls (global
    stall).  It schedules an instruction stream **in order**, dual-issuing
    an even-pipe and an odd-pipe instruction in the same cycle when
    possible, and returns per-instruction issue cycles.
    """

    def __init__(self, table: PipelineTable):
        self.table = table

    def schedule(self, stream: Sequence[Instruction]) -> list[int]:
        """Return the issue cycle of each instruction in ``stream``."""
        issue_cycles: list[int] = []
        unit_free = {g: 0 for g in INSTRUCTION_GROUPS}  # next cycle unit may issue
        global_free = 0  # next cycle *anything* may issue
        pipe_busy = {Pipe.EVEN: -1, Pipe.ODD: -1}  # cycle last occupied
        for idx, instr in enumerate(stream):
            timing = self.table.timings[instr.group]
            pipe = GROUP_PIPE[instr.group]
            earliest = max(global_free, unit_free[instr.group])
            if instr.depends_on is not None:
                if not 0 <= instr.depends_on < idx:
                    raise ValueError(
                        f"instruction {idx} depends on invalid index {instr.depends_on}"
                    )
                producer = stream[instr.depends_on]
                ready = issue_cycles[instr.depends_on] + self.table.latency(producer.group)
                earliest = max(earliest, ready)
            # In-order issue: cannot issue before the previous instruction.
            if issue_cycles:
                earliest = max(earliest, issue_cycles[-1])
            # One instruction per pipe per cycle.
            cycle = earliest
            while pipe_busy[pipe] >= cycle:
                cycle += 1
            issue_cycles.append(cycle)
            pipe_busy[pipe] = cycle
            unit_free[instr.group] = cycle + timing.local_stall
            if timing.global_stall:
                global_free = max(global_free, cycle + 1 + timing.global_stall)
        return issue_cycles

    def run_cycles(self, stream: Sequence[Instruction]) -> int:
        """Total cycles until the last instruction's result is available."""
        if not stream:
            return 0
        issue = self.schedule(stream)
        return max(
            c + self.table.latency(instr.group) for c, instr in zip(issue, stream)
        )

    # -- microbenchmarks (the measurements behind Figs 4 and 5) -----------
    def measure_latency(self, group: InstructionGroup, chain: int = 64) -> float:
        """Measured result latency: issue-to-issue spacing of a dependent
        chain of ``chain`` instructions of ``group``."""
        stream = [Instruction(group)] + [
            Instruction(group, depends_on=i) for i in range(chain - 1)
        ]
        issue = self.schedule(stream)
        return (issue[-1] - issue[0]) / (chain - 1)

    def measure_repetition(self, group: InstructionGroup, count: int = 64) -> float:
        """Measured repetition distance: issue-to-issue spacing of
        ``count`` *independent* instructions of ``group``."""
        stream = [Instruction(group) for _ in range(count)]
        issue = self.schedule(stream)
        return (issue[-1] - issue[0]) / (count - 1)

    def sustained_flops_per_cycle(
        self, mix: Iterable[tuple[InstructionGroup, float]], cycles_hint: int = 4096
    ) -> float:
        """Schedule a long independent stream drawn from ``mix`` (group,
        weight) pairs round-robin and return achieved flops/cycle."""
        mix = list(mix)
        total_w = sum(w for _, w in mix)
        if total_w <= 0:
            raise ValueError("instruction mix weights must sum to > 0")
        stream: list[Instruction] = []
        # Deterministic interleaving proportional to weights.
        counts = {g: 0.0 for g, _ in mix}
        for _ in range(cycles_hint):
            # Largest-remainder pick keeps the stream proportional to weights.
            best, best_deficit = None, None
            for grp, w in mix:
                deficit = w / total_w * (len(stream) + 1) - counts[grp]
                if best_deficit is None or deficit > best_deficit:
                    best, best_deficit = grp, deficit
            stream.append(Instruction(best))
            counts[best] += 1
        cycles = self.run_cycles(stream)
        flops = sum(GROUP_FLOPS.get(i.group, 0) for i in stream)
        return flops / cycles if cycles else 0.0
