"""Roofline analysis of Roadrunner's processors.

Attainable flop/s at arithmetic intensity ``I`` (flops per byte moved)
is ``min(peak, I x bandwidth)``.  Each Roadrunner compute element gets
a roofline; the SPE gets two — one against its 51.2 GB/s local store
and one against its 1/8 share of the 25.6 GB/s memory controller —
which together explain the paper's observations: Sweep3D's inner loop
is local-store-traffic bound (hence its low fraction of peak on every
processor), while the old master/worker port died on the main-memory
roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cell import POWERXCELL_8I
from repro.hardware.memory import OPTERON_MEMORY, PPE_MEMORY, SPE_LOCAL_STORE
from repro.hardware.opteron import OPTERON_2210_HE

__all__ = ["Roofline", "ROOFLINES", "sweep3d_operating_point"]


@dataclass(frozen=True)
class Roofline:
    """One compute element against one memory level."""

    name: str
    peak_flops: float
    bandwidth: float

    def __post_init__(self):
        if self.peak_flops <= 0 or self.bandwidth <= 0:
            raise ValueError(f"{self.name}: peak and bandwidth must be positive")

    def attainable(self, intensity: float) -> float:
        """Attainable flop/s at ``intensity`` flops per byte."""
        if intensity < 0:
            raise ValueError("intensity must be >= 0")
        return min(self.peak_flops, intensity * self.bandwidth)

    @property
    def ridge_point(self) -> float:
        """Intensity (flops/B) above which the element is compute-bound."""
        return self.peak_flops / self.bandwidth

    def bound(self, intensity: float) -> str:
        """'memory' below the ridge, 'compute' at or above it."""
        return "memory" if intensity < self.ridge_point else "compute"


def _spe_core():
    spe, _ = POWERXCELL_8I.spec.cores_named("SPE (PowerXCell 8i)")
    return spe


def _opteron_core():
    core, _ = OPTERON_2210_HE.cores_named("opteron-2210he-core")
    return core


def _ppe_core():
    ppe, _ = POWERXCELL_8I.spec.cores_named("PPE (PowerXCell 8i)")
    return ppe


#: The machine's rooflines (DP).  The SPE-vs-main-memory entry uses the
#: 1/8 per-SPE share of the chip's 25.6 GB/s controller.
ROOFLINES: dict[str, Roofline] = {
    "SPE vs local store": Roofline(
        "SPE vs local store",
        peak_flops=_spe_core().peak_dp_flops,
        bandwidth=SPE_LOCAL_STORE.peak_bandwidth,
    ),
    "SPE vs main memory": Roofline(
        "SPE vs main memory",
        peak_flops=_spe_core().peak_dp_flops,
        bandwidth=POWERXCELL_8I.memory_bandwidth / 8,
    ),
    "PPE vs main memory": Roofline(
        "PPE vs main memory",
        peak_flops=_ppe_core().peak_dp_flops,
        bandwidth=PPE_MEMORY.stream_triad_bandwidth(),
    ),
    "Opteron core vs main memory": Roofline(
        "Opteron core vs main memory",
        peak_flops=_opteron_core().peak_dp_flops,
        bandwidth=OPTERON_MEMORY.stream_triad_bandwidth() / 2,  # per core
    ),
}


def sweep3d_operating_point() -> dict[str, float]:
    """Sweep3D's inner loop on the local-store roofline.

    Per cell-angle: 32 flops against ~70 16-byte local-store accesses.
    The roofline's attainable rate lands close to the pipeline model's
    achieved grind rate — two independent derivations of why Sweep3D
    "does not achieve high single-core efficiency".
    """
    from repro.hardware.spe_pipeline import InstructionGroup
    from repro.sweep3d.cellport import SWEEP_MIX_PER_CELL_ANGLE, grind_time
    from repro.sweep3d.x86 import FLOPS_PER_CELL_ANGLE

    ls_bytes = SWEEP_MIX_PER_CELL_ANGLE[InstructionGroup.LS] * 16
    intensity = FLOPS_PER_CELL_ANGLE / ls_bytes
    roof = ROOFLINES["SPE vs local store"]
    achieved = FLOPS_PER_CELL_ANGLE / grind_time(POWERXCELL_8I)
    return {
        "intensity_flops_per_byte": intensity,
        "attainable_flops": roof.attainable(intensity),
        "achieved_flops": achieved,
        "fraction_of_peak": achieved / roof.peak_flops,
    }
