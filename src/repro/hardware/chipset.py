"""The Broadcom HT2100 I/O bridges of the triblade (paper Fig 1).

"The PCIe buses from the Cell blades are converted to HyperTransport
for connection to the Opteron processors using two Broadcom HT2100 I/O
controllers.  The HT2100 has a single HyperTransport x16 port and three
PCIe x8 ports.  The third port on one of the HT2100 connects a Mellanox
4x DDR InfiniBand host channel adapter."

Like the fabric's crossbars, the bridges are wired port-by-port and
validated against their budgets, so the triblade's internal structure
(which Cell reaches which Opteron socket, why the HCA sits next to
cores 1/3) is checkable rather than narrative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import GB_S

__all__ = ["HT2100", "TribladeFabric", "build_triblade_fabric"]


@dataclass
class HT2100:
    """One bridge chip: 1 HT x16 up-port, 3 PCIe x8 down-ports."""

    name: str
    ht_port: str | None = None
    pcie_ports: list[str] = field(default_factory=list)

    HT_BANDWIDTH = 6.4 * GB_S
    PCIE_BANDWIDTH = 2.0 * GB_S
    MAX_PCIE_PORTS = 3

    def attach_ht(self, endpoint: str) -> None:
        """Wire the single HyperTransport port."""
        if self.ht_port is not None:
            raise ValueError(f"{self.name}: HT port already wired to {self.ht_port}")
        self.ht_port = endpoint

    def attach_pcie(self, endpoint: str) -> None:
        """Wire one of the three PCIe x8 ports."""
        if len(self.pcie_ports) >= self.MAX_PCIE_PORTS:
            raise ValueError(f"{self.name}: all {self.MAX_PCIE_PORTS} PCIe ports used")
        self.pcie_ports.append(endpoint)

    @property
    def downstream_capacity(self) -> float:
        """Aggregate PCIe capacity hanging off this bridge, B/s."""
        return len(self.pcie_ports) * self.PCIE_BANDWIDTH

    @property
    def oversubscribed(self) -> bool:
        """Whether the PCIe side can exceed the HT uplink."""
        return self.downstream_capacity > self.HT_BANDWIDTH


@dataclass
class TribladeFabric:
    """The triblade's internal wiring: two bridges, four Cells, an HCA."""

    bridges: tuple[HT2100, HT2100]

    def bridge_of_cell(self, cell: int) -> HT2100:
        """Which bridge carries a given PowerXCell 8i's PCIe link."""
        if not 0 <= cell < 4:
            raise ValueError("cell index must be 0-3")
        for bridge in self.bridges:
            if f"cell{cell}" in bridge.pcie_ports:
                return bridge
        raise AssertionError("unreachable: every cell is wired")

    @property
    def hca_bridge(self) -> HT2100:
        """The bridge carrying the InfiniBand HCA."""
        for bridge in self.bridges:
            if "ib-hca" in bridge.pcie_ports:
                return bridge
        raise AssertionError("unreachable: the HCA is wired")

    def hca_shares_bridge_with_cells(self) -> list[int]:
        """Cells whose PCIe traffic contends with the HCA's bridge."""
        return [
            cell
            for cell in range(4)
            if self.bridge_of_cell(cell) is self.hca_bridge
        ]


def build_triblade_fabric() -> TribladeFabric:
    """Wire the production triblade (Fig 1).

    Bridge 0 serves cells 0 and 1 and uplinks to Opteron socket 0;
    bridge 1 serves cells 2 and 3, the HCA, and socket 1 — which is why
    cores 1 and 3 (socket 1) sit closer to the network (Fig 8).
    """
    b0 = HT2100(name="HT2100-0")
    b0.attach_ht("opteron-socket0")
    b0.attach_pcie("cell0")
    b0.attach_pcie("cell1")
    b1 = HT2100(name="HT2100-1")
    b1.attach_ht("opteron-socket1")
    b1.attach_pcie("cell2")
    b1.attach_pcie("cell3")
    b1.attach_pcie("ib-hca")
    return TribladeFabric(bridges=(b0, b1))
