"""Cell Broadband Engine variant specifications (Cell BE, PowerXCell 8i).

The SPE issue widths here are **derived** from the pipeline tables in
:mod:`repro.hardware.spe_pipeline` (FPD/FP6 flop payload divided by the
repetition distance), so the 7× DP improvement of the PowerXCell 8i over
the Cell BE is a consequence of un-stalling the FPD unit, never a typed-in
constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.processor import CacheSpec, CoreSpec, ProcessorSpec
from repro.hardware.spe_pipeline import (
    CELL_BE_TABLE,
    POWERXCELL_8I_TABLE,
    PipelineTable,
)
from repro.units import GB_S, GHZ, GIB, KIB

__all__ = ["CellVariant", "CELL_BE", "POWERXCELL_8I", "SPE_LOCAL_STORE_BYTES"]

#: Each SPE directly addresses only its 256 KB local store (paper §II-A).
SPE_LOCAL_STORE_BYTES = 256 * KIB

#: EIB moves 96 bytes per cycle at the 3.2 GHz core clock (paper §IV-B).
EIB_BYTES_PER_CYCLE = 96


def _make_spe(table: PipelineTable, clock_hz: float) -> CoreSpec:
    return CoreSpec(
        name=f"SPE ({table.name})",
        clock_hz=clock_hz,
        dp_flops_per_cycle=table.dp_flops_per_cycle,
        sp_flops_per_cycle=table.sp_flops_per_cycle,
        caches=(CacheSpec("local store", SPE_LOCAL_STORE_BYTES, latency_cycles=6),),
    )


def _make_ppe(name: str, clock_hz: float, sp_flops_per_cycle: float) -> CoreSpec:
    return CoreSpec(
        name=name,
        clock_hz=clock_hz,
        dp_flops_per_cycle=2.0,  # paper §II-A: PPE issues two DP flops/cycle
        sp_flops_per_cycle=sp_flops_per_cycle,
        caches=(
            CacheSpec("L1D", 32 * KIB, latency_cycles=4),
            CacheSpec("L1I", 32 * KIB),
            CacheSpec("L2", 512 * KIB, latency_cycles=30),
        ),
    )


@dataclass(frozen=True)
class CellVariant:
    """One implementation of the Cell Broadband Engine Architecture."""

    spec: ProcessorSpec
    pipeline: PipelineTable
    #: peak main-memory bandwidth of the on-chip controller
    memory_bandwidth: float
    memory_kind: str
    #: max memory per blade the controller supports (paper §IV-A)
    max_blade_memory_bytes: int

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def clock_hz(self) -> float:
        spe, _ = self.spec.cores_named(f"SPE ({self.pipeline.name})")
        return spe.clock_hz

    @property
    def spe_peak_dp_flops(self) -> float:
        """Aggregate DP peak of the eight SPEs, flop/s."""
        spe, count = self.spec.cores_named(f"SPE ({self.pipeline.name})")
        return spe.peak_dp_flops * count

    @property
    def spe_peak_sp_flops(self) -> float:
        """Aggregate SP peak of the eight SPEs, flop/s."""
        spe, count = self.spec.cores_named(f"SPE ({self.pipeline.name})")
        return spe.peak_sp_flops * count

    @property
    def eib_bandwidth(self) -> float:
        """Element Interconnect Bus aggregate bandwidth, B/s."""
        return EIB_BYTES_PER_CYCLE * self.clock_hz


_CLOCK = 3.2 * GHZ

#: The original Cell BE (Sony PlayStation 3): 204.8 Gflop/s SP but only
#: 14.6 Gflop/s DP from the SPEs, Rambus XDR memory capped at 2 GB/blade.
#: Its PPE SP accounting follows the paper's 217.6 Gflop/s total
#: (9 cores), i.e. 4 SP flops/cycle.
CELL_BE = CellVariant(
    spec=ProcessorSpec(
        name="Cell BE",
        core_counts=(
            (_make_ppe("PPE (Cell BE)", _CLOCK, sp_flops_per_cycle=4.0), 1),
            (_make_spe(CELL_BE_TABLE, _CLOCK), 8),
        ),
        memory_bytes=1 * GIB,
        memory_bandwidth=25.6 * GB_S,
        tdp_watts=90.0,
    ),
    pipeline=CELL_BE_TABLE,
    memory_bandwidth=25.6 * GB_S,
    memory_kind="Rambus XDR",
    max_blade_memory_bytes=2 * GIB,
)

#: The PowerXCell 8i of Roadrunner: fully pipelined DP (102.4 Gflop/s from
#: the SPEs, 108.8 with the PPE), DDR2-800 controller allowing 32 GB per
#: blade at the same 25.6 GB/s (paper §II, §IV-A).
POWERXCELL_8I = CellVariant(
    spec=ProcessorSpec(
        name="PowerXCell 8i",
        core_counts=(
            (_make_ppe("PPE (PowerXCell 8i)", _CLOCK, sp_flops_per_cycle=8.0), 1),
            (_make_spe(POWERXCELL_8I_TABLE, _CLOCK), 8),
        ),
        memory_bytes=4 * GIB,
        memory_bandwidth=25.6 * GB_S,
        tdp_watts=92.0,
    ),
    pipeline=POWERXCELL_8I_TABLE,
    memory_bandwidth=25.6 * GB_S,
    memory_kind="DDR2-800",
    max_blade_memory_bytes=32 * GIB,
)
