"""Hardware component models for the Roadrunner machine.

Every peak rate in the library is *derived* from per-core issue widths and
clock frequencies declared here; the paper's published aggregates (Table
II, Fig 3) are reproduced by summation, never hard-coded.
"""

from repro.hardware.processor import CacheSpec, CoreSpec, ProcessorSpec
from repro.hardware.opteron import (
    OPTERON_2210_HE,
    OPTERON_QUAD_2356,
    TIGERTON_X7350,
)
from repro.hardware.cell import CELL_BE, POWERXCELL_8I, CellVariant
from repro.hardware.spe_pipeline import (
    INSTRUCTION_GROUPS,
    InstructionGroup,
    PipelineTable,
    SPEPipeline,
    pipeline_table_for,
)
from repro.hardware.memory import MemorySystem, MEMORY_SYSTEMS
from repro.hardware.dma import DMAEngine, MFC_DMA
from repro.hardware.blade import LS21_BLADE, QS22_BLADE, Blade
from repro.hardware.node import TRIBLADE, Triblade

__all__ = [
    "CacheSpec",
    "CoreSpec",
    "ProcessorSpec",
    "OPTERON_2210_HE",
    "OPTERON_QUAD_2356",
    "TIGERTON_X7350",
    "CELL_BE",
    "POWERXCELL_8I",
    "CellVariant",
    "INSTRUCTION_GROUPS",
    "InstructionGroup",
    "PipelineTable",
    "SPEPipeline",
    "pipeline_table_for",
    "MemorySystem",
    "MEMORY_SYSTEMS",
    "DMAEngine",
    "MFC_DMA",
    "Blade",
    "LS21_BLADE",
    "QS22_BLADE",
    "Triblade",
    "TRIBLADE",
]
