"""Memory-subsystem models: STREAM TRIAD and memtime (Table III).

Each of Roadrunner's three processor memory systems is modeled as a peak
bandwidth, a sustained-fraction for the TRIAD access pattern, and a
hierarchy of load-latency levels probed by the memtime pointer chase.

Mechanisms behind the sustained fractions (paper §IV-B):

* **Opteron** — DDR2-667 per-socket peak 10.7 GB/s; TRIAD's write stream
  incurs read-for-ownership traffic and DRAM page misses, roughly halving
  the sustainable rate (measured 5.41 GB/s).
* **PPE** — although the controller peaks at 25.6 GB/s, the in-order PPE
  sustains very few outstanding load misses, collapsing TRIAD to
  0.89 GB/s; the paper concludes the PPE "is a bottleneck and is best
  used for control functions".
* **SPE local store** — one pipelined 128-bit access per cycle gives a
  51.2 GB/s ceiling; loop and address-generation overhead of the TRIAD
  kernel yields 29.28 GB/s measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GB_S, KIB, MIB, NS

__all__ = ["MemoryLevel", "MemorySystem", "MEMORY_SYSTEMS"]


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the load-latency hierarchy seen by memtime."""

    name: str
    #: capacity in bytes; ``None`` marks the terminal (main-memory) level
    capacity_bytes: int | None
    #: dependent-load latency at this level, in seconds
    load_latency: float

    def holds(self, working_set_bytes: int) -> bool:
        """Whether a working set of this size fits in the level."""
        return self.capacity_bytes is None or working_set_bytes <= self.capacity_bytes


@dataclass(frozen=True)
class MemorySystem:
    """A processor's path to its directly addressable memory."""

    name: str
    peak_bandwidth: float
    #: fraction of peak the STREAM TRIAD kernel sustains
    triad_efficiency: float
    levels: tuple[MemoryLevel, ...]

    def __post_init__(self):
        if not 0 < self.triad_efficiency <= 1:
            raise ValueError(f"{self.name}: triad efficiency must be in (0, 1]")
        if self.peak_bandwidth <= 0:
            raise ValueError(f"{self.name}: peak bandwidth must be positive")
        if not self.levels or self.levels[-1].capacity_bytes is not None:
            raise ValueError(f"{self.name}: last level must be unbounded (main memory)")
        caps = [lv.capacity_bytes for lv in self.levels[:-1]]
        if any(c is None for c in caps) or caps != sorted(caps):
            raise ValueError(f"{self.name}: level capacities must increase")

    # -- STREAM ------------------------------------------------------------
    def stream_triad_bandwidth(self) -> float:
        """Sustained TRIAD bandwidth in B/s (Table III, column 1)."""
        return self.peak_bandwidth * self.triad_efficiency

    def stream_triad_time(self, array_elements: int, element_bytes: int = 8) -> float:
        """Time for one TRIAD pass ``a[i] = b[i] + s*c[i]`` over arrays of
        ``array_elements`` elements (3 streams touched)."""
        if array_elements < 0:
            raise ValueError("array_elements must be >= 0")
        moved = 3 * array_elements * element_bytes
        return moved / self.stream_triad_bandwidth()

    # -- memtime -----------------------------------------------------------
    def memtime_latency(self, working_set_bytes: int) -> float:
        """Dependent-load latency for a pointer chase over a working set
        of the given size (Table III, column 2, at main-memory size)."""
        if working_set_bytes <= 0:
            raise ValueError("working set must be positive")
        for level in self.levels:
            if level.holds(working_set_bytes):
                return level.load_latency
        raise AssertionError("unreachable: last level is unbounded")

    def memtime_curve(self, sizes: list[int]) -> list[tuple[int, float]]:
        """Latency at each working-set size — the classic memtime plot."""
        return [(s, self.memtime_latency(s)) for s in sizes]

    @property
    def main_memory_latency(self) -> float:
        """Latency of the terminal level (seconds)."""
        return self.levels[-1].load_latency


#: The Opteron 2210 HE socket path to its DDR2-667 (paper Fig 1, Table III).
OPTERON_MEMORY = MemorySystem(
    name="Opteron",
    peak_bandwidth=10.7 * GB_S,
    triad_efficiency=5.41 / 10.7,
    levels=(
        MemoryLevel("L1D", 64 * KIB, 3 / 1.8e9),
        MemoryLevel("L2", 2 * MIB, 12 / 1.8e9),
        MemoryLevel("DDR2-667", None, 30.5 * NS),
    ),
)

#: The PPE's cache-based path to the Cell's 25.6 GB/s controller.
PPE_MEMORY = MemorySystem(
    name="PowerXCell 8i (PPE)",
    peak_bandwidth=25.6 * GB_S,
    triad_efficiency=0.89 / 25.6,
    levels=(
        MemoryLevel("L1D", 32 * KIB, 4 / 3.2e9),
        MemoryLevel("L2", 512 * KIB, 30 / 3.2e9),
        MemoryLevel("DDR2-800", None, 23.4 * NS),
    ),
)

#: The SPE's only directly addressable memory: its 256 KB local store.
#: One pipelined 128-bit access per cycle -> 51.2 GB/s ceiling.
SPE_LOCAL_STORE = MemorySystem(
    name="PowerXCell 8i (SPE)",
    peak_bandwidth=51.2 * GB_S,
    triad_efficiency=29.28 / 51.2,
    levels=(MemoryLevel("local store", None, 9.4 * NS),),
)

MEMORY_SYSTEMS: dict[str, MemorySystem] = {
    m.name: m for m in (OPTERON_MEMORY, PPE_MEMORY, SPE_LOCAL_STORE)
}
