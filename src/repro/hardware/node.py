"""The Roadrunner compute node: the triblade (paper Fig 1).

One LS21 Opteron blade plus two QS22 PowerXCell 8i blades, joined by an
expansion card: each Cell blade reaches the Opteron blade over two PCIe
x8 links bridged to HyperTransport by Broadcom HT2100 I/O controllers; a
Mellanox 4x DDR InfiniBand HCA hangs off the third PCIe port of one
HT2100.  Each Opteron core is paired 1:1 with one PowerXCell 8i
processor for accelerated operation.

Fig 8's core-dependent internode bandwidth (cores 1/3 at 1,478 MB/s vs
cores 0/2 at 1,087 MB/s) is captured by per-core HCA proximity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.blade import LS21_BLADE, QS22_BLADE, Blade
from repro.units import GB_S, GIB

__all__ = ["LinkSpec", "Triblade", "TRIBLADE", "HCA_NEAR_CORES", "HCA_FAR_CORES"]

#: Opteron cores whose socket/memory sit next to the InfiniBand HCA.
HCA_NEAR_CORES = (1, 3)
#: Opteron cores one HyperTransport hop farther from the HCA.
HCA_FAR_CORES = (0, 2)


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link inside (or out of) the triblade."""

    name: str
    bandwidth_per_direction: float
    endpoints: tuple[str, str]

    def __post_init__(self):
        if self.bandwidth_per_direction <= 0:
            raise ValueError(f"link {self.name!r} needs positive bandwidth")


@dataclass(frozen=True)
class Triblade:
    """The Roadrunner compute node assembly."""

    opteron_blade: Blade
    cell_blades: tuple[Blade, ...]
    links: tuple[LinkSpec, ...]

    # -- structure ----------------------------------------------------------
    @property
    def opteron_core_count(self) -> int:
        return self.opteron_blade.core_count

    @property
    def cell_count(self) -> int:
        return sum(b.socket_count for b in self.cell_blades)

    @property
    def ppe_count(self) -> int:
        return self.cell_count  # one PPE per Cell

    @property
    def spe_count(self) -> int:
        return 8 * self.cell_count

    def paired_cell(self, opteron_core: int) -> int:
        """The PowerXCell 8i index paired with this Opteron core.

        Pairing is 1:1 and identity-indexed: core *i* drives Cell *i*
        (paper §II-A: "each Opteron core communicates directly with one
        PowerXCell 8i processor in accelerated operation mode").
        """
        if not 0 <= opteron_core < self.opteron_core_count:
            raise IndexError(f"no Opteron core {opteron_core} in the triblade")
        return opteron_core

    def hca_near(self, opteron_core: int) -> bool:
        """Whether this core's socket is adjacent to the IB HCA (Fig 8)."""
        if not 0 <= opteron_core < self.opteron_core_count:
            raise IndexError(f"no Opteron core {opteron_core} in the triblade")
        return opteron_core in HCA_NEAR_CORES

    # -- aggregates (Table II node column, Fig 3) ----------------------------
    @property
    def peak_dp_flops(self) -> float:
        return self.opteron_blade.peak_dp_flops + sum(
            b.peak_dp_flops for b in self.cell_blades
        )

    @property
    def peak_sp_flops(self) -> float:
        return self.opteron_blade.peak_sp_flops + sum(
            b.peak_sp_flops for b in self.cell_blades
        )

    @property
    def cell_peak_dp_flops(self) -> float:
        """DP peak of the Cell blades alone (435.2 Gflop/s)."""
        return sum(b.peak_dp_flops for b in self.cell_blades)

    @property
    def memory_bytes(self) -> int:
        return self.opteron_blade.memory_bytes + sum(
            b.memory_bytes for b in self.cell_blades
        )

    @property
    def power_watts(self) -> float:
        return self.opteron_blade.power_watts + sum(
            b.power_watts for b in self.cell_blades
        )

    def flop_breakdown_dp(self) -> dict[str, float]:
        """Fig 3(a): where the node's DP flops come from."""
        spe_total = 0.0
        ppe_total = 0.0
        for blade in self.cell_blades:
            for core, count in blade.processor.core_counts:
                contribution = core.peak_dp_flops * count * blade.socket_count
                if core.name.startswith("SPE"):
                    spe_total += contribution
                else:
                    ppe_total += contribution
        return {
            "Opterons": self.opteron_blade.peak_dp_flops,
            "PPEs": ppe_total,
            "SPEs": spe_total,
        }

    def memory_breakdown(self) -> dict[str, float]:
        """Fig 3(b): off-chip and on-chip capacity by side, in bytes."""
        return {
            "Cell off-chip": float(sum(b.memory_bytes for b in self.cell_blades)),
            "Opteron off-chip": float(self.opteron_blade.memory_bytes),
            "Cell on-chip": float(sum(b.on_chip_bytes for b in self.cell_blades)),
            "Opteron on-chip": float(self.opteron_blade.on_chip_bytes),
        }

    def link(self, name: str) -> LinkSpec:
        """Look up a link by name."""
        for lk in self.links:
            if lk.name == name:
                return lk
        raise KeyError(f"triblade has no link named {name!r}")


#: The production Roadrunner triblade (Fig 1): peak 2 GB/s per direction
#: per PCIe x8 Cell link, 6.4 GB/s HyperTransport x16, 2 GB/s IB 4x DDR.
TRIBLADE = Triblade(
    opteron_blade=LS21_BLADE,
    cell_blades=(QS22_BLADE, QS22_BLADE),
    links=(
        LinkSpec("pcie-cell0", 2.0 * GB_S, ("cell0", "opteron0")),
        LinkSpec("pcie-cell1", 2.0 * GB_S, ("cell1", "opteron1")),
        LinkSpec("pcie-cell2", 2.0 * GB_S, ("cell2", "opteron2")),
        LinkSpec("pcie-cell3", 2.0 * GB_S, ("cell3", "opteron3")),
        LinkSpec("ht-bridge0", 6.4 * GB_S, ("ht2100-0", "opteron-socket0")),
        LinkSpec("ht-bridge1", 6.4 * GB_S, ("ht2100-1", "opteron-socket1")),
        LinkSpec("ib-hca", 2.0 * GB_S, ("ht2100-1", "fabric")),
    ),
)
