"""LINPACK (HPL) performance and power models.

Reproduces the paper's headline numbers: the 1.026 Pflop/s sustained
May-2008 run on the 1.38 Pflop/s-peak machine, the Green500 figure of
437 Mflop/s per watt, and the 'without accelerators, approximately
position 50 on the June 2008 Top 500' claim.
"""

from repro.linpack.hpl import HPLModel, HPLResult
from repro.linpack.power import PowerModel, top500_position, GREEN500_CELL_ONLY_MODEL

__all__ = [
    "HPLModel",
    "HPLResult",
    "PowerModel",
    "top500_position",
    "GREEN500_CELL_ONLY_MODEL",
]
