"""HPL (LINPACK) sustained-performance model.

IBM's Roadrunner HPL uses both the Opterons and the Cells concurrently
(paper §III); the run is DGEMM-dominated, so the model is

    T  =  2 N^3 / (3 * e_dgemm * Rpeak)  +  c * N^2 * 8 / (sqrt(nodes) * bw)

— trailing-update compute at the hybrid DGEMM efficiency plus panel
broadcast/exchange traffic: each process row/column moves O(N^2 / sqrt(P))
panel bytes through its node's InfiniBand HCA.  ``N`` fills a fraction
of system memory, as real HPL runs do.  With ``e_dgemm = 0.85`` and the
traffic coefficient calibrated once against the published 1.026
Pflop/s, the same model then *predicts* the Opteron-only Rmax behind
the paper's 'approximately position 50' claim (plain dual-core BLAS
runs at ~0.75 of peak, without the hybrid kernel).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import GB_S, GIB

__all__ = ["HPLResult", "HPLModel"]


@dataclass(frozen=True)
class HPLResult:
    """Outcome of one modeled HPL run."""

    n: int
    rmax_flops: float
    rpeak_flops: float
    time_seconds: float

    @property
    def efficiency(self) -> float:
        return self.rmax_flops / self.rpeak_flops


@dataclass(frozen=True)
class HPLModel:
    """Machine-independent HPL cost model."""

    #: fraction of peak the (hybrid) DGEMM inner kernel sustains
    dgemm_efficiency: float = 0.85
    #: panel-traffic coefficient: bytes on a node's HCA ~ c * N^2 * 8 / sqrt(nodes)
    comm_coefficient: float = 2.86
    #: per-node injection bandwidth during the run (pinned IB buffers)
    node_bandwidth: float = 1.6 * GB_S
    #: fraction of system memory the matrix occupies
    memory_fill: float = 0.8

    def __post_init__(self):
        if not 0 < self.dgemm_efficiency <= 1:
            raise ValueError("dgemm_efficiency must be in (0, 1]")
        if not 0 < self.memory_fill <= 1:
            raise ValueError("memory_fill must be in (0, 1]")
        if self.comm_coefficient < 0 or self.node_bandwidth <= 0:
            raise ValueError("invalid communication parameters")

    def problem_size(self, total_memory_bytes: float) -> int:
        """Largest N whose N^2 doubles fill ``memory_fill`` of memory."""
        if total_memory_bytes <= 0:
            raise ValueError("total memory must be positive")
        return int(math.sqrt(self.memory_fill * total_memory_bytes / 8))

    def run(
        self, peak_flops: float, total_memory_bytes: float, nodes: int
    ) -> HPLResult:
        """Model one memory-filling HPL run."""
        if peak_flops <= 0 or nodes < 1:
            raise ValueError("need positive peak and >= 1 node")
        n = self.problem_size(total_memory_bytes)
        flops = 2 * n**3 / 3
        t_compute = flops / (self.dgemm_efficiency * peak_flops)
        t_comm = (
            self.comm_coefficient * n**2 * 8
            / (math.sqrt(nodes) * self.node_bandwidth)
        )
        total = t_compute + t_comm
        return HPLResult(
            n=n, rmax_flops=flops / total, rpeak_flops=peak_flops,
            time_seconds=total,
        )

    # -- the two runs the paper discusses -------------------------------------
    def roadrunner_run(self, nodes: int = 3060) -> HPLResult:
        """The full hybrid machine: 449.6 Gflop/s and 32 GiB per node."""
        from repro.hardware.node import TRIBLADE

        return self.run(
            peak_flops=TRIBLADE.peak_dp_flops * nodes,
            total_memory_bytes=float(TRIBLADE.memory_bytes) * nodes,
            nodes=nodes,
        )

    def scaling_curve(self, node_counts: list[int]) -> list[HPLResult]:
        """Rmax vs machine size (each point memory-filling, as real
        submissions are) — how the headline number grows toward the
        May 2008 run."""
        return [self.roadrunner_run(nodes=n) for n in node_counts]

    def opteron_only_run(self, nodes: int = 3060) -> HPLResult:
        """Ignoring the accelerators: 14.4 Gflop/s and 16 GiB per node,
        with a plain (non-hybrid) BLAS at ~0.75 of peak."""
        import dataclasses

        from repro.hardware.node import TRIBLADE

        plain = dataclasses.replace(self, dgemm_efficiency=0.75)
        return plain.run(
            peak_flops=TRIBLADE.opteron_blade.peak_dp_flops * nodes,
            total_memory_bytes=float(TRIBLADE.opteron_blade.memory_bytes) * nodes,
            nodes=nodes,
        )
