"""System power and Green500 model.

Roadrunner placed third on the June 2008 Green500 at 437 Mflop/s per
watt; the two systems above it were small PowerXCell 8i-only clusters
at 488 Mflop/s per watt that "do not incorporate the less
power-efficient Opterons" (paper §II).  The model sums per-blade draws
and a system overhead for switches, I/O nodes, and the parallel
filesystem; the Top 500 position estimator interpolates a small table
of approximate June 2008 Rmax anchors to reproduce the 'approximately
position 50 without accelerators' claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "PowerModel",
    "GREEN500_CELL_ONLY_MODEL",
    "TOP500_JUNE_2008_ANCHORS",
    "top500_position",
]


@dataclass(frozen=True)
class PowerModel:
    """Power draw of a Roadrunner-style system."""

    #: per-node draw beyond the blades: expansion card, fans, PSU loss
    node_overhead_watts: float = 50.0
    #: whole-system overhead fraction: switches, I/O nodes, PFS
    system_overhead_fraction: float = 0.088

    def node_power(self) -> float:
        """One triblade's draw including its local overheads, watts."""
        from repro.hardware.node import TRIBLADE

        return TRIBLADE.power_watts + self.node_overhead_watts

    def system_power(self, nodes: int = 3060) -> float:
        """Whole-system draw, watts."""
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        return self.node_power() * nodes * (1 + self.system_overhead_fraction)

    def green500_mflops_per_watt(self, rmax_flops: float, nodes: int = 3060) -> float:
        """LINPACK Mflop/s per watt."""
        return rmax_flops / 1e6 / self.system_power(nodes)


@dataclass(frozen=True)
class CellOnlyPowerModel:
    """A small QS22-only cluster (the systems above Roadrunner on the
    June 2008 Green500 list)."""

    #: blade-relative infrastructure factor (chassis, head node, switch);
    #: proportionally heavier for a small cluster than for Roadrunner
    infrastructure_factor: float = 1.556
    #: HPL efficiency without the hybrid-offload overheads
    hpl_efficiency: float = 0.82

    def mflops_per_watt(self) -> float:
        from repro.hardware.blade import QS22_BLADE

        rmax = QS22_BLADE.peak_dp_flops * self.hpl_efficiency
        power = QS22_BLADE.power_watts * self.infrastructure_factor
        return rmax / 1e6 / power


GREEN500_CELL_ONLY_MODEL = CellOnlyPowerModel()

#: Approximate June 2008 Top 500 Rmax anchors (Tflop/s).  Positions 1-5
#: are the published list; the tail anchors are approximate and exist
#: to place the paper's 'position 50 without accelerators' claim.
TOP500_JUNE_2008_ANCHORS: tuple[tuple[int, float], ...] = (
    (1, 1026.0),   # Roadrunner
    (2, 478.2),    # BlueGene/L, LLNL
    (3, 450.3),    # BlueGene/P, Argonne
    (4, 326.0),    # Ranger, TACC
    (5, 205.0),    # Jaguar, ORNL
    (10, 106.1),
    (25, 51.0),
    (50, 30.0),
    (100, 18.0),
    (500, 9.0),
)


def top500_position(rmax_tflops: float) -> int:
    """Estimated June 2008 list position for a given Rmax.

    Interpolates the anchor table with log-linear position-vs-Rmax
    segments; clamps to [1, 500].
    """
    if rmax_tflops <= 0:
        raise ValueError("rmax must be positive")
    anchors = TOP500_JUNE_2008_ANCHORS
    if rmax_tflops >= anchors[0][1]:
        return 1
    if rmax_tflops <= anchors[-1][1]:
        return anchors[-1][0]
    for (p_hi, r_hi), (p_lo, r_lo) in zip(anchors, anchors[1:]):
        if r_lo <= rmax_tflops <= r_hi:
            # log-interpolate position between the two anchors
            frac = (math.log(r_hi) - math.log(rmax_tflops)) / (
                math.log(r_hi) - math.log(r_lo)
            )
            return round(p_hi + frac * (p_lo - p_hi))
    raise AssertionError("unreachable: anchors cover the range")
