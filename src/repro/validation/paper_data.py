"""Every published number from the paper used for validation.

Values are stated in the paper's own units (noted per constant) and are
referenced by tests and benchmarks only — model code must never import
this module.  Section/table/figure citations follow the SC 2008 text.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Headline system numbers (§I, §II, Table II)
# ---------------------------------------------------------------------------
PEAK_DP_PFLOPS = 1.38          # system peak, double precision
PEAK_SP_PFLOPS = 2.91          # system peak, single precision
LINPACK_SUSTAINED_PFLOPS = 1.026   # May 2008 LINPACK run
LINPACK_EFFICIENCY_MIN = 0.70  # implied HPL efficiency band
GREEN500_MFLOPS_PER_WATT = 437.0   # June 2008 Green500 position 3
GREEN500_CELL_ONLY_MFLOPS_PER_WATT = 488.0  # the two small PXC8i systems above
CELL_FRACTION_OF_PEAK = 0.95   # "~95% of peak comes from the PowerXCell 8i"
OPTERON_ONLY_TOP500_POSITION = 50  # "approximately position 50" without Cells

CU_COUNT = 17
NODES_PER_CU = 180
NODE_COUNT = 3060
IO_NODES_PER_CU = 12
TOTAL_SPES = 97920             # §VII: all 97,920 SPEs

CU_PEAK_DP_TFLOPS = 80.9
CU_PEAK_SP_TFLOPS = 171.1
NODE_CELL_PEAK_DP_GFLOPS = 435.2
NODE_CELL_PEAK_SP_GFLOPS = 921.6
NODE_OPTERON_PEAK_DP_GFLOPS = 14.4
NODE_OPTERON_PEAK_SP_GFLOPS = 28.8

# ---------------------------------------------------------------------------
# Processor specs (§II, §IV-A)
# ---------------------------------------------------------------------------
OPTERON_CLOCK_GHZ = 1.8
CELL_CLOCK_GHZ = 3.2
PXC8I_PEAK_DP_GFLOPS = 108.8   # whole chip
PXC8I_SPE_PEAK_DP_GFLOPS = 102.4
PXC8I_SPE_PEAK_SP_GFLOPS = 204.8
CELLBE_PEAK_SP_GFLOPS = 217.6  # whole chip, paper's 9-core accounting
CELLBE_PEAK_DP_GFLOPS = 21.0   # whole chip
CELLBE_SPE_PEAK_DP_GFLOPS = 14.6
DP_IMPROVEMENT_FACTOR = 7.0    # PXC8i vs Cell BE, SPE DP peak ("7x", §VII)
PPE_PEAK_DP_GFLOPS = 6.4       # per PPE (Fig 1)
SPE_LOCAL_STORE_KB = 256
CELL_MEMORY_BW_GB_S = 25.6
OPTERON_MEMORY_BW_GB_S = 10.7
SPE_LS_PEAK_BW_GB_S = 51.2     # one 128-bit load/cycle, 6-cycle latency
EIB_BYTES_PER_CYCLE = 96
CELLBE_MAX_BLADE_MEMORY_GB = 2
PXC8I_MAX_BLADE_MEMORY_GB = 32

# Fig 3: node capacity breakdown
NODE_SPE_DP_GFLOPS = 409.6
NODE_PPE_DP_GFLOPS = 25.6
NODE_CELL_OFFCHIP_GB = 16
NODE_OPTERON_OFFCHIP_GB = 16
NODE_CELL_ONCHIP_MB = 10.25
NODE_OPTERON_ONCHIP_MB = 8.5

# ---------------------------------------------------------------------------
# Figs 4-5: SPE instruction-group microbenchmarks (cycles)
# ---------------------------------------------------------------------------
FPD_LATENCY_CELLBE = 13
FPD_LATENCY_PXC8I = 9
FPD_REPETITION_PXC8I = 1       # fully pipelined
# All non-FPD groups are identical between variants and fully pipelined.

# ---------------------------------------------------------------------------
# Table III: memory measurements
# ---------------------------------------------------------------------------
STREAM_TRIAD_GB_S = {
    "Opteron": 5.41,
    "PowerXCell 8i (PPE)": 0.89,
    "PowerXCell 8i (SPE)": 29.28,
}
MEMTIME_LATENCY_NS = {
    "Opteron": 30.5,
    "PowerXCell 8i (PPE)": 23.4,
    "PowerXCell 8i (SPE)": 9.4,
}

# ---------------------------------------------------------------------------
# Table I: hop-count census from node 0 (CU 1)
# ---------------------------------------------------------------------------
HOP_CENSUS = {
    # description: (destination count, hop count)
    "self": (1, 0),
    "same crossbar": (7, 1),
    "same CU": (172, 3),
    "CUs 2-12 same crossbar": (88, 3),
    "CUs 2-12 different crossbar": (1892, 5),
    "CUs 13-17 same crossbar": (40, 5),
    "CUs 13-17 different crossbar": (860, 7),
}
HOP_AVERAGE = 5.38
SWITCH_HOP_LATENCY_NS = 220.0

# ---------------------------------------------------------------------------
# §IV-C / Figs 6-10: communication measurements
# ---------------------------------------------------------------------------
DACS_LATENCY_US = 3.19             # Cell <-> Opteron one leg (Fig 6)
MPI_IB_LATENCY_US = 2.16           # Opteron <-> Opteron (Fig 6)
LOCAL_LEG_LATENCY_US = 0.12        # local SPE/PPE legs at each end (Fig 6)
CELL_TO_CELL_INTERNODE_LATENCY_US = 8.78

INTRANODE_BIDIR_MB_S = 1295.0      # PPE-Opteron bidirectional sum (Fig 7)
INTRANODE_2X_UNIDIR_MB_S = 2017.0
INTERNODE_BIDIR_MB_S = 375.0       # PPE-Opt-Opt-PPE bidirectional (Fig 7)
INTERNODE_2X_UNIDIR_MB_S = 536.0
INTRANODE_BIDIR_FRACTION = 0.64
INTERNODE_BIDIR_FRACTION = 0.70

OPTERON_NEAR_HCA_MB_S = 1478.0     # cores 1<->3 internode (Fig 8)
OPTERON_FAR_HCA_MB_S = 1087.0      # cores 0<->2 internode (Fig 8)

DACS_SMALL_MSG_RATIO_MAX = 0.5     # DaCS < half of IB below ~20 KB (Fig 9)

MPI_MIN_LATENCY_US = 2.5           # same-crossbar zero-byte (Fig 10)
MPI_SAME_CU_LATENCY_US = 3.0
MPI_5HOP_LATENCY_US = 3.5
MPI_7HOP_LATENCY_US = 4.0          # "just under 4 us"
IB_1MB_DEFAULT_MB_S = 980.0        # rank-0 average, default Open MPI
IB_1MB_PINNED_MB_S = 1600.0        # with pinned buffers
PCIE_PEAK_BW_GB_S = 1.6            # measured raw PCIe peak (§VI-A)
PCIE_PEAK_LATENCY_US = 2.0

CML_INTRA_SOCKET_LATENCY_US = 0.272   # §V-C
CML_INTRA_SOCKET_BW_GB_S = 22.4       # 128 KB message over the EIB

# ---------------------------------------------------------------------------
# §VI / Table IV / Figs 12-14: Sweep3D
# ---------------------------------------------------------------------------
SWEEP3D_SUBGRID = (5, 5, 400)      # per SPE, weak scaling
SWEEP3D_MK = 20
SWEEP3D_ANGLES = 6
TABLE4_SUBGRID = (50, 50, 50)
TABLE4_MK = 10
TABLE4_PREVIOUS_CBE_S = 1.3        # master/worker implementation
TABLE4_OURS_CBE_S = 0.37
TABLE4_OURS_PXC8I_S = 0.19
TABLE4_CBE_TO_PXC8I_FACTOR = 1.9   # "a factor of 1.9x"
TABLE4_IMPL_SPEEDUP_FACTOR = 3.0   # previous -> ours on CBE ("3x", §VII)

# Fig 12 qualitative relations (§VI):
FIG12_SPE_VS_X86_CORE = "comparable"      # 1 SPE ~ 1 Opteron/Tigerton core
FIG12_SOCKET_VS_QUADCORE_FACTOR = 2.0     # 8 SPEs ~ 2x quad-core socket
FIG12_SOCKET_VS_DUALCORE_FACTOR = 5.0     # ~ "almost 5x" dual-core Opteron

# Fig 13/14 and §VII projections:
FIG14_MEASURED_IMPROVEMENT_LARGE = 2.0    # ~2x at full scale, early software
FIG14_BEST_IMPROVEMENT_LARGE = 4.0        # up to ~4x with peak PCIe
CONCLUSION_SMALL_SCALE_ADVANTAGE = 10.0   # §VII (accelerated vs base, mature)
CONCLUSION_LARGE_SCALE_ADVANTAGE = 5.0

# §IV-A application factors on PXC8i vs Cell BE
APP_SPEEDUP_SPASM = 1.5
APP_SPEEDUP_MILAGRO = 1.5
APP_SPEEDUP_VPIC = 1.0             # "no significant improvement" (SP code)
APP_SPEEDUP_SWEEP3D = 1.9

# Node counts plotted in Figs 13-14
SCALING_NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 3060)
