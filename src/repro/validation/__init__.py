"""Published reference data and comparison helpers.

`paper_data` is the single place where numbers *from the paper* live;
model code never imports from here (the dependency points the other way:
tests and benchmarks compare model outputs against these values).
"""

from repro.validation import paper_data
from repro.validation.compare import relative_error, within, shape_matches

__all__ = ["paper_data", "relative_error", "within", "shape_matches"]
