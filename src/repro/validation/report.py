"""A one-shot validation report: every paper claim vs the models.

``python -m repro validate`` runs each check and prints a PASS/FAIL
table; :func:`run_checks` returns the raw records for programmatic use.
Checks mirror the benchmark harness but are cheap enough to run
together (the heavyweight series reuse the analytic models).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.validation import paper_data
from repro.validation.compare import relative_error

__all__ = ["CheckResult", "run_checks", "render_report"]


@dataclass(frozen=True)
class CheckResult:
    """One validated claim."""

    section: str
    claim: str
    paper_value: str
    reproduced: str
    rel_error: float
    tolerance: float

    @property
    def passed(self) -> bool:
        return self.rel_error <= self.tolerance


def _check(
    results: list[CheckResult],
    section: str,
    claim: str,
    paper_value: float,
    reproduced: float,
    tolerance: float,
    unit: str = "",
) -> None:
    results.append(
        CheckResult(
            section=section,
            claim=claim,
            paper_value=f"{paper_value:g}{unit}",
            reproduced=f"{reproduced:.4g}{unit}",
            rel_error=relative_error(reproduced, paper_value),
            tolerance=tolerance,
        )
    )


def run_checks() -> list[CheckResult]:
    """Evaluate every claim; returns one record per check."""
    from repro.apps.speedup import all_speedups
    from repro.core.machine import RoadrunnerMachine
    from repro.hardware.cell import CELL_BE, POWERXCELL_8I
    from repro.hardware.memory import MEMORY_SYSTEMS
    from repro.sweep3d.cellport import grind_time
    from repro.sweep3d.input import SweepInput
    from repro.sweep3d.masterworker import MasterWorkerModel
    from repro.sweep3d.scaling import ScalingStudy
    from repro.units import GFLOPS, MIB, NS, to_gb_s, to_us
    from repro.comm.cml import INTERNODE_CELL_PATH
    from repro.linpack.power import GREEN500_CELL_ONLY_MODEL

    results: list[CheckResult] = []
    machine = RoadrunnerMachine()

    # -- §I / §II / Table II ------------------------------------------------
    _check(results, "Table II", "peak DP (Pflop/s)",
           paper_data.PEAK_DP_PFLOPS, machine.peak_dp_pflops, 0.01)
    _check(results, "Table II", "peak SP (Pflop/s)",
           paper_data.PEAK_SP_PFLOPS, machine.peak_sp_pflops, 0.01)
    _check(results, "Table II", "CU peak DP (Tflop/s)",
           paper_data.CU_PEAK_DP_TFLOPS, machine.cu_peak_dp_tflops, 0.005)
    _check(results, "§II", "PXC8i chip DP (Gflop/s)",
           paper_data.PXC8I_PEAK_DP_GFLOPS,
           POWERXCELL_8I.spec.peak_dp_flops / GFLOPS, 0.005)
    _check(results, "§II", "CBE->PXC8i DP factor",
           paper_data.DP_IMPROVEMENT_FACTOR,
           POWERXCELL_8I.spe_peak_dp_flops / CELL_BE.spe_peak_dp_flops, 0.01)

    # -- headline LINPACK ----------------------------------------------------
    run = machine.linpack()
    _check(results, "headline", "LINPACK Rmax (Pflop/s)",
           paper_data.LINPACK_SUSTAINED_PFLOPS, run.rmax_flops / 1e15, 0.01)
    _check(results, "headline", "Green500 (Mflop/s/W)",
           paper_data.GREEN500_MFLOPS_PER_WATT,
           machine.green500_mflops_per_watt(), 0.01)
    _check(results, "headline", "Cell-only Green500 (Mflop/s/W)",
           paper_data.GREEN500_CELL_ONLY_MFLOPS_PER_WATT,
           GREEN500_CELL_ONLY_MODEL.mflops_per_watt(), 0.01)
    _check(results, "headline", "Opteron-only Top500 position",
           paper_data.OPTERON_ONLY_TOP500_POSITION,
           machine.opteron_only_top500_position(), 0.25)

    # -- Table I ----------------------------------------------------------------
    census = machine.hop_census()
    for hops, expected in ((1, 7), (3, 260), (5, 1932), (7, 860)):
        _check(results, "Table I", f"destinations at {hops} hops",
               expected, census[hops], 0.0)
    _check(results, "Table I", "average hops",
           paper_data.HOP_AVERAGE, machine.average_hop_count(), 0.001)

    # -- Table III ------------------------------------------------------------------
    for name, system in MEMORY_SYSTEMS.items():
        _check(results, "Table III", f"{name} TRIAD (GB/s)",
               paper_data.STREAM_TRIAD_GB_S[name],
               to_gb_s(system.stream_triad_bandwidth()), 0.001)
        _check(results, "Table III", f"{name} latency (ns)",
               paper_data.MEMTIME_LATENCY_NS[name],
               system.memtime_latency(256 * MIB) / NS, 0.001)

    # -- Fig 6 -----------------------------------------------------------------------
    _check(results, "Fig 6", "Cell-to-Cell zero-byte latency (us)",
           paper_data.CELL_TO_CELL_INTERNODE_LATENCY_US,
           to_us(INTERNODE_CELL_PATH.zero_byte_latency), 0.005)

    # -- Table IV ---------------------------------------------------------------------
    inp = SweepInput.paper_table4()
    _check(results, "Table IV", "previous CBE (s)",
           paper_data.TABLE4_PREVIOUS_CBE_S,
           MasterWorkerModel().iteration_time(inp), 0.05)
    _check(results, "Table IV", "ours CBE (s)",
           paper_data.TABLE4_OURS_CBE_S,
           inp.angle_work * grind_time(CELL_BE), 0.02)
    _check(results, "Table IV", "ours PXC8i (s)",
           paper_data.TABLE4_OURS_PXC8I_S,
           inp.angle_work * grind_time(POWERXCELL_8I), 0.02)

    # -- §IV-A ------------------------------------------------------------------------
    speedups = all_speedups()
    for app, expected in (
        ("VPIC", paper_data.APP_SPEEDUP_VPIC),
        ("SPaSM", paper_data.APP_SPEEDUP_SPASM),
        ("Milagro", paper_data.APP_SPEEDUP_MILAGRO),
        ("Sweep3D", paper_data.APP_SPEEDUP_SWEEP3D),
    ):
        _check(results, "§IV-A", f"{app} speedup", expected, speedups[app], 0.05)

    # -- Figs 13-14 ----------------------------------------------------------------------
    study = ScalingStudy()
    imp = study.fig14_improvements([3060])
    _check(results, "Fig 14", "measured improvement at 3,060 nodes",
           paper_data.FIG14_MEASURED_IMPROVEMENT_LARGE,
           imp["measured"][0], 0.2)
    _check(results, "Fig 14", "best improvement at 3,060 nodes",
           paper_data.FIG14_BEST_IMPROVEMENT_LARGE, imp["best"][0], 0.25)

    return results


def render_report(results: list[CheckResult] | None = None) -> str:
    """The PASS/FAIL table as text."""
    from repro.core.report import format_table

    results = results if results is not None else run_checks()
    rows = [
        (
            r.section,
            r.claim,
            r.paper_value,
            r.reproduced,
            f"{r.rel_error:.1%}",
            "PASS" if r.passed else "FAIL",
        )
        for r in results
    ]
    passed = sum(r.passed for r in results)
    table = format_table(
        ["section", "claim", "paper", "reproduced", "error", "status"],
        rows,
        title="Validation: paper vs reproduced",
    )
    return f"{table}\n\n{passed}/{len(results)} checks pass"
