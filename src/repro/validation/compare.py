"""Tolerance and shape-comparison helpers for validation tests/benches."""

from __future__ import annotations

from typing import Sequence

__all__ = ["relative_error", "within", "shape_matches", "monotonic"]


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference| (inf-safe for reference 0)."""
    if reference == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - reference) / abs(reference)


def within(measured: float, reference: float, rel_tol: float) -> bool:
    """Whether ``measured`` is within ``rel_tol`` relative error of
    ``reference``."""
    return relative_error(measured, reference) <= rel_tol


def monotonic(values: Sequence[float], increasing: bool = True, strict: bool = False) -> bool:
    """Whether a series is monotone in the stated direction."""
    pairs = zip(values, values[1:])
    if increasing:
        return all(b > a if strict else b >= a for a, b in pairs)
    return all(b < a if strict else b <= a for a, b in pairs)


def shape_matches(
    measured: Sequence[float],
    reference: Sequence[float],
    rel_tol: float,
) -> bool:
    """Pointwise relative comparison of two equal-length series.

    Used for 'shape fidelity' checks where the paper publishes a curve:
    every point of the model series must lie within ``rel_tol`` of the
    reference point.
    """
    if len(measured) != len(reference):
        raise ValueError(
            f"series lengths differ: {len(measured)} vs {len(reference)}"
        )
    return all(within(m, r, rel_tol) for m, r in zip(measured, reference))
