"""Every reproduced table/figure as a formatted-text artifact.

The registry behind ``python -m repro <artifact>``; each producer
returns the same rows the corresponding benchmark asserts against.
"""

from __future__ import annotations

from typing import Callable

from repro.core.report import format_series, format_table
from repro.units import KIB, MB, to_gb_s, to_mb_s, to_ms, to_us

__all__ = ["ARTIFACTS", "produce", "available"]


def _table1() -> str:
    from repro.core.machine import RoadrunnerMachine

    machine = RoadrunnerMachine()
    census = machine.hop_census()
    rows = [
        ("Self", 1, 0),
        ("Within same crossbar", census[1], 1),
        ("Same CU / CUs 2-12 same crossbar", census[3], 3),
        ("CUs 2-12 diff xbar / CUs 13-17 same", census[5], 5),
        ("CUs 13-17 different crossbar", census[7], 7),
        ("Total", sum(census.values()), f"{machine.average_hop_count():.2f} (avg)"),
    ]
    return format_table(
        ["Destination", "No. of destinations", "Hop count"], rows,
        title="Table I: distances from node 0 (crossbar hops)",
    )


def _table2() -> str:
    from repro.core.machine import RoadrunnerMachine

    chars = RoadrunnerMachine().characteristics()
    rows = [
        ("CU count", chars["cu_count"]),
        ("node count", chars["node_count"]),
        ("peak DP", f"{chars['peak_dp_pflops']:.2f} Pflop/s"),
        ("peak SP", f"{chars['peak_sp_pflops']:.2f} Pflop/s"),
        ("peak DP per CU", f"{chars['cu_peak_dp_tflops']:.1f} Tflop/s"),
        ("node Cell blades DP", f"{chars['node_cell_peak_dp_gflops']:.1f} Gflop/s"),
        ("node Opteron blade DP", f"{chars['node_opteron_peak_dp_gflops']:.1f} Gflop/s"),
        ("Opteron cores / SPEs", f"{chars['opteron_cores']} / {chars['spes']}"),
    ]
    return format_table(["characteristic", "value"], rows,
                        title="Table II: Roadrunner characteristics")


def _table3() -> str:
    from repro.hardware.memory import MEMORY_SYSTEMS
    from repro.units import MIB, NS

    rows = [
        (
            name,
            f"{to_gb_s(sys.stream_triad_bandwidth()):.2f}",
            f"{sys.memtime_latency(256 * MIB) / NS:.1f}",
        )
        for name, sys in MEMORY_SYSTEMS.items()
    ]
    return format_table(
        ["processor", "STREAM TRIAD (GB/s)", "latency (ns)"], rows,
        title="Table III: measured memory performance",
    )


def _table4() -> str:
    from repro.hardware.cell import CELL_BE, POWERXCELL_8I
    from repro.sweep3d.cellport import grind_time
    from repro.sweep3d.input import SweepInput
    from repro.sweep3d.masterworker import MasterWorkerModel

    inp = SweepInput.paper_table4()
    rows = [
        ("CBE", f"{MasterWorkerModel().iteration_time(inp):.2f} s",
         f"{inp.angle_work * grind_time(CELL_BE):.2f} s"),
        ("PowerXCell 8i", "N/A",
         f"{inp.angle_work * grind_time(POWERXCELL_8I):.2f} s"),
    ]
    return format_table(["", "previous Sweep3D", "our Sweep3D"], rows,
                        title="Table IV: Sweep3D Cell implementations (50x50x50)")


def _fig1() -> str:
    from repro.hardware.chipset import build_triblade_fabric
    from repro.hardware.node import TRIBLADE

    fabric = build_triblade_fabric()
    rows = []
    for bridge in fabric.bridges:
        rows.append(
            (bridge.name, bridge.ht_port, ", ".join(bridge.pcie_ports),
             f"{bridge.downstream_capacity / 1e9:.0f} GB/s PCIe under "
             f"{bridge.HT_BANDWIDTH / 1e9:.1f} GB/s HT")
        )
    wiring = format_table(
        ["bridge", "HT x16 uplink", "PCIe x8 ports", "capacity"],
        rows,
        title="Fig 1 (reproduced): triblade internal wiring",
    )
    links = format_table(
        ["link", "per-direction bandwidth"],
        [(lk.name, f"{lk.bandwidth_per_direction / 1e9:.1f} GB/s")
         for lk in TRIBLADE.links],
        title="Triblade links",
    )
    pairing = ", ".join(
        f"core{c}->cell{TRIBLADE.paired_cell(c)}" for c in range(4)
    )
    return (
        f"{wiring}\n\n{links}\n\nOpteron-Cell pairing: {pairing}\n"
        f"HCA-near cores: 1, 3 (socket 1 carries the IB HCA's bridge)"
    )


def _fig2() -> str:
    from repro.network.loadmap import bisection_summary, cross_side_links
    from repro.network.topology import RoadrunnerTopology

    topo = RoadrunnerTopology(cu_count=17)
    xbars = [v for v in topo.graph if hasattr(v, "level")]
    by_level: dict[str, int] = {}
    for x in xbars:
        by_level[x.level] = by_level.get(x.level, 0) + 1
    summary = bisection_summary()
    structure = format_table(
        ["crossbar level", "count", "role"],
        [
            ("L (CU lower)", by_level["L"], "8 nodes + 12 up + 4 uplinks each"),
            ("U (CU upper)", by_level["U"], "24 ports to the CU's lowers"),
            ("F (inter-CU first)", by_level["F"], "one port per CU 1-12"),
            ("M (inter-CU middle)", by_level["M"], "bridges F and T"),
            ("T (inter-CU third)", by_level["T"], "one port per CU 13-17"),
        ],
        title="Fig 2 (reproduced): the fabric's crossbar inventory",
    )
    return (
        f"{structure}\n\n"
        f"uplinks per CU: 96 (12 to each of 8 inter-CU switches)\n"
        f"oversubscription: {summary['cu_oversubscription']:.3f}:1 "
        "(the '2:1 reduced fat tree')\n"
        f"cross-side waist: {cross_side_links()} F-M links\n"
        f"port-budget check: no crossbar exceeds 24 ports "
        f"(validated over {len(xbars)} crossbars)"
    )


def _fig3() -> str:
    from repro.hardware.node import TRIBLADE
    from repro.units import GIB, MIB, to_gflops

    flops = TRIBLADE.flop_breakdown_dp()
    memory = TRIBLADE.memory_breakdown()
    part_a = format_table(
        ["component", "DP Gflop/s"],
        [(k, f"{to_gflops(v):.1f}") for k, v in flops.items()],
        title="Fig 3a: node peak processing rate",
    )
    part_b = format_table(
        ["memory", "capacity"],
        [
            ("Cell off-chip", f"{memory['Cell off-chip'] / GIB:.0f} GiB"),
            ("Opteron off-chip", f"{memory['Opteron off-chip'] / GIB:.0f} GiB"),
            ("Cell on-chip", f"{memory['Cell on-chip'] / MIB:.2f} MiB"),
            ("Opteron on-chip", f"{memory['Opteron on-chip'] / MIB:.2f} MiB"),
        ],
        title="Fig 3b: node memory capacity",
    )
    return part_a + "\n\n" + part_b


def _figs_4_5() -> str:
    from repro.hardware.spe_pipeline import (
        CELL_BE_TABLE,
        INSTRUCTION_GROUPS,
        POWERXCELL_8I_TABLE,
        SPEPipeline,
    )

    cbe, pxc = SPEPipeline(CELL_BE_TABLE), SPEPipeline(POWERXCELL_8I_TABLE)
    rows = [
        (
            g.value,
            f"{cbe.measure_latency(g):.0f}",
            f"{pxc.measure_latency(g):.0f}",
            f"{cbe.measure_repetition(g):.0f}",
            f"{pxc.measure_repetition(g):.0f}",
        )
        for g in INSTRUCTION_GROUPS
    ]
    return format_table(
        ["group", "latency CBE", "latency PXC8i", "repetition CBE",
         "repetition PXC8i"],
        rows,
        title="Figs 4-5: SPE instruction-group microbenchmarks (cycles)",
    )


def _fig6() -> str:
    from repro.comm.cml import INTERNODE_CELL_PATH

    rows = [
        (name, f"{to_us(lat):.2f} us")
        for name, lat in INTERNODE_CELL_PATH.latency_breakdown()
    ]
    rows.append(("TOTAL", f"{to_us(INTERNODE_CELL_PATH.zero_byte_latency):.2f} us"))
    return format_table(["leg", "latency"], rows,
                        title="Fig 6: zero-byte Cell-to-Cell latency breakdown")


def _fig7() -> str:
    from repro.comm.cml import INTERNODE_CELL_PATH
    from repro.comm.dacs import DACS_MEASURED

    sizes = [64, 1024, 16384, 262144, 1_000_000]
    return format_series(
        "size (B)", sizes,
        {
            "intranode 2x uni": [
                to_mb_s(2 * DACS_MEASURED.effective_bandwidth(s)) for s in sizes
            ],
            "intranode bidir": [
                to_mb_s(DACS_MEASURED.bidirectional_sum_bandwidth(s)) for s in sizes
            ],
            "internode 2x uni": [
                to_mb_s(2 * INTERNODE_CELL_PATH.effective_bandwidth(s)) for s in sizes
            ],
            "internode bidir": [
                to_mb_s(INTERNODE_CELL_PATH.bidirectional_sum_bandwidth(s))
                for s in sizes
            ],
        },
        fmt="{:.1f}",
        title="Fig 7: intra-/internode bandwidth (MB/s)",
    )


def _fig8() -> str:
    from repro.comm.ib import ib_between_cores

    sizes = [1000, 100_000, 10_000_000]
    return format_series(
        "size (B)", sizes,
        {
            "cores 1<->3": [
                to_mb_s(ib_between_cores(1, 3).effective_bandwidth(s)) for s in sizes
            ],
            "cores 0<->2": [
                to_mb_s(ib_between_cores(0, 2).effective_bandwidth(s)) for s in sizes
            ],
        },
        fmt="{:.1f}",
        title="Fig 8: internode Opteron bandwidth by core pair (MB/s)",
    )


def _fig9() -> str:
    from repro.comm.dacs import DACS_MEASURED
    from repro.comm.ib import IB_DEFAULT

    sizes = [256, 2048, 16384, 131072, 1_000_000]
    dacs = [DACS_MEASURED.effective_bandwidth(s) for s in sizes]
    ib = [IB_DEFAULT.effective_bandwidth(s) for s in sizes]
    return format_series(
        "size (B)", sizes,
        {
            "DaCS (MB/s)": [to_mb_s(v) for v in dacs],
            "InfiniBand (MB/s)": [to_mb_s(v) for v in ib],
            "IB/DaCS": [i / d for i, d in zip(ib, dacs)],
        },
        fmt="{:.2f}",
        title="Fig 9: InfiniBand vs DaCS PCIe performance",
    )


def _fig10() -> str:
    from repro.core.machine import RoadrunnerMachine

    series = RoadrunnerMachine().latency_map()
    samples = [1, 100, 180, 250, 900, 2160, 2500]
    return format_table(
        ["destination node", "latency (us)"],
        [(d, f"{to_us(series[d]):.2f}") for d in samples],
        title="Fig 10: zero-byte latency from rank 0 (staircase samples)",
    )


def _fig11() -> str:
    from repro.sweep3d.wavefront import render_2d, total_steps, wavefront_cells

    shape = (4, 4)
    frames = []
    for step in (1, 2, 3, 4):
        frames.append(f"step {step}:\n{render_2d(shape, step)}")
    summary = format_table(
        ["grid", "steps to sweep"],
        [("4 (1-D)", total_steps((4,))),
         ("4x4 (2-D)", total_steps((4, 4))),
         ("4x4x4 (3-D)", total_steps((4, 4, 4)))],
    )
    body = "\n\n".join(frames)
    front3 = sorted(wavefront_cells((4, 4, 4), 3))
    return (
        "Fig 11: wavefront propagation (# processed, * wavefront edge)\n"
        "=============================================================\n"
        f"{body}\n\n{summary}\n\n"
        f"3-D wavefront at step 3: {front3}"
    )


def _fig12() -> str:
    from repro.hardware.cell import POWERXCELL_8I
    from repro.hardware.opteron import (
        OPTERON_2210_HE,
        OPTERON_QUAD_2356,
        TIGERTON_X7350,
    )
    from repro.sweep3d.cellport import grind_time
    from repro.sweep3d.x86 import x86_grind_time

    rows = []
    for proc in (OPTERON_2210_HE, OPTERON_QUAD_2356, TIGERTON_X7350):
        g = x86_grind_time(proc)
        rows.append(
            (proc.name, f"{to_ms(10000 * 48 * g):.1f}",
             f"{to_ms(80000 / proc.core_count * 48 * g):.1f}")
        )
    g = grind_time(POWERXCELL_8I)
    rows.append(
        ("PowerXCell 8i", f"{to_ms(10000 * 48 * g):.1f}",
         f"{to_ms(80000 / 8 * 48 * g):.1f}")
    )
    return format_table(
        ["processor", "single core (ms)", "single socket (ms)"], rows,
        title="Fig 12: Sweep3D iteration time, 5x5x400/core and 10x20x400/socket",
    )


def _fig13() -> str:
    from repro.sweep3d.scaling import ScalingStudy
    from repro.validation.paper_data import SCALING_NODE_COUNTS

    study = ScalingStudy()
    counts = list(SCALING_NODE_COUNTS)
    series = study.fig13_series(counts)
    return format_series(
        "nodes", counts,
        {
            "Opteron only (s)": [p.iteration_time for p in series["opteron"]],
            "Cell measured (s)": [p.iteration_time for p in series["cell_measured"]],
            "Cell best (s)": [p.iteration_time for p in series["cell_best"]],
        },
        fmt="{:.3f}",
        title="Fig 13: Sweep3D weak scaling",
    )


def _fig14() -> str:
    from repro.sweep3d.scaling import ScalingStudy
    from repro.validation.paper_data import SCALING_NODE_COUNTS

    study = ScalingStudy()
    counts = list(SCALING_NODE_COUNTS)
    imp = study.fig14_improvements(counts)
    return format_series(
        "nodes", counts,
        {"measured": imp["measured"], "best": imp["best"]},
        fmt="{:.2f}",
        title="Fig 14: accelerated vs non-accelerated improvement",
    )


def _linpack() -> str:
    from repro.core.machine import RoadrunnerMachine

    machine = RoadrunnerMachine()
    run = machine.linpack()
    opteron = machine.linpack_opteron_only()
    rows = [
        ("peak DP", f"{machine.peak_dp_pflops:.2f} Pflop/s"),
        ("LINPACK Rmax", f"{run.rmax_flops / 1e15:.3f} Pflop/s"),
        ("efficiency", f"{run.efficiency:.1%}"),
        ("Green500", f"{machine.green500_mflops_per_watt():.0f} Mflop/s/W"),
        ("Opteron-only Rmax", f"{opteron.rmax_flops / 1e12:.1f} Tflop/s"),
        ("Opteron-only Top 500", f"~position {machine.opteron_only_top500_position()}"),
    ]
    return format_table(["claim", "reproduced"], rows,
                        title="Headline claims (LINPACK / Green500)")


def _apps() -> str:
    from repro.apps.speedup import all_speedups

    return format_table(
        ["application", "PXC8i speedup over Cell BE"],
        [(k, f"{v:.2f}x") for k, v in all_speedups().items()],
        title="§IV-A: application speedups, pipeline-derived",
    )


def _energy() -> str:
    from repro.core.energy import EnergyStudy

    study = EnergyStudy()
    rows = []
    for nodes in (1, 64, 1024, 3060):
        adv = study.energy_advantage(nodes)
        rows.append(
            (nodes, f"{adv['time_measured']:.2f}x", f"{adv['energy_measured']:.2f}x",
             f"{adv['time_best']:.2f}x", f"{adv['energy_best']:.2f}x")
        )
    return format_table(
        ["nodes", "time adv.", "energy adv.", "time (best)", "energy (best)"],
        rows,
        title="Extension: Sweep3D energy-to-solution, accelerated vs not",
    )


def _section4() -> str:
    from repro.microbench.characterize import render_characterization

    return render_characterization()


def _resilience() -> str:
    from repro.resilience.checkpoint import sweep_failure_study

    study = sweep_failure_study()
    rows = [
        (
            f"{row['node_mtbf_hours'] / 8760:.0f}y",
            f"{row['system_mtbf_hours']:.1f}",
            f"{row['daly_interval_s'] / 60:.1f}",
            f"{row['expected_slowdown']:.3f}x",
            f"{row['expected_wallclock_hours']:.2f}",
        )
        for row in study["rows"]
    ]
    table = format_table(
        ["node MTBF", "system MTBF (h)", "Daly interval (min)",
         "slowdown", f"{study['campaign_hours']:.0f}h campaign (h)"],
        rows,
        title="Extension: checkpoint/restart economics at 3,060 nodes",
    )
    return (
        f"{table}\n\n"
        f"full-machine sweep iteration: {study['iteration_time_s']:.3f} s "
        f"({study['config']}, {study['nodes']} nodes)\n"
        f"checkpoint write {study['checkpoint_time_s']:.0f} s (Panasas "
        "PFS model, half of system memory through 204 I/O nodes), "
        f"restart {study['restart_time_s']:.0f} s; intervals are "
        "Daly-optimal (model extension beyond the paper)"
    )


def _resilience_correlated() -> str:
    from repro.resilience.checkpoint import sweep_failure_study

    studies = {
        "independent": sweep_failure_study(burst_size=1),
        "triblade pair": sweep_failure_study(burst_size=2),
        "CU domain": sweep_failure_study(burst_size=180),
    }
    by_mtbf = list(zip(*(s["rows"] for s in studies.values())))
    rows = [
        (
            f"{ind['node_mtbf_hours'] / 8760:.0f}y",
            f"{ind['daly_interval_s'] / 60:.0f}",
            f"{ind['expected_slowdown']:.3f}x",
            f"{pair['daly_interval_s'] / 60:.0f}",
            f"{pair['expected_slowdown']:.3f}x",
            f"{cu['daly_interval_s'] / 60:.0f}",
            f"{cu['expected_slowdown']:.3f}x",
        )
        for ind, pair, cu in by_mtbf
    ]
    table = format_table(
        ["node MTBF",
         "indep tau (min)", "slowdown",
         "pair tau (min)", "slowdown",
         "CU tau (min)", "slowdown"],
        rows,
        title="Extension: correlated power-domain failures at 3,060 nodes",
    )
    return (
        f"{table}\n\n"
        "same per-node MTBF throughout: correlated bursts (triblade "
        "pair = 2 nodes, CU power domain = 180 nodes) make interrupting "
        "events rarer, so the Daly-optimal checkpoint interval "
        "stretches ~sqrt(burst) and the expected slowdown falls "
        "(model extension beyond the paper)"
    )


ARTIFACTS: dict[str, tuple[str, Callable[[], str]]] = {
    "fig1": ("Fig 1: triblade structure", _fig1),
    "fig2": ("Fig 2: fabric structure", _fig2),
    "table1": ("Table I: hop-count census", _table1),
    "table2": ("Table II: system characteristics", _table2),
    "table3": ("Table III: memory measurements", _table3),
    "table4": ("Table IV: Sweep3D Cell implementations", _table4),
    "fig3": ("Fig 3: node capacity breakdown", _fig3),
    "fig4": ("Figs 4-5: SPE instruction microbenchmarks", _figs_4_5),
    "fig5": ("Figs 4-5: SPE instruction microbenchmarks", _figs_4_5),
    "fig6": ("Fig 6: latency breakdown", _fig6),
    "fig7": ("Fig 7: Cell bandwidth curves", _fig7),
    "fig8": ("Fig 8: Opteron pair bandwidth", _fig8),
    "fig9": ("Fig 9: DaCS vs InfiniBand", _fig9),
    "fig10": ("Fig 10: latency staircase", _fig10),
    "fig11": ("Fig 11: wavefront propagation", _fig11),
    "fig12": ("Fig 12: single core/socket Sweep3D", _fig12),
    "fig13": ("Fig 13: Sweep3D weak scaling", _fig13),
    "fig14": ("Fig 14: improvement factors", _fig14),
    "linpack": ("Headline LINPACK/Green500 claims", _linpack),
    "apps": ("§IV-A application speedups", _apps),
    "energy": ("Extension: energy-to-solution", _energy),
    "section4": ("§IV measured in one campaign", _section4),
    "resilience": ("Extension: MTBF vs checkpoint economics", _resilience),
    "resilience-correlated": (
        "Extension: correlated power-domain failure economics",
        _resilience_correlated,
    ),
}


def available() -> list[tuple[str, str]]:
    """(name, description) pairs of every producible artifact."""
    return [(name, desc) for name, (desc, _fn) in ARTIFACTS.items()]


def produce(name: str) -> str:
    """Render one artifact by registry name."""
    try:
        _desc, fn = ARTIFACTS[name]
    except KeyError:
        raise KeyError(
            f"unknown artifact {name!r}; available: {', '.join(sorted(ARTIFACTS))}"
        ) from None
    return fn()
