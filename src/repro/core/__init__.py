"""Public facade: the assembled Roadrunner machine model.

:class:`~repro.core.machine.RoadrunnerMachine` is the one-object entry
point a downstream user starts from: it owns the node model, the
fabric, the communication stacks, the LINPACK/power models, and the
Sweep3D study drivers, and exposes each published table/figure as a
method.
"""

from repro.core.config import FULL_SYSTEM, SINGLE_CU, SystemConfig
from repro.core.machine import RoadrunnerMachine
from repro.core.modes import MODES, UsageMode
from repro.core.report import format_series, format_table

__all__ = [
    "FULL_SYSTEM",
    "SINGLE_CU",
    "SystemConfig",
    "RoadrunnerMachine",
    "MODES",
    "UsageMode",
    "format_series",
    "format_table",
]
