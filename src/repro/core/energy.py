"""Energy-to-solution: the Green500 story at application level.

Roadrunner's efficiency pitch (437 Mflop/s/W, §II) is about LINPACK;
this study asks the same question of Sweep3D: joules per iteration for
the accelerated versus non-accelerated runs.  Because an idle QS22 still
draws most of its power (the 2008 blades did not power-gate), running
Opteron-only wastes the Cells' draw *and* takes longer — the accelerated
mode wins on energy by more than it wins on time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linpack.power import PowerModel
from repro.sweep3d.scaling import ScalingStudy

__all__ = ["EnergyStudy", "EnergyPoint"]


@dataclass(frozen=True)
class EnergyPoint:
    """Energy accounting of one configuration at one node count."""

    nodes: int
    config: str
    iteration_time: float
    power_watts: float
    energy_joules: float


@dataclass(frozen=True)
class EnergyStudy:
    """Joules per Sweep3D iteration across configurations."""

    power: PowerModel = PowerModel()
    #: fraction of its active draw an idle Cell blade still burns
    idle_cell_fraction: float = 0.6

    def __post_init__(self):
        if not 0 <= self.idle_cell_fraction <= 1:
            raise ValueError("idle_cell_fraction must be in [0, 1]")

    def node_power(self, config: str) -> float:
        """Per-node draw for a configuration, watts."""
        from repro.hardware.node import TRIBLADE

        full = self.power.node_power()
        if config == "opteron":
            cell_draw = sum(b.power_watts for b in TRIBLADE.cell_blades)
            idle_saving = (1 - self.idle_cell_fraction) * cell_draw
            return full - idle_saving
        return full

    def point(self, nodes: int, config: str, study: ScalingStudy | None = None) -> EnergyPoint:
        """Energy per iteration of one configuration at ``nodes``."""
        study = study or ScalingStudy()
        t = study.point(nodes, config).iteration_time
        p = self.node_power(config) * nodes * (
            1 + self.power.system_overhead_fraction
        )
        return EnergyPoint(
            nodes=nodes, config=config, iteration_time=t,
            power_watts=p, energy_joules=p * t,
        )

    def energy_advantage(self, nodes: int) -> dict[str, float]:
        """Accelerated-over-Opteron-only ratios at one node count."""
        study = ScalingStudy()
        opteron = self.point(nodes, "opteron", study)
        measured = self.point(nodes, "cell_measured", study)
        best = self.point(nodes, "cell_best", study)
        return {
            "time_measured": opteron.iteration_time / measured.iteration_time,
            "time_best": opteron.iteration_time / best.iteration_time,
            "energy_measured": opteron.energy_joules / measured.energy_joules,
            "energy_best": opteron.energy_joules / best.energy_joules,
        }
