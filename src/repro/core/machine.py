"""The assembled machine: one object exposing every paper result.

>>> from repro.core import RoadrunnerMachine
>>> machine = RoadrunnerMachine()
>>> round(machine.peak_dp_pflops, 2)
1.38
>>> machine.hop_census()[7]
860
"""

from __future__ import annotations

from functools import cached_property

from repro.core.config import FULL_SYSTEM, SystemConfig
from repro.hardware.cell import CELL_BE, POWERXCELL_8I
from repro.hardware.node import TRIBLADE, Triblade
from repro.linpack.hpl import HPLModel, HPLResult
from repro.linpack.power import PowerModel, top500_position
from repro.network.latency import IBLatencyModel
from repro.network.routing import average_hops, hop_census
from repro.network.topology import RoadrunnerTopology
from repro.sweep3d.scaling import ScalingStudy
from repro.units import GIB, to_pflops, to_tflops

__all__ = ["RoadrunnerMachine"]


class RoadrunnerMachine:
    """The full Roadrunner system model (or a smaller configuration).

    Everything is derived from the component models: peak rates sum
    over blades, the hop census routes over the wired fabric, LINPACK
    and Sweep3D projections run their respective models against this
    configuration's sizes.
    """

    def __init__(self, config: SystemConfig = FULL_SYSTEM):
        self.config = config
        self.node: Triblade = TRIBLADE
        self.hpl = HPLModel()
        self.power = PowerModel()
        self.ib_latency = IBLatencyModel()

    @cached_property
    def topology(self) -> RoadrunnerTopology:
        """The crossbar-level fabric (built on first use)."""
        return RoadrunnerTopology(
            cu_count=self.config.cu_count, include_io=self.config.include_io
        )

    # -- aggregate capability (Table II) ---------------------------------------
    @property
    def node_count(self) -> int:
        return self.config.node_count

    @property
    def peak_dp_flops(self) -> float:
        return self.node.peak_dp_flops * self.node_count

    @property
    def peak_sp_flops(self) -> float:
        return self.node.peak_sp_flops * self.node_count

    @property
    def peak_dp_pflops(self) -> float:
        return to_pflops(self.peak_dp_flops)

    @property
    def peak_sp_pflops(self) -> float:
        return to_pflops(self.peak_sp_flops)

    @property
    def cu_peak_dp_tflops(self) -> float:
        from repro.network.cu_switch import COMPUTE_NODES_PER_CU

        return to_tflops(self.node.peak_dp_flops * COMPUTE_NODES_PER_CU)

    @property
    def memory_bytes(self) -> int:
        return self.node.memory_bytes * self.node_count

    def cell_fraction_of_peak(self) -> float:
        """§II: ~95% of peak comes from the PowerXCell 8i processors."""
        return self.node.cell_peak_dp_flops / self.node.peak_dp_flops

    def characteristics(self) -> dict[str, object]:
        """Table II, as data."""
        return {
            "cu_count": self.config.cu_count,
            "node_count": self.node_count,
            "peak_dp_pflops": self.peak_dp_pflops,
            "peak_sp_pflops": self.peak_sp_pflops,
            "cu_peak_dp_tflops": self.cu_peak_dp_tflops,
            "node_cell_peak_dp_gflops": self.node.cell_peak_dp_flops / 1e9,
            "node_opteron_peak_dp_gflops": self.node.opteron_blade.peak_dp_flops / 1e9,
            "memory_tib": self.memory_bytes / GIB / 1024,
            "opteron_cores": self.config.opteron_core_count,
            "spes": self.config.spe_count,
        }

    # -- processors --------------------------------------------------------------
    @property
    def cell(self):
        """The accelerator: the PowerXCell 8i variant."""
        return POWERXCELL_8I

    @property
    def previous_cell(self):
        """The comparison baseline: the original Cell BE."""
        return CELL_BE

    # -- network (Table I, Fig 10) -------------------------------------------------
    def hop_census(self, src: int = 0) -> dict[int, int]:
        """Table I: destinations per crossbar-hop distance from ``src``."""
        return dict(hop_census(self.topology, src=src))

    def average_hop_count(self, src: int = 0) -> float:
        """Table I's 5.38-average row."""
        return average_hops(self.topology, src=src)

    def latency_map(self, src: int = 0) -> list[float]:
        """Fig 10: zero-byte MPI latency from ``src`` to every node."""
        return self.ib_latency.latency_map(self.topology, src=src)

    # -- LINPACK / power (headline claims) ---------------------------------------------
    def linpack(self) -> HPLResult:
        """The modeled full-machine HPL run (1.026 Pflop/s at 17 CUs)."""
        return self.hpl.roadrunner_run(nodes=self.node_count)

    def linpack_opteron_only(self) -> HPLResult:
        """HPL ignoring the accelerators."""
        return self.hpl.opteron_only_run(nodes=self.node_count)

    def opteron_only_top500_position(self) -> int:
        """§III: 'approximately position 50 on the June 2008 Top 500'."""
        return top500_position(self.linpack_opteron_only().rmax_flops / 1e12)

    def green500_mflops_per_watt(self) -> float:
        """§II: 437 Mflop/s per watt on LINPACK."""
        return self.power.green500_mflops_per_watt(
            self.linpack().rmax_flops, nodes=self.node_count
        )

    # -- Sweep3D (Figs 13-14) --------------------------------------------------------
    def sweep3d_study(self) -> ScalingStudy:
        """The weak-scaling study driver for this machine."""
        return ScalingStudy()
