"""Roadrunner's three usage models (paper §III).

The machine was designed so existing codes could adopt the accelerators
incrementally: run unmodified on the Opterons, offload hotspots
(the *accelerator* model), or live entirely on the Cells with the
Opterons relaying messages (the *SPE-centric* model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

__all__ = ["UsageMode", "ModeProfile", "MODES"]


class UsageMode(enum.Enum):
    """The three processing paradigms of §I/§III."""

    CLUSTER = "cluster"            # Opterons only, accelerators idle
    ACCELERATOR = "accelerator"    # hotspots pushed to the Cells
    SPE_CENTRIC = "spe-centric"    # ranks on SPEs; Opterons relay


@dataclass(frozen=True)
class ModeProfile:
    """How one usage mode maps onto the machine."""

    mode: UsageMode
    description: str
    #: where MPI ranks live
    rank_placement: str
    #: fraction of the node's DP peak the mode can possibly tap
    peak_fraction: float
    #: the paper's example applications for the mode
    example_applications: tuple[str, ...]
    #: communication layers on the critical path
    layers: tuple[str, ...]

    def __post_init__(self):
        if not 0 < self.peak_fraction <= 1:
            raise ValueError("peak_fraction must be in (0, 1]")


def _node_fraction(parts: float) -> float:
    """Fraction of the 449.6 Gflop/s node peak (DP)."""
    return parts / 449.6


MODES: Mapping[UsageMode, ModeProfile] = MappingProxyType(
    {
        UsageMode.CLUSTER: ModeProfile(
            mode=UsageMode.CLUSTER,
            description=(
                "Unmodified code on the Opterons in a conventional cluster "
                "environment; without accelerators Roadrunner would sit "
                "near position 50 of the June 2008 Top 500"
            ),
            rank_placement="one MPI rank per Opteron core",
            peak_fraction=_node_fraction(14.4),
            example_applications=("unported production codes",),
            layers=("MPI", "InfiniBand"),
        ),
        UsageMode.ACCELERATOR: ModeProfile(
            mode=UsageMode.ACCELERATOR,
            description=(
                "The application keeps its conventional structure; "
                "performance-critical sections run on the paired Cell, "
                "with SPE programs working for long stretches out of "
                "Cell memory"
            ),
            rank_placement="one MPI rank per Opteron core, Cell offload",
            peak_fraction=1.0,
            example_applications=("SPaSM", "Milagro"),
            layers=("MFC DMA", "DaCS/PCIe", "MPI", "InfiniBand"),
        ),
        UsageMode.SPE_CENTRIC: ModeProfile(
            mode=UsageMode.SPE_CENTRIC,
            description=(
                "The inverse of the accelerator model: every SPE holds an "
                "MPI rank and pushes non-compute work (including network "
                "communication) up to an Opteron; intra-Cell traffic rides "
                "the EIB"
            ),
            rank_placement="one CML rank per SPE (97,920 at full scale)",
            peak_fraction=_node_fraction(409.6 + 14.4),
            example_applications=("VPIC", "Sweep3D"),
            layers=("EIB", "MFC DMA", "DaCS/PCIe", "MPI", "InfiniBand"),
        ),
    }
)
