"""Machine-readable artifact data (the plotting-friendly counterpart
of :mod:`repro.core.artifacts`).

Each producer returns plain JSON-serializable dicts so downstream users
can regenerate the paper's plots with their own tooling:

    python -m repro --json fig13 > fig13.json
"""

from __future__ import annotations

from typing import Any, Callable

from repro.units import MIB, NS, to_gb_s, to_mb_s, to_us

__all__ = ["DATA_PRODUCERS", "produce_data"]


def _fig1() -> dict[str, Any]:
    from repro.hardware.chipset import build_triblade_fabric

    fabric = build_triblade_fabric()
    return {
        bridge.name: {
            "ht_port": bridge.ht_port,
            "pcie_ports": list(bridge.pcie_ports),
            "oversubscribed": bridge.oversubscribed,
        }
        for bridge in fabric.bridges
    }


def _fig2() -> dict[str, Any]:
    from repro.network.loadmap import bisection_summary, cross_side_links

    summary = bisection_summary()
    return {
        "cu_lower_crossbars": 24,
        "cu_upper_crossbars": 12,
        "intercu_switches": 8,
        "uplinks_per_cu": 96,
        "cross_side_links": cross_side_links(),
        "oversubscription": summary["cu_oversubscription"],
    }


def _table1() -> dict[str, Any]:
    from repro.core.machine import RoadrunnerMachine

    machine = RoadrunnerMachine()
    census = machine.hop_census()
    return {
        "destinations_by_hops": {str(h): n for h, n in sorted(census.items())},
        "average_hops": machine.average_hop_count(),
    }


def _table2() -> dict[str, Any]:
    from repro.core.machine import RoadrunnerMachine

    return RoadrunnerMachine().characteristics()


def _table3() -> dict[str, Any]:
    from repro.hardware.memory import MEMORY_SYSTEMS

    return {
        name: {
            "stream_triad_gb_s": to_gb_s(system.stream_triad_bandwidth()),
            "memtime_latency_ns": system.memtime_latency(256 * MIB) / NS,
        }
        for name, system in MEMORY_SYSTEMS.items()
    }


def _table4() -> dict[str, Any]:
    from repro.hardware.cell import CELL_BE, POWERXCELL_8I
    from repro.sweep3d.cellport import grind_time
    from repro.sweep3d.input import SweepInput
    from repro.sweep3d.masterworker import MasterWorkerModel

    inp = SweepInput.paper_table4()
    return {
        "previous_cbe_s": MasterWorkerModel().iteration_time(inp),
        "ours_cbe_s": inp.angle_work * grind_time(CELL_BE),
        "ours_pxc8i_s": inp.angle_work * grind_time(POWERXCELL_8I),
    }


def _fig3() -> dict[str, Any]:
    from repro.hardware.node import TRIBLADE

    return {
        "flops_dp": TRIBLADE.flop_breakdown_dp(),
        "memory_bytes": TRIBLADE.memory_breakdown(),
    }


def _figs45() -> dict[str, Any]:
    from repro.hardware.spe_pipeline import (
        CELL_BE_TABLE,
        INSTRUCTION_GROUPS,
        POWERXCELL_8I_TABLE,
    )

    out: dict[str, Any] = {}
    for table in (CELL_BE_TABLE, POWERXCELL_8I_TABLE):
        out[table.name] = {
            g.value: {
                "latency": table.latency(g),
                "repetition": table.repetition(g),
            }
            for g in INSTRUCTION_GROUPS
        }
    return out


def _fig6() -> dict[str, Any]:
    from repro.comm.cml import INTERNODE_CELL_PATH

    return {
        "legs_us": [
            {"name": name, "latency_us": to_us(lat)}
            for name, lat in INTERNODE_CELL_PATH.latency_breakdown()
        ],
        "total_us": to_us(INTERNODE_CELL_PATH.zero_byte_latency),
    }


_SWEEP_SIZES = [1, 16, 256, 4096, 65536, 262144, 1_000_000]


def _fig7() -> dict[str, Any]:
    from repro.comm.cml import INTERNODE_CELL_PATH
    from repro.comm.dacs import DACS_MEASURED

    return {
        "sizes_bytes": _SWEEP_SIZES,
        "intranode_2x_uni_mb_s": [
            to_mb_s(2 * DACS_MEASURED.effective_bandwidth(s)) for s in _SWEEP_SIZES
        ],
        "intranode_bidir_mb_s": [
            to_mb_s(DACS_MEASURED.bidirectional_sum_bandwidth(s))
            for s in _SWEEP_SIZES
        ],
        "internode_2x_uni_mb_s": [
            to_mb_s(2 * INTERNODE_CELL_PATH.effective_bandwidth(s))
            for s in _SWEEP_SIZES
        ],
        "internode_bidir_mb_s": [
            to_mb_s(INTERNODE_CELL_PATH.bidirectional_sum_bandwidth(s))
            for s in _SWEEP_SIZES
        ],
    }


def _fig8() -> dict[str, Any]:
    from repro.comm.ib import ib_between_cores

    return {
        "sizes_bytes": _SWEEP_SIZES,
        "cores_1_3_mb_s": [
            to_mb_s(ib_between_cores(1, 3).effective_bandwidth(s))
            for s in _SWEEP_SIZES
        ],
        "cores_0_2_mb_s": [
            to_mb_s(ib_between_cores(0, 2).effective_bandwidth(s))
            for s in _SWEEP_SIZES
        ],
    }


def _fig9() -> dict[str, Any]:
    from repro.comm.dacs import DACS_MEASURED
    from repro.comm.ib import IB_DEFAULT

    dacs = [DACS_MEASURED.effective_bandwidth(s) for s in _SWEEP_SIZES]
    ib = [IB_DEFAULT.effective_bandwidth(s) for s in _SWEEP_SIZES]
    return {
        "sizes_bytes": _SWEEP_SIZES,
        "dacs_mb_s": [to_mb_s(v) for v in dacs],
        "ib_mb_s": [to_mb_s(v) for v in ib],
        "ratio_ib_over_dacs": [i / d for i, d in zip(ib, dacs)],
    }


def _fig10() -> dict[str, Any]:
    from repro.core.machine import RoadrunnerMachine

    series = RoadrunnerMachine().latency_map()
    return {"latency_us_by_node": [to_us(v) for v in series]}


def _fig11() -> dict[str, Any]:
    from repro.sweep3d.wavefront import total_steps, wavefront_cells

    out: dict[str, Any] = {}
    for shape in ((4,), (4, 4), (4, 4, 4)):
        key = "x".join(map(str, shape))
        out[key] = [
            len(wavefront_cells(shape, s))
            for s in range(1, total_steps(shape) + 1)
        ]
    return out


def _fig12() -> dict[str, Any]:
    from repro.hardware.cell import POWERXCELL_8I
    from repro.hardware.opteron import (
        OPTERON_2210_HE,
        OPTERON_QUAD_2356,
        TIGERTON_X7350,
    )
    from repro.sweep3d.cellport import grind_time
    from repro.sweep3d.x86 import x86_grind_time

    out = {}
    for proc in (OPTERON_2210_HE, OPTERON_QUAD_2356, TIGERTON_X7350):
        g = x86_grind_time(proc)
        out[proc.name] = {
            "single_core_s": 10000 * 48 * g,
            "single_socket_s": 80000 / proc.core_count * 48 * g,
        }
    g = grind_time(POWERXCELL_8I)
    out["PowerXCell 8i"] = {
        "single_core_s": 10000 * 48 * g,
        "single_socket_s": 80000 / 8 * 48 * g,
    }
    return out


def _fig13() -> dict[str, Any]:
    from repro.sweep3d.scaling import ScalingStudy
    from repro.validation.paper_data import SCALING_NODE_COUNTS

    counts = list(SCALING_NODE_COUNTS)
    series = ScalingStudy().fig13_series(counts)
    return {
        "nodes": counts,
        **{
            config: [p.iteration_time for p in points]
            for config, points in series.items()
        },
    }


def _fig14() -> dict[str, Any]:
    from repro.sweep3d.scaling import ScalingStudy
    from repro.validation.paper_data import SCALING_NODE_COUNTS

    counts = list(SCALING_NODE_COUNTS)
    return {"nodes": counts, **ScalingStudy().fig14_improvements(counts)}


def _linpack() -> dict[str, Any]:
    from repro.core.machine import RoadrunnerMachine

    machine = RoadrunnerMachine()
    run = machine.linpack()
    opteron = machine.linpack_opteron_only()
    return {
        "peak_dp_pflops": machine.peak_dp_pflops,
        "rmax_pflops": run.rmax_flops / 1e15,
        "efficiency": run.efficiency,
        "problem_size": run.n,
        "green500_mflops_per_watt": machine.green500_mflops_per_watt(),
        "opteron_only_rmax_tflops": opteron.rmax_flops / 1e12,
        "opteron_only_top500_position": machine.opteron_only_top500_position(),
    }


def _apps() -> dict[str, Any]:
    from repro.apps.speedup import all_speedups

    return all_speedups()


def _energy() -> dict[str, Any]:
    from repro.core.energy import EnergyStudy

    study = EnergyStudy()
    out = {}
    for nodes in (1, 64, 1024, 3060):
        out[str(nodes)] = study.energy_advantage(nodes)
    return out


def _section4() -> dict[str, Any]:
    from repro.microbench.characterize import characterize

    return characterize()


def _resilience() -> dict[str, Any]:
    from repro.resilience.checkpoint import sweep_failure_study

    return sweep_failure_study()


def _resilience_correlated() -> dict[str, Any]:
    from repro.resilience.checkpoint import sweep_failure_study

    return {
        "independent": sweep_failure_study(burst_size=1),
        "triblade_pair": sweep_failure_study(burst_size=2),
        "cu_domain": sweep_failure_study(burst_size=180),
    }


def _validate() -> dict[str, Any]:
    from repro.validation.report import run_checks

    results = run_checks()
    return {
        "checks": [
            {
                "section": r.section,
                "claim": r.claim,
                "paper": r.paper_value,
                "reproduced": r.reproduced,
                "rel_error": r.rel_error,
                "passed": r.passed,
            }
            for r in results
        ],
        "passed": sum(r.passed for r in results),
        "total": len(results),
    }


DATA_PRODUCERS: dict[str, Callable[[], dict[str, Any]]] = {
    "fig1": _fig1,
    "fig2": _fig2,
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "fig3": _fig3,
    "fig4": _figs45,
    "fig5": _figs45,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "linpack": _linpack,
    "apps": _apps,
    "energy": _energy,
    "section4": _section4,
    "resilience": _resilience,
    "resilience-correlated": _resilience_correlated,
    "validate": _validate,
}


def produce_data(name: str) -> dict[str, Any]:
    """One artifact as JSON-serializable data."""
    try:
        producer = DATA_PRODUCERS[name]
    except KeyError:
        raise KeyError(
            f"no data producer for {name!r}; available: "
            f"{', '.join(sorted(DATA_PRODUCERS))}"
        ) from None
    return producer()
