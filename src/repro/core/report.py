"""Plain-text table/series formatting for benchmarks and examples."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "sparkline"]

#: Eight-level bar glyphs for text sparklines.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode profile of a series (min -> max scaled).

    Handy for eyeballing the Fig 10 staircase or the Fig 13 growth
    curves directly in a terminal.
    """
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    rows = [[_cell(c) for c in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    fmt: str = "{:.4g}",
    title: str | None = None,
) -> str:
    """Render aligned columns of one or more named series."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(fmt.format(series[name][i]) for name in series)]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
