"""System configurations: full Roadrunner, a single CU, or custom."""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.cu_switch import COMPUTE_NODES_PER_CU, IO_NODES_PER_CU

__all__ = ["SystemConfig", "FULL_SYSTEM", "SINGLE_CU"]


@dataclass(frozen=True)
class SystemConfig:
    """Size parameters of a Roadrunner-style installation."""

    name: str
    cu_count: int
    include_io: bool = True

    def __post_init__(self):
        if not 1 <= self.cu_count <= 24:
            raise ValueError("cu_count must be in 1..24 (the design limit)")

    @property
    def node_count(self) -> int:
        return self.cu_count * COMPUTE_NODES_PER_CU

    @property
    def io_node_count(self) -> int:
        return self.cu_count * IO_NODES_PER_CU if self.include_io else 0

    @property
    def opteron_core_count(self) -> int:
        return self.node_count * 4

    @property
    def cell_count(self) -> int:
        return self.node_count * 4

    @property
    def spe_count(self) -> int:
        return self.node_count * 32


#: The machine the paper describes: 17 CUs, 3,060 compute nodes.
FULL_SYSTEM = SystemConfig(name="Roadrunner (17 CUs)", cu_count=17)

#: One Connected Unit: a stand-alone 180-node cluster (§II-B).
SINGLE_CU = SystemConfig(name="single CU", cu_count=1)
