"""The campaign write-ahead journal: durable, resumable execution.

A journaled campaign appends one JSON line per job-state transition to
an append-only journal file.  If the campaign process dies — power
loss, OOM-kill, a chaos-harness ``SIGKILL`` — the journal plus the
content-addressed :class:`~repro.campaign.store.ArtifactStore` are
enough to reconstruct the exact campaign state:

* jobs whose terminal record landed (``finished`` / ``failed`` /
  ``cached-hit``) are **never recomputed** — their artifacts are
  restored from the store by recorded hash;
* jobs whose last record is ``started`` were in flight at the crash
  and are **re-queued** (re-run with the same attempt number — the
  campaign died, not the job, so no retry strike);
* jobs with no record are still queued and run normally.

File format (``format`` 1): line 1 is the header record carrying the
full spec list, the store root, and the pool knobs; every subsequent
line is a state record ``{"type": "state", "index": i, ...}``.  Lines
are canonical JSON (:func:`~repro.campaign.jobs.canonical_json`), so
the journal is byte-deterministic for a deterministic campaign.

Durability model
----------------
Appends reach the OS on every record (``flush``); ``fsync`` is issued
on *terminal* records only (the default, ``fsync="terminal"``).
Losing a ``started`` record merely re-queues the job on resume; losing
a terminal record costs one recomputation, never correctness — the
store, not the journal, is the artifact of record.  ``fsync="always"``
hardens every append; ``fsync="never"`` is for tests.  The reader
tolerates a torn final line (a crash mid-append), and
:meth:`Journal.rotate` compacts a resumed journal atomically
(same-directory temp file, fsync file and directory, ``os.replace``)
so repeated crash/resume cycles keep the journal bounded.

Chaos hooks: every append consults
:func:`repro.campaign.chaos.check_write` (injected disk-full) and,
after the bytes land, :func:`~repro.campaign.chaos.maybe_kill_campaign`
(kill-at-every-boundary testing).  With no plan installed both are a
dict lookup.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.campaign import chaos
from repro.campaign.jobs import (
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
    JobSpec,
    canonical_json,
)

__all__ = ["JOURNAL_FORMAT", "Journal", "JournalState", "read_journal"]

#: journal schema version; bump on incompatible record-shape changes
JOURNAL_FORMAT = 1


def _fsync_dir(path: pathlib.Path) -> None:
    """fsync a directory so a just-renamed/created entry is durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class JobState:
    """Reconstructed state of one job (last journal record wins)."""

    state: str = PENDING            # pending | running | done | failed
    attempts: int = 0               # attempts started so far
    cached: bool = False            # terminal state came from a cache hit
    artifact_sha256: str | None = None
    error: str | None = None
    breaker: bool = False           # failed by an open circuit breaker


@dataclass
class JournalState:
    """Everything :func:`read_journal` recovers from a journal file."""

    specs: list[JobSpec]
    store_root: str | None
    options: dict[str, Any]
    jobs: dict[int, JobState] = field(default_factory=dict)
    records: int = 0                # well-formed records read (incl. header)
    complete: bool = False          # an end record landed

    def job(self, index: int) -> JobState:
        return self.jobs.get(index, JobState())

    def summary(self) -> dict[str, int]:
        counts = {PENDING: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for i in range(len(self.specs)):
            counts[self.job(i).state] += 1
        return counts


def read_journal(path: str | os.PathLike) -> JournalState:
    """Replay a journal into a :class:`JournalState`.

    Raises ``ValueError`` on a missing/alien header; a torn final line
    (crash mid-append) is silently dropped — every complete record
    before it still counts.
    """
    text = pathlib.Path(path).read_text()
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    else:
        lines.pop()  # no trailing newline: the final append was torn
    if not lines:
        raise ValueError(f"journal {path!s} has no header record")
    try:
        header = json.loads(lines[0])
    except ValueError:
        raise ValueError(f"journal {path!s} header is not JSON") from None
    if header.get("type") != "campaign":
        raise ValueError(
            f"journal {path!s} is not a campaign journal "
            f"(header type {header.get('type')!r})"
        )
    fmt = header.get("format")
    if fmt != JOURNAL_FORMAT:
        # Distinguish "written by a newer repro" from "not a journal at
        # all": a clear upgrade message beats a generic parse failure.
        raise ValueError(
            f"journal {path!s} has format {fmt!r}, but this version of "
            f"repro only reads format {JOURNAL_FORMAT} — it was likely "
            f"written by a newer version; upgrade repro or re-run the "
            f"campaign to produce a fresh journal"
        )
    state = JournalState(
        specs=[JobSpec.from_dict(s) for s in header["specs"]],
        store_root=header.get("store"),
        options=dict(header.get("options", {})),
        records=1,
    )
    for line in lines[1:]:
        try:
            rec = json.loads(line)
        except ValueError:
            break  # torn mid-file record: nothing after it is trusted
        state.records += 1
        kind = rec.get("type")
        if kind == "end":
            state.complete = True
            continue
        if kind != "state":
            continue
        index = rec["index"]
        job = state.jobs.setdefault(index, JobState())
        jstate = rec["state"]
        if jstate == RUNNING:
            job.state = RUNNING
            job.attempts = rec.get("attempt", job.attempts + 1)
        elif jstate in TERMINAL_STATES:
            job.state = jstate
            job.attempts = rec.get("attempts", job.attempts)
            job.cached = bool(rec.get("cached", False))
            job.artifact_sha256 = rec.get("artifact_sha256")
            job.error = rec.get("error")
            job.breaker = bool(rec.get("breaker", False))
    return state


class Journal:
    """Append-only writer for one campaign's state transitions."""

    def __init__(self, path: str | os.PathLike, *,
                 fsync: str = "terminal"):
        if fsync not in ("always", "terminal", "never"):
            raise ValueError("fsync must be 'always', 'terminal', or 'never'")
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self.records = 0
        self._fh = None

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | os.PathLike,
        specs: Sequence[JobSpec],
        *,
        store_root: str | None,
        options: Mapping[str, Any] | None = None,
        fsync: str = "terminal",
    ) -> "Journal":
        """Start a fresh journal (truncating any prior file) and write
        its header record."""
        journal = cls(path, fsync=fsync)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal._fh = open(journal.path, "w")
        journal._append(
            {
                "type": "campaign",
                "format": JOURNAL_FORMAT,
                "specs": [s.to_dict() for s in specs],
                "store": store_root,
                "options": dict(options or {}),
            },
            terminal=True,
        )
        return journal

    @classmethod
    def rotate(
        cls,
        path: str | os.PathLike,
        state: JournalState,
        *,
        fsync: str = "terminal",
    ) -> "Journal":
        """Atomically compact a journal for resume and reopen it for
        appending.

        The compacted journal holds the header plus one terminal state
        record per already-decided job (``running`` records are dropped
        — those jobs are being re-queued).  Written to a same-directory
        temp file, fsync'd, then ``os.replace``\\ d over the original,
        so a crash mid-rotation leaves the old journal intact.
        """
        target = pathlib.Path(path)
        fd, tmp = tempfile.mkstemp(
            dir=target.parent, prefix=f".{target.name}-", suffix=".tmp"
        )
        records = 0
        try:
            with os.fdopen(fd, "w") as fh:
                header = {
                    "type": "campaign",
                    "format": JOURNAL_FORMAT,
                    "specs": [s.to_dict() for s in state.specs],
                    "store": state.store_root,
                    "options": dict(state.options),
                }
                fh.write(canonical_json(header) + "\n")
                records = 1
                for index in sorted(state.jobs):
                    job = state.jobs[index]
                    if job.state not in TERMINAL_STATES:
                        continue
                    rec = {
                        "type": "state",
                        "index": index,
                        "state": job.state,
                        "attempts": job.attempts,
                        "cached": job.cached,
                        "artifact_sha256": job.artifact_sha256,
                        "error": job.error,
                    }
                    if job.breaker:
                        rec["breaker"] = True
                    fh.write(canonical_json(rec) + "\n")
                    records += 1
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _fsync_dir(target.parent)
        journal = cls(target, fsync=fsync)
        journal._fh = open(target, "a")
        journal.records = records
        return journal

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    # -- record writers ------------------------------------------------------

    def _append(self, record: dict[str, Any], *, terminal: bool) -> None:
        """One journal append: chaos write check, canonical JSON line,
        flush (+ fsync per policy), then the kill-boundary hook."""
        chaos.check_write("journal")
        self._fh.write(canonical_json(record) + "\n")
        self._fh.flush()
        if self.fsync == "always" or (terminal and self.fsync == "terminal"):
            os.fsync(self._fh.fileno())
        self.records += 1
        chaos.maybe_kill_campaign(self.records)

    def record_started(self, index: int, attempt: int) -> None:
        self._append(
            {"type": "state", "index": index, "state": RUNNING,
             "attempt": attempt},
            terminal=False,
        )

    def record_cached_hit(self, index: int, artifact_sha256: str) -> None:
        self._append(
            {"type": "state", "index": index, "state": DONE,
             "attempts": 0, "cached": True,
             "artifact_sha256": artifact_sha256},
            terminal=True,
        )

    def record_finished(self, index: int, attempts: int,
                        artifact_sha256: str) -> None:
        self._append(
            {"type": "state", "index": index, "state": DONE,
             "attempts": attempts, "cached": False,
             "artifact_sha256": artifact_sha256},
            terminal=True,
        )

    def record_failed(self, index: int, attempts: int, error: str | None,
                      *, breaker: bool = False) -> None:
        rec: dict[str, Any] = {
            "type": "state", "index": index, "state": FAILED,
            "attempts": attempts, "error": error,
        }
        if breaker:
            rec["breaker"] = True
        self._append(rec, terminal=True)

    def record_end(self, summary: Mapping[str, int]) -> None:
        self._append({"type": "end", "summary": dict(summary)},
                     terminal=True)
