"""Campaign service: simulation-as-a-service with a worker pool, job
queue, content-addressed artifact cache, and a write-ahead journal.

Every DES run in this repository is a deterministic, single-threaded
function of ``(scenario, config, seed, code_version)`` — which makes
campaigns of parameterized runs (the paper's scaling curves, the
failure-economics sweeps) embarrassingly parallel *and* perfectly
cacheable.  This package turns that property into a service layer
that is also **durable**: a campaign survives worker crashes, driver
crashes, cache corruption, and disk-full, and a resumed campaign
produces the identical report an uninterrupted one would have.

* :mod:`~repro.campaign.jobs` — frozen :class:`JobSpec` with a
  canonical-JSON SHA-256 content address;
* :mod:`~repro.campaign.store` — the on-disk, content-addressed,
  self-verifying, self-healing :class:`ArtifactStore` (fsync'd atomic
  writes);
* :mod:`~repro.campaign.scenarios` — registered tenants
  (``sweep``, ``sweep3060``, ``placement-penalty``);
* :mod:`~repro.campaign.workers` — the supervised process pool:
  per-job leases, individual timeout expiry, crash blame by lease +
  exit code, seeded backoff retries, deterministic result order;
* :mod:`~repro.campaign.journal` — the append-only :class:`Journal`
  of job-state transitions and its reader;
* :mod:`~repro.campaign.service` — :class:`CampaignService`:
  cache-first execution, completion-time persistence,
  :meth:`~CampaignService.resume`, per-scenario circuit breaker,
  streamed :class:`ProgressEvent`\\ s with obs counter snapshots,
  :class:`CampaignReport` aggregation;
* :mod:`~repro.campaign.chaos` — the real-fault injection harness
  (worker/driver ``SIGKILL``, disk-full, cache corruption) behind
  ``tests/test_chaos.py``;
* :mod:`~repro.campaign.cli` — ``python -m repro campaign``
  (``--journal`` / ``--resume`` / ``--breaker``).

See ``docs/CAMPAIGN.md`` for the job model, cache-key rules, progress
stream format, the durability model, and tenancy examples.
"""

from repro.campaign.chaos import ChaosPlan, draw_plan
from repro.campaign.jobs import (
    DONE,
    FAILED,
    JOB_STATES,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
    JobSpec,
    canonical_json,
    content_digest,
    default_code_version,
)
from repro.campaign.journal import Journal, JournalState, read_journal
from repro.campaign.scenarios import SCENARIOS, Scenario, job_config, run_job
from repro.campaign.service import (
    BREAKER_ERROR_PREFIX,
    CampaignReport,
    CampaignService,
    JobOutcome,
    ProgressEvent,
    grid,
)
from repro.campaign.store import ArtifactStore
from repro.campaign.workers import JobResult, run_specs

__all__ = [
    "PENDING",
    "RUNNING",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobSpec",
    "canonical_json",
    "content_digest",
    "default_code_version",
    "ArtifactStore",
    "Scenario",
    "SCENARIOS",
    "job_config",
    "run_job",
    "JobResult",
    "run_specs",
    "Journal",
    "JournalState",
    "read_journal",
    "ChaosPlan",
    "draw_plan",
    "BREAKER_ERROR_PREFIX",
    "ProgressEvent",
    "JobOutcome",
    "CampaignReport",
    "CampaignService",
    "grid",
]
