"""Campaign service: simulation-as-a-service with a worker pool, job
queue, and content-addressed artifact cache.

Every DES run in this repository is a deterministic, single-threaded
function of ``(scenario, config, seed, code_version)`` — which makes
campaigns of parameterized runs (the paper's scaling curves, the
failure-economics sweeps) embarrassingly parallel *and* perfectly
cacheable.  This package turns that property into a service layer:

* :mod:`~repro.campaign.jobs` — frozen :class:`JobSpec` with a
  canonical-JSON SHA-256 content address;
* :mod:`~repro.campaign.store` — the on-disk, content-addressed,
  self-verifying :class:`ArtifactStore`;
* :mod:`~repro.campaign.scenarios` — registered tenants
  (``sweep``, ``sweep3060``, ``placement-penalty``);
* :mod:`~repro.campaign.workers` — the process pool: per-job timeout,
  bounded crash retries, deterministic result order;
* :mod:`~repro.campaign.service` — :class:`CampaignService`:
  cache-first execution, streamed :class:`ProgressEvent`\\ s with obs
  counter snapshots, :class:`CampaignReport` aggregation;
* :mod:`~repro.campaign.cli` — ``python -m repro campaign``.

See ``docs/CAMPAIGN.md`` for the job model, cache-key rules, progress
stream format, and tenancy examples.
"""

from repro.campaign.jobs import (
    DONE,
    FAILED,
    JOB_STATES,
    PENDING,
    RUNNING,
    JobSpec,
    canonical_json,
    content_digest,
    default_code_version,
)
from repro.campaign.scenarios import SCENARIOS, Scenario, job_config, run_job
from repro.campaign.service import (
    CampaignReport,
    CampaignService,
    JobOutcome,
    ProgressEvent,
    grid,
)
from repro.campaign.store import ArtifactStore
from repro.campaign.workers import JobResult, run_specs

__all__ = [
    "PENDING",
    "RUNNING",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "JobSpec",
    "canonical_json",
    "content_digest",
    "default_code_version",
    "ArtifactStore",
    "Scenario",
    "SCENARIOS",
    "job_config",
    "run_job",
    "JobResult",
    "run_specs",
    "ProgressEvent",
    "JobOutcome",
    "CampaignReport",
    "CampaignService",
    "grid",
]
