"""The campaign worker pool: supervised fan-out of job specs over OS
processes.

Every DES run is single-threaded and a pure function of its spec, so
the pool is the whole parallelization story: ``workers=1`` executes
inline in the calling process (zero overhead, byte-identical to the
historical serial loops), ``workers=N`` fans the queue over a
``concurrent.futures.ProcessPoolExecutor`` with a sliding submission
window of at most ``N`` jobs in flight — a submitted job is a
*started* job, so its lease clock is honest.

Supervision model
-----------------
* **Leases.**  Each in-flight job holds a :class:`Lease` (attempt
  number, start time, expiry deadline).  The worker *claims* the lease
  on disk when it picks the job up (a small JSON file carrying its
  pid) and releases it on completion; the supervisor checks expiry
  every time it wakes.
* **Per-job timeout, no pool rebuild.**  A job whose lease expires is
  failed individually and its future *abandoned* — concurrent jobs
  keep running and their completed work is kept.  The wedged worker
  quietly rejoins the window when its task eventually ends; only if
  every worker is wedged is the pool rebuilt to restore capacity.
* **Crash blame by lease + exit code.**  A worker that dies (SIGKILL,
  ``os._exit``, OOM) breaks the pool; the executor SIGTERMs the other
  workers.  The supervisor reads the leftover lease claims and each
  worker's exit code: leases whose worker died of anything *other*
  than the executor's SIGTERM are blamed (crash count incremented);
  the rest are victims and re-queued without a strike.
* **Seeded backoff.**  Blamed jobs wait out a
  :class:`~repro.resilience.policy.RetryPolicy` delay (exponential,
  jittered, deterministic per seed) before resubmission, up to
  ``max_retries`` extra attempts, then fail.  Jobs that merely *raise*
  fail immediately — a deterministic exception would just raise again.
* **Admission gate.**  ``gate(spec)`` runs at submission time; a
  non-``None`` reason fails the job without executing it (the
  service's circuit breaker plugs in here).
* **No orphans.**  Each worker arms ``PR_SET_PDEATHSIG`` (with a
  ppid-polling watchdog thread as the portable fallback) so that if
  the *supervisor* dies — SIGKILL, OOM, a chaos driver-kill — its
  workers die with it instead of blocking forever on the call queue
  and holding inherited pipes open.

Guarantees
----------
Results come back indexed by submission position regardless of
completion order, and progress *outcome* events (``finished`` /
``failed``) are emitted in submission order too — a 4-worker run and a
1-worker run of the same specs produce the identical result list.  The
``on_result`` callback, by contrast, fires immediately at resolution
(completion order): it is the durability hook the campaign service
uses to cache artifacts and journal terminal states as soon as they
exist.
"""

from __future__ import annotations

import collections
import concurrent.futures
import heapq
import json
import os
import pathlib
import shutil
import signal
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.campaign.jobs import DONE, FAILED, JobSpec
from repro.resilience.policy import RetryPolicy

__all__ = ["JobResult", "Lease", "DEFAULT_RETRY", "run_specs"]

#: progress callback signature: (event, index, spec, detail)
ProgressFn = Callable[[str, int, JobSpec, dict], None]
#: completion-order result hook: (index, result) at resolution time
ResultFn = Callable[[int, "JobResult"], None]
#: admission gate: spec -> None (run it) or a structured skip reason
GateFn = Callable[[JobSpec], "str | None"]

#: default crash-retry backoff: short, capped, jittered, seeded
DEFAULT_RETRY = RetryPolicy(
    base_delay=0.05, backoff=2.0, max_delay=2.0, jitter=0.25, seed=0
)


@dataclass
class JobResult:
    """Outcome of one executed spec (never a cache hit — the service
    short-circuits those before the pool sees them)."""

    spec: JobSpec
    state: str                      # DONE or FAILED
    artifact: dict | None = None
    error: str | None = None
    attempts: int = 1
    detail: dict = field(default_factory=dict)


@dataclass
class Lease:
    """The supervisor's claim record for one in-flight job."""

    index: int
    attempt: int                    # 1-based attempt number
    started: float                  # monotonic submission time
    deadline: float | None          # started + timeout, or None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


def _worker_init(parent_pid: int) -> None:
    """Pool-worker initializer: die when the supervisor dies.

    A SIGKILLed supervisor (chaos driver-kill, OOM) cannot shut its
    pool down; orphaned workers would block forever reading the call
    queue — and keep any inherited pipes (CI log capture!) open.  On
    Linux, ``prctl(PR_SET_PDEATHSIG, SIGKILL)`` makes the kernel
    deliver the kill; elsewhere a daemon thread polls ``getppid()``.
    """
    armed = False
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        PR_SET_PDEATHSIG = 1
        armed = libc.prctl(PR_SET_PDEATHSIG, signal.SIGKILL, 0, 0, 0) == 0
    except Exception:  # noqa: BLE001 — fall through to the watchdog
        armed = False
    if os.getppid() != parent_pid:
        # the supervisor died in the gap before prctl armed
        os._exit(1)
    if not armed:
        import threading

        def _watch() -> None:
            while True:
                if os.getppid() != parent_pid:
                    os._exit(1)
                time.sleep(0.5)

        threading.Thread(target=_watch, daemon=True).start()


def _execute(
    payload: dict,
    index: int = 0,
    attempt: int = 1,
    lease_dir: str | None = None,
    inject: bool = True,
) -> dict:
    """Worker-side entry point (module-level, hence picklable).

    Claims the job's lease on disk before running and releases it
    after, so the supervisor can attribute a worker death to the exact
    job it was executing.  Chaos worker-kill hooks fire here, in the
    worker's own address space.
    """
    from repro.campaign.jobs import JobSpec as _JobSpec

    spec = _JobSpec.from_dict(payload)
    digest = spec.digest
    lease_path = None
    if lease_dir is not None:
        lease_path = pathlib.Path(lease_dir) / f"{index:05d}.json"
        lease_path.write_text(json.dumps({
            "index": index, "attempt": attempt,
            "pid": os.getpid(), "digest": digest[:12],
        }))
    try:
        if inject:
            from repro.campaign import chaos

            chaos.maybe_kill_worker(digest, attempt, "before")
        from repro.campaign.scenarios import run_job

        artifact = run_job(spec)
        if inject:
            chaos.maybe_kill_worker(digest, attempt, "after")
        return artifact
    finally:
        if lease_path is not None:
            try:
                lease_path.unlink()
            except OSError:
                pass


def _progress(fn: ProgressFn | None, event: str, index: int,
              spec: JobSpec, detail: dict) -> None:
    if fn is not None:
        fn(event, index, spec, detail)


def run_specs(
    specs: Sequence[JobSpec],
    *,
    workers: int = 1,
    timeout: float | None = None,
    max_retries: int = 1,
    progress: ProgressFn | None = None,
    retry: RetryPolicy | None = None,
    gate: GateFn | None = None,
    on_result: ResultFn | None = None,
    initial_attempts: Sequence[int] | None = None,
) -> list[JobResult]:
    """Execute every spec; returns one :class:`JobResult` per spec, in
    submission order.

    ``max_retries`` bounds *extra* attempts after a worker crash;
    ``retry`` supplies the backoff schedule between them (defaults to
    :data:`DEFAULT_RETRY`).  ``initial_attempts`` seeds per-job crash
    counts — the resume path passes the attempt numbers recovered from
    the journal, so a resumed job keeps its remaining budget.  See the
    module docstring for ``timeout``, ``gate``, and ``on_result``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if initial_attempts is not None and len(initial_attempts) != len(specs):
        raise ValueError("initial_attempts must match specs length")
    if not specs:
        return []
    retry = retry if retry is not None else DEFAULT_RETRY
    runner = _Run(specs, workers, timeout, max_retries, progress, retry,
                  gate, on_result, initial_attempts)
    if workers == 1:
        return runner.run_inline()
    return runner.run_pooled()


class _Run:
    """One `run_specs` invocation's mutable state."""

    def __init__(self, specs, workers, timeout, max_retries, progress,
                 retry, gate, on_result, initial_attempts):
        self.specs = specs
        self.workers = workers
        self.timeout = timeout
        self.max_retries = max_retries
        self.progress = progress
        self.retry = retry
        self.gate = gate
        self.on_result = on_result
        n = len(specs)
        #: crash strikes per job (attempt number = crashes + 1)
        self.crashes = (
            [max(0, int(a) - 1) for a in initial_attempts]
            if initial_attempts is not None else [0] * n
        )
        self.results: list[JobResult | None] = [None] * n
        # outcome events buffered so they emit in submission order
        self._pending_events: dict[int, tuple[str, dict]] = {}
        self._emitted = 0

    # -- shared settle/emit machinery ----------------------------------------

    def _settle(self, index: int, result: JobResult) -> None:
        """Record a terminal result: `on_result` fires immediately (in
        completion order); the outcome event is buffered until every
        earlier job has settled (submission order)."""
        self.results[index] = result
        if self.on_result is not None:
            self.on_result(index, result)
        if result.state == DONE:
            event, detail = "finished", {"attempts": result.attempts}
        else:
            event = "failed"
            detail = {"error": result.error, "attempts": result.attempts}
        detail.update(result.detail)
        self._pending_events[index] = (event, detail)
        while (self._emitted < len(self.specs)
               and self.results[self._emitted] is not None):
            ev, det = self._pending_events.pop(self._emitted)
            _progress(self.progress, ev, self._emitted,
                      self.specs[self._emitted], det)
            self._emitted += 1

    def _gate_reason(self, index: int) -> str | None:
        return self.gate(self.specs[index]) if self.gate is not None else None

    def _settle_skipped(self, index: int, reason: str) -> None:
        self._settle(index, JobResult(
            self.specs[index], FAILED, error=reason,
            attempts=self.crashes[index], detail={"skipped": True},
        ))

    # -- inline execution (workers=1) ----------------------------------------

    def run_inline(self) -> list[JobResult]:
        """Serial in-process execution.  ``timeout`` is not enforced
        (there is no concurrent supervisor to measure it) and a worker
        *crash* is a campaign crash — which the journal survives."""
        for i, spec in enumerate(self.specs):
            reason = self._gate_reason(i)
            if reason is not None:
                self._settle_skipped(i, reason)
                continue
            attempt = self.crashes[i] + 1
            _progress(self.progress, "started", i, spec,
                      {"attempt": attempt})
            try:
                artifact = _execute(spec.to_dict(), i, attempt, None,
                                    inject=False)
            except Exception as exc:  # noqa: BLE001 — job errors become results
                self._settle(i, JobResult(
                    spec, FAILED, attempts=attempt,
                    error=f"{type(exc).__name__}: {exc}",
                ))
                continue
            self._settle(i, JobResult(
                spec, DONE, artifact=artifact, attempts=attempt,
            ))
        return [r for r in self.results if r is not None]

    # -- pooled execution ----------------------------------------------------

    def run_pooled(self) -> list[JobResult]:
        self.ready: collections.deque[int] = collections.deque(
            i for i in range(len(self.specs)) if self.results[i] is None
        )
        self.delayed: list[tuple[float, int]] = []   # (not_before, index)
        self.inflight: dict[concurrent.futures.Future, Lease] = {}
        self.abandoned: set[concurrent.futures.Future] = set()
        self.stuck = 0
        self.broken = False
        self.lease_dir = tempfile.mkdtemp(prefix="repro-campaign-leases-")
        self.executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_worker_init, initargs=(os.getpid(),),
        )
        self._procs: dict[int, Any] = {}   # pid -> Process, this pool
        try:
            while self.ready or self.delayed or self.inflight:
                self._step()
        finally:
            # On a clean drain the workers are idle, so waiting is
            # instant and keeps the atexit hook from poking an
            # already-closed pipe; with abandoned (wedged) futures,
            # don't block on the join.
            self.executor.shutdown(
                wait=not self.abandoned and not self.inflight,
                cancel_futures=True,
            )
            shutil.rmtree(self.lease_dir, ignore_errors=True)
        return [r for r in self.results if r is not None]

    def _step(self) -> None:
        now = time.monotonic()
        self._submit_ready(now)
        self._procs.update(getattr(self.executor, "_processes", None) or {})
        if not self.inflight:
            if self.broken:
                self._handle_broken_pool()
                return
            if self.stuck >= self.workers:
                self._rebuild()      # every worker wedged: reclaim capacity
                return
            if self.delayed and not self.ready:
                # nothing running, nothing submittable: sleep out the
                # earliest retry backoff
                time.sleep(max(0.0, self.delayed[0][0] - time.monotonic()))
            return
        done = self._wait(now)
        now = time.monotonic()
        broke = False
        for fut in done:
            if fut in self.abandoned:
                # a wedged worker finally finished its abandoned job;
                # its slot rejoins the submission window
                self.abandoned.discard(fut)
                self.stuck -= 1
                continue
            lease = self.inflight.get(fut)
            if lease is None:
                continue
            exc = fut.exception()
            if isinstance(exc, concurrent.futures.process.BrokenProcessPool):
                broke = True
                continue        # handled wholesale below
            del self.inflight[fut]
            if exc is None:
                self._settle(lease.index, JobResult(
                    self.specs[lease.index], DONE, artifact=fut.result(),
                    attempts=lease.attempt,
                ))
            else:
                self._settle(lease.index, JobResult(
                    self.specs[lease.index], FAILED, attempts=lease.attempt,
                    error=f"{type(exc).__name__}: {exc}",
                ))
        if broke or self.broken:
            self._handle_broken_pool()
            return
        self._expire_leases(now)

    def _submit_ready(self, now: float) -> None:
        while self.delayed and self.delayed[0][0] <= now:
            _, index = heapq.heappop(self.delayed)
            self.ready.append(index)
        capacity = self.workers - self.stuck
        while self.ready and len(self.inflight) < capacity:
            index = self.ready.popleft()
            reason = self._gate_reason(index)
            if reason is not None:
                self._settle_skipped(index, reason)
                continue
            attempt = self.crashes[index] + 1
            try:
                fut = self.executor.submit(
                    _execute, self.specs[index].to_dict(), index, attempt,
                    self.lease_dir,
                )
            except concurrent.futures.process.BrokenProcessPool:
                # A worker death was noticed at submit time; put the
                # job back and let the crash handler sort out blame.
                self.ready.appendleft(index)
                self.broken = True
                return
            self.inflight[fut] = Lease(
                index, attempt, now,
                now + self.timeout if self.timeout is not None else None,
            )
            _progress(self.progress, "started", index, self.specs[index],
                      {"attempt": attempt})

    def _wait(self, now: float) -> set:
        """Block until something completes, a lease expires, or a
        delayed retry matures."""
        horizon = None
        for lease in self.inflight.values():
            if lease.deadline is not None:
                horizon = (lease.deadline if horizon is None
                           else min(horizon, lease.deadline))
        if self.delayed:
            maturity = self.delayed[0][0]
            horizon = maturity if horizon is None else min(horizon, maturity)
        wait_s = None if horizon is None else max(0.0, horizon - now)
        done, _not_done = concurrent.futures.wait(
            set(self.inflight) | self.abandoned, timeout=wait_s,
            return_when=concurrent.futures.FIRST_COMPLETED,
        )
        return done

    def _expire_leases(self, now: float) -> None:
        for fut, lease in list(self.inflight.items()):
            if lease.expired(now) and not fut.done():
                del self.inflight[fut]
                fut.cancel()                # no-op if already running
                self.abandoned.add(fut)     # the worker stays wedged on it
                self.stuck += 1
                self._settle(lease.index, JobResult(
                    self.specs[lease.index], FAILED, attempts=lease.attempt,
                    error=f"timeout: no result within {self.timeout}s",
                    detail={"timeout": True},
                ))

    # -- crash handling ------------------------------------------------------

    def _leftover_leases(self) -> dict[int, int]:
        """index -> pid for every on-disk lease claim not yet released."""
        claims: dict[int, int] = {}
        for path in pathlib.Path(self.lease_dir).glob("*.json"):
            try:
                data = json.loads(path.read_text())
                claims[int(data["index"])] = int(data["pid"])
            except (OSError, ValueError, KeyError):
                continue
        return claims

    def _worker_exitcodes(self) -> dict[int, int | None]:
        codes: dict[int, int | None] = {}
        for pid, proc in list(self._procs.items()):
            try:
                proc.join(timeout=2.0)
                codes[pid] = proc.exitcode
            except Exception:  # noqa: BLE001 — best-effort forensics
                codes[pid] = None
        return codes

    def _handle_broken_pool(self) -> None:
        """A worker died and the executor tore the pool down (victims
        get SIGTERM).  Salvage completed results, blame the leases
        whose worker died of anything but that SIGTERM, requeue the
        victims, and rebuild."""
        concurrent.futures.wait(set(self.inflight), timeout=10.0)
        claims = self._leftover_leases()
        codes = self._worker_exitcodes()
        inflight_indexes = {l.index for l in self.inflight.values()}
        blamed = {
            index for index, pid in claims.items()
            if index in inflight_indexes
            and codes.get(pid) not in (None, 0, -signal.SIGTERM)
        }
        if not blamed and claims:
            # Exit codes unavailable (exotic platform): single
            # conservative strike on the earliest claimed job.
            candidates = sorted(i for i in claims if i in inflight_indexes)
            if candidates:
                blamed = {candidates[0]}
        now = time.monotonic()
        for fut, lease in sorted(self.inflight.items(),
                                 key=lambda kv: kv[1].index):
            index = lease.index
            if fut.done() and not fut.cancelled() and fut.exception() is None:
                # finished before the pool broke: keep the work
                self._settle(index, JobResult(
                    self.specs[index], DONE, artifact=fut.result(),
                    attempts=lease.attempt,
                ))
            elif index in blamed:
                self.crashes[index] += 1
                if self.crashes[index] > self.max_retries:
                    self._settle(index, JobResult(
                        self.specs[index], FAILED,
                        attempts=self.crashes[index],
                        error=(
                            "worker process died "
                            f"({self.crashes[index]} attempt(s), "
                            "retries exhausted)"
                        ),
                        detail={"crash": True},
                    ))
                else:
                    delay = self.retry.delay(self.crashes[index] - 1)
                    heapq.heappush(self.delayed, (now + delay, index))
            else:
                # victim of a neighbor's crash: resubmit, no strike
                self.ready.append(index)
        self.inflight.clear()
        self._rebuild()

    def _rebuild(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)
        self.executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_worker_init, initargs=(os.getpid(),),
        )
        self._procs = {}
        self.abandoned.clear()
        self.stuck = 0
        self.broken = False
        for path in pathlib.Path(self.lease_dir).glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass
