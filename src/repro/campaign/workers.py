"""The campaign worker pool: fan job specs over OS processes.

Every DES run is single-threaded and a pure function of its spec, so
the pool is the whole parallelization story: ``workers=1`` executes
inline in the calling process (zero overhead, byte-identical to the
historical serial loops), ``workers=N`` fans the queue over a
``concurrent.futures.ProcessPoolExecutor``.

Guarantees
----------
* **Deterministic result order.**  Results come back indexed by
  submission position regardless of completion order, and progress
  *outcome* events (``finished``/``failed``) are emitted in submission
  order too — a 4-worker run and a 1-worker run of the same specs
  produce the identical result list.
* **Per-job timeout.**  ``timeout`` bounds the wait for each job once
  the collector reaches it; a job that blows the bound is marked
  failed and the pool is rebuilt so the stuck worker cannot absorb
  further jobs.  Queued-but-unstarted jobs are resubmitted (they are
  pure, so re-running is always safe).
* **Bounded crash retries.**  A worker process that *dies* (segfault,
  ``os._exit``, OOM-kill) breaks the pool; the job being collected is
  blamed, its crash count incremented, and it is resubmitted up to
  ``max_retries`` times before being marked failed.  Jobs that merely
  *raise* are failed immediately — a deterministic exception would
  just raise again.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.campaign.jobs import DONE, FAILED, JobSpec

__all__ = ["JobResult", "run_specs"]

#: progress callback signature: (event, index, spec, detail)
ProgressFn = Callable[[str, int, JobSpec, dict], None]


@dataclass
class JobResult:
    """Outcome of one executed spec (never a cache hit — the service
    short-circuits those before the pool sees them)."""

    spec: JobSpec
    state: str                      # DONE or FAILED
    artifact: dict | None = None
    error: str | None = None
    attempts: int = 1
    detail: dict = field(default_factory=dict)


def _execute(payload: dict) -> dict:
    """Worker-side entry point (module-level, hence picklable)."""
    from repro.campaign.scenarios import run_job

    return run_job(JobSpec.from_dict(payload))


def _progress(fn: ProgressFn | None, event: str, index: int,
              spec: JobSpec, detail: dict) -> None:
    if fn is not None:
        fn(event, index, spec, detail)


def _run_inline(
    specs: Sequence[JobSpec], progress: ProgressFn | None
) -> list[JobResult]:
    results: list[JobResult] = []
    for i, spec in enumerate(specs):
        _progress(progress, "started", i, spec, {"attempt": 1})
        try:
            artifact = _execute(spec.to_dict())
        except Exception as exc:  # noqa: BLE001 — job errors become results
            results.append(JobResult(
                spec, FAILED, error=f"{type(exc).__name__}: {exc}"
            ))
            _progress(progress, "failed", i, spec,
                      {"error": results[-1].error, "attempts": 1})
            continue
        results.append(JobResult(spec, DONE, artifact=artifact))
        _progress(progress, "finished", i, spec, {"attempts": 1})
    return results


def run_specs(
    specs: Sequence[JobSpec],
    *,
    workers: int = 1,
    timeout: float | None = None,
    max_retries: int = 1,
    progress: ProgressFn | None = None,
) -> list[JobResult]:
    """Execute every spec; returns one :class:`JobResult` per spec, in
    submission order.  See the module docstring for the semantics of
    ``workers``, ``timeout``, and ``max_retries``."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if not specs:
        return []
    if workers == 1:
        return _run_inline(specs, progress)

    n = len(specs)
    results: list[JobResult | None] = [None] * n
    crashes = [0] * n
    pending = list(range(n))
    executor = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
    try:
        while pending:
            futures: dict[int, concurrent.futures.Future] = {}
            for i in pending:
                _progress(progress, "started", i, specs[i],
                          {"attempt": crashes[i] + 1})
                futures[i] = executor.submit(_execute, specs[i].to_dict())
            rebuild = False
            resubmit: list[int] = []
            for i in sorted(futures):
                fut = futures[i]
                if rebuild:
                    # The pool already broke (or was torn down after a
                    # timeout); salvage finished results, requeue the rest.
                    if fut.done() and not fut.cancelled() \
                            and fut.exception() is None:
                        results[i] = JobResult(
                            specs[i], DONE, artifact=fut.result(),
                            attempts=crashes[i] + 1,
                        )
                        _progress(progress, "finished", i, specs[i],
                                  {"attempts": crashes[i] + 1})
                    else:
                        resubmit.append(i)
                    continue
                try:
                    artifact = fut.result(timeout=timeout)
                except concurrent.futures.TimeoutError:
                    results[i] = JobResult(
                        specs[i], FAILED, attempts=crashes[i] + 1,
                        error=f"timeout: no result within {timeout}s",
                    )
                    _progress(progress, "failed", i, specs[i],
                              {"error": results[i].error,
                               "attempts": crashes[i] + 1})
                    rebuild = True  # reclaim the stuck worker
                except concurrent.futures.process.BrokenProcessPool:
                    # The collected job is the blamed one; later futures
                    # are victims and requeue without a crash strike.
                    crashes[i] += 1
                    if crashes[i] > max_retries:
                        results[i] = JobResult(
                            specs[i], FAILED, attempts=crashes[i],
                            error=(
                                "worker process died "
                                f"({crashes[i]} attempt(s), retries exhausted)"
                            ),
                        )
                        _progress(progress, "failed", i, specs[i],
                                  {"error": results[i].error,
                                   "attempts": crashes[i]})
                    else:
                        resubmit.append(i)
                    rebuild = True
                except Exception as exc:  # noqa: BLE001 — job raised
                    results[i] = JobResult(
                        specs[i], FAILED, attempts=crashes[i] + 1,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    _progress(progress, "failed", i, specs[i],
                              {"error": results[i].error,
                               "attempts": crashes[i] + 1})
                else:
                    results[i] = JobResult(
                        specs[i], DONE, artifact=artifact,
                        attempts=crashes[i] + 1,
                    )
                    _progress(progress, "finished", i, specs[i],
                              {"attempts": crashes[i] + 1})
            if rebuild:
                executor.shutdown(wait=False, cancel_futures=True)
                executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers
                )
            pending = resubmit
    finally:
        # On a clean drain the workers are idle, so waiting is instant
        # and keeps the atexit hook from poking an already-closed pipe;
        # if jobs are still pending we bailed mid-collection and a
        # worker may be stuck, so don't risk blocking on the join.
        executor.shutdown(wait=not pending, cancel_futures=True)
    return [r for r in results if r is not None]
