"""Campaign tenants: named, parameterized, seedable simulation jobs.

A campaign *scenario* is the unit the service executes: a pure
function ``fn(config, seed) -> artifact`` where ``artifact`` is a
JSON-native dict — deterministic per ``(config, seed)`` under the DES
determinism contract, so the content-addressed cache is always safe.

Scenarios declare their full default configuration; :func:`job_config`
merges caller overrides over the defaults and rejects unknown keys, so
every :class:`~repro.campaign.jobs.JobSpec` carries the *complete*
effective config and its digest never depends on hidden defaults.

Registered tenants
------------------
``sweep``
    A small distributed KBA sweep (2x2 ranks by default) with an
    optional lossy delivery policy — the seed feeds the drop RNG, so a
    seed sweep measures the retry/latency distribution.  Artifact:
    phi checksum, iteration time, messages/bytes/retries, and (with
    ``observe``) the deterministic obs summary.
``sweep3060``
    The same sweep at the paper's full machine: 3,060 ranks (60x51),
    one iteration, streaming obs sink — the seed-sweep face of the
    PR 6 full-machine scenario (~seconds of host time per job).
``placement-penalty``
    One seeded fault plan replayed under failure-aware vs naive
    re-placement (:func:`repro.resilience.recovery.placement_penalty`)
    — the ``examples/failure_study.py --campaign`` tenant; defaults
    mirror that study's 64-rank communication-heavy job.
``_selftest``
    A no-simulation harness tenant for exercising the worker pool
    (controlled success / failure / crash-once / sleep); not listed by
    the CLI.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = ["Scenario", "SCENARIOS", "public_scenarios", "job_config", "run_job"]


@dataclass(frozen=True)
class Scenario:
    """One registered tenant: an executor plus its full default config."""

    name: str
    fn: Callable[[dict[str, Any], int], dict[str, Any]]
    defaults: Mapping[str, Any]
    help: str
    #: hidden scenarios (harness tenants) stay out of CLI listings
    public: bool = True


def _phi_sha256(phi) -> str:
    """Content checksum of a flux array (dtype/shape-qualified)."""
    h = hashlib.sha256()
    h.update(str(phi.dtype).encode())
    h.update(repr(phi.shape).encode())
    h.update(phi.tobytes())
    return h.hexdigest()


# -- the sweep tenants -------------------------------------------------------

_SWEEP_DEFAULTS = {
    "it": 2, "jt": 2, "kt": 4, "mk": 2, "mmi": 1,
    "npe_i": 2, "npe_j": 2,
    "grind": 1e-6,
    "iterations": 2,
    "latency": 2e-6,
    "bandwidth": 2e9,
    "drop_probability": 0.0,
    "ack_timeout_us": 50.0,
    "max_retries": 8,
    "observe": False,
}

_SWEEP3060_DEFAULTS = {
    **_SWEEP_DEFAULTS,
    "kt": 8, "mk": 4, "mmi": 2,
    "npe_i": 60, "npe_j": 51,
    "iterations": 1,
    "observe": True,
}


def _sweep(config: dict[str, Any], seed: int) -> dict[str, Any]:
    from repro.comm.mpi import UniformFabric
    from repro.comm.transport import Transport
    from repro.sweep3d.decomposition import Decomposition2D
    from repro.sweep3d.input import SweepInput
    from repro.sweep3d.parallel import ParallelSweep
    from repro.units import US

    delivery = None
    if config["drop_probability"] > 0:
        from repro.resilience.policy import DeliveryPolicy

        delivery = DeliveryPolicy(
            drop_probability=config["drop_probability"],
            ack_timeout=config["ack_timeout_us"] * US,
            max_retries=config["max_retries"],
            seed=seed,
        )
    obs = None
    if config["observe"]:
        from repro.obs.recorder import ObsRecorder
        from repro.obs.sinks import AggregatingSink

        # Streaming sink: full-machine span volume in bounded memory.
        obs = ObsRecorder(sink=AggregatingSink())
    inp = SweepInput(
        it=config["it"], jt=config["jt"], kt=config["kt"],
        mk=config["mk"], mmi=config["mmi"],
    )
    fabric = UniformFabric(
        Transport("ib", latency=config["latency"],
                  bandwidth=config["bandwidth"])
    )
    sweep = ParallelSweep(
        inp, Decomposition2D(config["npe_i"], config["npe_j"]),
        config["grind"], fabric, delivery=delivery, obs=obs,
    )
    result = sweep.run(iterations=config["iterations"])
    artifact = {
        "seed": seed,
        "phi_sha256": _phi_sha256(result.phi),
        "iteration_time": result.iteration_time,
        "iterations": result.iterations,
        "messages": result.messages,
        "bytes": result.bytes_sent,
        "retries": result.retries,
    }
    if obs is not None:
        from repro.obs.export import deterministic_summary

        artifact["obs"] = deterministic_summary(
            obs, result.iteration_time * result.iterations
        )
    return artifact


# -- the failure-study tenant ------------------------------------------------

#: mirrors examples/failure_study.py's campaign job: 64 ranks on two
#: triblades, tiny grind so placement distance dominates
_PLACEMENT_DEFAULTS = {
    "it": 2, "jt": 2, "kt": 8, "mk": 4, "mmi": 3,
    "npe_i": 16, "npe_j": 4,
    "grind": 5e-8,
    "iterations": 4,
}


def _placement_penalty(config: dict[str, Any], seed: int) -> dict[str, Any]:
    from repro.resilience.recovery import placement_penalty
    from repro.sweep3d.decomposition import Decomposition2D
    from repro.sweep3d.input import SweepInput

    inp = SweepInput(
        it=config["it"], jt=config["jt"], kt=config["kt"],
        mk=config["mk"], mmi=config["mmi"],
    )
    report = placement_penalty(
        inp, Decomposition2D(config["npe_i"], config["npe_j"]),
        config["grind"], seed=seed, iterations=config["iterations"],
    )
    return dict(report)


# -- the worker-pool harness tenant ------------------------------------------

_SELFTEST_DEFAULTS = {
    "mode": "ok",       # ok | fail | fail-seeds | crash-once | sleep | count
    "marker": "",       # crash-once/count: sentinel/tally file path
    "sleep_s": 0.0,     # sleep/count: host seconds to stall (timeout testing)
    "fail_seeds": (),   # fail-seeds: seeds that raise (breaker testing)
    "value": 0,
}


def _selftest(config: dict[str, Any], seed: int) -> dict[str, Any]:
    mode = config["mode"]
    if mode == "ok":
        return {"seed": seed, "value": config["value"]}
    if mode == "fail":
        raise ValueError(f"selftest job failed deliberately (seed {seed})")
    if mode == "fail-seeds":
        if seed in tuple(config["fail_seeds"]):
            raise ValueError(f"selftest job failed deliberately (seed {seed})")
        return {"seed": seed, "value": config["value"]}
    if mode == "crash-once":
        import os
        import pathlib

        marker = pathlib.Path(config["marker"])
        if not marker.exists():
            marker.write_text(str(seed))
            os._exit(3)  # hard worker death, not an exception
        return {"seed": seed, "recovered": True}
    if mode == "sleep":
        import time

        time.sleep(config["sleep_s"])
        return {"seed": seed, "slept_s": config["sleep_s"]}
    if mode == "count":
        # Append one line per execution to the tally file (O_APPEND is
        # atomic for small writes), then optionally stall — proves how
        # many times a job actually ran, e.g. that a sibling's timeout
        # didn't discard this job's in-flight work.
        import os
        import time

        fd = os.open(config["marker"],
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, f"{seed}\n".encode())
        finally:
            os.close(fd)
        if config["sleep_s"]:
            time.sleep(config["sleep_s"])
        return {"seed": seed, "counted": True}
    raise ValueError(f"unknown _selftest mode {mode!r}")


#: name -> registered tenant
SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            "sweep", _sweep, _SWEEP_DEFAULTS,
            "small distributed KBA sweep; seed feeds the lossy-delivery RNG",
        ),
        Scenario(
            "sweep3060", _sweep, _SWEEP3060_DEFAULTS,
            "full-machine sweep: 3,060 ranks (60x51), streaming obs summary",
        ),
        Scenario(
            "placement-penalty", _placement_penalty, _PLACEMENT_DEFAULTS,
            "seeded fault plan under failure-aware vs naive re-placement",
        ),
        Scenario(
            "_selftest", _selftest, _SELFTEST_DEFAULTS,
            "worker-pool harness tenant (no simulation)", public=False,
        ),
    )
}


def public_scenarios() -> list[Scenario]:
    """The CLI-visible tenants, name-sorted."""
    return [SCENARIOS[n] for n in sorted(SCENARIOS) if SCENARIOS[n].public]


def job_config(
    scenario: str, overrides: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """The complete effective config: defaults + ``overrides``.

    Unknown override keys raise ``ValueError`` (a silently ignored typo
    would cache the wrong artifact under an honest-looking digest).
    """
    try:
        defn = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; "
            f"choose from {', '.join(sorted(SCENARIOS))}"
        ) from None
    config = dict(defn.defaults)
    if overrides:
        unknown = sorted(set(overrides) - set(config))
        if unknown:
            raise ValueError(
                f"unknown config key(s) for scenario {scenario!r}: "
                f"{', '.join(unknown)}"
            )
        config.update(overrides)
    return config


def run_job(spec) -> dict[str, Any]:
    """Execute one :class:`~repro.campaign.jobs.JobSpec`; returns its
    artifact.  The spec's config must already be complete (built via
    :func:`job_config` / :func:`repro.campaign.service.grid`)."""
    defn = SCENARIOS.get(spec.scenario)
    if defn is None:
        raise ValueError(f"unknown scenario {spec.scenario!r}")
    config = job_config(spec.scenario, spec.config)
    return defn.fn(config, spec.seed)
