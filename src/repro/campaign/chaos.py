"""Real-fault injection for the campaign service.

This module injects *actual* process- and filesystem-level faults into
a running campaign — not simulated DES faults (those live in
:mod:`repro.resilience`), but the infrastructure failures the paper
treats as an operating condition at Roadrunner scale:

* **worker kills** — a worker process ``SIGKILL``\\ s itself while
  executing a job (before or after computing the artifact), exactly
  like an OOM-kill or a node crash under it;
* **campaign kills** — the campaign *driver* process ``SIGKILL``\\ s
  itself immediately after the Nth journal record reaches the OS,
  exercising every resume boundary of the write-ahead journal;
* **disk-full** — the Nth artifact-store or journal write raises
  ``OSError(ENOSPC)``, as a full scratch filesystem would;
* **cache corruption** — on-disk artifact entries are truncated or
  bit-flipped between campaigns (:func:`corrupt_store`).

Faults are described by a seeded, JSON-serializable :class:`ChaosPlan`
(draw one with :func:`draw_plan`).  :func:`install` writes the plan to
disk and points the ``REPRO_CHAOS_PLAN`` environment variable at it, so
*worker processes inherit the plan* — injection happens inside the
worker's own ``_execute``, in its own address space, by really dying.

Every injected fault is appended (``fsync``\\ ed, before the fault
lands) to the plan's *ledger* file, one JSON line per fault, from
whichever process injects it.  :func:`ledger_counts` aggregates the
ledger into ``campaign.chaos.*`` counter totals; the service folds
them into its obs counters at the end of a run so the counters account
for every injected fault.

With no plan installed the hooks are a single dict lookup — the
campaign hot path is untouched.
"""

from __future__ import annotations

import errno
import json
import os
import pathlib
import random
import signal
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "PLAN_ENV",
    "ChaosPlan",
    "draw_plan",
    "install",
    "clear",
    "active_plan",
    "maybe_kill_worker",
    "check_write",
    "maybe_vanish_store",
    "maybe_kill_campaign",
    "ledger_counts",
    "corrupt_store",
]

#: environment variable naming the installed plan file (inherited by
#: worker processes, fork or spawn)
PLAN_ENV = "REPRO_CHAOS_PLAN"


@dataclass
class ChaosPlan:
    """A seeded, serializable description of the faults to inject.

    Job-targeted kills key on ``(digest12, attempt)`` where
    ``digest12`` is the first 12 hex chars of the job's content
    address and ``attempt`` counts from 1 — so a plan kills a specific
    execution of a specific job and its retry survives.
    """

    seed: int = 0
    #: digest12 -> attempts whose worker dies *before* computing
    kill_before: dict[str, list[int]] = field(default_factory=dict)
    #: digest12 -> attempts whose worker dies *after* computing, before
    #: returning (the artifact is lost, never cached)
    kill_after: dict[str, list[int]] = field(default_factory=dict)
    #: SIGKILL the campaign process right after journal record N lands
    kill_campaign_after_records: int | None = None
    #: 1-based store-write ordinals that raise ENOSPC
    store_enospc_writes: list[int] = field(default_factory=list)
    #: 1-based journal-append ordinals that raise ENOSPC
    journal_enospc_records: list[int] = field(default_factory=list)
    #: delete the whole artifact-store directory after store write N
    #: lands (a scratch filesystem wiped by the operators mid-campaign)
    store_vanish_after_writes: int | None = None
    #: fault ledger path (one JSON line per injected fault)
    ledger: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosPlan":
        return cls(**dict(data))


def draw_plan(
    seed: int,
    digests: Iterable[str],
    *,
    kill_probability: float = 0.25,
    kill_after_probability: float = 0.1,
    max_kills_per_job: int = 2,
    ledger: str | None = None,
) -> ChaosPlan:
    """Draw a seeded worker-kill plan over ``digests``.

    Each job independently draws whether its early attempts die, and
    whether the death lands before or after the artifact is computed.
    ``max_kills_per_job`` bounds consecutive kills so a retry budget of
    ``max_kills_per_job`` always suffices to finish every job.
    """
    rng = random.Random(f"chaos:{seed}")
    plan = ChaosPlan(seed=seed, ledger=ledger)
    for digest in digests:
        key = digest[:12]
        kills = 0
        for attempt in range(1, max_kills_per_job + 1):
            if rng.random() >= kill_probability:
                break
            table = (
                plan.kill_after
                if rng.random() < kill_after_probability
                else plan.kill_before
            )
            table.setdefault(key, []).append(attempt)
            kills += 1
    return plan


# -- plan installation and lookup --------------------------------------------

#: in-process cache: (plan_path, plan) so repeated hooks don't re-read
_cached: tuple[str, ChaosPlan] | None = None


def install(plan: ChaosPlan, path: str | os.PathLike) -> pathlib.Path:
    """Write ``plan`` to ``path`` and activate it via :data:`PLAN_ENV`
    for this process and every child it forks or spawns."""
    global _cached
    p = pathlib.Path(path)
    p.write_text(json.dumps(plan.to_dict(), sort_keys=True))
    os.environ[PLAN_ENV] = str(p)
    _cached = (str(p), plan)
    _reset_counters()
    return p


def clear() -> None:
    """Deactivate any installed plan (children spawned later see none)."""
    global _cached
    os.environ.pop(PLAN_ENV, None)
    _cached = None
    _reset_counters()


def active_plan() -> ChaosPlan | None:
    """The installed plan, or ``None``.  Reads the plan file once per
    path per process (workers inherit the env var, not the cache)."""
    global _cached
    path = os.environ.get(PLAN_ENV)
    if not path:
        return None
    if _cached is not None and _cached[0] == path:
        return _cached[1]
    try:
        plan = ChaosPlan.from_dict(json.loads(pathlib.Path(path).read_text()))
    except (OSError, ValueError, TypeError):
        return None
    _cached = (path, plan)
    return plan


# -- the fault ledger ---------------------------------------------------------


def _log_fault(plan: ChaosPlan, fault: str, **attrs: Any) -> None:
    """Append one fault record to the ledger, durably, *before* the
    fault lands (a SIGKILL must not erase its own accounting)."""
    if plan.ledger is None:
        return
    line = json.dumps({"fault": fault, "pid": os.getpid(), **attrs},
                      sort_keys=True)
    fd = os.open(plan.ledger, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, (line + "\n").encode())
        os.fsync(fd)
    finally:
        os.close(fd)


def ledger_counts(ledger: str | os.PathLike) -> dict[str, int]:
    """Aggregate a fault ledger into ``campaign.chaos.<fault>`` totals
    (tolerates a missing file and a torn final line)."""
    counts: dict[str, int] = {}
    try:
        text = pathlib.Path(ledger).read_text()
    except OSError:
        return counts
    for line in text.splitlines():
        try:
            fault = json.loads(line)["fault"]
        except (ValueError, KeyError):
            continue  # torn tail from a mid-write kill
        name = f"campaign.chaos.{fault}"
        counts[name] = counts.get(name, 0) + 1
    return counts


# -- injection hooks ----------------------------------------------------------


def maybe_kill_worker(digest: str, attempt: int, point: str) -> None:
    """Worker-side hook: die by ``SIGKILL`` if the plan schedules this
    ``(job, attempt)`` at ``point`` (``"before"`` or ``"after"`` the
    artifact computation)."""
    plan = active_plan()
    if plan is None:
        return
    table = plan.kill_before if point == "before" else plan.kill_after
    if attempt in table.get(digest[:12], ()):
        _log_fault(plan, "worker_kill", digest=digest[:12],
                   attempt=attempt, point=point)
        os.kill(os.getpid(), signal.SIGKILL)


#: per-process write ordinals, per stream name ("store" / "journal")
_write_ordinals: dict[str, int] = {}


def _reset_counters() -> None:
    _write_ordinals.clear()


def check_write(stream: str) -> None:
    """Driver-side hook: raise ``OSError(ENOSPC)`` if the plan fails
    this write ordinal of ``stream`` (``"store"`` or ``"journal"``)."""
    plan = active_plan()
    if plan is None:
        return
    ordinal = _write_ordinals.get(stream, 0) + 1
    _write_ordinals[stream] = ordinal
    failing = (
        plan.store_enospc_writes
        if stream == "store"
        else plan.journal_enospc_records
    )
    if ordinal in failing:
        _log_fault(plan, f"{stream}_enospc", ordinal=ordinal)
        raise OSError(errno.ENOSPC, f"chaos: injected disk-full on "
                                    f"{stream} write {ordinal}")


def maybe_vanish_store(root: str | os.PathLike) -> None:
    """Store-side hook: delete the artifact store *wholesale* after the
    planned store-write ordinal has landed — the scratch directory
    disappearing under a live campaign (operator wipe, quota purge,
    node-local tmpfs reset).

    Runs after :func:`check_write` bumped the ordinal for the same
    write, so ``store_vanish_after_writes=N`` vanishes the store
    immediately after the Nth successful put.  One-shot per process:
    later writes recreate the directory and must be left alone.
    """
    plan = active_plan()
    if plan is None or plan.store_vanish_after_writes is None:
        return
    if _write_ordinals.get("store", 0) != plan.store_vanish_after_writes:
        return
    import shutil

    _log_fault(plan, "store_vanished",
               after_writes=plan.store_vanish_after_writes)
    shutil.rmtree(root, ignore_errors=True)


def maybe_kill_campaign(records: int) -> None:
    """Journal-side hook: ``SIGKILL`` the campaign process right after
    journal record number ``records`` reached the OS."""
    plan = active_plan()
    if plan is None or plan.kill_campaign_after_records != records:
        return
    _log_fault(plan, "campaign_kill", after_records=records)
    os.kill(os.getpid(), signal.SIGKILL)


# -- cache corruption ---------------------------------------------------------


def corrupt_store(
    root: str | os.PathLike,
    seed: int,
    *,
    fraction: float = 0.5,
    modes: tuple[str, ...] = ("truncate", "bitflip"),
    ledger: str | os.PathLike | None = None,
) -> list[pathlib.Path]:
    """Really damage a fraction of the artifact files under ``root``.

    ``truncate`` keeps the first half of the file (a torn write);
    ``bitflip`` flips one bit at a seeded offset (silent media
    corruption).  Returns the damaged paths; each damage event is
    logged to ``ledger`` when given.  Deterministic per seed.
    """
    rng = random.Random(f"corrupt:{seed}")
    damaged: list[pathlib.Path] = []
    victims = sorted(pathlib.Path(root).glob("??/*.json"))
    for path in victims:
        if rng.random() >= fraction:
            continue
        mode = modes[rng.randrange(len(modes))]
        raw = bytearray(path.read_bytes())
        if not raw:
            continue
        if mode == "truncate":
            raw = raw[: len(raw) // 2]
        else:
            offset = rng.randrange(len(raw))
            raw[offset] ^= 1 << rng.randrange(8)
        path.write_bytes(bytes(raw))
        damaged.append(path)
        if ledger is not None:
            _log_fault(ChaosPlan(ledger=str(ledger)), "corruption",
                       path=path.name, mode=mode)
    return damaged
