"""Simulation-as-a-service: submit a campaign, stream progress, get a
report — durably.

:class:`CampaignService` is the front door the CLI, the failure-study
example, and the nightly CI client all share.  ``run()`` takes a list
of :class:`~repro.campaign.jobs.JobSpec`\\ s (build grids with
:func:`grid`), consults the content-addressed
:class:`~repro.campaign.store.ArtifactStore` first, fans the misses
over the :mod:`~repro.campaign.workers` pool, caches fresh artifacts
*at completion time*, and returns a :class:`CampaignReport` whose job
outcomes are in submission order — independent of worker count and
completion order.

Durability
----------
Pass ``journal=<path>`` (requires a store) and every job-state
transition is appended to a :class:`~repro.campaign.journal.Journal`
write-ahead log as it happens.  If the campaign process dies,
:meth:`CampaignService.resume` rebuilds the service from the journal
header, restores every already-decided job (artifacts come back from
the store by recorded hash — **done jobs are never recomputed**),
re-queues jobs that were in flight, and finishes the campaign; the
resulting report is byte-identical to the report an uninterrupted run
would have produced.  Store hit/miss counters are primed from the
journal so even ``store_stats`` matches, and re-queued in-flight jobs
bypass the cache probe (their artifact may have landed before the
crash; serving it would misreport them as cache hits).

Degradation
-----------
``breaker_threshold=K`` arms a per-scenario circuit breaker: after
``K`` consecutive executed failures of one scenario, its remaining
jobs are failed at submission with a structured
``circuit breaker open`` reason instead of burning pool time — the
campaign still completes and reports.  Disk-full on a store or journal
write is absorbed (counted, never fatal): the report is built in
memory and the journal simply under-records, costing at most a
recompute on resume.

Progress streaming
------------------
Every state change emits a :class:`ProgressEvent` (``queued`` /
``cached-hit`` / ``restored`` / ``started`` / ``finished`` /
``failed``) carrying the job's digest, scenario, and seed, plus a
snapshot of the service's own obs counters (``campaign.*`` — queued,
cached_hit, executed, failed, crash_attempts, timeouts, restored,
resumed, breaker_trips, breaker_skipped, journal/store write errors,
and folded ``campaign.chaos.*`` fault-ledger totals) via
:func:`repro.obs.export.counter_snapshot`, so a consumer can render a
live gauge without holding any other state.  The final counter totals
are on :attr:`CampaignReport.counters`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.campaign import chaos
from repro.campaign.jobs import (
    DONE,
    FAILED,
    RUNNING,
    JobSpec,
    content_digest,
    default_code_version,
)
from repro.campaign.journal import Journal, read_journal
from repro.campaign.scenarios import job_config
from repro.campaign.store import ArtifactStore
from repro.campaign.workers import run_specs
from repro.resilience.policy import RetryPolicy

__all__ = ["ProgressEvent", "JobOutcome", "CampaignReport",
           "CampaignService", "grid", "BREAKER_ERROR_PREFIX"]

#: error-string prefix marking a job failed by an open circuit breaker
BREAKER_ERROR_PREFIX = "circuit breaker open"


@dataclass(frozen=True)
class ProgressEvent:
    """One streamed campaign state change."""

    event: str    # queued | cached-hit | restored | started | finished | failed
    index: int                  # submission position of the job
    digest: str                 # the job's full content address
    scenario: str
    seed: int
    detail: Mapping[str, Any] = field(default_factory=dict)
    #: obs counter snapshot at emission time (campaign.* counters)
    counters: Mapping[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-lines wire form."""
        return {
            "event": self.event,
            "index": self.index,
            "job": self.digest[:12],
            "digest": self.digest,
            "scenario": self.scenario,
            "seed": self.seed,
            "detail": dict(self.detail),
            "counters": dict(self.counters),
        }


@dataclass
class JobOutcome:
    """Final state of one submitted job."""

    spec: JobSpec
    digest: str
    state: str                  # done | failed
    cached: bool = False
    attempts: int = 0           # executor attempts (0 for a cache hit)
    error: str | None = None
    artifact: dict | None = None
    artifact_sha256: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "digest": self.digest,
            "state": self.state,
            "cached": self.cached,
            "attempts": self.attempts,
            "error": self.error,
            "artifact_sha256": self.artifact_sha256,
            "artifact": self.artifact,
        }


@dataclass
class CampaignReport:
    """Everything a campaign produced, in submission order."""

    outcomes: list[JobOutcome]
    submitted: int = 0
    cached_hits: int = 0
    executed: int = 0
    failed: int = 0
    store_stats: dict[str, int] | None = None
    #: final obs counter totals (campaign.* incl. chaos ledger folds);
    #: deliberately NOT part of to_dict — a resumed run's counters
    #: differ from an uninterrupted run's even when the report is
    #: byte-identical
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        return self.cached_hits / self.submitted if self.submitted else 0.0

    def artifacts(self) -> list[dict | None]:
        """Per-job artifacts in submission order (``None`` for failures)."""
        return [o.artifact for o in self.outcomes]

    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON-able report (the CI upload artifact)."""
        return {
            "submitted": self.submitted,
            "cached_hits": self.cached_hits,
            "executed": self.executed,
            "failed": self.failed,
            "cache_hit_rate": self.cache_hit_rate,
            "store": self.store_stats,
            "jobs": [o.to_dict() for o in self.outcomes],
        }


def grid(
    scenario: str,
    seeds: int | Iterable[int],
    config: Mapping[str, Any] | None = None,
    *,
    code_version: str | None = None,
) -> list[JobSpec]:
    """A campaign as a seed sweep: one spec per seed, all sharing the
    scenario's complete effective config (defaults + ``config``
    overrides; unknown keys raise).  ``seeds`` is a count (``range``)
    or an explicit iterable of seed values."""
    full = job_config(scenario, config)
    seed_values = range(seeds) if isinstance(seeds, int) else seeds
    cv = code_version if code_version is not None else default_code_version()
    return [
        JobSpec(scenario=scenario, config=full, seed=int(s), code_version=cv)
        for s in seed_values
    ]


class CampaignService:
    """Run campaigns against an optional artifact cache.

    Parameters
    ----------
    store:
        Artifact cache (or a path to open one at); ``None`` disables
        caching — every job executes.
    workers, timeout, max_retries:
        Pool knobs, passed through to
        :func:`repro.campaign.workers.run_specs`.
    retry:
        Crash-retry backoff schedule
        (:class:`~repro.resilience.policy.RetryPolicy`); ``None`` uses
        the pool default.
    breaker_threshold:
        Consecutive executed failures of one scenario that trip its
        circuit breaker; ``None`` (the default) disables the breaker.
    """

    def __init__(
        self,
        store: ArtifactStore | str | None = None,
        *,
        workers: int = 1,
        timeout: float | None = None,
        max_retries: int = 1,
        retry: RetryPolicy | None = None,
        breaker_threshold: int | None = None,
    ):
        if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
            store = ArtifactStore(store)
        if breaker_threshold is not None and breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        self.store = store
        self.workers = workers
        self.timeout = timeout
        self.max_retries = max_retries
        self.retry = retry
        self.breaker_threshold = breaker_threshold

    # -- public entry points -------------------------------------------------

    def run(
        self,
        specs: Sequence[JobSpec],
        progress: Callable[[ProgressEvent], None] | None = None,
        *,
        journal: str | None = None,
        journal_fsync: str = "terminal",
    ) -> CampaignReport:
        """Execute a campaign; see the module docstring for the flow.

        ``journal`` names a write-ahead journal file to create for this
        run (truncating any prior one); it requires a store — the
        journal records artifact hashes, the store holds the bytes.
        """
        jr = None
        if journal is not None:
            if self.store is None:
                raise ValueError(
                    "journaling requires an artifact store: the journal "
                    "records artifact hashes, the store holds the bytes"
                )
            jr = Journal.create(
                journal, specs, store_root=str(self.store.root),
                options=self._options(), fsync=journal_fsync,
            )
        return self._run(specs, progress, journal=jr)

    @classmethod
    def resume(
        cls,
        journal: str,
        progress: Callable[[ProgressEvent], None] | None = None,
        *,
        journal_fsync: str = "terminal",
    ) -> CampaignReport:
        """Finish a journaled campaign after a crash.

        Rebuilds the service from the journal header (same store, same
        pool knobs), restores every job whose terminal record landed
        (artifacts come back from the store — never recomputed),
        re-queues in-flight jobs with their recorded attempt number,
        compacts the journal in place, and runs the remainder.  The
        returned report is byte-identical to an uninterrupted run's.
        """
        from repro.obs.recorder import ObsRecorder

        state = read_journal(journal)
        if state.store_root is None:
            raise ValueError(f"journal {journal!r} records no store root")
        opts = state.options
        retry_opts = opts.get("retry")
        service = cls(
            store=state.store_root,
            workers=int(opts.get("workers", 1)),
            timeout=opts.get("timeout"),
            max_retries=int(opts.get("max_retries", 1)),
            retry=RetryPolicy(**retry_opts) if retry_opts else None,
            breaker_threshold=opts.get("breaker_threshold"),
        )
        store = service.store
        rec = ObsRecorder()
        rec.count("campaign.resumed")

        restored: dict[int, JobOutcome] = {}
        bypass: set[int] = set()
        initial: dict[int, int] = {}
        for i, spec in enumerate(state.specs):
            js = state.job(i)
            if js.state == DONE:
                artifact = store.peek(spec)
                if artifact is None:
                    # Terminal record landed but the artifact didn't
                    # survive (crash beat the cache write, or the file
                    # was corrupted since): recompute, keeping the
                    # recorded attempt count.
                    rec.count("campaign.restore_misses")
                    bypass.add(i)
                    initial[i] = max(1, js.attempts)
                    store.misses += 1
                    continue
                rec.count("campaign.restored")
                if js.cached:
                    store.hits += 1
                    restored[i] = JobOutcome(
                        spec, spec.digest, DONE, cached=True, artifact=artifact,
                        artifact_sha256=js.artifact_sha256,
                    )
                else:
                    store.misses += 1
                    restored[i] = JobOutcome(
                        spec, spec.digest, DONE, attempts=js.attempts,
                        artifact=artifact, artifact_sha256=js.artifact_sha256,
                    )
            elif js.state == FAILED:
                rec.count("campaign.restored")
                store.misses += 1
                restored[i] = JobOutcome(
                    spec, spec.digest, FAILED, attempts=js.attempts,
                    error=js.error,
                )
            elif js.state == RUNNING:
                # In flight at the crash: re-run with the same attempt
                # number (the campaign died, not the job).  Bypass the
                # cache probe — the artifact may have landed before the
                # crash, and serving it would misreport the job as a
                # cache hit.
                bypass.add(i)
                initial[i] = max(1, js.attempts)
                store.misses += 1
        jr = Journal.rotate(journal, state, fsync=journal_fsync)
        return service._run(
            state.specs, progress, journal=jr, restored=restored,
            bypass=bypass, initial_attempts=initial, rec=rec,
        )

    # -- internals -----------------------------------------------------------

    def _options(self) -> dict[str, Any]:
        """The journal-header options block ``resume`` rebuilds from."""
        return {
            "workers": self.workers,
            "timeout": self.timeout,
            "max_retries": self.max_retries,
            "breaker_threshold": self.breaker_threshold,
            "retry": asdict(self.retry) if self.retry is not None else None,
        }

    def _run(
        self,
        specs: Sequence[JobSpec],
        progress: Callable[[ProgressEvent], None] | None,
        *,
        journal: Journal | None = None,
        restored: Mapping[int, JobOutcome] | None = None,
        bypass: frozenset[int] | set[int] = frozenset(),
        initial_attempts: Mapping[int, int] | None = None,
        rec=None,
    ) -> CampaignReport:
        from repro.obs.export import counter_snapshot
        from repro.obs.recorder import ObsRecorder

        if rec is None:
            rec = ObsRecorder()
        restored = restored or {}
        initial_attempts = initial_attempts or {}

        def emit(event: str, index: int, spec: JobSpec,
                 detail: Mapping[str, Any] | None = None) -> None:
            if progress is not None:
                progress(ProgressEvent(
                    event=event, index=index, digest=digests[index],
                    scenario=spec.scenario, seed=spec.seed,
                    detail=dict(detail or {}),
                    counters=counter_snapshot(rec, prefix="campaign."),
                ))

        def jwrite(method: str, *args: Any, **kwargs: Any) -> None:
            # A journal write failure (injected or real disk-full) is
            # absorbed: the run continues un-journaled for that record,
            # costing at most a recompute on resume.
            if journal is None:
                return
            try:
                getattr(journal, method)(*args, **kwargs)
            except OSError:
                rec.count("campaign.journal.write_errors")

        digests = [spec.digest for spec in specs]
        outcomes: list[JobOutcome | None] = [None] * len(specs)
        to_run: list[int] = []
        for i, spec in enumerate(specs):
            rec.count("campaign.queued")
            emit("queued", i, spec)
            if i in restored:
                out = restored[i]
                outcomes[i] = out
                emit("restored", i, spec, {
                    "state": out.state, "cached": out.cached,
                    "attempts": out.attempts,
                })
                continue
            if i in bypass:
                to_run.append(i)
                continue
            cached = self.store.get(spec) if self.store is not None else None
            if cached is not None:
                rec.count("campaign.cached_hit")
                outcomes[i] = JobOutcome(
                    spec, digests[i], DONE, cached=True, artifact=cached,
                    artifact_sha256=content_digest(cached),
                )
                jwrite("record_cached_hit", i, outcomes[i].artifact_sha256)
                emit("cached-hit", i, spec,
                     {"artifact_sha256": outcomes[i].artifact_sha256})
            else:
                to_run.append(i)

        if to_run:
            self._run_pool(specs, to_run, outcomes, digests, rec,
                           emit, jwrite, journal, restored, initial_attempts)

        final = [o for o in outcomes if o is not None]
        report = CampaignReport(
            outcomes=final,
            submitted=len(specs),
            cached_hits=sum(1 for o in final if o.cached),
            executed=sum(
                1 for o in final if o.state == DONE and not o.cached
            ),
            failed=sum(1 for o in final if o.state == FAILED),
            store_stats=self.store.stats() if self.store is not None else None,
        )
        jwrite("record_end", {
            "submitted": report.submitted,
            "cached_hits": report.cached_hits,
            "executed": report.executed,
            "failed": report.failed,
        })
        if journal is not None:
            journal.close()
        plan = chaos.active_plan()
        if plan is not None and plan.ledger is not None:
            for name, total in chaos.ledger_counts(plan.ledger).items():
                rec.count(name, float(total))
        report.counters = counter_snapshot(rec, prefix="campaign.")
        return report

    def _run_pool(self, specs, to_run, outcomes, digests, rec,
                  emit, jwrite, journal, restored, initial_attempts) -> None:
        """Fan the cache misses over the worker pool, wiring in the
        breaker gate, completion-time persistence, and the journal."""
        # Per-scenario consecutive-failure counts; replaying restored
        # outcomes (submission order) re-arms a breaker that was open
        # at the crash.
        breaker_counts: dict[str, int] = {}
        breaker_open: set[str] = set()

        def note_outcome(scenario: str, failed: bool, skipped: bool) -> None:
            if self.breaker_threshold is None or skipped:
                return
            if not failed:
                breaker_counts[scenario] = 0
                return
            count = breaker_counts.get(scenario, 0) + 1
            breaker_counts[scenario] = count
            if count >= self.breaker_threshold and scenario not in breaker_open:
                breaker_open.add(scenario)
                rec.count("campaign.breaker_trips")

        for i in sorted(restored):
            out = restored[i]
            skipped = bool(out.error and
                           out.error.startswith(BREAKER_ERROR_PREFIX))
            note_outcome(out.spec.scenario, out.state == FAILED, skipped)

        def gate(spec: JobSpec) -> str | None:
            if spec.scenario in breaker_open:
                rec.count("campaign.breaker_skipped")
                return (
                    f"{BREAKER_ERROR_PREFIX}: scenario "
                    f"{spec.scenario!r} reached "
                    f"{self.breaker_threshold} consecutive failures"
                )
            return None

        def on_result(pool_index: int, result) -> None:
            # Fires at resolution time (completion order): persist the
            # artifact and journal the terminal state as soon as they
            # exist — a crash after this point never recomputes the job.
            index = to_run[pool_index]
            spec = result.spec
            skipped = bool(result.detail.get("skipped"))
            if result.state == DONE:
                sha = content_digest(result.artifact)
                if self.store is not None:
                    try:
                        self.store.put(spec, result.artifact)
                    except OSError:
                        rec.count("campaign.store.put_errors")
                outcomes[index] = JobOutcome(
                    spec, digests[index], DONE, attempts=result.attempts,
                    artifact=result.artifact, artifact_sha256=sha,
                )
                jwrite("record_finished", index, result.attempts, sha)
            else:
                outcomes[index] = JobOutcome(
                    spec, digests[index], FAILED, attempts=result.attempts,
                    error=result.error,
                )
                if result.detail.get("timeout"):
                    rec.count("campaign.timeouts")
                jwrite("record_failed", index, result.attempts,
                       result.error, breaker=skipped)
            note_outcome(spec.scenario, result.state == FAILED, skipped)

        def relay(event: str, pool_index: int, spec: JobSpec,
                  detail: dict) -> None:
            # Counters move with the event, so the snapshot a consumer
            # sees on a "finished" line already includes that finish.
            index = to_run[pool_index]
            if event == "started":
                jwrite("record_started", index, detail.get("attempt", 1))
                if detail.get("attempt", 1) > 1:
                    rec.count("campaign.crash_attempts")
            elif event == "finished":
                rec.count("campaign.executed")
            elif event == "failed":
                rec.count("campaign.failed")
            emit(event, index, spec, detail)

        run_specs(
            [specs[i] for i in to_run],
            workers=self.workers, timeout=self.timeout,
            max_retries=self.max_retries, progress=relay,
            retry=self.retry,
            gate=gate if self.breaker_threshold is not None else None,
            on_result=on_result,
            initial_attempts=[
                initial_attempts.get(i, 1) for i in to_run
            ],
        )
