"""Simulation-as-a-service: submit a campaign, stream progress, get a
report.

:class:`CampaignService` is the front door the CLI, the failure-study
example, and the nightly CI client all share.  ``run()`` takes a list
of :class:`~repro.campaign.jobs.JobSpec`\\ s (build grids with
:func:`grid`), consults the content-addressed
:class:`~repro.campaign.store.ArtifactStore` first, fans the misses
over the :mod:`~repro.campaign.workers` pool, caches fresh artifacts,
and returns a :class:`CampaignReport` whose job outcomes are in
submission order — independent of worker count and completion order.

Progress streaming
------------------
Every state change emits a :class:`ProgressEvent`
(``queued`` / ``cached-hit`` / ``started`` / ``finished`` /
``failed``) carrying the job's digest, scenario, and seed, plus a
snapshot of the service's own obs counters
(``campaign.queued``, ``campaign.cached_hit``, ``campaign.executed``,
``campaign.failed``, ``campaign.crash_attempts`` — via
:func:`repro.obs.export.counter_snapshot`), so a consumer can render a
live gauge without holding any other state.  Events serialize to
JSON-lines via :meth:`ProgressEvent.to_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.campaign.jobs import (
    DONE,
    FAILED,
    JobSpec,
    content_digest,
    default_code_version,
)
from repro.campaign.scenarios import job_config
from repro.campaign.store import ArtifactStore
from repro.campaign.workers import run_specs

__all__ = ["ProgressEvent", "JobOutcome", "CampaignReport",
           "CampaignService", "grid"]


@dataclass(frozen=True)
class ProgressEvent:
    """One streamed campaign state change."""

    event: str                  # queued | cached-hit | started | finished | failed
    index: int                  # submission position of the job
    digest: str                 # the job's full content address
    scenario: str
    seed: int
    detail: Mapping[str, Any] = field(default_factory=dict)
    #: obs counter snapshot at emission time (campaign.* counters)
    counters: Mapping[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-lines wire form."""
        return {
            "event": self.event,
            "index": self.index,
            "job": self.digest[:12],
            "digest": self.digest,
            "scenario": self.scenario,
            "seed": self.seed,
            "detail": dict(self.detail),
            "counters": dict(self.counters),
        }


@dataclass
class JobOutcome:
    """Final state of one submitted job."""

    spec: JobSpec
    digest: str
    state: str                  # done | failed
    cached: bool = False
    attempts: int = 0           # executor attempts (0 for a cache hit)
    error: str | None = None
    artifact: dict | None = None
    artifact_sha256: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "digest": self.digest,
            "state": self.state,
            "cached": self.cached,
            "attempts": self.attempts,
            "error": self.error,
            "artifact_sha256": self.artifact_sha256,
            "artifact": self.artifact,
        }


@dataclass
class CampaignReport:
    """Everything a campaign produced, in submission order."""

    outcomes: list[JobOutcome]
    submitted: int = 0
    cached_hits: int = 0
    executed: int = 0
    failed: int = 0
    store_stats: dict[str, int] | None = None

    @property
    def cache_hit_rate(self) -> float:
        return self.cached_hits / self.submitted if self.submitted else 0.0

    def artifacts(self) -> list[dict | None]:
        """Per-job artifacts in submission order (``None`` for failures)."""
        return [o.artifact for o in self.outcomes]

    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON-able report (the CI upload artifact)."""
        return {
            "submitted": self.submitted,
            "cached_hits": self.cached_hits,
            "executed": self.executed,
            "failed": self.failed,
            "cache_hit_rate": self.cache_hit_rate,
            "store": self.store_stats,
            "jobs": [o.to_dict() for o in self.outcomes],
        }


def grid(
    scenario: str,
    seeds: int | Iterable[int],
    config: Mapping[str, Any] | None = None,
    *,
    code_version: str | None = None,
) -> list[JobSpec]:
    """A campaign as a seed sweep: one spec per seed, all sharing the
    scenario's complete effective config (defaults + ``config``
    overrides; unknown keys raise).  ``seeds`` is a count (``range``)
    or an explicit iterable of seed values."""
    full = job_config(scenario, config)
    seed_values = range(seeds) if isinstance(seeds, int) else seeds
    cv = code_version if code_version is not None else default_code_version()
    return [
        JobSpec(scenario=scenario, config=full, seed=int(s), code_version=cv)
        for s in seed_values
    ]


class CampaignService:
    """Run campaigns against an optional artifact cache.

    Parameters
    ----------
    store:
        Artifact cache (or a path to open one at); ``None`` disables
        caching — every job executes.
    workers, timeout, max_retries:
        Pool knobs, passed through to
        :func:`repro.campaign.workers.run_specs`.
    """

    def __init__(
        self,
        store: ArtifactStore | str | None = None,
        *,
        workers: int = 1,
        timeout: float | None = None,
        max_retries: int = 1,
    ):
        if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
            store = ArtifactStore(store)
        self.store = store
        self.workers = workers
        self.timeout = timeout
        self.max_retries = max_retries

    def run(
        self,
        specs: Sequence[JobSpec],
        progress: Callable[[ProgressEvent], None] | None = None,
    ) -> CampaignReport:
        """Execute a campaign; see the module docstring for the flow."""
        from repro.obs.export import counter_snapshot
        from repro.obs.recorder import ObsRecorder

        rec = ObsRecorder()

        def emit(event: str, index: int, spec: JobSpec,
                 detail: Mapping[str, Any] | None = None) -> None:
            if progress is not None:
                progress(ProgressEvent(
                    event=event, index=index, digest=digests[index],
                    scenario=spec.scenario, seed=spec.seed,
                    detail=dict(detail or {}),
                    counters=counter_snapshot(rec),
                ))

        digests = [spec.digest for spec in specs]
        outcomes: list[JobOutcome | None] = [None] * len(specs)
        to_run: list[int] = []
        for i, spec in enumerate(specs):
            rec.count("campaign.queued")
            emit("queued", i, spec)
            cached = self.store.get(spec) if self.store is not None else None
            if cached is not None:
                rec.count("campaign.cached_hit")
                outcomes[i] = JobOutcome(
                    spec, digests[i], DONE, cached=True, artifact=cached,
                    artifact_sha256=content_digest(cached),
                )
                emit("cached-hit", i, spec,
                     {"artifact_sha256": outcomes[i].artifact_sha256})
            else:
                to_run.append(i)

        if to_run:
            def relay(event: str, pool_index: int, spec: JobSpec,
                      detail: dict) -> None:
                # Counters move with the event, so the snapshot a
                # consumer sees on a "finished" line already includes
                # that finish.
                if event == "started":
                    if detail.get("attempt", 1) > 1:
                        rec.count("campaign.crash_attempts")
                elif event == "finished":
                    rec.count("campaign.executed")
                elif event == "failed":
                    rec.count("campaign.failed")
                emit(event, to_run[pool_index], spec, detail)

            run_results = run_specs(
                [specs[i] for i in to_run],
                workers=self.workers, timeout=self.timeout,
                max_retries=self.max_retries, progress=relay,
            )
            for pool_index, result in enumerate(run_results):
                index = to_run[pool_index]
                if result.state == DONE:
                    sha = content_digest(result.artifact)
                    if self.store is not None:
                        self.store.put(result.spec, result.artifact)
                    outcomes[index] = JobOutcome(
                        result.spec, digests[index], DONE,
                        attempts=result.attempts, artifact=result.artifact,
                        artifact_sha256=sha,
                    )
                else:
                    outcomes[index] = JobOutcome(
                        result.spec, digests[index], FAILED,
                        attempts=result.attempts, error=result.error,
                    )

        final = [o for o in outcomes if o is not None]
        return CampaignReport(
            outcomes=final,
            submitted=len(specs),
            cached_hits=sum(1 for o in final if o.cached),
            executed=sum(
                1 for o in final if o.state == DONE and not o.cached
            ),
            failed=sum(1 for o in final if o.state == FAILED),
            store_stats=self.store.stats() if self.store is not None else None,
        )
