"""The campaign job model: specs, states, and content addressing.

A campaign is a list of :class:`JobSpec`\\ s — frozen descriptions of
one simulation run: *which* scenario, with *what* configuration, under
*which* seed, against *which* code.  Every DES run in this repository
is a pure function of exactly that tuple (the engine's determinism
contract), which makes the workload perfectly cacheable: the spec's
canonical-JSON SHA-256 digest is the content address of its artifact
in the :class:`~repro.campaign.store.ArtifactStore`.

Canonicalization rules
----------------------
:func:`canonical_json` is the single serialization every digest in the
campaign layer is computed over:

* object keys sorted recursively, no insignificant whitespace;
* only JSON-native types (``dict``/``list``/``str``/``int``/``float``/
  ``bool``/``None``) — anything else raises ``TypeError``;
* ``NaN``/``Infinity`` rejected (``allow_nan=False``): a non-finite
  artifact is a bug, not a cacheable result;
* floats serialize via :func:`repr` round-tripping, so a cached
  artifact re-read from disk is *bitwise* identical to the freshly
  computed one.

``code_version`` defaults to the installed package version
(:data:`repro.__version__`); bump it — or pass your own string — and
every previously cached artifact misses, forcing recomputation against
the new code.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "PENDING",
    "RUNNING",
    "DONE",
    "FAILED",
    "TERMINAL_STATES",
    "JOB_STATES",
    "canonical_json",
    "content_digest",
    "default_code_version",
    "JobSpec",
]

#: job lifecycle states (a job moves pending -> running -> done/failed;
#: a cache hit goes straight pending -> done with ``cached=True``)
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
JOB_STATES = (PENDING, RUNNING, DONE, FAILED)
#: states a job never leaves (journal replay stops updating at these)
TERMINAL_STATES = (DONE, FAILED)


def canonical_json(obj: Any) -> str:
    """The one canonical serialization digests are computed over.

    Recursively key-sorted, whitespace-free, ASCII-only, JSON-native
    types only, non-finite floats rejected.  Two dicts that differ only
    in insertion order serialize identically.
    """
    return json.dumps(
        obj,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def content_digest(obj: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json` of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("ascii")).hexdigest()


def default_code_version() -> str:
    """The cache-invalidation token: the installed package version."""
    import repro

    return f"repro-{repro.__version__}"


@dataclass(frozen=True, eq=True)
class JobSpec:
    """One deterministic simulation request.

    ``config`` is stored as a plain dict (JSON-native values only) and
    compared by value, so two specs built from differently ordered
    dicts are equal and share a digest.  Specs are frozen: the digest
    is computed once on first access and describes the spec forever.
    """

    scenario: str
    config: Mapping[str, Any]
    seed: int
    code_version: str = field(default_factory=default_code_version)

    def __post_init__(self):
        if not self.scenario:
            raise ValueError("scenario must be a non-empty string")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise TypeError(f"seed must be an int, got {self.seed!r}")
        # Fail at construction, not at hash time, on non-JSON config.
        canonical_json(dict(self.config))

    # dicts are unhashable, so the generated __hash__ would raise; the
    # content digest *is* the identity the campaign layer uses.
    __hash__ = None  # type: ignore[assignment]

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-able form (the worker-pool wire format)."""
        return {
            "scenario": self.scenario,
            "config": dict(self.config),
            "seed": self.seed,
            "code_version": self.code_version,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        return cls(
            scenario=data["scenario"],
            config=dict(data["config"]),
            seed=data["seed"],
            code_version=data["code_version"],
        )

    @property
    def digest(self) -> str:
        """The content address: SHA-256 over the canonical spec JSON."""
        return content_digest(self.to_dict())

    @property
    def short(self) -> str:
        """First 12 hex chars of :attr:`digest` (log/event labels)."""
        return self.digest[:12]
