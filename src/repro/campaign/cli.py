"""``python -m repro campaign`` — the service's command-line client.

Submit a seed-sweep campaign for any registered scenario, stream
progress to the console (or as JSON-lines for machine consumers), and
print / write the campaign report::

    python -m repro campaign --list
    python -m repro campaign sweep --seeds 8 --workers 4
    python -m repro campaign sweep3060 --seeds 2 --cache-dir ~/.repro-cache
    python -m repro campaign placement-penalty --seeds 100 --workers 4 \\
        --cache-dir .campaign-cache --report campaign-report.json
    python -m repro campaign sweep --seeds 4 --set drop_probability=0.05 --jsonl

Re-running an identical invocation against the same ``--cache-dir``
performs zero simulations: every job streams ``cached-hit``.

Durability: ``--journal PATH`` (requires ``--cache-dir``) write-ahead
logs every job-state transition; if the campaign process dies,
``--resume PATH`` finishes it — done jobs are restored from the cache,
never recomputed, and the final report matches an uninterrupted run
byte for byte.  ``--breaker K`` arms the per-scenario circuit breaker::

    python -m repro campaign sweep --seeds 100 --workers 4 \
        --cache-dir .campaign-cache --journal sweep.journal
    python -m repro campaign --resume sweep.journal
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from repro.campaign.jobs import DONE
from repro.campaign.scenarios import SCENARIOS, public_scenarios
from repro.campaign.service import CampaignService, ProgressEvent, grid

__all__ = ["main"]


def _parse_set(pairs: list[str]) -> dict[str, Any]:
    """``--set key=value`` overrides, values parsed as JSON when they
    are (so ``--set drop_probability=0.05`` is a float and
    ``--set observe=true`` a bool), strings otherwise."""
    overrides: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        try:
            overrides[key] = json.loads(value)
        except ValueError:
            overrides[key] = value
    return overrides


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description=(
            "Submit a campaign of deterministic simulation jobs to the "
            "worker pool, with content-addressed artifact caching"
        ),
    )
    parser.add_argument("scenario", nargs="?",
                        help="registered scenario (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list registered scenarios and exit")
    parser.add_argument("--seeds", type=int, default=4,
                        help="seed-sweep width: jobs run seeds 0..N-1 (default 4)")
    parser.add_argument("--first-seed", type=int, default=0,
                        help="first seed of the sweep (default 0)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (default 1 = inline)")
    parser.add_argument("--cache-dir", metavar="PATH",
                        help="artifact cache directory (default: no cache)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job timeout in host seconds")
    parser.add_argument("--max-retries", type=int, default=1,
                        help="extra attempts after a worker crash (default 1)")
    parser.add_argument("--journal", metavar="PATH",
                        help="write-ahead journal for this run "
                             "(requires --cache-dir)")
    parser.add_argument("--resume", metavar="PATH",
                        help="resume a journaled campaign that died "
                             "(exclusive with a scenario)")
    parser.add_argument("--breaker", type=int, default=None, metavar="K",
                        help="trip a scenario's circuit breaker after K "
                             "consecutive failures (default: off)")
    parser.add_argument("--set", dest="overrides", action="append",
                        default=[], metavar="KEY=VALUE",
                        help="override a scenario config key (repeatable)")
    parser.add_argument("--jsonl", action="store_true",
                        help="stream progress events as JSON-lines")
    parser.add_argument("--report", metavar="PATH",
                        help="write the full campaign report JSON to PATH")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress lines")
    return parser


def _list_scenarios() -> None:
    defs = public_scenarios()
    width = max(len(s.name) for s in defs)
    for s in defs:
        print(f"{s.name.ljust(width)}  {s.help}")


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list:
        _list_scenarios()
        return 0
    if args.resume:
        return _resume(args)
    if args.journal and not args.cache_dir:
        print("--journal requires --cache-dir (the journal records "
              "artifact hashes, the cache holds the bytes)", file=sys.stderr)
        return 2
    if not args.scenario:
        print("a scenario is required (see --list)", file=sys.stderr)
        return 2
    if args.scenario not in SCENARIOS or not SCENARIOS[args.scenario].public:
        print(
            f"unknown scenario {args.scenario!r}; "
            f"choose from {', '.join(s.name for s in public_scenarios())}",
            file=sys.stderr,
        )
        return 2
    try:
        specs = grid(
            args.scenario,
            range(args.first_seed, args.first_seed + args.seeds),
            _parse_set(args.overrides),
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    t0 = time.monotonic()

    def console(event: ProgressEvent) -> None:
        if event.event == "queued":
            return  # one line per outcome keeps 100-seed runs readable
        extra = ""
        if event.event == "failed":
            extra = f"  {event.detail.get('error', '')}"
        print(f"  [{event.index + 1}/{len(specs)}] "
              f"{event.event:<10} {event.digest[:12]}  seed {event.seed}"
              f"{extra}")

    def jsonl(event: ProgressEvent) -> None:
        print(json.dumps(event.to_dict(), sort_keys=True))

    progress = jsonl if args.jsonl else (None if args.quiet else console)
    if not args.jsonl:
        print(f"campaign: {args.scenario} x {len(specs)} seed(s), "
              f"{args.workers} worker(s)"
              + (f", cache {args.cache_dir}" if args.cache_dir else ""))
    service = CampaignService(
        args.cache_dir, workers=args.workers, timeout=args.timeout,
        max_retries=args.max_retries, breaker_threshold=args.breaker,
    )
    report = service.run(specs, progress=progress, journal=args.journal)
    elapsed = time.monotonic() - t0

    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
    if not args.jsonl:
        print(f"done in {elapsed:.2f} s: {report.submitted} job(s), "
              f"{report.cached_hits} cached, {report.executed} executed, "
              f"{report.failed} failed")
        _print_aggregate(report)
        if args.report:
            print(f"report written to {args.report}")
    return 1 if report.failed else 0


def _resume(args) -> int:
    """``--resume PATH``: finish a journaled campaign after a crash."""
    if args.scenario:
        print("--resume is exclusive with a scenario argument",
              file=sys.stderr)
        return 2
    from repro.campaign.journal import read_journal

    try:
        state = read_journal(args.resume)
    except (OSError, ValueError) as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 2
    total = len(state.specs)

    def console(event: ProgressEvent) -> None:
        if event.event == "queued":
            return
        extra = ""
        if event.event == "failed":
            extra = f"  {event.detail.get('error', '')}"
        print(f"  [{event.index + 1}/{total}] "
              f"{event.event:<10} {event.digest[:12]}  seed {event.seed}"
              f"{extra}")

    def jsonl(event: ProgressEvent) -> None:
        print(json.dumps(event.to_dict(), sort_keys=True))

    progress = jsonl if args.jsonl else (None if args.quiet else console)
    summary = state.summary()
    if not args.jsonl:
        print(f"resuming campaign from {args.resume}: {total} job(s) "
              f"({summary['done']} done, {summary['failed']} failed, "
              f"{summary['running']} in flight, "
              f"{summary['pending']} pending)")
    t0 = time.monotonic()
    report = CampaignService.resume(args.resume, progress=progress)
    elapsed = time.monotonic() - t0
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
    if not args.jsonl:
        print(f"done in {elapsed:.2f} s: {report.submitted} job(s), "
              f"{report.cached_hits} cached, {report.executed} executed, "
              f"{report.failed} failed")
        _print_aggregate(report)
        if args.report:
            print(f"report written to {args.report}")
    return 1 if report.failed else 0


def _print_aggregate(report) -> None:
    """min/mean/max over every numeric key all done artifacts share."""
    arts = [o.artifact for o in report.outcomes
            if o.state == DONE and o.artifact]
    if not arts:
        return
    keys = set(arts[0])
    for art in arts[1:]:
        keys &= set(art)
    rows = []
    for key in sorted(keys):
        values = [art[key] for art in arts]
        if not all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in values
        ):
            continue
        rows.append((key, min(values), sum(values) / len(values), max(values)))
    if rows:
        print("aggregate over done jobs:")
        for key, lo, mean, hi in rows:
            print(f"  {key}: min {lo:.6g}  mean {mean:.6g}  max {hi:.6g}")


if __name__ == "__main__":
    sys.exit(main())
