"""The content-addressed artifact cache.

Artifacts live on disk under ``root/<aa>/<digest>.json`` where
``digest`` is the owning :class:`~repro.campaign.jobs.JobSpec`'s
SHA-256 content address (``aa`` = its first two hex chars, the usual
fan-out so directories stay small at campaign scale).  Each file is a
self-describing envelope::

    {
      "format": 1,
      "spec": {...},                # the full spec, for audit/debug
      "spec_digest": "...",         # must match the requesting spec
      "artifact_sha256": "...",     # digest of canonical artifact JSON
      "artifact": {...}             # the cached result payload
    }

Reads are paranoid: a file that is missing, truncated, not JSON, from
a different format version, keyed by a different spec digest, or whose
payload no longer matches its recorded ``artifact_sha256`` is treated
as a cache **miss** (and counted in :attr:`ArtifactStore.corrupt` when
it existed but failed verification) — the service then recomputes and
atomically rewrites it.  Writes go through a same-directory temp file
and ``os.replace``, so a crashed writer can truncate at worst, never
tear a verified read.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Any

from repro.campaign.jobs import JobSpec, canonical_json, content_digest

__all__ = ["ArtifactStore", "STORE_FORMAT"]

#: envelope schema version; bump on incompatible layout changes
STORE_FORMAT = 1


class ArtifactStore:
    """On-disk, content-addressed cache of job artifacts.

    The store never judges freshness — the content address already
    encodes scenario, config, seed, and code version, so an entry is
    valid for as long as its bytes verify.  Hit/miss/corrupt counters
    accumulate over the store's lifetime (the service snapshots them
    into progress events).
    """

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def path_for(self, spec: JobSpec) -> pathlib.Path:
        """Where ``spec``'s artifact lives (whether or not it exists)."""
        digest = spec.digest
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, spec: JobSpec) -> dict[str, Any] | None:
        """The verified cached artifact for ``spec``, or ``None``."""
        path = self.path_for(spec)
        try:
            raw = path.read_text()
        except (FileNotFoundError, OSError):
            self.misses += 1
            return None
        try:
            data = json.loads(raw)
            if (
                data["format"] == STORE_FORMAT
                and data["spec_digest"] == spec.digest
                and content_digest(data["artifact"]) == data["artifact_sha256"]
            ):
                self.hits += 1
                return data["artifact"]
        except (ValueError, KeyError, TypeError):
            pass
        # Existed but failed verification: corrupt/truncated/foreign.
        self.corrupt += 1
        self.misses += 1
        return None

    def put(self, spec: JobSpec, artifact: dict[str, Any]) -> pathlib.Path:
        """Atomically cache ``artifact`` under ``spec``'s address."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "format": STORE_FORMAT,
            "spec": spec.to_dict(),
            "spec_digest": spec.digest,
            "artifact_sha256": content_digest(artifact),
            "artifact": artifact,
        }
        payload = canonical_json(envelope)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{spec.short}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        """Number of artifact files currently on disk."""
        return sum(1 for _ in self.root.glob("??/*.json"))

    def stats(self) -> dict[str, int]:
        """Lifetime hit/miss/corruption counters (JSON-able)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "entries": len(self),
        }
