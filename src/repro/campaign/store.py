"""The content-addressed artifact cache.

Artifacts live on disk under ``root/<aa>/<digest>.json`` where
``digest`` is the owning :class:`~repro.campaign.jobs.JobSpec`'s
SHA-256 content address (``aa`` = its first two hex chars, the usual
fan-out so directories stay small at campaign scale).  Each file is a
self-describing envelope::

    {
      "format": 1,
      "spec": {...},                # the full spec, for audit/debug
      "spec_digest": "...",         # must match the requesting spec
      "artifact_sha256": "...",     # digest of canonical artifact JSON
      "artifact": {...}             # the cached result payload
    }

Reads are paranoid: a file that is missing, truncated, not JSON (or
not even UTF-8 after a media bit-flip), from a different format
version, keyed by a different spec digest, whose embedded spec no
longer hashes to its recorded ``spec_digest``, or whose payload no
longer matches its recorded ``artifact_sha256`` is treated as a cache
**miss** (and counted in :attr:`ArtifactStore.corrupt` when it existed
but failed verification) — the service then recomputes and atomically
rewrites it, which counts as a **heal**.  Writes go through a
same-directory temp file that is ``fsync``\\ ed (and the directory
after the rename) before the write is considered durable, so a crashed
or power-cut writer can lose the entry at worst, never tear a verified
read.  The write path consults :func:`repro.campaign.chaos.check_write`
so the chaos harness can inject disk-full faults.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Any

from repro.campaign import chaos
from repro.campaign.jobs import JobSpec, canonical_json, content_digest

__all__ = ["ArtifactStore", "STORE_FORMAT"]

#: envelope schema version; bump on incompatible layout changes
STORE_FORMAT = 1


def _fsync_dir(path: pathlib.Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class ArtifactStore:
    """On-disk, content-addressed cache of job artifacts.

    The store never judges freshness — the content address already
    encodes scenario, config, seed, and code version, so an entry is
    valid for as long as its bytes verify.  Hit/miss/corrupt/healed
    counters accumulate over the store's lifetime (the service
    snapshots them into progress events and obs counters).
    """

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.healed = 0
        #: digests whose last read failed verification; a subsequent
        #: put over one of them counts as a heal
        self._corrupt_digests: set[str] = set()

    def path_for(self, spec: JobSpec) -> pathlib.Path:
        """Where ``spec``'s artifact lives (whether or not it exists)."""
        digest = spec.digest
        return self.root / digest[:2] / f"{digest}.json"

    def _read(self, spec: JobSpec) -> tuple[dict[str, Any] | None, bool]:
        """Verified read: ``(artifact, existed_but_corrupt)``.

        Verification covers the envelope format, the key (``spec_digest``
        must match the requesting spec), the embedded spec (must hash
        back to ``spec_digest`` — catches bit-flips in the audit copy),
        and the payload (must hash to ``artifact_sha256``).
        """
        path = self.path_for(spec)
        try:
            raw = path.read_text()
        except (FileNotFoundError, OSError, UnicodeDecodeError):
            # Missing, unreadable, or bit-flipped into invalid UTF-8.
            return None, path.exists()
        try:
            data = json.loads(raw)
            if (
                data["format"] == STORE_FORMAT
                and data["spec_digest"] == spec.digest
                and content_digest(data["spec"]) == data["spec_digest"]
                and content_digest(data["artifact"]) == data["artifact_sha256"]
            ):
                return data["artifact"], False
        except (ValueError, KeyError, TypeError):
            pass
        return None, True

    def get(self, spec: JobSpec) -> dict[str, Any] | None:
        """The verified cached artifact for ``spec``, or ``None``."""
        artifact, was_corrupt = self._read(spec)
        if artifact is not None:
            self.hits += 1
            return artifact
        self.misses += 1
        if was_corrupt:
            # Existed but failed verification: corrupt/truncated/foreign.
            self.corrupt += 1
            self._corrupt_digests.add(spec.digest)
        return None

    def peek(self, spec: JobSpec) -> dict[str, Any] | None:
        """Like :meth:`get` but with **no counter side effects** — the
        resume path uses it to restore journaled artifacts without
        perturbing the hit/miss accounting it is reconstructing."""
        artifact, _ = self._read(spec)
        return artifact

    def put(self, spec: JobSpec, artifact: dict[str, Any]) -> pathlib.Path:
        """Durably and atomically cache ``artifact`` under ``spec``'s
        address: temp file in the same directory, fsync the file,
        ``os.replace``, fsync the directory."""
        chaos.check_write("store")
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "format": STORE_FORMAT,
            "spec": spec.to_dict(),
            "spec_digest": spec.digest,
            "artifact_sha256": content_digest(artifact),
            "artifact": artifact,
        }
        payload = canonical_json(envelope)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{spec.short}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _fsync_dir(path.parent)
        if spec.digest in self._corrupt_digests:
            self._corrupt_digests.discard(spec.digest)
            self.healed += 1
        # After the write is durable: the chaos harness may now delete
        # the whole store out from under us (a wiped scratch directory).
        # The next put heals the tree via mkdir(parents=True) above.
        chaos.maybe_vanish_store(self.root)
        return path

    def __len__(self) -> int:
        """Number of artifact files currently on disk."""
        return sum(1 for _ in self.root.glob("??/*.json"))

    def stats(self) -> dict[str, int]:
        """Lifetime hit/miss/corruption/heal counters (JSON-able)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "healed": self.healed,
            "entries": len(self),
        }
