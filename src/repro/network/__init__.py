"""The Roadrunner InfiniBand fabric at crossbar granularity.

The topology is wired port-by-port from the paper's description (§II-B,
§II-C, Fig 2): per-CU Voltaire ISR 9288 switches built from 24 lower +
12 upper 24-port crossbars, and eight inter-CU switches of three levels
of 12 crossbars forming a 2:1 reduced fat tree over 17 CUs.  Table I's
hop census and Fig 10's latency staircase are *outputs* of routing over
this graph.
"""

from repro.network.crossbar import CROSSBAR_PORTS, XbarId
from repro.network.topology import NodeId, RoadrunnerTopology
from repro.network.routing import (
    hop_count,
    hop_census,
    average_hops,
    route,
    degraded_route,
    degraded_hop_census,
)
from repro.network.latency import IBLatencyModel
from repro.network.simfabric import ContendedFabric

__all__ = [
    "CROSSBAR_PORTS",
    "XbarId",
    "NodeId",
    "RoadrunnerTopology",
    "hop_count",
    "hop_census",
    "average_hops",
    "route",
    "degraded_route",
    "degraded_hop_census",
    "IBLatencyModel",
    "ContendedFabric",
]
