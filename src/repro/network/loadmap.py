"""Link-load and oversubscription analysis of the reduced fat tree.

The paper calls the inter-CU interconnect "a 2:1 reduced fat tree":
each CU's 180 nodes share 96 uplinks (1.875:1 oversubscription), and
the far side of the inter-CU switches (CUs 13-17) reaches the first
twelve CUs only through the 96 first-to-middle-level crossbar links.
This module routes explicit traffic patterns over the fabric and counts
per-link traversals, making those tapers measurable.
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache
from typing import Iterable

from repro.network.cu_switch import (
    COMPUTE_NODES_PER_CU,
    LOWER_XBARS,
    UPLINKS_PER_LOWER_XBAR,
)
from repro.network.intercu import FIRST_SIDE_CUS, INTERCU_SWITCHES, XBARS_PER_LEVEL
from repro.network.routing import route
from repro.network.topology import NodeId, RoadrunnerTopology

__all__ = [
    "link_loads",
    "max_link_load",
    "degraded_link_loads",
    "cu_oversubscription",
    "cross_side_links",
    "bisection_summary",
    "degraded_bisection_summary",
]

Edge = tuple


@lru_cache(maxsize=None)
def _vertex_repr(vertex: tuple) -> str:
    """``repr`` of a graph vertex; building these strings dominates the
    per-flow cost, and the vertex set is tiny compared to the pair set."""
    return repr(vertex)


@lru_cache(maxsize=1 << 17)
def _flow_edges(
    topo: RoadrunnerTopology, src: NodeId, dst: NodeId, spread: bool
) -> tuple[Edge, ...]:
    """The undirected edge keys one (src, dst) flow traverses, memoized
    per ``(topology, src, dst, spread)``."""
    path = [
        topo.graph_node(src),
        *route(topo, src, dst, spread=spread),
        topo.graph_node(dst),
    ]
    reprs = [_vertex_repr(v) for v in path]
    return tuple(
        (u, v) if u <= v else (v, u) for u, v in zip(reprs, reprs[1:])
    )


def link_loads(
    topo: RoadrunnerTopology,
    pairs: Iterable[tuple[NodeId, NodeId]],
    spread: bool = False,
) -> Counter:
    """Traversal count per fabric link for a set of (src, dst) flows.

    Links are undirected edges keyed by the sorted endpoint pair; the
    node-to-crossbar access links are included.  ``spread`` selects the
    destination-hashed routing (see :func:`repro.network.routing.route`).
    Edge lists are memoized per flow, so repeated patterns (all-to-all
    sweeps, bisection studies) cost one Counter update per pair.
    """
    loads: Counter = Counter()
    spread = bool(spread)
    update = loads.update
    for src, dst in pairs:
        if src == dst:
            continue
        update(_flow_edges(topo, src, dst, spread))
    return loads


def max_link_load(
    topo: RoadrunnerTopology,
    pairs: Iterable[tuple[NodeId, NodeId]],
    spread: bool = False,
) -> int:
    """The hottest link's traversal count (0 for no flows)."""
    loads = link_loads(topo, pairs, spread=spread)
    return max(loads.values()) if loads else 0


@lru_cache(maxsize=1 << 17)
def _degraded_flow_edges(
    topo: RoadrunnerTopology, src: NodeId, dst: NodeId, failed: frozenset
) -> tuple[Edge, ...] | None:
    """Edge keys of the BFS reroute around ``failed`` links, memoized
    per ``(topology, src, dst, failed-set)``; ``None`` when the
    failures disconnect the pair."""
    from repro.network.routing import degraded_route

    hops = degraded_route(topo, src, dst, failed)
    if hops is None:
        return None
    path = [topo.graph_node(src), *hops, topo.graph_node(dst)]
    reprs = [_vertex_repr(v) for v in path]
    return tuple(
        (u, v) if u <= v else (v, u) for u, v in zip(reprs, reprs[1:])
    )


def degraded_link_loads(
    topo: RoadrunnerTopology,
    pairs: Iterable[tuple[NodeId, NodeId]],
    failed_links: Iterable[tuple],
) -> tuple[Counter, list[tuple[NodeId, NodeId]]]:
    """Traversal count per surviving link when flows reroute around
    ``failed_links`` (a :attr:`~repro.resilience.health.FabricHealth.
    failed_links` snapshot).

    Each flow takes the shortest path over the working fabric
    (:func:`repro.network.routing.degraded_route`), so traffic that
    used a dead uplink or cross-side chain piles onto the survivors —
    the concentration that motivates feeding ``Transport.derated`` into
    the DES.  Returns ``(loads, unroutable)``: the per-link Counter
    plus the pairs the failures disconnect entirely.
    """
    failed = frozenset(failed_links)
    loads: Counter = Counter()
    unroutable: list[tuple[NodeId, NodeId]] = []
    update = loads.update
    for src, dst in pairs:
        if src == dst:
            continue
        edges = _degraded_flow_edges(topo, src, dst, failed)
        if edges is None:
            unroutable.append((src, dst))
        else:
            update(edges)
    return loads, unroutable


def cu_oversubscription() -> float:
    """Node-facing over uplink capacity of one CU: 180 / 96 = 1.875,
    the paper's '2:1 reduced' ratio."""
    uplinks = LOWER_XBARS * UPLINKS_PER_LOWER_XBAR
    return COMPUTE_NODES_PER_CU / uplinks


def cross_side_links() -> int:
    """Links crossing between the fat tree's two sides (the F-M
    crossbar links of all eight inter-CU switches)."""
    return INTERCU_SWITCHES * XBARS_PER_LEVEL


def bisection_summary(link_bandwidth: float = 2e9) -> dict[str, float]:
    """Capacity figures of the reduced fat tree.

    ``link_bandwidth`` is the per-direction rate of one 4x DDR link
    (2 GB/s).  The far-side per-node share quantifies why CUs 13-17
    see the fabric through a narrow waist.
    """
    if link_bandwidth <= 0:
        raise ValueError("link bandwidth must be positive")
    uplinks_per_cu = LOWER_XBARS * UPLINKS_PER_LOWER_XBAR
    far_side_nodes = (17 - FIRST_SIDE_CUS) * COMPUTE_NODES_PER_CU
    waist_capacity = cross_side_links() * link_bandwidth
    return {
        "cu_uplink_capacity": uplinks_per_cu * link_bandwidth,
        "cu_node_capacity": COMPUTE_NODES_PER_CU * link_bandwidth,
        "cu_oversubscription": cu_oversubscription(),
        "cross_side_capacity": waist_capacity,
        "far_side_nodes": float(far_side_nodes),
        "far_side_per_node_share": waist_capacity / far_side_nodes,
    }


def degraded_bisection_summary(
    failed_links: Iterable[tuple], link_bandwidth: float = 2e9
) -> dict[str, float]:
    """Bisection and uplink capacity lost to a set of failed links.

    ``failed_links`` are canonical ``(u, v)`` vertex pairs (the
    :attr:`~repro.resilience.health.FabricHealth.failed_links` snapshot).
    Three effects are priced:

    * a failed **uplink** (lower crossbar to inter-CU level) removes one
      of its CU's 96 uplinks, raising that CU's oversubscription;
    * a failed **F-M or M-T crossbar link** severs its whole F-M-T chain
      — the chains are series paths, so either edge kills the chain —
      narrowing the 96-link cross-side waist;
    * the degraded far-side per-node share follows from the surviving
      waist.
    """
    if link_bandwidth <= 0:
        raise ValueError("link bandwidth must be positive")
    base = bisection_summary(link_bandwidth)
    uplinks_per_cu = LOWER_XBARS * UPLINKS_PER_LOWER_XBAR
    uplinks_lost: Counter = Counter()
    dead_chains: set[tuple[int, int]] = set()
    total = 0
    for u, v in failed_links:
        total += 1
        levels = {getattr(u, "level", None), getattr(v, "level", None)}
        if "L" in levels and levels & {"F", "T"}:
            lower = u if u.level == "L" else v
            uplinks_lost[lower.owner] += 1
        elif levels in ({"F", "M"}, {"M", "T"}):
            chain = u if u.level != "M" else v
            dead_chains.add((chain.owner, chain.index))
    waist_remaining = cross_side_links() - len(dead_chains)
    worst_cu_uplinks = uplinks_per_cu - (
        max(uplinks_lost.values()) if uplinks_lost else 0
    )
    return {
        **base,
        "failed_links": float(total),
        "uplinks_lost": float(sum(uplinks_lost.values())),
        "worst_cu_uplinks_remaining": float(worst_cu_uplinks),
        "worst_cu_oversubscription": (
            COMPUTE_NODES_PER_CU / worst_cu_uplinks
            if worst_cu_uplinks > 0 else float("inf")
        ),
        "cross_side_links_lost": float(len(dead_chains)),
        "cross_side_capacity_remaining": waist_remaining * link_bandwidth,
        "cross_side_capacity_lost": len(dead_chains) * link_bandwidth,
        "bisection_fraction_lost": len(dead_chains) / cross_side_links(),
        "far_side_per_node_share_degraded": (
            waist_remaining * link_bandwidth / base["far_side_nodes"]
        ),
    }
