"""A contention-aware DES fabric for SimMPI.

The analytic fabrics in :mod:`repro.comm` charge each message a cost
curve independent of other traffic.  :class:`ContendedFabric` instead
materializes per-node InfiniBand injection/ejection ports as fair-shared
:class:`~repro.sim.resources.BandwidthLink` pipes on the simulation, so
concurrent messages through the same HCA split its 2 GB/s — the
mechanism behind the paper's observation that Fig 7's curves show "the
worst-performing pair when all Cell-Opteron pairs are in use".

Usage: construct with the :class:`~repro.sim.engine.Simulator` that
will run the communicator, then pass it to
:class:`~repro.comm.mpi.SimMPI` as the fabric.  The zero-byte latency
part stays analytic (hop count x 220 ns + software overhead); only the
bandwidth phase contends.
"""

from __future__ import annotations

from repro.comm.mpi import DeliveryError, Location
from repro.network.latency import IBLatencyModel
from repro.network.routing import hop_count
from repro.network.topology import RoadrunnerTopology
from repro.sim.engine import Event, Simulator
from repro.sim.resources import BandwidthLink

__all__ = ["ContendedFabric"]


class _LinkSpan:
    """Slotted, reusable per-link transfer record.

    One fires per shared link a transfer crosses, emitting the ``link``
    span and byte counter the profiler consumes; afterwards it parks
    itself on the fabric's free-list for the next transfer.  Replaces a
    closure allocation per link per message on the observed path.
    """

    __slots__ = ("fabric", "name", "t0", "size")

    def __init__(self, fabric: "ContendedFabric", name: str, t0: float, size: int):
        self.fabric = fabric
        self.name = name
        self.t0 = t0
        self.size = size

    def __call__(self, _evt: Event) -> None:
        fabric = self.fabric
        obs = fabric.obs
        obs.span("link", self.name, self.t0, fabric.sim.now, size=self.size)
        obs.count("link.bytes", self.size, track=self.name)
        self.name = None
        free = fabric._free_spans
        if len(free) < 64:
            free.append(self)


class _Finish:
    """Slotted completion record relaying a mover's outcome to the
    transfer's ``done`` event, pooled per fabric like :class:`_LinkSpan`."""

    __slots__ = ("fabric", "done")

    def __init__(self, fabric: "ContendedFabric", done: Event):
        self.fabric = fabric
        self.done = done

    def __call__(self, evt: Event) -> None:
        done = self.done
        self.done = None
        free = self.fabric._free_finishes
        if len(free) < 64:
            free.append(self)
        if evt.ok:
            done.succeed(evt.value)
        else:
            done.fail(evt.value)


class ContendedFabric:
    """Per-node NIC contention over the Roadrunner fabric.

    Implements both the analytic fabric protocol (``one_way_time`` /
    ``zero_byte_latency`` for latency bookkeeping) and an extended
    ``transfer`` hook that SimMPI-compatible callers can use to route a
    message's bandwidth phase through the shared tx/rx links.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: RoadrunnerTopology | None = None,
        latency_model: IBLatencyModel | None = None,
        model_uplinks: bool = False,
        spread_routing: bool = False,
        health=None,
        obs=None,
    ):
        self.sim = sim
        #: optional :class:`repro.obs.recorder.ObsRecorder`: each
        #: transfer records a ``link`` span per shared link it crosses
        #: (t0 = transfer start, t1 = that link's bytes cleared) plus
        #: ``link.bytes`` counters — the profiler's per-link occupancy
        if obs is not None:
            from repro.obs.recorder import active

            obs = active(obs)
        self.obs = obs
        self.topology = topology or RoadrunnerTopology(cu_count=1)
        self.latency = latency_model or IBLatencyModel()
        #: also contend for the CU uplink a route leaves through (the
        #: 2:1-taper resource of §II-C); off by default for speed
        self.model_uplinks = model_uplinks
        #: optional failed-node ledger (duck-typed ``node_ok``, e.g.
        #: :class:`~repro.resilience.health.FabricHealth`): a transfer
        #: touching a failed endpoint fails with
        #: :class:`~repro.comm.mpi.DeliveryError`
        self.health = health
        #: use destination-hashed routing when picking uplinks
        self.spread_routing = spread_routing
        self._tx: dict[int, BandwidthLink] = {}
        self._rx: dict[int, BandwidthLink] = {}
        self._uplinks: dict[tuple, BandwidthLink] = {}
        #: free-lists of reusable per-transfer records (timeline-neutral
        #: allocation recycling; see _LinkSpan / _Finish)
        self._free_spans: list[_LinkSpan] = []
        self._free_finishes: list[_Finish] = []

    def _nic(self, table: dict[int, BandwidthLink], node: int) -> BandwidthLink:
        if node not in table:
            kind = "tx" if table is self._tx else "rx"
            table[node] = BandwidthLink(
                self.sim, self.latency.bandwidth, name=f"hca-{kind}-{node}"
            )
        return table[node]

    # -- analytic protocol (used by SimMPI for latency bookkeeping) --------
    def zero_byte_latency(self, src: Location, dst: Location) -> float:
        if src.node == dst.node:
            return 0.0
        return self.latency.zero_byte_latency(self.topology, src.node, dst.node)

    def one_way_time(self, src: Location, dst: Location, size: int) -> float:
        """Uncontended one-way time (the floor the DES enforces)."""
        if src.node == dst.node:
            return 0.0
        return self.latency.message_latency(self.topology, src.node, dst.node, size)

    # -- the contended path --------------------------------------------------
    def transfer(self, src: Location, dst: Location, size: int) -> Event:
        """Move a message's payload bytes through the shared NICs.

        Returns an event firing when the bytes have cleared both the
        source's injection port and the destination's ejection port.
        The two crossings proceed concurrently (cut-through: bytes
        stream out of one port into the other), so an uncontended
        message pays one bandwidth phase and the slower of two congested
        ports sets the pace.  Zero-size messages and intranode messages
        complete immediately.
        """
        done = Event(self.sim)
        health = self.health
        if health is not None and not (
            health.node_ok(src.node) and health.node_ok(dst.node)
        ):
            down = src.node if not health.node_ok(src.node) else dst.node
            done.fail(DeliveryError(f"node {down} is down"))
            return done
        if size == 0 or src.node == dst.node:
            done.succeed(self.sim.now)
            return done
        links = [
            self._nic(self._tx, src.node),
            self._nic(self._rx, dst.node),
        ]
        if self.model_uplinks:
            links.extend(self._route_uplinks(src.node, dst.node))
        obs = self.obs

        def mover(sim):
            events = [link.transfer(size) for link in links]
            if obs is not None:
                t0 = sim.now
                spans = self._free_spans
                for link, evt in zip(links, events):
                    if spans:
                        rec = spans.pop()
                        rec.name = link.name
                        rec.t0 = t0
                        rec.size = size
                    else:
                        rec = _LinkSpan(self, link.name, t0, size)
                    evt.callbacks.append(rec)
            yield sim.all_of(events)
            return sim.now

        proc = self.sim.process(mover(self.sim), name="fabric-transfer")
        finishes = self._free_finishes
        if finishes:
            fin = finishes.pop()
            fin.done = done
        else:
            fin = _Finish(self, done)
        proc.callbacks.append(fin)
        return done

    def _route_uplinks(self, src_node: int, dst_node: int) -> list[BandwidthLink]:
        """Shared CU-uplink links along the route (if it leaves a CU).

        An uplink is identified by the (lower crossbar, inter-CU
        crossbar) edge the deterministic route takes; 180 nodes share
        their CU's 96 uplinks, so these links are where the paper's
        2:1 taper bites under load.
        """
        from repro.network.crossbar import XbarId
        from repro.network.routing import route

        path = route(self.topology, src_node, dst_node, spread=self.spread_routing)
        out = []
        for u, v in zip(path, path[1:]):
            levels = {u.level, v.level}
            if "L" in levels and levels & {"F", "T"}:
                key = tuple(sorted((u, v)))
                if key not in self._uplinks:
                    self._uplinks[key] = BandwidthLink(
                        self.sim, self.latency.bandwidth, name=f"uplink-{key}"
                    )
                out.append(self._uplinks[key])
        return out

    def hops(self, src: Location, dst: Location) -> int:
        """Crossbar hops between the endpoints' nodes."""
        return hop_count(self.topology, src.node, dst.node)

    # -- instrumentation -------------------------------------------------------
    def nic_bytes(self, node: int) -> tuple[float, float]:
        """(injected, ejected) bytes through a node's HCA so far."""
        injected = self._tx[node].bytes_transferred if node in self._tx else 0.0
        ejected = self._rx[node].bytes_transferred if node in self._rx else 0.0
        return injected, ejected
