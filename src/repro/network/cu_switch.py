"""One CU's Voltaire ISR 9288 switch (paper §II-B, Fig 2 lower half).

The 288-port switch is 36 24-port crossbars in two levels: 24 lower and
12 upper.  Each lower crossbar spends its 24 ports as

* 8 ports down to nodes (22 crossbars carry 8 compute nodes; one carries
  4 compute + 4 I/O nodes; the last carries 8 I/O nodes),
* 12 ports up, one to each upper crossbar (a full fat tree within the
  CU; upper crossbars spend all 24 ports on the 24 lowers),
* 4 ports as uplinks toward the inter-CU switches.

That is 192 node-facing ports used and 24 x 4 = 96 uplinks per CU,
matching the paper's "utilizing 192 of the 288 available ports, yielding
... up to 96 up-links".
"""

from __future__ import annotations

import networkx as nx

from repro.network.crossbar import XbarId

__all__ = [
    "LOWER_XBARS",
    "UPPER_XBARS",
    "NODES_PER_LOWER_XBAR",
    "UPLINKS_PER_LOWER_XBAR",
    "COMPUTE_NODES_PER_CU",
    "IO_NODES_PER_CU",
    "build_cu_switch",
    "attach_cu_nodes",
    "lower_xbar_of_local_node",
]

LOWER_XBARS = 24
UPPER_XBARS = 12
NODES_PER_LOWER_XBAR = 8
UPLINKS_PER_LOWER_XBAR = 4
COMPUTE_NODES_PER_CU = 180
IO_NODES_PER_CU = 12

#: Lower crossbar carrying the 4 compute + 4 I/O mix.
MIXED_XBAR = 22
#: Lower crossbar carrying 8 I/O nodes only.
IO_XBAR = 23


def lower_xbar_of_local_node(local_index: int) -> int:
    """Lower-crossbar index of compute node ``local_index`` (0-179).

    Nodes 0-175 fill crossbars 0-21 eight at a time; nodes 176-179 sit
    on the mixed crossbar 22 alongside four I/O nodes.
    """
    if not 0 <= local_index < COMPUTE_NODES_PER_CU:
        raise ValueError(f"local node index {local_index} out of range 0-179")
    if local_index < 176:
        return local_index // NODES_PER_LOWER_XBAR
    return MIXED_XBAR


def build_cu_switch(graph: nx.Graph, cu: int) -> None:
    """Add CU ``cu``'s 36 crossbars and intra-switch links to ``graph``."""
    lowers = [XbarId("L", cu, i) for i in range(LOWER_XBARS)]
    uppers = [XbarId("U", cu, j) for j in range(UPPER_XBARS)]
    graph.add_nodes_from(lowers, kind="xbar")
    graph.add_nodes_from(uppers, kind="xbar")
    for low in lowers:
        for up in uppers:
            graph.add_edge(low, up, kind="intra-cu")


def attach_cu_nodes(graph: nx.Graph, cu: int) -> None:
    """Attach CU ``cu``'s 180 compute nodes and 12 I/O nodes."""
    for local in range(COMPUTE_NODES_PER_CU):
        node = ("node", cu, local)
        xbar = XbarId("L", cu, lower_xbar_of_local_node(local))
        graph.add_node(node, kind="compute")
        graph.add_edge(node, xbar, kind="node-link")
    # I/O nodes: 4 on the mixed crossbar, 8 on the dedicated I/O crossbar.
    for ionum in range(IO_NODES_PER_CU):
        node = ("io", cu, ionum)
        xbar_index = MIXED_XBAR if ionum < 4 else IO_XBAR
        graph.add_node(node, kind="io")
        graph.add_edge(node, XbarId("L", cu, xbar_index), kind="node-link")
