"""Deterministic routing and the Table I hop census.

Hops count *crossbars traversed*, matching the paper's convention
("A node is one hop away from the other seven on the same crossbar,
...").  The closed-form rule below follows from the wiring in
:mod:`repro.network.intercu` and is cross-validated against
breadth-first search over the explicit graph by the test suite:

========================================  ====
destination relative to the source        hops
========================================  ====
self                                      0
same lower crossbar                       1
same CU, different crossbar               3
other CU, same fat-tree side, same-index
lower crossbar                            3
other CU, same side, different crossbar   5
other side, same-index lower crossbar     5
other side, different crossbar            7
========================================  ====
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache

import networkx as nx
import numpy as np

from repro.network.crossbar import XbarId
from repro.network.cu_switch import (
    MIXED_XBAR,
    NODES_PER_LOWER_XBAR,
)
from repro.network.intercu import FIRST_SIDE_CUS
from repro.network.topology import NodeId, RoadrunnerTopology

__all__ = [
    "hop_count",
    "hop_vector",
    "route",
    "hop_census",
    "average_hops",
    "bfs_hop_count",
    "degraded_route",
    "degraded_hop_vector",
    "degraded_hop_census",
    "UNREACHABLE",
]

#: hop-census key under which unreachable destinations are counted, so a
#: degraded census still sums to ``topo.node_count``
UNREACHABLE = -1


@lru_cache(maxsize=8)
def _node_tables(topo: RoadrunnerTopology) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-node ``(cu, lower-xbar index, fat-tree side)`` lookup arrays.

    Cached per topology object (topologies are immutable once built), so
    every vectorized sweep — :func:`hop_vector`, :func:`hop_census`,
    ``IBLatencyModel.latency_map`` — shares one table instead of calling
    ``topo.split``/``topo.lower_xbar`` per destination.
    """
    ids = np.arange(topo.node_count)
    cu, local = np.divmod(ids, topo.nodes_per_cu)
    xbar = np.where(local < 176, local // NODES_PER_LOWER_XBAR, MIXED_XBAR)
    side = cu < FIRST_SIDE_CUS
    return cu, xbar, side


@lru_cache(maxsize=1 << 16)
def _hop_count_cached(topo: RoadrunnerTopology, src: NodeId, dst: NodeId) -> int:
    cu_s, local_s = topo.split(src)
    cu_d, local_d = topo.split(dst)
    xbar_s = topo.lower_xbar(src).index
    xbar_d = topo.lower_xbar(dst).index
    if cu_s == cu_d:
        return 1 if xbar_s == xbar_d else 3
    if topo.same_side(cu_s, cu_d):
        return 3 if xbar_s == xbar_d else 5
    return 5 if xbar_s == xbar_d else 7


def hop_count(topo: RoadrunnerTopology, src: NodeId, dst: NodeId) -> int:
    """Crossbar hops between two compute nodes (closed form, LRU-cached
    per ``(topology, src, dst)``)."""
    if src == dst:
        return 0
    return _hop_count_cached(topo, src, dst)


def hop_vector(topo: RoadrunnerTopology, src: NodeId = 0) -> np.ndarray:
    """Hops from ``src`` to every node, as an int array indexed by id.

    The vectorized closed form behind :func:`hop_census` and Fig 10's
    latency map: one numpy pass over the cached per-node tables instead
    of ``node_count`` Python-level :func:`hop_count` calls.
    """
    topo.split(src)  # range-check src with the scalar path's error message
    cu, xbar, side = _node_tables(topo)
    same_cu = cu == cu[src]
    same_xbar = xbar == xbar[src]
    same_side = side == side[src]
    hops = np.where(
        same_cu,
        np.where(same_xbar, 1, 3),
        np.where(same_side, np.where(same_xbar, 3, 5), np.where(same_xbar, 5, 7)),
    )
    hops[src] = 0
    return hops


@lru_cache(maxsize=1 << 16)
def _route_cached(
    topo: RoadrunnerTopology, src: NodeId, dst: NodeId, spread: bool
) -> tuple[XbarId, ...]:
    from repro.network.intercu import uplink_target

    cu_s, _ = topo.split(src)
    cu_d, local_d = topo.split(dst)
    lx_s = topo.lower_xbar(src)
    lx_d = topo.lower_xbar(dst)
    uplink = local_d % 4 if spread else 0
    upper = local_d % 12 if spread else 0
    if cu_s == cu_d:
        if lx_s == lx_d:
            return (lx_s,)
        return (lx_s, XbarId("U", cu_s, upper), lx_d)
    # Leave the source CU through the destination-selected uplink.
    exit_xbar = uplink_target(cu_s, lx_s.index, uplink)
    path: list[XbarId] = [lx_s, exit_xbar]
    if not topo.same_side(cu_s, cu_d):
        # Cross the F-M-T (or T-M-F) chain of the same switch/port.
        s, j = exit_xbar.owner, exit_xbar.index
        middle = XbarId("M", s, j)
        far_level = "T" if exit_xbar.level == "F" else "F"
        path += [middle, XbarId(far_level, s, j)]
    # Descend into the destination CU on the same-index lower crossbar.
    landing = XbarId("L", cu_d, lx_s.index)
    path.append(landing)
    if landing != lx_d:
        path += [XbarId("U", cu_d, upper), lx_d]
    return tuple(path)


def route(
    topo: RoadrunnerTopology, src: NodeId, dst: NodeId, spread: bool = False
) -> list[XbarId]:
    """The deterministic crossbar path from ``src`` to ``dst``.

    With ``spread=False`` the route always takes uplink 0 and upper
    crossbar 0 — simple, but it concentrates load.  ``spread=True``
    selects the uplink and upper crossbar by destination (the
    destination-based deterministic routing InfiniBand subnet managers
    program), spreading flows across the CU's 4 uplinks and 12 upper
    crossbars without changing any path length.  Either way the length
    equals :func:`hop_count` and every consecutive pair is a wired edge.

    Paths are memoized per ``(topology, src, dst, spread)``; the
    returned list is a fresh copy the caller may mutate.
    """
    if src == dst:
        return []
    return list(_route_cached(topo, src, dst, bool(spread)))


def bfs_hop_count(topo: RoadrunnerTopology, src: NodeId, dst: NodeId) -> int:
    """Crossbar hops via shortest path over the explicit graph (oracle)."""
    path = nx.shortest_path(topo.graph, topo.graph_node(src), topo.graph_node(dst))
    return sum(1 for v in path if isinstance(v, XbarId))


def hop_census(topo: RoadrunnerTopology, src: NodeId = 0) -> Counter:
    """Table I: how many destinations lie at each hop distance.

    One :func:`hop_vector` pass plus a bincount over the cached
    per-node tables (no per-destination Python loop).
    """
    counts = np.bincount(hop_vector(topo, src))
    return Counter({h: int(n) for h, n in enumerate(counts) if n})


def average_hops(topo: RoadrunnerTopology, src: NodeId = 0) -> float:
    """Average hop count over *all* destinations including self, the
    convention behind Table I's '5.38 (average)' row."""
    return float(hop_vector(topo, src).sum()) / topo.node_count


# -- degraded-fabric routing --------------------------------------------------
#
# The closed forms above assume every wired link is up.  With links
# failed (see :class:`repro.resilience.health.FabricHealth`) routes are
# recomputed by breadth-first search over the explicit graph minus the
# failed edges — exactly what an InfiniBand subnet manager's re-sweep
# does after a link drops.  ``failed_links`` is always a *frozenset* of
# canonical ``(u, v)`` vertex pairs (:func:`repro.resilience.health.
# edge_key`), which makes it a cache key: the working graph and each
# source's BFS tree are memoized until the failure set changes.


@lru_cache(maxsize=32)
def _working_graph(topo: RoadrunnerTopology, failed_links: frozenset) -> nx.Graph:
    """The topology graph minus the failed edges (memoized)."""
    graph = topo.graph.copy()
    graph.remove_edges_from(failed_links)
    return graph


@lru_cache(maxsize=4096)
def _degraded_lengths(
    topo: RoadrunnerTopology, failed_links: frozenset, src: NodeId
) -> dict:
    """BFS edge-distances from ``src``'s graph vertex over the working
    graph; vertices cut off by the failures are simply absent."""
    graph = _working_graph(topo, failed_links)
    return nx.single_source_shortest_path_length(graph, topo.graph_node(src))


def degraded_route(
    topo: RoadrunnerTopology,
    src: NodeId,
    dst: NodeId,
    failed_links: frozenset,
) -> list[XbarId] | None:
    """A shortest crossbar path from ``src`` to ``dst`` avoiding the
    failed links, or ``None`` if the failures disconnect the pair.

    On a healthy fabric (``failed_links`` empty) the returned path has
    the same length as :func:`route`'s — the closed-form routes are
    shortest paths — though it may pick different equal-cost crossbars.
    """
    if src == dst:
        return []
    graph = _working_graph(topo, frozenset(failed_links))
    try:
        path = nx.shortest_path(graph, topo.graph_node(src), topo.graph_node(dst))
    except nx.NetworkXNoPath:
        return None
    return [v for v in path if isinstance(v, XbarId)]


def degraded_hop_vector(
    topo: RoadrunnerTopology, src: NodeId, failed_links: frozenset
) -> np.ndarray:
    """Hops from ``src`` to every node over the degraded fabric.

    Entries are crossbars traversed (BFS edge-distance minus one) or
    :data:`UNREACHABLE` for destinations the failures cut off.  With no
    failures this reproduces :func:`hop_vector` exactly (the test suite
    pins this), so the BFS fallback and the closed form can't drift.
    """
    lengths = _degraded_lengths(topo, frozenset(failed_links), src)
    hops = np.full(topo.node_count, UNREACHABLE, dtype=np.int64)
    graph_node = topo.graph_node
    for node in range(topo.node_count):
        dist = lengths.get(graph_node(node))
        if dist is not None:
            hops[node] = max(dist - 1, 0)
    return hops


def degraded_hop_census(
    topo: RoadrunnerTopology,
    src: NodeId = 0,
    failed_links: frozenset = frozenset(),
) -> Counter:
    """Table I recomputed on a degraded fabric.

    Counts destinations per hop distance, with unreachable nodes under
    the :data:`UNREACHABLE` key — the census always sums to
    ``topo.node_count`` no matter what has failed.
    """
    hops = degraded_hop_vector(topo, src, failed_links)
    counts = Counter()
    for h, n in zip(*np.unique(hops, return_counts=True)):
        counts[int(h)] = int(n)
    return counts
