"""Deterministic routing and the Table I hop census.

Hops count *crossbars traversed*, matching the paper's convention
("A node is one hop away from the other seven on the same crossbar,
...").  The closed-form rule below follows from the wiring in
:mod:`repro.network.intercu` and is cross-validated against
breadth-first search over the explicit graph by the test suite:

========================================  ====
destination relative to the source        hops
========================================  ====
self                                      0
same lower crossbar                       1
same CU, different crossbar               3
other CU, same fat-tree side, same-index
lower crossbar                            3
other CU, same side, different crossbar   5
other side, same-index lower crossbar     5
other side, different crossbar            7
========================================  ====
"""

from __future__ import annotations

from collections import Counter

import networkx as nx

from repro.network.crossbar import XbarId
from repro.network.topology import NodeId, RoadrunnerTopology

__all__ = ["hop_count", "route", "hop_census", "average_hops", "bfs_hop_count"]


def hop_count(topo: RoadrunnerTopology, src: NodeId, dst: NodeId) -> int:
    """Crossbar hops between two compute nodes (closed form)."""
    if src == dst:
        return 0
    cu_s, local_s = topo.split(src)
    cu_d, local_d = topo.split(dst)
    xbar_s = topo.lower_xbar(src).index
    xbar_d = topo.lower_xbar(dst).index
    if cu_s == cu_d:
        return 1 if xbar_s == xbar_d else 3
    if topo.same_side(cu_s, cu_d):
        return 3 if xbar_s == xbar_d else 5
    return 5 if xbar_s == xbar_d else 7


def route(
    topo: RoadrunnerTopology, src: NodeId, dst: NodeId, spread: bool = False
) -> list[XbarId]:
    """The deterministic crossbar path from ``src`` to ``dst``.

    With ``spread=False`` the route always takes uplink 0 and upper
    crossbar 0 — simple, but it concentrates load.  ``spread=True``
    selects the uplink and upper crossbar by destination (the
    destination-based deterministic routing InfiniBand subnet managers
    program), spreading flows across the CU's 4 uplinks and 12 upper
    crossbars without changing any path length.  Either way the length
    equals :func:`hop_count` and every consecutive pair is a wired edge.
    """
    from repro.network.intercu import uplink_target

    if src == dst:
        return []
    cu_s, _ = topo.split(src)
    cu_d, local_d = topo.split(dst)
    lx_s = topo.lower_xbar(src)
    lx_d = topo.lower_xbar(dst)
    uplink = local_d % 4 if spread else 0
    upper = local_d % 12 if spread else 0
    if cu_s == cu_d:
        if lx_s == lx_d:
            return [lx_s]
        return [lx_s, XbarId("U", cu_s, upper), lx_d]
    # Leave the source CU through the destination-selected uplink.
    exit_xbar = uplink_target(cu_s, lx_s.index, uplink)
    path: list[XbarId] = [lx_s, exit_xbar]
    if not topo.same_side(cu_s, cu_d):
        # Cross the F-M-T (or T-M-F) chain of the same switch/port.
        s, j = exit_xbar.owner, exit_xbar.index
        middle = XbarId("M", s, j)
        far_level = "T" if exit_xbar.level == "F" else "F"
        path += [middle, XbarId(far_level, s, j)]
    # Descend into the destination CU on the same-index lower crossbar.
    landing = XbarId("L", cu_d, lx_s.index)
    path.append(landing)
    if landing != lx_d:
        path += [XbarId("U", cu_d, upper), lx_d]
    return path


def bfs_hop_count(topo: RoadrunnerTopology, src: NodeId, dst: NodeId) -> int:
    """Crossbar hops via shortest path over the explicit graph (oracle)."""
    path = nx.shortest_path(topo.graph, topo.graph_node(src), topo.graph_node(dst))
    return sum(1 for v in path if isinstance(v, XbarId))


def hop_census(topo: RoadrunnerTopology, src: NodeId = 0) -> Counter:
    """Table I: how many destinations lie at each hop distance."""
    census: Counter = Counter()
    for dst in range(topo.node_count):
        census[hop_count(topo, src, dst)] += 1
    return census


def average_hops(topo: RoadrunnerTopology, src: NodeId = 0) -> float:
    """Average hop count over *all* destinations including self, the
    convention behind Table I's '5.38 (average)' row."""
    census = hop_census(topo, src)
    total = sum(h * n for h, n in census.items())
    return total / topo.node_count
