"""Deterministic routing and the Table I hop census.

Hops count *crossbars traversed*, matching the paper's convention
("A node is one hop away from the other seven on the same crossbar,
...").  The closed-form rule below follows from the wiring in
:mod:`repro.network.intercu` and is cross-validated against
breadth-first search over the explicit graph by the test suite:

========================================  ====
destination relative to the source        hops
========================================  ====
self                                      0
same lower crossbar                       1
same CU, different crossbar               3
other CU, same fat-tree side, same-index
lower crossbar                            3
other CU, same side, different crossbar   5
other side, same-index lower crossbar     5
other side, different crossbar            7
========================================  ====
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache

import networkx as nx
import numpy as np

from repro.network.crossbar import XbarId
from repro.network.cu_switch import (
    MIXED_XBAR,
    NODES_PER_LOWER_XBAR,
)
from repro.network.intercu import FIRST_SIDE_CUS
from repro.network.topology import NodeId, RoadrunnerTopology

__all__ = [
    "hop_count",
    "hop_vector",
    "route",
    "hop_census",
    "average_hops",
    "bfs_hop_count",
]


@lru_cache(maxsize=8)
def _node_tables(topo: RoadrunnerTopology) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-node ``(cu, lower-xbar index, fat-tree side)`` lookup arrays.

    Cached per topology object (topologies are immutable once built), so
    every vectorized sweep — :func:`hop_vector`, :func:`hop_census`,
    ``IBLatencyModel.latency_map`` — shares one table instead of calling
    ``topo.split``/``topo.lower_xbar`` per destination.
    """
    ids = np.arange(topo.node_count)
    cu, local = np.divmod(ids, topo.nodes_per_cu)
    xbar = np.where(local < 176, local // NODES_PER_LOWER_XBAR, MIXED_XBAR)
    side = cu < FIRST_SIDE_CUS
    return cu, xbar, side


@lru_cache(maxsize=1 << 16)
def _hop_count_cached(topo: RoadrunnerTopology, src: NodeId, dst: NodeId) -> int:
    cu_s, local_s = topo.split(src)
    cu_d, local_d = topo.split(dst)
    xbar_s = topo.lower_xbar(src).index
    xbar_d = topo.lower_xbar(dst).index
    if cu_s == cu_d:
        return 1 if xbar_s == xbar_d else 3
    if topo.same_side(cu_s, cu_d):
        return 3 if xbar_s == xbar_d else 5
    return 5 if xbar_s == xbar_d else 7


def hop_count(topo: RoadrunnerTopology, src: NodeId, dst: NodeId) -> int:
    """Crossbar hops between two compute nodes (closed form, LRU-cached
    per ``(topology, src, dst)``)."""
    if src == dst:
        return 0
    return _hop_count_cached(topo, src, dst)


def hop_vector(topo: RoadrunnerTopology, src: NodeId = 0) -> np.ndarray:
    """Hops from ``src`` to every node, as an int array indexed by id.

    The vectorized closed form behind :func:`hop_census` and Fig 10's
    latency map: one numpy pass over the cached per-node tables instead
    of ``node_count`` Python-level :func:`hop_count` calls.
    """
    topo.split(src)  # range-check src with the scalar path's error message
    cu, xbar, side = _node_tables(topo)
    same_cu = cu == cu[src]
    same_xbar = xbar == xbar[src]
    same_side = side == side[src]
    hops = np.where(
        same_cu,
        np.where(same_xbar, 1, 3),
        np.where(same_side, np.where(same_xbar, 3, 5), np.where(same_xbar, 5, 7)),
    )
    hops[src] = 0
    return hops


@lru_cache(maxsize=1 << 16)
def _route_cached(
    topo: RoadrunnerTopology, src: NodeId, dst: NodeId, spread: bool
) -> tuple[XbarId, ...]:
    from repro.network.intercu import uplink_target

    cu_s, _ = topo.split(src)
    cu_d, local_d = topo.split(dst)
    lx_s = topo.lower_xbar(src)
    lx_d = topo.lower_xbar(dst)
    uplink = local_d % 4 if spread else 0
    upper = local_d % 12 if spread else 0
    if cu_s == cu_d:
        if lx_s == lx_d:
            return (lx_s,)
        return (lx_s, XbarId("U", cu_s, upper), lx_d)
    # Leave the source CU through the destination-selected uplink.
    exit_xbar = uplink_target(cu_s, lx_s.index, uplink)
    path: list[XbarId] = [lx_s, exit_xbar]
    if not topo.same_side(cu_s, cu_d):
        # Cross the F-M-T (or T-M-F) chain of the same switch/port.
        s, j = exit_xbar.owner, exit_xbar.index
        middle = XbarId("M", s, j)
        far_level = "T" if exit_xbar.level == "F" else "F"
        path += [middle, XbarId(far_level, s, j)]
    # Descend into the destination CU on the same-index lower crossbar.
    landing = XbarId("L", cu_d, lx_s.index)
    path.append(landing)
    if landing != lx_d:
        path += [XbarId("U", cu_d, upper), lx_d]
    return tuple(path)


def route(
    topo: RoadrunnerTopology, src: NodeId, dst: NodeId, spread: bool = False
) -> list[XbarId]:
    """The deterministic crossbar path from ``src`` to ``dst``.

    With ``spread=False`` the route always takes uplink 0 and upper
    crossbar 0 — simple, but it concentrates load.  ``spread=True``
    selects the uplink and upper crossbar by destination (the
    destination-based deterministic routing InfiniBand subnet managers
    program), spreading flows across the CU's 4 uplinks and 12 upper
    crossbars without changing any path length.  Either way the length
    equals :func:`hop_count` and every consecutive pair is a wired edge.

    Paths are memoized per ``(topology, src, dst, spread)``; the
    returned list is a fresh copy the caller may mutate.
    """
    if src == dst:
        return []
    return list(_route_cached(topo, src, dst, bool(spread)))


def bfs_hop_count(topo: RoadrunnerTopology, src: NodeId, dst: NodeId) -> int:
    """Crossbar hops via shortest path over the explicit graph (oracle)."""
    path = nx.shortest_path(topo.graph, topo.graph_node(src), topo.graph_node(dst))
    return sum(1 for v in path if isinstance(v, XbarId))


def hop_census(topo: RoadrunnerTopology, src: NodeId = 0) -> Counter:
    """Table I: how many destinations lie at each hop distance.

    One :func:`hop_vector` pass plus a bincount over the cached
    per-node tables (no per-destination Python loop).
    """
    counts = np.bincount(hop_vector(topo, src))
    return Counter({h: int(n) for h, n in enumerate(counts) if n})


def average_hops(topo: RoadrunnerTopology, src: NodeId = 0) -> float:
    """Average hop count over *all* destinations including self, the
    convention behind Table I's '5.38 (average)' row."""
    return float(hop_vector(topo, src).sum()) / topo.node_count
