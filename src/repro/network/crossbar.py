"""Crossbar identifiers and port accounting.

Every switching element in the fabric is a 24-port InfiniBand crossbar.
:class:`XbarId` names one crossbar by its role:

* ``("L", cu, i)`` — lower-level crossbar *i* (0-23) of CU *cu*'s switch
* ``("U", cu, j)`` — upper-level crossbar *j* (0-11) of CU *cu*'s switch
* ``("F", s, j)``  — first-level crossbar *j* of inter-CU switch *s*
* ``("M", s, j)``  — middle-level crossbar *j* of inter-CU switch *s*
* ``("T", s, j)``  — third-level crossbar *j* of inter-CU switch *s*
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["CROSSBAR_PORTS", "LEVELS", "XbarId"]

#: Every crossbar in the Voltaire ISR 9288 has 24 ports (paper §II-B).
CROSSBAR_PORTS = 24

#: Valid crossbar levels; L/U live in CU switches, F/M/T in inter-CU ones.
LEVELS = frozenset({"L", "U", "F", "M", "T"})


class XbarId(NamedTuple):
    """Identity of one 24-port crossbar in the fabric."""

    level: str
    owner: int  # CU index for L/U, inter-CU switch index for F/M/T
    index: int

    def validate(self, cu_count: int, switch_count: int) -> "XbarId":
        """Range-check the identifier against a fabric's dimensions."""
        if self.level not in LEVELS:
            raise ValueError(f"unknown crossbar level {self.level!r}")
        if self.level in ("L", "U"):
            if not 0 <= self.owner < cu_count:
                raise ValueError(f"CU index {self.owner} out of range")
            limit = 24 if self.level == "L" else 12
        else:
            if not 0 <= self.owner < switch_count:
                raise ValueError(f"switch index {self.owner} out of range")
            limit = 12
        if not 0 <= self.index < limit:
            raise ValueError(
                f"crossbar index {self.index} out of range for level {self.level}"
            )
        return self
