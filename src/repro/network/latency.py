"""End-to-end InfiniBand latency over the fabric (Fig 10).

A zero-byte MPI message from rank 0 costs a fixed software/NIC overhead
plus ~220 ns per crossbar traversed (§II-C).  The constants reproduce
Fig 10's staircase: 2.5 µs to crossbar neighbours (1 hop), ~3 µs within
the CU (3 hops), ~3.5 µs to the first 12 CUs (5 hops), just under 4 µs
to the far-side CUs (7 hops).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.routing import hop_count, hop_vector
from repro.network.topology import NodeId, RoadrunnerTopology
from repro.units import NS, US

__all__ = ["IBLatencyModel"]


@dataclass(frozen=True)
class IBLatencyModel:
    """Per-message latency = software overhead + hops x switch latency
    + size / bandwidth."""

    #: fixed MPI + HCA + PCIe overhead per message, seconds
    software_overhead: float = 2.28 * US
    #: per-crossbar-hop store-and-forward latency (paper: ~220 ns)
    hop_latency: float = 220 * NS
    #: large-message bandwidth, B/s (980 MB/s default Open MPI;
    #: 1.6 GB/s with pinned buffers — §IV-C)
    bandwidth: float = 980e6

    def zero_byte_latency(self, topo: RoadrunnerTopology, src: NodeId, dst: NodeId) -> float:
        """Zero-byte one-way latency between two compute nodes."""
        if src == dst:
            return 0.0
        return self.software_overhead + hop_count(topo, src, dst) * self.hop_latency

    def message_latency(
        self, topo: RoadrunnerTopology, src: NodeId, dst: NodeId, size_bytes: int
    ) -> float:
        """One-way latency of a ``size_bytes`` message."""
        if size_bytes < 0:
            raise ValueError("message size must be >= 0")
        base = self.zero_byte_latency(topo, src, dst)
        return base + size_bytes / self.bandwidth

    def latency_map(self, topo: RoadrunnerTopology, src: NodeId = 0) -> list[float]:
        """Fig 10: zero-byte latency from ``src`` to every node, by id.

        Vectorized over :func:`repro.network.routing.hop_vector` — one
        numpy pass instead of a Python loop over 3,060 destinations.
        """
        hops = hop_vector(topo, src)
        lat = self.software_overhead + hops * self.hop_latency
        lat[src] = 0.0
        return lat.tolist()
