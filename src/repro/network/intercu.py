"""The eight inter-CU switches and their CU uplink wiring (§II-C).

Each inter-CU switch is three levels of 12 crossbars.  First-level
crossbar ``F(s, j)`` offers one port to each of the first 12 CUs;
third-level crossbar ``T(s, j)`` offers one port to each of the last 5
CUs; middle crossbar ``M(s, j)`` bridges its first- and third-level
partners (``F(s,j) - M(s,j) - T(s,j)``), "allowing for communication
between the two sets of CUs".

**Uplink wiring.**  Lower crossbar ``i`` of every CU has 4 uplink ports
``k = 0..3``; uplink ``k`` runs to inter-CU switch ``s = (4i + k) mod 8``
at port ``j = i // 2`` of the appropriate level (F for the first 12 CUs,
T for the last 5).  Consequences, all checked against the paper:

* each CU sends exactly 12 uplinks to each of the 8 switches (96 total);
* even-indexed lower crossbars reach switches 0-3, odd ones 4-7, so a
  given ``F(s, j)``/``T(s, j)`` port maps back to exactly one lower
  crossbar per CU (``i = 2j`` or ``2j + 1``);
* two nodes in different CUs are 3 crossbar-hops apart iff they sit on
  same-index lower crossbars — exactly Table I's 88-destination row.

The overall design supports up to 24 CUs (12 + 12 ports per F level);
Roadrunner populates 17.
"""

from __future__ import annotations

import networkx as nx

from repro.network.crossbar import XbarId

__all__ = [
    "INTERCU_SWITCHES",
    "XBARS_PER_LEVEL",
    "FIRST_SIDE_CUS",
    "build_intercu_switch",
    "wire_cu_uplinks",
    "uplink_target",
    "uplink_edges",
]

INTERCU_SWITCHES = 8
XBARS_PER_LEVEL = 12
#: CUs 0-11 hang off the first level, CUs 12+ off the third level.
FIRST_SIDE_CUS = 12


def build_intercu_switch(graph: nx.Graph, s: int) -> None:
    """Add inter-CU switch ``s``'s 36 crossbars and F-M-T chains."""
    for j in range(XBARS_PER_LEVEL):
        first = XbarId("F", s, j)
        middle = XbarId("M", s, j)
        third = XbarId("T", s, j)
        graph.add_nodes_from([first, middle, third], kind="xbar")
        graph.add_edge(first, middle, kind="inter-cu")
        graph.add_edge(middle, third, kind="inter-cu")


def uplink_target(cu: int, lower_xbar: int, uplink: int) -> XbarId:
    """The inter-CU crossbar reached by ``uplink`` (0-3) of lower
    crossbar ``lower_xbar`` in CU ``cu``."""
    if not 0 <= uplink < 4:
        raise ValueError(f"uplink index {uplink} out of range 0-3")
    if not 0 <= lower_xbar < 24:
        raise ValueError(f"lower crossbar {lower_xbar} out of range 0-23")
    s = (4 * lower_xbar + uplink) % INTERCU_SWITCHES
    j = lower_xbar // 2
    level = "F" if cu < FIRST_SIDE_CUS else "T"
    return XbarId(level, s, j)


def wire_cu_uplinks(graph: nx.Graph, cu: int) -> None:
    """Connect all 96 uplinks of CU ``cu`` to the inter-CU switches."""
    for i in range(24):
        low = XbarId("L", cu, i)
        for k in range(4):
            graph.add_edge(low, uplink_target(cu, i, k), kind="uplink")


def uplink_edges(cu: int) -> list[tuple[XbarId, XbarId]]:
    """CU ``cu``'s 96 uplink edges as ``(lower, inter-CU)`` vertex pairs.

    These are the edges :func:`wire_cu_uplinks` adds — the inter-CU
    links a fault study fails one at a time (degraded hop census, lost
    bisection bandwidth), in deterministic ``(lower crossbar, uplink)``
    order.
    """
    return [
        (XbarId("L", cu, i), uplink_target(cu, i, k))
        for i in range(24)
        for k in range(4)
    ]
