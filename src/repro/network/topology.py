"""The assembled Roadrunner fabric: 17 CU switches + 8 inter-CU switches.

:class:`RoadrunnerTopology` owns the port-by-port networkx graph and the
node-naming scheme.  Compute nodes are addressed both globally
(``0 .. 3059``) and as ``(cu, local)`` pairs; CU membership follows the
paper (CU *c* holds nodes ``180c .. 180c+179``).
"""

from __future__ import annotations

from functools import cached_property

import networkx as nx

from repro.network.crossbar import XbarId
from repro.network.cu_switch import (
    COMPUTE_NODES_PER_CU,
    IO_NODES_PER_CU,
    attach_cu_nodes,
    build_cu_switch,
    lower_xbar_of_local_node,
)
from repro.network.intercu import (
    FIRST_SIDE_CUS,
    INTERCU_SWITCHES,
    build_intercu_switch,
    wire_cu_uplinks,
)

__all__ = ["NodeId", "RoadrunnerTopology", "DEFAULT_CU_COUNT"]

DEFAULT_CU_COUNT = 17

#: A compute node is globally identified by an int in [0, cu_count*180).
NodeId = int


class RoadrunnerTopology:
    """The full Roadrunner InfiniBand fabric.

    Parameters
    ----------
    cu_count:
        Number of Connected Units (17 for Roadrunner; the design allows
        up to 24, with CUs beyond index 11 hanging off the third level
        of the inter-CU switches).
    include_io:
        Whether to attach each CU's 12 Panasas I/O nodes.
    """

    def __init__(self, cu_count: int = DEFAULT_CU_COUNT, include_io: bool = True):
        if not 1 <= cu_count <= 24:
            raise ValueError(f"cu_count must be in 1..24, got {cu_count}")
        self.cu_count = cu_count
        self.include_io = include_io
        self.nodes_per_cu = COMPUTE_NODES_PER_CU

    @property
    def node_count(self) -> int:
        """Total compute nodes (3,060 for the full system)."""
        return self.cu_count * self.nodes_per_cu

    @cached_property
    def graph(self) -> nx.Graph:
        """The port-by-port fabric graph (built lazily)."""
        g = nx.Graph()
        for cu in range(self.cu_count):
            build_cu_switch(g, cu)
            attach_cu_nodes(g, cu)
            if not self.include_io:
                g.remove_nodes_from([n for n in list(g) if n[0] == "io"])
        if self.cu_count > 1:
            for s in range(INTERCU_SWITCHES):
                build_intercu_switch(g, s)
            for cu in range(self.cu_count):
                wire_cu_uplinks(g, cu)
        return g

    # -- addressing ---------------------------------------------------------
    def split(self, node: NodeId) -> tuple[int, int]:
        """Global node id -> ``(cu, local)``."""
        if not 0 <= node < self.node_count:
            raise ValueError(f"node {node} out of range 0..{self.node_count - 1}")
        return divmod(node, self.nodes_per_cu)

    def join(self, cu: int, local: int) -> NodeId:
        """``(cu, local)`` -> global node id."""
        if not 0 <= cu < self.cu_count:
            raise ValueError(f"CU {cu} out of range")
        if not 0 <= local < self.nodes_per_cu:
            raise ValueError(f"local index {local} out of range")
        return cu * self.nodes_per_cu + local

    def graph_node(self, node: NodeId) -> tuple:
        """The graph vertex for a global compute-node id."""
        cu, local = self.split(node)
        return ("node", cu, local)

    def lower_xbar(self, node: NodeId) -> XbarId:
        """The lower crossbar a compute node hangs off."""
        cu, local = self.split(node)
        return XbarId("L", cu, lower_xbar_of_local_node(local))

    def same_side(self, cu_a: int, cu_b: int) -> bool:
        """Whether two CUs hang off the same level of the inter-CU
        switches (both among the first 12, or both among the rest)."""
        return (cu_a < FIRST_SIDE_CUS) == (cu_b < FIRST_SIDE_CUS)

    # -- structural invariants -----------------------------------------------
    def port_usage(self) -> dict[XbarId, int]:
        """Degree (ports in use) of every crossbar in the fabric."""
        return {
            v: self.graph.degree(v)
            for v in self.graph
            if isinstance(v, XbarId)
        }

    def validate_ports(self) -> None:
        """Assert no crossbar exceeds its 24 ports."""
        from repro.network.crossbar import CROSSBAR_PORTS

        for xbar, used in self.port_usage().items():
            if used > CROSSBAR_PORTS:
                raise AssertionError(f"{xbar} uses {used} > {CROSSBAR_PORTS} ports")
