"""The Sweep3D input-read path (paper §V-C).

"Roadrunner does not expose the parallel filesystem to the PPEs, so
our Sweep3D invokes an RPC function on the Opteron to read and return
the input file."  This module wires that exact path on the DES: an SPE
calls ``read_input`` on the Opteron tier; the Opteron charges the PFS
read time and ships the bytes back down over DaCS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.dacs import DACS_MEASURED
from repro.comm.rpc import RpcEndpoint
from repro.io.panasas import PanasasModel
from repro.sim.engine import Simulator

__all__ = ["SweepInputReader"]


@dataclass
class SweepInputReader:
    """DES program: an SPE reading the input deck through the Opteron."""

    sim: Simulator
    pfs: PanasasModel = field(default_factory=PanasasModel)
    #: the deck's on-disk contents
    contents: bytes = b"it=5 jt=5 kt=400 mk=20 mmi=6\n"

    def __post_init__(self):
        self.rpc = RpcEndpoint(self.sim)
        opteron = self.rpc.add_target("opteron", DACS_MEASURED)
        opteron.register(
            "read_input",
            handler=lambda: self.contents,
            execution_time=lambda: self.pfs.read_time(len(self.contents)),
        )

    def read_from_spe(self):
        """Generator: the SPE-side call; returns the file bytes."""
        data = yield from self.rpc.call("opteron", "read_input")
        return data

    def run(self) -> tuple[bytes, float]:
        """Execute the read; returns (contents, elapsed seconds)."""
        out: dict = {}

        def reader(sim):
            out["data"] = yield from self.read_from_spe()

        self.sim.process(reader(self.sim), name="spe-reader")
        self.sim.run()
        return out["data"], self.sim.now
