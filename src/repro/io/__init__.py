"""The I/O subsystem: Panasas parallel filesystem behind 12 I/O nodes
per CU (paper §II-B), reached from the SPEs via Opteron RPC (§V-C).
"""

from repro.io.panasas import PanasasModel, IoNodeSpec
from repro.io.filepath import SweepInputReader

__all__ = ["PanasasModel", "IoNodeSpec", "SweepInputReader"]
