"""Panasas parallel-filesystem model (paper §II-B).

Each CU connects 12 I/O nodes to the Panasas PFS through the same
Voltaire switch as the compute nodes (4 on the mixed lower crossbar,
8 on the dedicated I/O crossbar).  The model captures the aggregate
streaming capability and how it divides among concurrent clients —
enough to answer the questions a Roadrunner application asks: how long
to read an input deck, how long to write a checkpoint of some fraction
of memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.cu_switch import IO_NODES_PER_CU
from repro.units import GB_S, MB_S, MS

__all__ = ["IoNodeSpec", "PanasasModel"]


@dataclass(frozen=True)
class IoNodeSpec:
    """One I/O node's streaming capability."""

    #: sustained rate to the PFS per I/O node, B/s (IB-attached, but the
    #: disk shelves bound it well below the 2 GB/s link)
    bandwidth: float = 400 * MB_S
    #: per-request software latency (metadata + striping setup)
    request_latency: float = 2 * MS

    def __post_init__(self):
        if self.bandwidth <= 0 or self.request_latency < 0:
            raise ValueError("invalid I/O node parameters")


@dataclass(frozen=True)
class PanasasModel:
    """The file system as seen by one or more CUs."""

    cu_count: int = 17
    node: IoNodeSpec = IoNodeSpec()

    def __post_init__(self):
        if self.cu_count < 1:
            raise ValueError("cu_count must be >= 1")

    @property
    def io_node_count(self) -> int:
        return self.cu_count * IO_NODES_PER_CU

    @property
    def aggregate_bandwidth(self) -> float:
        """Full-system streaming rate, B/s."""
        return self.io_node_count * self.node.bandwidth

    def read_time(self, size_bytes: int, clients: int = 1) -> float:
        """Time for ``clients`` concurrent readers to each pull
        ``size_bytes`` (striped across all I/O nodes; aggregate-limited
        once clients saturate the shelves)."""
        if size_bytes < 0 or clients < 1:
            raise ValueError("need size >= 0 and clients >= 1")
        if size_bytes == 0:
            return 0.0
        per_client = min(
            self.node.bandwidth * self.io_node_count / clients,
            # a single client cannot stripe wider than the I/O nodes
            self.aggregate_bandwidth,
        )
        return self.node.request_latency + size_bytes / per_client

    def checkpoint_time(self, memory_fraction: float = 0.5) -> float:
        """Time to write ``memory_fraction`` of system memory — the
        classic petascale checkpoint question."""
        if not 0 < memory_fraction <= 1:
            raise ValueError("memory_fraction must be in (0, 1]")
        from repro.hardware.node import TRIBLADE
        from repro.network.cu_switch import COMPUTE_NODES_PER_CU

        total_memory = TRIBLADE.memory_bytes * self.cu_count * COMPUTE_NODES_PER_CU
        payload = memory_fraction * total_memory
        return self.node.request_latency + payload / self.aggregate_bandwidth
