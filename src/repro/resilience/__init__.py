"""Fault injection, retry transports, rerouting, and checkpoint models.

Roadrunner's 3,060 hybrid nodes are exactly the scale at which component
failure becomes a first-order term in delivered performance.  This
package adds the failure axis the paper's measurements assume away:

:mod:`repro.resilience.health`
    :class:`FabricHealth` — the shared ledger of failed nodes and links
    that the injector writes and every transport/routing layer reads.
:mod:`repro.resilience.faults`
    :class:`FaultInjector` — schedules node/link failures into a
    :class:`~repro.sim.engine.Simulator` from seeded MTBF draws and
    delivers them to victim processes via ``Process.interrupt``.
:mod:`repro.resilience.policy`
    :class:`RetryPolicy` — the one seeded exponential-backoff schedule
    shared by SimMPI retransmission and the campaign worker pool's
    crash retries (delays are pure functions of ``(seed, attempt)``);
    :class:`DeliveryPolicy` — retry/timeout/exponential-backoff
    semantics for :class:`~repro.comm.mpi.SimMPI`.  The default policy
    is today's perfect fabric; ``SimMPI`` without a policy is untouched
    (zero overhead, asserted by ``benchmarks/perf/perf_resilience.py``).
:mod:`repro.resilience.checkpoint`
    :class:`CheckpointModel` — the Young/Daly optimal-interval
    checkpoint/restart cost model, applied to the full-machine sweep
    by :func:`sweep_failure_study` (``python -m repro resilience``;
    ``--correlated`` prices power-domain burst failures, and
    ``CheckpointModel.from_pfs`` derives the write cost from the
    Panasas model).
:mod:`repro.resilience.recovery`
    :func:`run_with_recovery` — the end-to-end loop: a distributed
    sweep survives injected faults by re-placing around the health
    ledger, restoring from its last checkpoint, and continuing;
    :func:`placement_penalty` replays identical fault plans under
    failure-aware vs. naive placement (``examples/failure_study.py``).

Degraded-fabric rerouting lives with the rest of the routing code in
:mod:`repro.network.routing` (``degraded_route`` / ``degraded_hop_census``)
and :mod:`repro.network.loadmap` (``degraded_bisection_summary`` /
``degraded_link_loads``); shrink-and-continue collectives live with the
communicator in :mod:`repro.comm.membership`.
"""

from repro.resilience.checkpoint import CheckpointModel, sweep_failure_study
from repro.resilience.faults import Fault, FaultInjector, checkpoint_clock
from repro.resilience.health import FabricHealth, edge_key
from repro.resilience.policy import DeliveryPolicy, RetryPolicy
from repro.resilience.recovery import (
    RecoveryOutcome,
    draw_fault_plan,
    placement_penalty,
    run_with_recovery,
)

__all__ = [
    "CheckpointModel",
    "DeliveryPolicy",
    "FabricHealth",
    "Fault",
    "FaultInjector",
    "RecoveryOutcome",
    "RetryPolicy",
    "checkpoint_clock",
    "draw_fault_plan",
    "edge_key",
    "placement_penalty",
    "run_with_recovery",
    "sweep_failure_study",
]
