"""The shared health ledger of a degraded machine.

:class:`FabricHealth` records which nodes and which fabric links are
currently failed.  It is deliberately passive — pure bookkeeping with no
simulator dependency — so one instance can be shared by all layers that
need a consistent view of the machine's state:

* the :class:`~repro.resilience.faults.FaultInjector` writes failures
  and repairs into it at simulated times;
* a :class:`~repro.resilience.policy.DeliveryPolicy` reads it per send
  attempt (a message to or from a failed node is never delivered);
* :class:`~repro.network.simfabric.ContendedFabric` consults it before
  moving payload bytes through a NIC;
* the degraded-routing functions in :mod:`repro.network.routing` take
  its ``failed_links`` snapshot to recompute routes and hop censuses.

Links are identified by the same graph-vertex pairs
:class:`~repro.network.topology.RoadrunnerTopology` wires — either two
:class:`~repro.network.crossbar.XbarId` crossbars or a ``("node", cu,
local)`` endpoint and its lower crossbar — canonicalized by
:func:`edge_key` so direction never matters.
"""

from __future__ import annotations

from typing import Hashable, Iterable

__all__ = ["FabricHealth", "edge_key"]


def edge_key(u: Hashable, v: Hashable) -> tuple:
    """Canonical undirected key of the link between vertices ``u``, ``v``.

    Vertices are the topology graph's tuples (``XbarId`` or ``("node",
    cu, local)``); tuple comparison makes the sorted pair a stable key.
    """
    return (u, v) if tuple(u) <= tuple(v) else (v, u)


class FabricHealth:
    """Mutable failed-node / failed-link state of the machine.

    All queries are O(1) set lookups; ``failed_links`` returns a
    frozenset snapshot suitable as an ``lru_cache`` key for the
    degraded-routing functions.
    """

    __slots__ = ("_failed_nodes", "_failed_links")

    def __init__(self):
        self._failed_nodes: set[int] = set()
        self._failed_links: set[tuple] = set()

    # -- nodes -------------------------------------------------------------
    def fail_node(self, node: int) -> None:
        """Mark ``node`` (global id) failed.  Idempotent."""
        self._failed_nodes.add(node)

    def repair_node(self, node: int) -> None:
        """Return ``node`` to service.  Repairing a healthy node is a no-op."""
        self._failed_nodes.discard(node)

    def node_ok(self, node: int) -> bool:
        """Whether ``node`` is currently in service."""
        return node not in self._failed_nodes

    @property
    def failed_nodes(self) -> frozenset[int]:
        """Snapshot of the currently failed node ids."""
        return frozenset(self._failed_nodes)

    # -- links -------------------------------------------------------------
    def fail_link(self, u: Hashable, v: Hashable) -> None:
        """Mark the undirected link ``u — v`` failed.  Idempotent."""
        self._failed_links.add(edge_key(u, v))

    def repair_link(self, u: Hashable, v: Hashable) -> None:
        """Return the link to service."""
        self._failed_links.discard(edge_key(u, v))

    def link_ok(self, u: Hashable, v: Hashable) -> bool:
        """Whether the undirected link ``u — v`` is in service."""
        return edge_key(u, v) not in self._failed_links

    @property
    def failed_links(self) -> frozenset[tuple]:
        """Snapshot of the failed links (canonical edge keys) — the
        form the degraded-routing functions cache on."""
        return frozenset(self._failed_links)

    # -- aggregate ---------------------------------------------------------
    def fail_links(self, edges: Iterable[tuple]) -> None:
        """Fail several ``(u, v)`` links at once."""
        for u, v in edges:
            self.fail_link(u, v)

    @property
    def degraded(self) -> bool:
        """True once anything at all has failed."""
        return bool(self._failed_nodes or self._failed_links)

    def reset(self) -> None:
        """Return the whole machine to service."""
        self._failed_nodes.clear()
        self._failed_links.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FabricHealth {len(self._failed_nodes)} nodes, "
            f"{len(self._failed_links)} links failed>"
        )
