"""Recovery orchestration: run a distributed sweep *through* faults.

:func:`run_with_recovery` is the driver that closes the resilience
loop.  It runs :class:`~repro.sweep3d.parallel.ParallelSweep` with the
survivability knobs on (bounded receives, health-aware delivery, a
fault hook), and when a mid-iteration fault aborts the run it

1. consults the shared :class:`~repro.resilience.health.FabricHealth`
   ledger for what just died,
2. **re-places** the decomposition around the damage — failure-aware
   (same-CU spares first, :func:`~repro.sweep3d.placement.
   failure_aware_locations`) or the locality-blind baseline
   (:func:`~repro.sweep3d.placement.naive_respawn_locations`),
3. restores from the last checkpoint (iterations are checkpointed
   every ``checkpoint_interval`` sweeps at the PFS-derived write cost)
   and continues, charging the restart and rework to the wall clock.

Everything is a pure function of the fault plan, which is itself a
pure function of its seed (:func:`draw_fault_plan`), so two recovery
runs with the same arguments produce bit-identical wall clocks, retry
counts, and recovery logs — the property the campaign bands in
``BENCH_campaign.json`` rely on.

The measured artifact is :func:`placement_penalty`: the same fault
plan replayed under both placement policies, yielding the iteration-
time penalty of naive re-placement — the number the ISSUE's campaign
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.mpi import Location
from repro.resilience.faults import FaultInjector
from repro.resilience.health import FabricHealth
from repro.resilience.policy import DeliveryPolicy
from repro.sim.trace import NULL_TRACER
from repro.sweep3d.decomposition import Decomposition2D
from repro.sweep3d.input import SweepInput
from repro.sweep3d.parallel import ParallelSweep, SweepAborted
from repro.sweep3d.placement import (
    failure_aware_locations,
    hop_aware_cell_fabric,
    naive_respawn_locations,
    spe_locations,
)

__all__ = [
    "draw_fault_plan",
    "RecoveryEvent",
    "RecoveryOutcome",
    "run_with_recovery",
    "placement_penalty",
]


def draw_fault_plan(
    seed: int,
    nodes: tuple[int, ...] | list[int],
    mtbf: float,
    horizon: float,
) -> tuple[tuple[float, int], ...]:
    """A seeded, sorted timetable of permanent node failures.

    Per-node exponential inter-arrival draws (one ``random.Random
    (seed)`` stream, consumed in node order), truncated at ``horizon``
    — the same convention as ``FaultInjector.schedule_node_faults``,
    but materialized up front so the *identical* plan can be replayed
    under different placement policies.
    """
    import random

    if mtbf <= 0 or horizon <= 0:
        raise ValueError("mtbf and horizon must be positive")
    rng = random.Random(seed)
    rate = 1.0 / mtbf
    plan = []
    for node in nodes:
        t = rng.expovariate(rate)
        if t < horizon:
            plan.append((t, node))
    return tuple(sorted(plan))


@dataclass(frozen=True)
class RecoveryEvent:
    """One entry of the recovery log."""

    #: accumulated wall-clock seconds when the event happened
    time: float
    #: ``"fault"``, ``"restart"``, or ``"complete"``
    kind: str
    #: event details (failed node, attempt number, resume iteration...)
    detail: dict = field(default_factory=dict)


@dataclass
class RecoveryOutcome:
    """What a recovered campaign cost."""

    #: the final attempt's sweep result (flux of the completed run)
    result: object
    #: total simulated seconds including rework, checkpoints, restarts
    wallclock: float
    #: useful iterations delivered (== requested iterations)
    iterations: int
    #: runs started (1 = no faults hit)
    attempts: int
    #: faults that actually struck the job
    faults_hit: int
    #: message retransmissions across all attempts
    retries: int
    #: checkpoints written
    checkpoints: int
    #: iterations recomputed after restores
    rework_iterations: int
    #: the event log, in order
    log: list[RecoveryEvent] = field(default_factory=list)

    def slowdown(self, fault_free_wallclock: float) -> float:
        """Wall clock relative to the same run on a healthy machine."""
        if fault_free_wallclock <= 0:
            raise ValueError("fault_free_wallclock must be positive")
        return self.wallclock / fault_free_wallclock


def _place(policy: str, decomp, health, base, machine_nodes):
    if policy == "aware":
        return failure_aware_locations(
            decomp, health, base=base, machine_nodes=machine_nodes
        )
    if policy == "naive":
        return naive_respawn_locations(
            decomp, health, base=base, machine_nodes=machine_nodes
        )
    raise ValueError(f"unknown placement policy {policy!r}")


def run_with_recovery(
    inp: SweepInput,
    decomp: Decomposition2D,
    grind_time: float,
    fault_plan: tuple[tuple[float, int], ...] = (),
    *,
    iterations: int = 8,
    placement: str = "aware",
    fabric=None,
    base_locations: list[Location] | None = None,
    machine_nodes: int = 3060,
    checkpoint_interval: int = 2,
    checkpoint_time: float = 0.0,
    restart_time: float = 0.0,
    recv_timeout: float | None = None,
    max_restarts: int = 8,
    tracer=None,
) -> RecoveryOutcome:
    """Deliver ``iterations`` sweeps despite the fault plan.

    ``fault_plan`` is absolute-time ``(t, node)`` permanent failures
    (see :func:`draw_fault_plan`); each attempt injects the remaining
    ones into its private simulator at the proper offsets.  A fault on
    a node hosting ranks kills those rank processes; the survivors'
    bounded receives detect the loss and abort the attempt, the driver
    re-places over the health ledger with the ``placement`` policy
    (``"aware"`` or ``"naive"``), restores to the last multiple of
    ``checkpoint_interval`` iterations, and continues.  Checkpoint
    writes cost ``checkpoint_time`` each (derive it from the PFS via
    ``CheckpointModel.from_pfs`` for the full-machine number) and every
    restart costs ``restart_time``.

    Fully deterministic: the outcome is a pure function of the
    arguments.  With an empty plan the wall clock equals the plain
    ``ParallelSweep.run`` time plus the checkpoint writes, and with
    ``checkpoint_time=0`` it is *exactly* the seed timeline.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if checkpoint_interval < 1:
        raise ValueError("checkpoint_interval must be >= 1")
    if checkpoint_time < 0 or restart_time < 0:
        raise ValueError("checkpoint_time and restart_time must be >= 0")
    health = FabricHealth()
    base = list(base_locations) if base_locations else spe_locations(decomp)
    fabric = fabric if fabric is not None else hop_aware_cell_fabric()
    if recv_timeout is None:
        # Generous failure-detection bound: longer than any legitimate
        # wavefront-fill wait (a full iteration), so a timeout always
        # means a dead partner, never a slow pipeline.
        probe = ParallelSweep(
            inp, decomp, grind_time, fabric, locations=base
        ).run(iterations=1)
        recv_timeout = 2.0 * probe.iteration_time

    plan = sorted(fault_plan)
    log: list[RecoveryEvent] = []
    wallclock = 0.0
    done = 0                  # iterations durably delivered (checkpointed)
    computed_total = 0        # iterations computed, incl. lost rework
    checkpoints = 0
    attempts = 0
    faults_hit = 0
    retries = 0
    result = None

    while True:
        attempts += 1
        if attempts > max_restarts + 1:
            raise RuntimeError(
                f"recovery gave up after {max_restarts} restarts "
                f"({done}/{iterations} iterations delivered)"
            )
        locations = _place(placement, decomp, health, base, machine_nodes)
        remaining = iterations - done
        pending = [(t, node) for t, node in plan if t >= wallclock]

        def hook(sim, procs, locs, _pending=pending, _t0=wallclock):
            injector = FaultInjector(
                sim, health=health,
                tracer=tracer if tracer is not None else NULL_TRACER,
            )
            by_node: dict[int, list] = {}
            for proc, loc in zip(procs, locs):
                by_node.setdefault(loc.node, []).append(proc)
            for t, node in _pending:
                for proc in by_node.get(node, ()):
                    injector.watch(node, proc)
                injector.fail_node_at(t - _t0, node)

        sweep = ParallelSweep(
            inp, decomp, grind_time, fabric, locations=locations,
            tracer=tracer,
            delivery=DeliveryPolicy(health=health),
            recv_timeout=recv_timeout,
            fault_hook=hook,
        )
        try:
            result = sweep.run(iterations=remaining)
        except SweepAborted as abort:
            faults_hit += sum(
                1 for t, _node in pending if t - wallclock <= abort.sim_time
            )
            retries += abort.retries
            computed_total += abort.completed_iterations
            # checkpoints taken during the attempt, before the abort
            new_ckpt = (done + abort.completed_iterations) // checkpoint_interval
            written = new_ckpt - checkpoints
            checkpoints = new_ckpt
            resume = new_ckpt * checkpoint_interval
            wallclock += abort.sim_time + written * checkpoint_time + restart_time
            log.append(RecoveryEvent(
                wallclock, "restart",
                {
                    "attempt": attempts,
                    "failed_nodes": sorted(health.failed_nodes),
                    "resume_iteration": resume,
                    "lost_iterations": done + abort.completed_iterations - resume,
                },
            ))
            done = resume
            continue
        computed_total += remaining
        new_ckpt = iterations // checkpoint_interval
        written = new_ckpt - checkpoints
        checkpoints = new_ckpt
        wallclock += result.iteration_time * remaining + written * checkpoint_time
        retries += result.retries
        done = iterations
        log.append(RecoveryEvent(
            wallclock, "complete",
            {"attempt": attempts, "iterations": iterations},
        ))
        break

    return RecoveryOutcome(
        result=result,
        wallclock=wallclock,
        iterations=iterations,
        attempts=attempts,
        faults_hit=faults_hit,
        retries=retries,
        checkpoints=checkpoints,
        rework_iterations=computed_total - iterations,
        log=log,
    )


def placement_penalty(
    inp: SweepInput,
    decomp: Decomposition2D,
    grind_time: float,
    seed: int,
    *,
    iterations: int = 8,
    mtbf: float | None = None,
    machine_nodes: int = 3060,
    checkpoint_interval: int = 2,
    checkpoint_time: float = 0.0,
    restart_time: float = 0.0,
) -> dict:
    """Failure-aware vs. naive placement under the *identical* fault
    plan — the campaign's headline comparison.

    Draws one seeded fault plan over the job's nodes (``mtbf`` defaults
    to one fault-free runtime, aggressive enough that most seeds hit),
    replays it through :func:`run_with_recovery` under both policies,
    and reports both wall clocks, the penalty ratio, and the fault-free
    baseline.  Same seed in, same numbers out, bit for bit.
    """
    base = spe_locations(decomp)
    fabric = hop_aware_cell_fabric()
    clean = ParallelSweep(inp, decomp, grind_time, fabric, locations=base)
    iteration_time = clean.run(iterations=1).iteration_time
    baseline = iteration_time * iterations
    horizon = baseline
    if mtbf is None:
        mtbf = baseline
    job_nodes = tuple(sorted({loc.node for loc in base}))
    plan = draw_fault_plan(seed, job_nodes, mtbf, horizon)
    outcomes = {}
    for policy in ("aware", "naive"):
        outcomes[policy] = run_with_recovery(
            inp, decomp, grind_time, plan,
            iterations=iterations, placement=policy, fabric=fabric,
            base_locations=base, machine_nodes=machine_nodes,
            checkpoint_interval=checkpoint_interval,
            checkpoint_time=checkpoint_time, restart_time=restart_time,
            recv_timeout=2.0 * iteration_time,
        )
    aware, naive = outcomes["aware"], outcomes["naive"]
    return {
        "seed": seed,
        "faults": len(plan),
        "fault_free_s": baseline,
        "aware_s": aware.wallclock,
        "naive_s": naive.wallclock,
        "aware_slowdown": aware.slowdown(baseline),
        "naive_slowdown": naive.slowdown(baseline),
        "penalty": naive.wallclock / aware.wallclock,
        "restarts": aware.attempts - 1,
        "retries": aware.retries,
        "rework_iterations": aware.rework_iterations,
    }
