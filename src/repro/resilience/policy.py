"""Retry/timeout/exponential-backoff delivery semantics for SimMPI.

A :class:`DeliveryPolicy` decides, per transmission attempt, whether a
message crosses the fabric, and how long a sender waits before
retransmitting.  :class:`~repro.comm.mpi.SimMPI` consults it only when
one is installed — ``SimMPI(..., delivery=None)`` (the default) keeps
the perfect-fabric fast path byte-for-byte identical to the historical
behavior, a property the perf smoke tier asserts
(``benchmarks/perf/perf_resilience.py``).

Two loss mechanisms compose:

* **Health.**  A message to or from a node marked failed in the shared
  :class:`~repro.resilience.health.FabricHealth` ledger is never
  delivered — retries burn out and the send raises
  :class:`~repro.comm.mpi.DeliveryError`.
* **Random loss.**  ``drop_probability`` models a lossy/flaky link;
  draws come from the policy's private seeded RNG, so runs are
  deterministic under the engine's determinism contract.

The default-constructed policy (``DeliveryPolicy()``) is *perfect*:
no health ledger, zero drop probability — installing it changes no
event timing, which ``tests/test_resilience.py`` pins against the
policy-free path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.resilience.health import FabricHealth
from repro.units import US

__all__ = ["DeliveryPolicy"]


@dataclass
class DeliveryPolicy:
    """Per-message delivery and retransmission policy.

    Parameters
    ----------
    drop_probability:
        Chance an attempt is lost in transit (0 = perfect link).
    ack_timeout:
        Seconds the sender waits for the (unmodeled) ack before the
        first retransmission.
    max_retries:
        Retransmissions attempted before the send raises
        :class:`~repro.comm.mpi.DeliveryError`.
    backoff:
        Multiplier applied to the wait per retry (exponential backoff).
    max_delay:
        Cap on any single backoff wait.
    seed:
        Seed of the private loss RNG.
    health:
        Optional shared failed-node ledger; when set, endpoints marked
        failed make every attempt a loss.
    """

    drop_probability: float = 0.0
    ack_timeout: float = 50 * US
    max_retries: int = 8
    backoff: float = 2.0
    max_delay: float = 0.01
    seed: int = 0
    health: FabricHealth | None = None
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_delay <= 0:
            raise ValueError("max_delay must be positive")
        self._rng = random.Random(self.seed)

    def delivered(self, src, dst, size: int) -> bool:
        """Whether one transmission attempt from ``src`` to ``dst``
        (``Location`` endpoints) reaches the destination mailbox."""
        health = self.health
        if health is not None and not (
            health.node_ok(src.node) and health.node_ok(dst.node)
        ):
            return False
        p = self.drop_probability
        if p <= 0.0:
            return True
        return self._rng.random() >= p

    def retry_delay(self, attempt: int) -> float:
        """Backoff wait before retransmission number ``attempt + 1``."""
        delay = self.ack_timeout * self.backoff**attempt
        return delay if delay < self.max_delay else self.max_delay

    def reset(self) -> "DeliveryPolicy":
        """Re-seed the loss RNG (for exact replay of a run); returns self."""
        self._rng = random.Random(self.seed)
        return self
