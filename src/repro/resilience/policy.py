"""Retry/timeout/exponential-backoff policies, shared across layers.

Two things live here:

* :class:`RetryPolicy` — the one seeded exponential-backoff schedule
  every retry loop in the repository draws from: SimMPI message
  retransmission (via :class:`DeliveryPolicy`) and the campaign worker
  pool's crash retries (:mod:`repro.campaign.workers`).  Delays are a
  pure function of ``(seed, attempt)`` — jitter comes from a hash of
  both, never from shared RNG state — so a retry *schedule* is
  deterministic per seed and independent of how many other retry loops
  are running (``tests/test_resilience.py`` property-tests this).
* :class:`DeliveryPolicy` — per-message delivery semantics for SimMPI:
  it decides, per transmission attempt, whether a message crosses the
  fabric, and delegates its backoff schedule to an embedded jitter-free
  :class:`RetryPolicy`.  :class:`~repro.comm.mpi.SimMPI` consults it
  only when one is installed — ``SimMPI(..., delivery=None)`` (the
  default) keeps the perfect-fabric fast path byte-for-byte identical
  to the historical behavior, a property the perf smoke tier asserts
  (``benchmarks/perf/perf_resilience.py``).

Two loss mechanisms compose:

* **Health.**  A message to or from a node marked failed in the shared
  :class:`~repro.resilience.health.FabricHealth` ledger is never
  delivered — retries burn out and the send raises
  :class:`~repro.comm.mpi.DeliveryError`.
* **Random loss.**  ``drop_probability`` models a lossy/flaky link;
  draws come from the policy's private seeded RNG, so runs are
  deterministic under the engine's determinism contract.

The default-constructed policy (``DeliveryPolicy()``) is *perfect*:
no health ledger, zero drop probability — installing it changes no
event timing, which ``tests/test_resilience.py`` pins against the
policy-free path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.resilience.health import FabricHealth
from repro.units import US

__all__ = ["RetryPolicy", "DeliveryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """A seeded, bounded exponential-backoff schedule.

    ``delay(attempt)`` is ``base_delay * backoff**attempt`` capped at
    ``max_delay``, optionally spread by ``jitter``: with ``jitter=j``
    the capped delay is scaled by a factor drawn uniformly from
    ``[1 - j, 1 + j]``.  The draw is seeded by ``(seed, attempt)``
    alone — no RNG state is carried between calls — so the full
    schedule is a pure function of the policy's fields: replayable,
    order-independent, and bounded by ``max_delay * (1 + jitter)``.

    ``max_retries`` is the retry *budget* the schedule serves; loops
    that consume a policy read it to know when to give up (attempt
    numbers run ``0 .. max_retries - 1``).
    """

    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.0
    max_retries: int = 3
    seed: int = 0

    def __post_init__(self):
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_delay <= 0:
            raise ValueError("max_delay must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def delay(self, attempt: int) -> float:
        """Backoff wait before retry number ``attempt + 1`` (seconds)."""
        delay = self.base_delay * self.backoff**attempt
        if delay >= self.max_delay:
            delay = self.max_delay
        if self.jitter:
            # Hash-seeded draw: deterministic per (seed, attempt), no
            # state shared with any other retry loop.  String seeds go
            # through CPython's sha512 path, stable across processes.
            u = random.Random(f"retry:{self.seed}:{attempt}").random()
            delay *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return delay

    def schedule(self, attempts: int | None = None) -> list[float]:
        """The full delay schedule for ``attempts`` retries (defaults
        to :attr:`max_retries`)."""
        n = self.max_retries if attempts is None else attempts
        return [self.delay(a) for a in range(n)]


@dataclass
class DeliveryPolicy:
    """Per-message delivery and retransmission policy.

    Parameters
    ----------
    drop_probability:
        Chance an attempt is lost in transit (0 = perfect link).
    ack_timeout:
        Seconds the sender waits for the (unmodeled) ack before the
        first retransmission.
    max_retries:
        Retransmissions attempted before the send raises
        :class:`~repro.comm.mpi.DeliveryError`.
    backoff:
        Multiplier applied to the wait per retry (exponential backoff).
    max_delay:
        Cap on any single backoff wait.
    seed:
        Seed of the private loss RNG.
    health:
        Optional shared failed-node ledger; when set, endpoints marked
        failed make every attempt a loss.
    """

    drop_probability: float = 0.0
    ack_timeout: float = 50 * US
    max_retries: int = 8
    backoff: float = 2.0
    max_delay: float = 0.01
    seed: int = 0
    health: FabricHealth | None = None
    _rng: random.Random = field(init=False, repr=False, compare=False)
    _retry: RetryPolicy = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_delay <= 0:
            raise ValueError("max_delay must be positive")
        self._rng = random.Random(self.seed)
        # Jitter-free: a retransmission schedule is part of the DES
        # timeline, which must stay bit-identical to the seed behavior.
        self._retry = RetryPolicy(
            base_delay=self.ack_timeout, backoff=self.backoff,
            max_delay=self.max_delay, jitter=0.0,
            max_retries=self.max_retries, seed=self.seed,
        )

    def delivered(self, src, dst, size: int) -> bool:
        """Whether one transmission attempt from ``src`` to ``dst``
        (``Location`` endpoints) reaches the destination mailbox."""
        health = self.health
        if health is not None and not (
            health.node_ok(src.node) and health.node_ok(dst.node)
        ):
            return False
        p = self.drop_probability
        if p <= 0.0:
            return True
        return self._rng.random() >= p

    def retry_delay(self, attempt: int) -> float:
        """Backoff wait before retransmission number ``attempt + 1``
        (delegates to the shared :class:`RetryPolicy` schedule)."""
        return self._retry.delay(attempt)

    def reset(self) -> "DeliveryPolicy":
        """Re-seed the loss RNG (for exact replay of a run); returns self."""
        self._rng = random.Random(self.seed)
        return self
