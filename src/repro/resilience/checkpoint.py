"""Checkpoint/restart cost model (Young's and Daly's optimal interval).

For a job with failure-free solve time ``T_s`` on a machine whose
aggregate mean time between failures is ``M``, writing a checkpoint
costs ``delta`` seconds and recovering from a failure costs ``R``
seconds plus the rework since the last checkpoint.  Daly's first-order
model (J. T. Daly, *A higher order estimate of the optimum checkpoint
interval for restart dumps*, FGCS 2006) gives the expected wall clock
when checkpointing every ``tau`` seconds of useful work:

    T_w(tau) = M * exp(R / M) * (exp((tau + delta) / M) - 1) * T_s / tau

which is minimized near Young's classic ``tau = sqrt(2 * delta * M)``;
Daly's higher-order expansion refines it.  The expected *slowdown*
``T_w / T_s`` is independent of ``T_s`` — it is a property of the
machine (MTBF) and the checkpoint system alone, which is what makes the
MTBF -> slowdown table of ``python -m repro resilience`` a machine
characteristic rather than a per-job number.

:func:`sweep_failure_study` applies the model to the paper's
full-machine Sweep3D run: iteration times come from the DES-validated
wavefront model (:mod:`repro.sweep3d.scaling`), node MTBFs are swept
over plausible hardware qualities, and the output is the expected
wall clock of a long sweep campaign on the 3,060-node machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CheckpointModel", "sweep_failure_study"]

#: hours -> seconds
_HOUR = 3600.0


@dataclass(frozen=True)
class CheckpointModel:
    """Young/Daly checkpoint/restart economics for one machine.

    Parameters
    ----------
    mtbf:
        Aggregate (whole-system) mean time between failures, seconds.
    checkpoint_time:
        ``delta`` — seconds to write one checkpoint.
    restart_time:
        ``R`` — seconds to restore state after a failure.
    """

    mtbf: float
    checkpoint_time: float
    restart_time: float = 0.0

    def __post_init__(self):
        if self.mtbf <= 0:
            raise ValueError("mtbf must be positive")
        if self.checkpoint_time <= 0:
            raise ValueError("checkpoint_time must be positive")
        if self.restart_time < 0:
            raise ValueError("restart_time must be >= 0")

    @classmethod
    def from_node_mtbf(
        cls,
        node_mtbf: float,
        nodes: int,
        checkpoint_time: float,
        restart_time: float = 0.0,
        burst_size: int = 1,
    ) -> "CheckpointModel":
        """Aggregate model of ``nodes`` components failing independently:
        the system MTBF is ``node_mtbf / nodes``.

        ``burst_size`` models correlated failures sharing a power
        domain (CU = 180, triblade pair = 2): nodes still fail at the
        per-node rate, but in bursts that take ``burst_size`` of them
        down per *event* — and checkpoint/restart pays per event, not
        per node, so the interrupting-event MTBF is ``node_mtbf *
        burst_size / nodes`` and the Daly optimum stretches by roughly
        ``sqrt(burst_size)``.  Matches the event rate of
        ``FaultInjector.schedule_correlated_node_faults``.
        """
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        if burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        return cls(
            mtbf=node_mtbf * burst_size / nodes,
            checkpoint_time=checkpoint_time,
            restart_time=restart_time,
        )

    @classmethod
    def from_pfs(
        cls,
        node_mtbf: float,
        nodes: int,
        pfs=None,
        memory_fraction: float = 0.5,
        restart_time: float = 0.0,
        burst_size: int = 1,
    ) -> "CheckpointModel":
        """:meth:`from_node_mtbf` with ``delta`` priced by the Panasas
        PFS model instead of guessed: the time to stream
        ``memory_fraction`` of system memory through the 204 I/O nodes
        (:meth:`repro.io.panasas.PanasasModel.checkpoint_time`)."""
        from repro.io.panasas import PanasasModel

        pfs = pfs if pfs is not None else PanasasModel()
        return cls.from_node_mtbf(
            node_mtbf=node_mtbf,
            nodes=nodes,
            checkpoint_time=pfs.checkpoint_time(memory_fraction),
            restart_time=restart_time,
            burst_size=burst_size,
        )

    # -- optimal intervals --------------------------------------------------
    def young_interval(self) -> float:
        """Young's first-order optimum: ``sqrt(2 * delta * M)``."""
        return math.sqrt(2.0 * self.checkpoint_time * self.mtbf)

    def daly_interval(self) -> float:
        """Daly's higher-order optimum.

        For ``delta < 2M``:

            tau = sqrt(2 delta M) * [1 + 1/3 sqrt(delta / 2M)
                                       + 1/9 (delta / 2M)] - delta

        and ``tau = M`` once checkpoints cost more than the machine
        stays up (``delta >= 2M`` — checkpointing can no longer help).
        """
        delta, M = self.checkpoint_time, self.mtbf
        if delta >= 2.0 * M:
            return M
        x = delta / (2.0 * M)
        return math.sqrt(2.0 * delta * M) * (
            1.0 + math.sqrt(x) / 3.0 + x / 9.0
        ) - delta

    # -- expected cost ------------------------------------------------------
    def expected_runtime(self, solve_time: float, interval: float | None = None) -> float:
        """Expected wall clock of a ``solve_time`` job, checkpointing
        every ``interval`` seconds (Daly-optimal when omitted)."""
        if solve_time < 0:
            raise ValueError("solve_time must be >= 0")
        return solve_time * self.expected_slowdown(interval)

    def expected_slowdown(self, interval: float | None = None) -> float:
        """Expected wall clock per unit of useful work (>= 1)."""
        tau = self.daly_interval() if interval is None else float(interval)
        if tau <= 0:
            raise ValueError("checkpoint interval must be positive")
        delta, M, R = self.checkpoint_time, self.mtbf, self.restart_time
        return (M / tau) * math.exp(R / M) * math.expm1((tau + delta) / M)

    def failure_free_overhead(self, interval: float | None = None) -> float:
        """Checkpoint tax alone (no failures): ``delta / tau``."""
        tau = self.daly_interval() if interval is None else float(interval)
        if tau <= 0:
            raise ValueError("checkpoint interval must be positive")
        return self.checkpoint_time / tau


def sweep_failure_study(
    node_mtbf_hours: tuple[float, ...] = (8760.0, 43800.0, 87600.0, 219000.0),
    checkpoint_time: float | None = None,
    restart_time: float = 300.0,
    nodes: int = 3060,
    campaign_hours: float = 24.0,
    config: str = "cell_measured",
    burst_size: int = 1,
) -> dict:
    """Expected cost of a full-machine sweep campaign under failures.

    For each per-node MTBF (default sweep: 1 / 5 / 10 / 25 years) the
    study aggregates to the system MTBF over ``nodes``, computes the
    Daly-optimal checkpoint interval, and prices a ``campaign_hours``
    block of sweep iterations — iteration time taken from the
    DES-validated wavefront model at full machine scale.

    ``checkpoint_time`` defaults to the Panasas PFS model's time to
    write half of system memory through the 204 I/O nodes (pass a
    scalar to override); ``burst_size > 1`` prices correlated power-
    domain failures (see :meth:`CheckpointModel.from_node_mtbf`) — the
    ``--correlated`` variant of the CLI artifact.

    Returns a JSON-friendly dict (the ``python -m repro resilience``
    artifact): per-MTBF rows plus the underlying sweep numbers.
    """
    from repro.sweep3d.scaling import ScalingStudy

    if checkpoint_time is None:
        from repro.io.panasas import PanasasModel

        checkpoint_time = PanasasModel().checkpoint_time(0.5)
    point = ScalingStudy().point(nodes, config)
    iteration_time = point.iteration_time
    solve_time = campaign_hours * _HOUR
    iterations = solve_time / iteration_time
    rows = []
    for node_mtbf_h in node_mtbf_hours:
        model = CheckpointModel.from_node_mtbf(
            node_mtbf=node_mtbf_h * _HOUR,
            nodes=nodes,
            checkpoint_time=checkpoint_time,
            restart_time=restart_time,
            burst_size=burst_size,
        )
        tau = model.daly_interval()
        slowdown = model.expected_slowdown(tau)
        rows.append(
            {
                "node_mtbf_hours": node_mtbf_h,
                "system_mtbf_hours": model.mtbf / _HOUR,
                "daly_interval_s": tau,
                "young_interval_s": model.young_interval(),
                "expected_slowdown": slowdown,
                "expected_wallclock_hours": slowdown * campaign_hours,
                "failure_free_overhead": model.failure_free_overhead(tau),
            }
        )
    return {
        "config": config,
        "nodes": nodes,
        "ranks": point.ranks,
        "iteration_time_s": iteration_time,
        "campaign_hours": campaign_hours,
        "iterations": iterations,
        "checkpoint_time_s": checkpoint_time,
        "restart_time_s": restart_time,
        "burst_size": burst_size,
        "rows": rows,
    }
