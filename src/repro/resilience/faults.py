"""Seeded fault injection for the discrete-event machine models.

A :class:`FaultInjector` turns MTBF parameters into concrete failure
times and plays them into a running :class:`~repro.sim.engine.Simulator`:
at each failure instant it flips the shared
:class:`~repro.resilience.health.FabricHealth` ledger, records a
``"fault"`` trace record, and — for node faults — delivers an
:class:`~repro.sim.engine.Interrupt` to every process registered as
living on the victim via ``Process.interrupt``, exactly the machinery
the engine already exposes for cross-process signalling.

Determinism
-----------
All random draws come from one ``random.Random(seed)`` consumed at
*schedule* time (before the simulator runs), so a given seed produces
one fixed fault timetable regardless of what the workload does; the
engine's determinism contract then makes the whole failure run
bit-reproducible (see ``tests/test_resilience.py`` and the conventions
of ``tests/test_determinism.py``).

Victims that want to survive a fault catch the interrupt::

    try:
        msg = yield from rank.recv()
    except Interrupt as stop:
        fault = stop.cause          # the Fault that hit this node
        ...checkpoint / drain / reroute...

Victims that don't catch it die; the injector marks killed processes
``defused`` so an uncaught fault terminates the victim without
aborting the whole simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Hashable, Iterable

from repro.resilience.health import FabricHealth
from repro.sim.engine import Process, Simulator
from repro.sim.trace import NULL_TRACER, Tracer

__all__ = ["Fault", "FaultInjector", "checkpoint_clock"]


@dataclass(frozen=True)
class Fault:
    """One injected failure (also the ``Interrupt.cause`` victims see)."""

    #: simulated time the component fails
    time: float
    #: ``"node"`` or ``"link"``
    kind: str
    #: global node id, or a canonical ``(u, v)`` link key
    target: Any
    #: seconds until the component returns to service (None: permanent)
    repair_after: float | None = None


class FaultInjector:
    """Schedules node/link failures into a simulator from MTBF draws.

    Parameters
    ----------
    sim:
        The simulator the faults play into.
    health:
        Shared ledger the faults flip; created if not supplied.
    seed:
        Seed of the injector's private RNG; equal seeds reproduce the
        exact fault timetable.
    tracer:
        Receives one ``"fault"`` record per failure and per repair.
    """

    def __init__(
        self,
        sim: Simulator,
        health: FabricHealth | None = None,
        seed: int = 0,
        tracer: Tracer = NULL_TRACER,
    ):
        self.sim = sim
        self.health = health if health is not None else FabricHealth()
        self.rng = random.Random(seed)
        self.tracer = tracer
        #: every Fault scheduled, in scheduling order (the timetable)
        self.faults: list[Fault] = []
        self._victims: dict[int, list[Process]] = {}

    # -- victim registry ---------------------------------------------------
    def watch(self, node: int, process: Process) -> None:
        """Register ``process`` as running on ``node``: a node fault
        interrupts it (kill semantics unless it catches the Interrupt)."""
        self._victims.setdefault(node, []).append(process)

    # -- explicit scheduling ----------------------------------------------
    def fail_node_at(
        self, time: float, node: int, repair_after: float | None = None
    ) -> Fault:
        """Schedule a node failure at an explicit simulated time."""
        fault = Fault(time=time, kind="node", target=node, repair_after=repair_after)
        self.faults.append(fault)
        self.sim.process(self._node_fault(fault), name=f"fault-node{node}")
        return fault

    def fail_link_at(
        self,
        time: float,
        u: Hashable,
        v: Hashable,
        repair_after: float | None = None,
    ) -> Fault:
        """Schedule a link failure at an explicit simulated time."""
        from repro.resilience.health import edge_key

        fault = Fault(
            time=time, kind="link", target=edge_key(u, v), repair_after=repair_after
        )
        self.faults.append(fault)
        self.sim.process(self._link_fault(fault), name="fault-link")
        return fault

    # -- MTBF-driven scheduling -------------------------------------------
    def schedule_node_faults(
        self,
        nodes: Iterable[int],
        mtbf: float,
        horizon: float,
        repair_after: float | None = None,
    ) -> int:
        """Draw exponential failure times for every node and schedule
        those landing before ``horizon``; returns how many were placed.

        ``mtbf`` is the per-node mean time between failures, so over
        ``n`` nodes the aggregate failure rate is ``n / mtbf`` — the
        scaling that makes failure a first-order term at 3,060 nodes.
        """
        if mtbf <= 0:
            raise ValueError("mtbf must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        placed = 0
        rate = 1.0 / mtbf
        for node in nodes:
            t = self.rng.expovariate(rate)
            while t < horizon:
                self.fail_node_at(t, node, repair_after=repair_after)
                placed += 1
                if repair_after is None:
                    break  # a permanent failure ends this node's history
                t += repair_after + self.rng.expovariate(rate)
        return placed

    def schedule_correlated_node_faults(
        self,
        nodes: Iterable[int],
        mtbf: float,
        horizon: float,
        domain_size: int = 180,
        repair_after: float | None = None,
    ) -> int:
        """Correlated failures by shared power domain: one exponential
        stream per domain, each event failing *every* node of the
        domain at once; returns node failures placed.

        Domains are keyed on ``node // domain_size`` — 180 groups a
        whole CU behind its power distribution, 2 pairs the triblades
        that share a chassis power supply.  Against the independent
        model of :meth:`schedule_node_faults`, the same per-node
        ``mtbf`` now produces ``domain_size``-fold *fewer* interrupting
        events (each taking down ``domain_size`` nodes), which is what
        shifts the Daly-optimal checkpoint interval — see
        ``CheckpointModel.from_node_mtbf(burst_size=...)``.
        """
        if mtbf <= 0:
            raise ValueError("mtbf must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if domain_size < 1:
            raise ValueError("domain_size must be >= 1")
        domains: dict[int, list[int]] = {}
        for node in nodes:
            domains.setdefault(node // domain_size, []).append(node)
        placed = 0
        rate = 1.0 / mtbf
        for domain in sorted(domains):
            members = sorted(domains[domain])
            t = self.rng.expovariate(rate)
            while t < horizon:
                for node in members:
                    self.fail_node_at(t, node, repair_after=repair_after)
                placed += len(members)
                if repair_after is None:
                    break  # permanent: the domain's history ends here
                t += repair_after + self.rng.expovariate(rate)
        return placed

    def schedule_link_faults(
        self,
        links: Iterable[tuple],
        mtbf: float,
        horizon: float,
        repair_after: float | None = None,
    ) -> int:
        """Exponential failure times over a set of ``(u, v)`` links."""
        if mtbf <= 0:
            raise ValueError("mtbf must be positive")
        placed = 0
        rate = 1.0 / mtbf
        for u, v in links:
            t = self.rng.expovariate(rate)
            while t < horizon:
                self.fail_link_at(t, u, v, repair_after=repair_after)
                placed += 1
                if repair_after is None:
                    break
                t += repair_after + self.rng.expovariate(rate)
        return placed

    # -- the fault processes ----------------------------------------------
    def _node_fault(self, fault: Fault):
        sim = self.sim
        yield sim.timeout(fault.time - sim.now)
        self.health.fail_node(fault.target)
        self.tracer.record(
            sim.now, "fault", fault.target,
            {"kind": "node", "action": "fail", "repair_after": fault.repair_after},
        )
        for victim in self._victims.get(fault.target, ()):
            if victim.is_alive:
                # Defuse first: a victim that does not catch the
                # Interrupt dies quietly instead of aborting the run.
                victim.defused = True
                victim.interrupt(fault)
        if fault.repair_after is not None:
            yield sim.timeout(fault.repair_after)
            self.health.repair_node(fault.target)
            self.tracer.record(
                sim.now, "fault", fault.target,
                {"kind": "node", "action": "repair"},
            )

    def _link_fault(self, fault: Fault):
        sim = self.sim
        yield sim.timeout(fault.time - sim.now)
        u, v = fault.target
        self.health.fail_link(u, v)
        self.tracer.record(
            sim.now, "fault", fault.target,
            {"kind": "link", "action": "fail", "repair_after": fault.repair_after},
        )
        if fault.repair_after is not None:
            yield sim.timeout(fault.repair_after)
            self.health.repair_link(u, v)
            self.tracer.record(
                sim.now, "fault", fault.target,
                {"kind": "link", "action": "repair"},
            )


def checkpoint_clock(
    sim: Simulator,
    interval: float,
    cost: float,
    tracer: Tracer = NULL_TRACER,
    source: Any = "checkpoint",
    horizon: float | None = None,
):
    """A periodic checkpoint process (generator): every ``interval``
    simulated seconds it spends ``cost`` seconds writing and records a
    ``"checkpoint"`` trace.  Run it alongside a workload to surface the
    checkpoint overhead the :class:`~repro.resilience.checkpoint.
    CheckpointModel` accounts for analytically::

        sim.process(checkpoint_clock(sim, interval=60.0, cost=2.0,
                                     tracer=tracer, horizon=600.0))
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    if cost < 0:
        raise ValueError("cost must be >= 0")
    n = 0
    while horizon is None or sim.now + interval + cost <= horizon:
        yield sim.timeout(interval)
        start = sim.now
        if cost > 0:
            yield sim.timeout(cost)
        n += 1
        tracer.record(start, "checkpoint", source, {"n": n, "cost": cost})
