"""Command-line interface: regenerate any reproduced table or figure.

    python -m repro list              # what can be produced
    python -m repro table1            # print Table I
    python -m repro fig13 fig14       # several at once
    python -m repro all               # everything
    python -m repro profile sweep16   # sim-time profile of a canned run
    python -m repro campaign sweep    # seed-sweep through the job service

Subcommands with their own option surfaces register in
:data:`SUBCOMMANDS`; anything else is an artifact name for the default
reproduction command.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.core.artifacts import ARTIFACTS, available, produce

__all__ = ["main", "SUBCOMMANDS", "register_subcommand"]

#: the subcommand table: name -> (runner(argv) -> exit code, help line).
#: Dispatch happens on ``argv[0]`` before the artifact parser runs, so
#: each subcommand owns its full option surface.
SUBCOMMANDS: dict[str, tuple[Callable[[list[str]], int], str]] = {}


def register_subcommand(
    name: str, runner: Callable[[list[str]], int], help_text: str
) -> None:
    """Register ``name`` in the dispatch table (idempotent per name)."""
    SUBCOMMANDS[name] = (runner, help_text)


def _subcommand_epilog() -> str:
    if not SUBCOMMANDS:
        return ""
    width = max(len(name) for name in SUBCOMMANDS)
    lines = [
        f"  {name.ljust(width)}  {help_text}"
        for name, (_runner, help_text) in sorted(SUBCOMMANDS.items())
    ]
    return (
        "subcommands (each takes its own options; try "
        "'python -m repro <subcommand> --help'):\n" + "\n".join(lines)
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the tables and figures of 'Entering the Petaflop "
            "Era: The Architecture and Performance of Roadrunner' (SC 2008)"
        ),
        epilog=_subcommand_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        metavar="ARTIFACT",
        help="'list', 'all', 'validate', or any of: " + ", ".join(sorted(ARTIFACTS)),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of formatted text",
    )
    parser.add_argument(
        "--correlated",
        action="store_true",
        help=(
            "render the resilience artifact under correlated power-domain "
            "failures (shorthand for 'resilience-correlated')"
        ),
    )
    return parser


def _profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description=(
            "Run a canned scenario with the observability recorder "
            "attached and print its sim-time profile"
        ),
    )
    from repro.obs.scenarios import SCENARIOS

    parser.add_argument(
        "scenario",
        choices=sorted(SCENARIOS),
        help="which canned simulation to profile",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="also write a Chrome trace_event JSON file (Perfetto-loadable)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable summary instead of tables",
    )
    return parser


def _profile_main(argv: list[str]) -> int:
    """The ``profile`` subcommand: run a scenario, print its profile."""
    args = _profile_parser().parse_args(argv)
    from repro.obs import (
        format_profile,
        profile,
        run_scenario,
        to_summary,
        write_chrome_trace,
    )

    rec, sim_time = run_scenario(args.scenario)
    if args.trace:
        write_chrome_trace(rec, args.trace)
    if args.json:
        import json

        print(json.dumps(to_summary(rec, sim_time), indent=2, sort_keys=True))
    else:
        print(format_profile(
            profile(rec, sim_time), title=f"scenario: {args.scenario}"
        ))
        if args.trace:
            print(f"\nChrome trace written to {args.trace}")
    return 0


def _campaign_main(argv: list[str]) -> int:
    """The ``campaign`` subcommand (lazy import: the service pulls in
    the worker pool and store only when actually used)."""
    from repro.campaign.cli import main as campaign_main

    return campaign_main(argv)


def _perftest_main(argv: list[str]) -> int:
    """The ``perftest`` subcommand: the declarative perf/scaling test
    runner.  The suites live under ``benchmarks/`` next to the package
    tree, which is not importable from an installed ``repro`` alone —
    put the repo root on ``sys.path`` when it is present."""
    try:
        import benchmarks.framework  # noqa: F401
    except ImportError:
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        if not (repo_root / "benchmarks" / "framework").is_dir():
            print(
                "perftest needs the repository checkout (benchmarks/ "
                "not found next to src/)",
                file=sys.stderr,
            )
            return 2
        sys.path.insert(0, str(repo_root))
    from benchmarks.framework.cli import main as perftest_main

    return perftest_main(argv)


register_subcommand(
    "profile", _profile_main,
    "run a canned scenario under the obs recorder and print its profile",
)
register_subcommand(
    "perftest", _perftest_main,
    "run the declarative perf/scaling test suites (smoke or measured tier)",
)
register_subcommand(
    "campaign", _campaign_main,
    "submit a campaign of cached, deterministic jobs to the worker pool",
)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in SUBCOMMANDS:
        runner, _help = SUBCOMMANDS[argv[0]]
        try:
            return runner(list(argv[1:]))
        except BrokenPipeError:
            import os

            try:
                sys.stdout.close()
            except BrokenPipeError:
                os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
    args = _build_parser().parse_args(argv)
    requested = list(args.artifacts)
    if args.correlated:
        requested = [
            "resilience-correlated" if n == "resilience" else n
            for n in requested
        ]

    if args.json:
        import json

        from repro.core.data import DATA_PRODUCERS, produce_data

        if "all" in requested:
            requested = [n for n in DATA_PRODUCERS if n != "fig5"]
        unknown = [n for n in requested if n not in DATA_PRODUCERS]
        if unknown:
            print(f"no JSON producer for: {', '.join(unknown)}", file=sys.stderr)
            return 2
        payload = {name: produce_data(name) for name in requested}
        if len(requested) == 1:
            payload = payload[requested[0]]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    if "list" in requested:
        width = max(len(name) for name, _ in available())
        for name, desc in available():
            print(f"{name.ljust(width)}  {desc}")
        print(f"{'validate'.ljust(width)}  run every claim check (PASS/FAIL table)")
        return 0

    if "validate" in requested:
        from repro.validation.report import render_report, run_checks

        results = run_checks()
        print(render_report(results))
        return 0 if all(r.passed for r in results) else 1

    if "all" in requested:
        # fig4 and fig5 share a producer; emit it once.
        requested = [n for n in ARTIFACTS if n != "fig5"]

    unknown = [n for n in requested if n not in ARTIFACTS]
    if unknown:
        print(
            f"unknown artifact(s): {', '.join(unknown)}; "
            f"try 'python -m repro list'",
            file=sys.stderr,
        )
        return 2

    try:
        for i, name in enumerate(requested):
            if i:
                print()
            print(produce(name))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: not an error.
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0
