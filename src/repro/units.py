"""Unit constants and conversion helpers.

All quantities inside :mod:`repro` use SI base units:

* time in **seconds**
* data sizes in **bytes**
* rates in **bytes/second** or **flop/second**
* frequencies in **hertz**

The constants here exist so that model parameters can be written the way
the paper states them (``3.2 * GHZ``, ``25.6 * GB_S``, ``220 * NS``)
without sprinkling powers of ten through the code.  Bandwidths and flop
rates follow the paper's decimal convention (1 GB/s = 1e9 B/s); memory
*capacities* follow the binary convention (4 GB of DRAM = 4 * GIB bytes),
matching how vendors quoted each figure in 2008.
"""

from __future__ import annotations

# --- time ----------------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3
S = 1.0

# --- frequency -----------------------------------------------------------
HZ = 1.0
MHZ = 1e6
GHZ = 1e9

# --- decimal data sizes / rates (bandwidth, flops) -----------------------
KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12

KB_S = 1e3
MB_S = 1e6
GB_S = 1e9

KFLOPS = 1e3
MFLOPS = 1e6
GFLOPS = 1e9
TFLOPS = 1e12
PFLOPS = 1e15

# --- binary data sizes (memory capacity, caches, local store) ------------
KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4

# --- power ---------------------------------------------------------------
WATT = 1.0
KILOWATT = 1e3
MEGAWATT = 1e6


def to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds / US


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MS


def to_mb_s(bytes_per_second: float) -> float:
    """Convert B/s to MB/s (decimal)."""
    return bytes_per_second / MB_S


def to_gb_s(bytes_per_second: float) -> float:
    """Convert B/s to GB/s (decimal)."""
    return bytes_per_second / GB_S


def to_gflops(flops_per_second: float) -> float:
    """Convert flop/s to Gflop/s."""
    return flops_per_second / GFLOPS


def to_tflops(flops_per_second: float) -> float:
    """Convert flop/s to Tflop/s."""
    return flops_per_second / TFLOPS


def to_pflops(flops_per_second: float) -> float:
    """Convert flop/s to Pflop/s."""
    return flops_per_second / PFLOPS
