"""One-shot machine characterization: every §IV probe in one campaign.

Runs the instruction microbenchmarks, the memory probes, and the
communication ping-pongs against the assembled machine model and
returns a structured report — the library's equivalent of the paper's
whole §IV, regenerated in one call:

>>> from repro.microbench.characterize import characterize
>>> report = characterize()
>>> round(report["memory"]["Opteron"]["triad_gb_s"], 2)
5.41
"""

from __future__ import annotations

from typing import Any

from repro.units import KIB, MB, MIB, NS, to_gb_s, to_mb_s, to_us

__all__ = ["characterize", "render_characterization"]


def characterize(include_latency_map: bool = False) -> dict[str, Any]:
    """Run the full probe campaign; returns nested plain data."""
    from repro.comm.cml import INTERNODE_CELL_PATH, INTRANODE_CELL_PATH
    from repro.comm.dacs import DACS_MEASURED, PCIE_RAW
    from repro.comm.eib import CML_EIB_PAIR
    from repro.comm.ib import IB_DEFAULT
    from repro.comm.mpi import Location, UniformFabric
    from repro.hardware.memory import MEMORY_SYSTEMS
    from repro.hardware.spe_pipeline import (
        CELL_BE_TABLE,
        INSTRUCTION_GROUPS,
        POWERXCELL_8I_TABLE,
    )
    from repro.microbench.instr import instruction_microbenchmark
    from repro.microbench.pingpong import pingpong
    from repro.microbench.streams import memtime_probe, stream_triad_probe

    report: dict[str, Any] = {}

    # §IV-A: the SPE pipelines.
    pipelines = {}
    for table in (CELL_BE_TABLE, POWERXCELL_8I_TABLE):
        measured = instruction_microbenchmark(table)
        pipelines[table.name] = {
            g.value: {
                "latency": measured[g].latency,
                "repetition": measured[g].repetition,
            }
            for g in INSTRUCTION_GROUPS
        }
    report["pipelines"] = pipelines

    # §IV-B: memory.
    memory = {}
    for name, system in MEMORY_SYSTEMS.items():
        triad = stream_triad_probe(system, elements=50_000)
        curve = memtime_probe(system, [16 * KIB, 1 * MIB, 64 * MIB])
        memory[name] = {
            "triad_gb_s": to_gb_s(triad.modeled_bandwidth),
            "memtime_ns": {str(size): lat / NS for size, lat in curve},
        }
    report["memory"] = memory

    # §IV-C: communication layers (zero-byte latency + 1 MB bandwidth).
    comm = {}
    for name, transport in (
        ("EIB (CML intra-socket)", CML_EIB_PAIR),
        ("DaCS/PCIe (measured)", DACS_MEASURED),
        ("raw PCIe", PCIE_RAW),
        ("MPI/InfiniBand", IB_DEFAULT),
        ("Cell-to-Cell intranode", INTRANODE_CELL_PATH),
        ("Cell-to-Cell internode", INTERNODE_CELL_PATH),
    ):
        fabric = UniformFabric(transport)
        zero = pingpong(fabric, Location(0), Location(1), size=0, repetitions=3)
        big = pingpong(
            fabric, Location(0), Location(1), size=int(1 * MB), repetitions=3
        )
        comm[name] = {
            "latency_us": to_us(zero.one_way_time),
            "bandwidth_1mb_mb_s": to_mb_s(big.bandwidth),
        }
    report["communication"] = comm

    if include_latency_map:
        from repro.microbench.latency_map import measure_latency_map
        from repro.network.topology import RoadrunnerTopology

        topo = RoadrunnerTopology(cu_count=2)
        samples = [1, 10, 100, 180, 200]
        report["latency_map_us"] = {
            str(dst): to_us(lat)
            for dst, lat in measure_latency_map(topo, samples).items()
        }

    return report


def render_characterization(report: dict[str, Any] | None = None) -> str:
    """The campaign as readable text."""
    from repro.core.report import format_table

    report = report if report is not None else characterize()
    parts = []
    parts.append(
        format_table(
            ["layer", "latency", "bandwidth @1MB"],
            [
                (name, f"{d['latency_us']:.2f} us", f"{d['bandwidth_1mb_mb_s']:.0f} MB/s")
                for name, d in report["communication"].items()
            ],
            title="Communication hierarchy (measured by DES ping-pong)",
        )
    )
    parts.append(
        format_table(
            ["memory system", "TRIAD", "latency (64 MiB set)"],
            [
                (
                    name,
                    f"{d['triad_gb_s']:.2f} GB/s",
                    f"{d['memtime_ns'][str(64 * MIB)]:.1f} ns",
                )
                for name, d in report["memory"].items()
            ],
            title="Memory systems (STREAM TRIAD + memtime)",
        )
    )
    fpd_cbe = report["pipelines"]["Cell BE"]["FPD"]
    fpd_pxc = report["pipelines"]["PowerXCell 8i"]["FPD"]
    parts.append(
        "FPD unit: latency "
        f"{fpd_cbe['latency']:.0f} -> {fpd_pxc['latency']:.0f} cycles, "
        f"repetition {fpd_cbe['repetition']:.0f} -> "
        f"{fpd_pxc['repetition']:.0f} (the PowerXCell 8i redesign)"
    )
    return "\n\n".join(parts)
