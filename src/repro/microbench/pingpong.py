"""Ping-pong probes over SimMPI (the Figs 6-9 methodology).

"A set of three communication ping-pong tests were developed to
determine the achievable latency and bandwidth of each component of a
Cell-to-Cell data transfer" — here the test is one generic DES program
parameterized by the fabric and the two endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.comm.mpi import Location, SimMPI
from repro.sim.engine import Simulator

__all__ = ["PingPongResult", "pingpong", "bandwidth_sweep"]


@dataclass(frozen=True)
class PingPongResult:
    """Measured one-way characteristics between two endpoints."""

    size: int
    one_way_time: float

    @property
    def bandwidth(self) -> float:
        """Achieved B/s (0 for zero-byte probes)."""
        return self.size / self.one_way_time if self.size and self.one_way_time else 0.0


def pingpong(
    fabric,
    src: Location,
    dst: Location,
    size: int = 0,
    repetitions: int = 10,
) -> PingPongResult:
    """Bounce ``size`` bytes back and forth; returns half the average
    round trip — exactly how the paper's probes report latency."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    sim = Simulator()
    comm = SimMPI(sim, fabric, [src, dst])

    def initiator(rank):
        for _ in range(repetitions):
            yield from rank.send(1, size=size)
            yield from rank.recv(source=1)

    def responder(rank):
        for _ in range(repetitions):
            yield from rank.recv(source=0)
            yield from rank.send(0, size=size)

    sim.process(initiator(comm.rank(0)), name="ping")
    sim.process(responder(comm.rank(1)), name="pong")
    sim.run()
    return PingPongResult(size=size, one_way_time=sim.now / (2 * repetitions))


def bandwidth_sweep(
    fabric,
    src: Location,
    dst: Location,
    sizes: Sequence[int],
    repetitions: int = 4,
) -> list[PingPongResult]:
    """The classic message-size sweep behind the Figs 7-9 curves."""
    return [
        pingpong(fabric, src, dst, size=s, repetitions=repetitions) for s in sizes
    ]
