"""STREAM TRIAD and memtime probes (the Table III methodology).

``stream_triad_probe`` actually executes the TRIAD kernel
(``a[i] = b[i] + s * c[i]``) with numpy — verifying the arithmetic —
and reports the *modeled* time and bandwidth for the probed memory
system.  ``memtime_probe`` builds a genuine dependent pointer chase
("each word that is read is used to determine the address of the next
word") and reports the modeled per-load latency for each working-set
size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hardware.memory import MemorySystem

__all__ = ["TriadProbe", "stream_triad_probe", "memtime_probe"]


@dataclass(frozen=True)
class TriadProbe:
    """One TRIAD run: numerics checked, time modeled."""

    system: str
    elements: int
    modeled_time: float
    modeled_bandwidth: float
    checksum: float


def stream_triad_probe(
    system: MemorySystem, elements: int = 100_000, scalar: float = 3.0
) -> TriadProbe:
    """Run TRIAD over ``elements`` doubles against ``system``."""
    if elements < 1:
        raise ValueError("elements must be >= 1")
    b = np.arange(elements, dtype=np.float64)
    c = np.ones(elements, dtype=np.float64)
    a = b + scalar * c  # the TRIAD kernel itself
    expected = elements * (elements - 1) / 2 + scalar * elements
    if not np.isclose(a.sum(), expected):
        raise AssertionError("TRIAD arithmetic self-check failed")
    t = system.stream_triad_time(elements)
    return TriadProbe(
        system=system.name,
        elements=elements,
        modeled_time=t,
        modeled_bandwidth=3 * elements * 8 / t,
        checksum=float(a.sum()),
    )


def memtime_probe(
    system: MemorySystem,
    working_set_sizes: Sequence[int],
    stride_bytes: int = 64,
    seed: int = 2008,
) -> list[tuple[int, float]]:
    """The memtime curve: (working set, modeled per-load latency).

    A random-permutation pointer chase is materialized and walked for
    each size (verifying it visits every slot exactly once — the
    defining property of the probe) and the model supplies the latency.
    """
    rng = np.random.default_rng(seed)
    out = []
    for size in working_set_sizes:
        slots = max(2, size // stride_bytes)
        perm = rng.permutation(slots)
        chain = np.empty(slots, dtype=np.int64)
        chain[perm] = np.roll(perm, -1)  # single cycle through all slots
        # Walk it: must return to the start after exactly `slots` hops.
        pos = int(perm[0])
        for _ in range(slots):
            pos = int(chain[pos])
        if pos != int(perm[0]):
            raise AssertionError("pointer chase is not a single cycle")
        out.append((size, system.memtime_latency(size)))
    return out
