"""The Fig 10 probe: rank 0 messages every other node in sequence.

"Rank 0 communicates to each of the other nodes in sequence with no
network contention" — reproduced as an actual sequence of simulated
zero-byte ping-pongs over the contention-aware fabric (which, probed
one destination at a time, is contention-free by construction).
"""

from __future__ import annotations

from repro.comm.mpi import Location, SimMPI
from repro.network.simfabric import ContendedFabric
from repro.network.topology import RoadrunnerTopology
from repro.sim.engine import Simulator

__all__ = ["measure_latency_map"]


def measure_latency_map(
    topology: RoadrunnerTopology,
    destinations: list[int] | None = None,
) -> dict[int, float]:
    """One-way zero-byte latency from node 0 to each destination,
    measured with sequential simulated ping-pongs.

    ``destinations`` defaults to every other compute node; pass a
    subset for quick probes (the full 3,059-destination sweep is the
    Fig 10 benchmark's job).
    """
    if destinations is None:
        destinations = list(range(1, topology.node_count))
    results: dict[int, float] = {}
    for dst in destinations:
        if not 0 < dst < topology.node_count:
            raise ValueError(f"destination {dst} out of range")
        sim = Simulator()
        fabric = ContendedFabric(sim, topology=topology)
        comm = SimMPI(sim, fabric, [Location(node=0), Location(node=dst)])

        def ping(rank):
            yield from rank.send(1, size=0)
            yield from rank.recv(source=1)

        def pong(rank):
            yield from rank.recv(source=0)
            yield from rank.send(0, size=0)

        sim.process(ping(comm.rank(0)))
        sim.process(pong(comm.rank(1)))
        sim.run()
        results[dst] = sim.now / 2
    return results
