"""Instruction-group microbenchmarks (the Figs 4-5 methodology).

The paper's probes are assembly loops "not subject to compiler
optimizations" measuring three quantities per instruction group.  This
module runs the same three probes against an SPE pipeline model:

* **latency** — issue spacing of a dependent chain,
* **local stall** — issue spacing of independent instructions when the
  other pipe is kept busy (isolating the per-unit limit),
* **global stall** — the extra delay an unrelated instruction suffers
  when issued right after the probed group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spe_pipeline import (
    GROUP_PIPE,
    INSTRUCTION_GROUPS,
    Instruction,
    InstructionGroup,
    Pipe,
    PipelineTable,
    SPEPipeline,
)

__all__ = ["GroupMeasurement", "instruction_microbenchmark"]


@dataclass(frozen=True)
class GroupMeasurement:
    """Measured characteristics of one instruction group."""

    group: InstructionGroup
    latency: float
    repetition: float
    global_stall: float


def _measure_global_stall(pipe: SPEPipeline, group: InstructionGroup) -> float:
    """Extra cycles before an *other-pipe* instruction can issue after
    one instance of ``group`` (0 for fully pipelined units)."""
    other = (
        InstructionGroup.LS
        if GROUP_PIPE[group] is Pipe.EVEN
        else InstructionGroup.FX2
    )
    probe = pipe.schedule([Instruction(group), Instruction(other)])
    # With no global stall the pair dual-issues in cycle 0.
    return float(probe[1] - probe[0])


def instruction_microbenchmark(table: PipelineTable) -> dict[InstructionGroup, GroupMeasurement]:
    """Run all three probes for every group of ``table``."""
    pipe = SPEPipeline(table)
    out = {}
    for group in INSTRUCTION_GROUPS:
        out[group] = GroupMeasurement(
            group=group,
            latency=pipe.measure_latency(group),
            repetition=pipe.measure_repetition(group),
            global_stall=_measure_global_stall(pipe, group),
        )
    return out
