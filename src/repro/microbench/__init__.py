"""The paper's microbenchmarks, as executable measurement programs.

Each module reimplements one of §IV's measurement methodologies and
runs it against the simulated machine rather than silicon:

* :mod:`repro.microbench.instr` — the assembly-coded latency /
  local-stall / global-stall probes behind Figs 4-5.
* :mod:`repro.microbench.pingpong` — DES ping-pong between two ranks:
  half-round-trip latency and bandwidth sweeps (Figs 6-9 methodology).
* :mod:`repro.microbench.streams` — STREAM TRIAD and the memtime
  pointer chase (Table III methodology).
* :mod:`repro.microbench.latency_map` — the rank-0-to-everyone
  zero-byte probe of Fig 10, executed as simulated messages.

Because the probes *measure* models, they double as cross-layer
validation: the test suite requires each measured value to agree with
the analytic model it probes.
"""

from repro.microbench.instr import instruction_microbenchmark
from repro.microbench.pingpong import PingPongResult, bandwidth_sweep, pingpong
from repro.microbench.streams import memtime_probe, stream_triad_probe
from repro.microbench.latency_map import measure_latency_map

__all__ = [
    "instruction_microbenchmark",
    "PingPongResult",
    "pingpong",
    "bandwidth_sweep",
    "stream_triad_probe",
    "memtime_probe",
    "measure_latency_map",
]
