"""Canned, deterministic scenarios for ``python -m repro profile``.

Each scenario builds a small simulation with a recorder attached end to
end (engine observer, communicator spans, fabric link spans, transport
cache counters), runs it, and returns the total simulated time.  They
are fixed-seed and payload-free, so the recorded span stream is
bit-reproducible — the golden-trace conformance test pins ``sweep4``.
"""

from __future__ import annotations

from repro.obs.recorder import ObsRecorder

__all__ = ["SCENARIOS", "run_scenario"]


def _sweep(obs, npe_i: int, npe_j: int, iterations: int = 2) -> float:
    from repro.comm.mpi import UniformFabric
    from repro.comm.transport import Transport
    from repro.sweep3d.decomposition import Decomposition2D
    from repro.sweep3d.input import SweepInput
    from repro.sweep3d.parallel import ParallelSweep

    inp = SweepInput(it=2, jt=2, kt=8, mk=2, mmi=2)
    fabric = UniformFabric(Transport("ib", latency=2e-6, bandwidth=2e9))
    sweep = ParallelSweep(
        inp, Decomposition2D(npe_i, npe_j), 1e-6, fabric, obs=obs
    )
    result = sweep.run(iterations=iterations)
    return result.iteration_time * result.iterations


def sweep4(obs) -> float:
    """2x2 KBA sweep, two timed iterations (the golden-trace scenario)."""
    return _sweep(obs, 2, 2)


def sweep16(obs) -> float:
    """4x4 KBA sweep — the acceptance criterion's 16-rank attribution."""
    return _sweep(obs, 4, 4)


def solve4(obs) -> float:
    """2x2 distributed source iteration to convergence (collectives)."""
    from repro.comm.mpi import UniformFabric
    from repro.comm.transport import Transport
    from repro.sweep3d.decomposition import Decomposition2D
    from repro.sweep3d.input import SweepInput
    from repro.sweep3d.parallel import ParallelSweep

    inp = SweepInput(it=2, jt=2, kt=4, mk=2, mmi=1)
    fabric = UniformFabric(Transport("ib", latency=2e-6, bandwidth=2e9))
    sweep = ParallelSweep(inp, Decomposition2D(2, 2), 1e-6, fabric, obs=obs)
    result, _info = sweep.solve_distributed(max_iterations=20)
    return result.iteration_time * result.iterations


def ring8(obs) -> float:
    """8 nodes exchange 1 MB around a ring over the contended fabric —
    per-link occupancy on the shared HCA injection/ejection ports."""
    from repro.comm.mpi import Location, SimMPI
    from repro.network.simfabric import ContendedFabric
    from repro.sim.engine import Simulator
    from repro.units import MB

    sim = Simulator()
    sim.attach_observer(obs)
    fabric = ContendedFabric(sim, obs=obs)
    comm = SimMPI(
        sim, fabric, [Location(node=i) for i in range(8)], obs=obs
    )
    size = int(1 * MB)

    def body(rank):
        yield from rank.send((rank.index + 1) % 8, size=size)
        yield from rank.recv()
        yield from rank.barrier()

    for r in range(comm.size):
        sim.process(body(comm.rank(r)), name=f"ring-rank{r}")
    sim.run()
    return sim.now


def _fullmachine(obs, ranks: int, iterations: int = 1) -> float:
    """A full-machine KBA sweep at ``ranks`` ranks — the paper's whole-
    machine scale, on a reduced per-rank tile so the scenario finishes
    in CLI-tolerable wall-clock.  The span volume is what makes it a
    scenario worth profiling: hundreds of thousands of spans per
    iteration, which is why the default recorder for these scenarios
    carries a streaming :class:`~repro.obs.sinks.AggregatingSink`."""
    from repro.comm.mpi import UniformFabric
    from repro.comm.transport import Transport
    from repro.sweep3d.decomposition import Decomposition2D
    from repro.sweep3d.input import SweepInput
    from repro.sweep3d.parallel import ParallelSweep

    inp = SweepInput(it=2, jt=2, kt=8, mk=4, mmi=2)
    fabric = UniformFabric(Transport("ib", latency=2e-6, bandwidth=2e9))
    sweep = ParallelSweep(
        inp, Decomposition2D.near_square(ranks), 1e-6, fabric, obs=obs
    )
    result = sweep.run(iterations=iterations)
    return result.iteration_time * result.iterations


def sweep3060(obs) -> float:
    """Roadrunner full machine: 3,060 ranks (60x51 KBA), one iteration."""
    return _fullmachine(obs, 3060)


def sweep6120(obs) -> float:
    """The "2x Roadrunner" what-if: 6,120 ranks, one iteration."""
    return _fullmachine(obs, 6120)


#: scenario name -> function(obs) -> total simulated seconds
SCENARIOS = {
    "sweep4": sweep4,
    "sweep16": sweep16,
    "solve4": solve4,
    "ring8": ring8,
    "sweep3060": sweep3060,
    "sweep6120": sweep6120,
}

#: scenarios whose span volume needs a streaming sink by default
_SINKED = frozenset({"sweep3060", "sweep6120"})


def run_scenario(name: str, obs: ObsRecorder | None = None):
    """Run one scenario under a recorder; returns ``(recorder,
    sim_time)``.  The transport cost-model observer is installed for the
    duration of the run and always removed afterwards."""
    from repro.comm.transport import set_transport_observer

    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {', '.join(sorted(SCENARIOS))}"
        ) from None
    if obs is not None:
        rec = obs
    elif name in _SINKED:
        from repro.obs.sinks import AggregatingSink

        rec = ObsRecorder(sink=AggregatingSink())
    else:
        rec = ObsRecorder()
    set_transport_observer(rec)
    try:
        sim_time = fn(rec)
    finally:
        set_transport_observer(None)
    return rec, sim_time
