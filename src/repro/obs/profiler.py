"""Sim-time profiler: attribute simulated time per rank, phase and link.

Consumes an :class:`~repro.obs.recorder.ObsRecorder` and answers the
question the paper's own figures answer for the real machine — *where
does the time go?* — for the simulation itself:

* per **rank**: simulated seconds in each phase (``compute`` /
  ``recv-wait`` / ``send`` / ``collective``), plus ``other`` (inside
  instrumented spans of unmapped categories, e.g. the sweep's
  octant/iteration framing) and ``idle`` (outside every span).  The six
  buckets sum to the run's total simulated time exactly (within
  floating-point roundoff; the acceptance tests pin 1e-9).
* per **link**: busy time (union of transfer spans), utilization and
  bytes carried — the per-link occupancy view of the contended fabric.
* per **process**: *host* wall-clock seconds, from the engine observer.

Attribution is innermost-wins: every instant of a span's duration not
covered by a child span is charged to that span's category, so a
collective's internal sends count as ``send`` and only its
synchronization residue counts as ``collective``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.recorder import ObsRecorder, SpanRecord

__all__ = [
    "PHASES",
    "CATEGORY_PHASE",
    "RankProfile",
    "LinkProfile",
    "SimProfile",
    "self_times",
    "phase_breakdown",
    "link_occupancy",
    "profile",
]

#: the profiler's phase buckets, in display order
PHASES = ("compute", "recv-wait", "send", "collective")

#: span category -> phase bucket (anything else lands in ``other``)
CATEGORY_PHASE = {
    "sweep.compute": "compute",
    "mpi.recv": "recv-wait",
    "mpi.send": "send",
    "mpi.collective": "collective",
}

#: span categories whose tracks are links, not ranks
_LINK_CATEGORY = "link"


def self_times(spans: list[SpanRecord]) -> list[tuple[SpanRecord, float]]:
    """Exclusive (self) time of each span on **one** track.

    Spans must be properly nested — two spans either don't overlap or
    one contains the other; partial overlap raises ``ValueError``.  A
    span's self time is its duration minus its direct children's
    durations (the innermost-wins rule).
    """
    ordered = sorted(spans, key=lambda s: (s.t0, -s.t1))
    out: list[tuple[SpanRecord, float]] = []
    # Stack of [span, child_time] for the currently open ancestry.
    stack: list[list] = []
    for span in ordered:
        while stack and stack[-1][0].t1 <= span.t0:
            parent, child_time = stack.pop()
            out.append((parent, parent.duration - child_time))
            if stack:
                stack[-1][1] += parent.duration
        if stack and span.t1 > stack[-1][0].t1:
            top = stack[-1][0]
            raise ValueError(
                f"spans overlap without nesting: {span.category!r} "
                f"[{span.t0!r}, {span.t1!r}] vs {top.category!r} "
                f"[{top.t0!r}, {top.t1!r}]"
            )
        stack.append([span, 0.0])
    while stack:
        parent, child_time = stack.pop()
        out.append((parent, parent.duration - child_time))
        if stack:
            stack[-1][1] += parent.duration
    return out


def _interval_union(spans: list[SpanRecord]) -> float:
    """Total length of the union of span intervals (one track)."""
    total = 0.0
    end = float("-inf")
    for span in sorted(spans, key=lambda s: s.t0):
        if span.t0 > end:
            total += span.t1 - span.t0
            end = span.t1
        elif span.t1 > end:
            total += span.t1 - end
            end = span.t1
    return total


@dataclass
class RankProfile:
    """One rank's simulated-time attribution."""

    track: Any
    phases: dict[str, float]
    other: float
    idle: float
    total: float

    def covered(self) -> float:
        """Simulated time inside any span."""
        return sum(self.phases.values()) + self.other

    def attribution_sum(self) -> float:
        """Phases + other + idle; equals ``total`` within roundoff."""
        return self.covered() + self.idle


@dataclass
class LinkProfile:
    """One link's occupancy over the run."""

    name: str
    busy_time: float
    transfers: int
    bytes: float
    total: float

    @property
    def utilization(self) -> float:
        return self.busy_time / self.total if self.total > 0 else 0.0


@dataclass
class SimProfile:
    """The full profile of one recorded run."""

    sim_time: float
    ranks: dict[Any, RankProfile] = field(default_factory=dict)
    links: dict[str, LinkProfile] = field(default_factory=dict)
    #: host wall-clock seconds per process name (engine observer)
    host_time_by_process: dict[str, float] = field(default_factory=dict)
    #: events processed per event class (engine observer)
    events_by_class: dict[str, int] = field(default_factory=dict)
    host_run_time: float = 0.0


def _spans_by_track(rec: ObsRecorder) -> tuple[dict, dict]:
    """Split spans into per-rank and per-link track maps."""
    rank_spans: dict[Any, list[SpanRecord]] = {}
    link_spans: dict[str, list[SpanRecord]] = {}
    for span in rec.spans:
        if span.category == _LINK_CATEGORY:
            link_spans.setdefault(span.track, []).append(span)
        else:
            rank_spans.setdefault(span.track, []).append(span)
    return rank_spans, link_spans


def phase_breakdown(rec: ObsRecorder, sim_time: float) -> dict[Any, RankProfile]:
    """Per-rank phase attribution over ``[0, sim_time]``."""
    rank_spans, _links = _spans_by_track(rec)
    out: dict[Any, RankProfile] = {}
    for track in sorted(rank_spans, key=repr):
        spans = rank_spans[track]
        phases = {name: 0.0 for name in PHASES}
        other = 0.0
        for span, self_time in self_times(spans):
            phase = CATEGORY_PHASE.get(span.category)
            if phase is None:
                other += self_time
            else:
                phases[phase] += self_time
        # Idle closes the attribution against the top-level span cover,
        # so phases + other + idle telescopes back to sim_time.
        top_cover = _interval_union(spans)
        out[track] = RankProfile(
            track=track,
            phases=phases,
            other=other,
            idle=sim_time - top_cover,
            total=sim_time,
        )
    return out


def link_occupancy(rec: ObsRecorder, sim_time: float) -> dict[str, LinkProfile]:
    """Per-link busy time / transfer count / bytes."""
    _ranks, link_spans = _spans_by_track(rec)
    bytes_by_track = rec.counter_by_track("link.bytes")
    out: dict[str, LinkProfile] = {}
    for name in sorted(link_spans):
        spans = link_spans[name]
        out[name] = LinkProfile(
            name=name,
            busy_time=_interval_union(spans),
            transfers=len(spans),
            bytes=bytes_by_track.get(name, 0.0),
            total=sim_time,
        )
    return out


def profile(rec: ObsRecorder, sim_time: float) -> SimProfile:
    """Build the full :class:`SimProfile` of one recorded run.

    A recorder with a streaming sink attached (see
    :mod:`repro.obs.sinks`) delegates to the sink's aggregate, merging
    it with any still-buffered spans — same profile, bounded memory.
    """
    if sim_time < 0:
        raise ValueError("sim_time must be >= 0")
    sink = getattr(rec, "sink", None)
    if sink is not None and hasattr(sink, "aggregate_profile"):
        return sink.aggregate_profile(rec, sim_time)
    return SimProfile(
        sim_time=sim_time,
        ranks=phase_breakdown(rec, sim_time),
        links=link_occupancy(rec, sim_time),
        host_time_by_process=dict(rec.host_time_by_process),
        events_by_class=dict(rec.events_by_class),
        host_run_time=rec.host_run_time,
    )
