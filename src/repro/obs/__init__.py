"""Structured observability for the simulator.

``repro.obs`` records what a simulation *did* — spans (simulated-time
intervals per rank / link), counters and gauges, and engine statistics —
and turns the record into per-rank, per-phase, per-link attributions and
exportable traces:

* :mod:`repro.obs.recorder` — the :class:`ObsRecorder` sink and the
  ``obs=None`` zero-overhead convention every instrumented layer follows;
* :mod:`repro.obs.profiler` — sim-time attribution (compute /
  recv-wait / send / collective / other / idle per rank; busy time and
  utilization per link; host wall-clock per process);
* :mod:`repro.obs.export` — JSON summaries, Chrome ``trace_event``
  files (Perfetto-loadable), and the text profile tables;
* :mod:`repro.obs.scenarios` — the canned runs behind
  ``python -m repro profile <scenario>``.
"""

from repro.obs.export import (
    SUMMARY_RANK_FIELDS,
    SUMMARY_SCHEMA,
    counter_snapshot,
    deterministic_summary,
    format_profile,
    phase_fractions,
    span_stream,
    to_chrome_trace,
    to_summary,
    write_chrome_trace,
)
from repro.obs.profiler import (
    CATEGORY_PHASE,
    PHASES,
    LinkProfile,
    RankProfile,
    SimProfile,
    link_occupancy,
    phase_breakdown,
    profile,
    self_times,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    ObsRecorder,
    SpanRecord,
    active,
)
from repro.obs.scenarios import SCENARIOS, run_scenario
from repro.obs.sinks import AggregatingSink, RotatingFileSink

__all__ = [
    "AggregatingSink",
    "RotatingFileSink",
    "ObsRecorder",
    "SpanRecord",
    "NullRecorder",
    "NULL_RECORDER",
    "active",
    "PHASES",
    "CATEGORY_PHASE",
    "RankProfile",
    "LinkProfile",
    "SimProfile",
    "self_times",
    "phase_breakdown",
    "link_occupancy",
    "profile",
    "span_stream",
    "to_summary",
    "counter_snapshot",
    "deterministic_summary",
    "phase_fractions",
    "SUMMARY_SCHEMA",
    "SUMMARY_RANK_FIELDS",
    "to_chrome_trace",
    "write_chrome_trace",
    "format_profile",
    "SCENARIOS",
    "run_scenario",
]
